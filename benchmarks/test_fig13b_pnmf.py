"""E8 (paper Fig. 13(b)): PNMF matrix factorization.

Paper: beyond ~30 iterations Base and LIMA slow down super-linearly
because each job lazily re-executes all previous iterations; MPH's
compiler-placed checkpoints keep per-iteration cost constant (7.9x at 45
iterations).
"""

from repro.harness import run_experiment_pnmf


def test_fig13b_pnmf(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_pnmf, args=((5, 15, 25, 35),), rounds=1, iterations=1
    )
    print_report(result)
    # Base grows super-linearly: per-iteration cost increases
    base_5 = result.grid[5]["Base"].elapsed / 5
    base_35 = result.grid[35]["Base"].elapsed / 35
    assert base_35 > 1.5 * base_5
    # MPH stays linear: per-iteration cost roughly constant
    mph_5 = result.grid[5]["MPH"].elapsed / 5
    mph_35 = result.grid[35]["MPH"].elapsed / 35
    assert mph_35 < 1.3 * mph_5
    # crossover: MPH wins increasingly with iterations
    assert result.grid[35]["Base"].elapsed > \
        2.0 * result.grid[35]["MPH"].elapsed
    assert result.grid[35]["MPH"].counter(
        "compiler/checkpoints_placed") >= 35
