"""E4 (paper Fig. 11(b)): overhead vs instruction count.

Paper: probing overhead grows with instruction count (reaching ~15%),
20% reuse amortizes it, 40% reuse yields 1.5x, and an unlimited cache
(40%INF) gives no further speedup over the bounded cache because the
eviction policy retains high-reuse objects.
"""

from repro.harness import run_experiment_fig11b


def test_fig11b_instruction_count(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_fig11b, rounds=1, iterations=1
    )
    print_report(result)
    largest = result.grid[500]
    base = largest["Base"].elapsed
    assert largest["Probe"].elapsed > base  # probing costs something
    assert base / largest["Reuse40"].elapsed > 1.2
    # INF cache does not beat the bounded cache by much
    bounded = largest["Reuse40"].elapsed
    unlimited = largest["Reuse40INF"].elapsed
    assert unlimited > 0.8 * bounded
