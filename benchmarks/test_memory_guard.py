"""Memory-refactor guard: Fig. 12 stats byte-identical to the baseline.

The arbitration substrate (``repro.memory``) is a pure refactor under
the default Cost&Size policy: every reservation, eviction, spill, and
restore must happen at the same point with the same victim as before.
This guard re-runs the two memory-bound experiments — Fig. 12(a)
(driver cache sizes) and Fig. 12(b) (GPU eviction under pressure) —
and compares every simulated duration (exact float ``repr``) and every
pre-refactor counter against the recorded baseline in
``baselines/fig12_counters.json``.

Counters introduced by the substrate itself (the ``memory/``
namespace) are additive and intentionally ignored: the guard asserts
the old behaviour is preserved, not that no new observability exists.
"""

import json
import pathlib

import pytest

from repro.harness import runner

BASELINE = pathlib.Path(__file__).parent / "baselines" / \
    "fig12_counters.json"


def snap(experiment) -> dict:
    """Reduce an ExperimentResult grid to comparable scalars."""
    out: dict = {}
    for x, cells in experiment.grid.items():
        out[str(x)] = {
            label: {
                "elapsed": repr(float(result.elapsed)),
                "counters": {k: v for k, v in sorted(result.counters.items())},
            }
            for label, result in cells.items()
        }
    return out


def compare(recorded: dict, current: dict, experiment: str) -> list[str]:
    """Every recorded cell must match: elapsed exactly, and every
    counter present in the baseline unchanged."""
    mismatches = []
    for x, row in recorded.items():
        for label, cell in row.items():
            got = current[x][label]
            if got["elapsed"] != cell["elapsed"]:
                mismatches.append(
                    f"{experiment}[{x}][{label}].elapsed: "
                    f"{cell['elapsed']} -> {got['elapsed']}"
                )
            for counter, expected in cell["counters"].items():
                actual = got["counters"].get(counter)
                if actual != expected:
                    mismatches.append(
                        f"{experiment}[{x}][{label}].{counter}: "
                        f"{expected} -> {actual}"
                    )
    return mismatches


@pytest.fixture(scope="module")
def baseline() -> dict:
    if not BASELINE.exists():
        pytest.skip(f"no recorded baseline at {BASELINE}")
    return json.loads(BASELINE.read_text())


def test_fig12a_byte_identical(baseline):
    mismatches = compare(baseline["fig12a"],
                         snap(runner.run_experiment_fig12a()), "fig12a")
    assert not mismatches, "\n".join(mismatches)


def test_fig12b_byte_identical(baseline):
    mismatches = compare(baseline["fig12b"],
                         snap(runner.run_experiment_fig12b()), "fig12b")
    assert not mismatches, "\n".join(mismatches)
