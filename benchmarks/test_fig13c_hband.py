"""E9 (paper Fig. 13(c)): HBAND model search.

Paper: MPH yields 2.6x/2.5x speedups for 5GB/20GB inputs over Base by
reusing successive-halving iterations and the XB multiplications in
ensemble weighting; MEMPHIS is ~40% faster than HELIX and LIMA.
"""

from repro.harness import run_experiment_hband


def test_fig13c_hband(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_hband, args=((5, 20),), rounds=1, iterations=1
    )
    print_report(result)
    for gb, runs in result.grid.items():
        base = runs["Base"].elapsed
        mph = runs["MPH"].elapsed
        assert base / mph > 1.5, f"MPH speedup too small at {gb}GB"
        assert mph < runs["HELIX"].elapsed
        assert mph < runs["LIMA"].elapsed
