"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper table/figure: the pytest-benchmark
fixture measures wall-clock of the experiment driver, while the printed
table reports the *simulated* times that reproduce the paper's series
(who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items) -> None:
    """Everything under benchmarks/ is tier 2 (select with -m tier2_bench)."""
    marker = pytest.mark.tier2_bench
    for item in items:
        item.add_marker(marker)


def report(result) -> None:
    """Print an experiment table into the benchmark output."""
    print()
    print(result.table)


@pytest.fixture(scope="session")
def print_report():
    return report
