"""E7 (paper Fig. 13(a)): HCV grid search / cross-validated linreg.

Paper: MPH up to 9.6x over Base by reusing t(X)X and t(X)y per fold and
running concurrent jobs; Base-A gains ~2x from async operators alone;
LIMA reuses only local intermediates (matches Base once the core
multiplies move to Spark); HELIX performs like Base (no coarse-grained
reuse opportunities); MPH is faster than MPH-NA via parallel execution.
"""

from repro.harness import run_experiment_hcv


def test_fig13a_hcv(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_hcv, args=((5, 25, 50),), rounds=1, iterations=1
    )
    print_report(result)
    for gb, runs in result.grid.items():
        base = runs["Base"].elapsed
        assert runs["MPH"].elapsed < base, f"MPH must win at {gb}GB"
        assert runs["MPH"].elapsed <= runs["MPH-NA"].elapsed * 1.05
        assert abs(runs["HELIX"].elapsed - base) / base < 0.15
    distributed = result.grid[50]
    assert distributed["Base-A"].elapsed < distributed["Base"].elapsed
    # LIMA loses its advantage once the core multiplies run on Spark
    local, dist = result.grid[5], result.grid[50]
    lima_gain_local = local["Base"].elapsed / local["LIMA"].elapsed
    lima_gain_dist = dist["Base"].elapsed / dist["LIMA"].elapsed
    mph_gain_dist = dist["Base"].elapsed / dist["MPH"].elapsed
    assert mph_gain_dist > lima_gain_dist
    assert mph_gain_dist > 1.5
