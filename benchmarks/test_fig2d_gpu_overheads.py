"""E2 (paper Fig. 2(d)): GPU allocation/copy overhead breakdown.

Paper: with forced per-kernel allocate/copy/free, memory allocation/free
and copies take 4.6x and 9x longer than the actual computation.
"""

from repro.harness import run_experiment_fig2d


def test_fig2d_gpu_overheads(benchmark, print_report):
    result = benchmark.pedantic(run_experiment_fig2d, rounds=1, iterations=1)
    print_report(result)
    out = result.grid[0]
    assert 3.0 < out["alloc_free_over_compute"] < 12.0
    assert 5.0 < out["copy_over_compute"] < 18.0
