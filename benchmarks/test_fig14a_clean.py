"""E10 (paper Fig. 14(a)): CLEAN data-cleaning pipeline enumeration.

Paper: at scale factor 120, MPH yields 3.9x/3.5x/2.3x speedups over
Base/LIMA/Base-P by reusing the repeating primitives across the 12
enumerated pipelines, surviving repeated cache spills.
"""

from repro.harness import run_experiment_clean


def test_fig14a_clean(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_clean, args=((12, 60, 120),), rounds=1, iterations=1
    )
    print_report(result)
    # the paper's headline numbers are at scale 120 (distributed):
    # MPH > Base-P > Base and MPH > LIMA
    runs = result.grid[120]
    base = runs["Base"].elapsed
    assert base / runs["MPH"].elapsed > 1.3
    assert runs["Base-P"].elapsed < base  # parallelism helps Base
    assert runs["MPH"].elapsed < runs["Base-P"].elapsed
    assert runs["MPH"].elapsed < runs["LIMA"].elapsed
    # reuse never hurts much at smaller scales
    for sf, smaller in result.grid.items():
        assert smaller["MPH"].elapsed < smaller["Base"].elapsed * 1.1
