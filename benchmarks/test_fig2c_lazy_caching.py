"""E1 (paper Fig. 2(c)): eager vs lazy RDD caching.

Paper: eager materialization of 12K RDDs (4K reusable) is 10x slower
than no caching at all; MEMPHIS achieves a 2x speedup by reusing RDDs
with lazy materialization.  Expected shape: Eager >> NoCache > MEMPHIS.
"""

from repro.harness import run_experiment_fig2c


def test_fig2c_lazy_caching(benchmark, print_report):
    result = benchmark.pedantic(run_experiment_fig2c, rounds=1, iterations=1)
    print_report(result)
    runs = result.grid[0]
    nocache = runs["NoCache"].elapsed
    eager = runs["Eager"].elapsed
    memphis = runs["MEMPHIS"].elapsed
    assert eager > 3 * nocache, "eager materialization must be much slower"
    assert memphis < nocache, "MEMPHIS must beat no caching via reuse"
