"""E15 (paper Table 3): pipeline/dataset inventory.

Prints the workload overview and verifies each pipeline's driver is
runnable end-to-end with its influential technique exercised.
"""

from repro.harness.report import format_table
from repro.workloads import (
    run_clean,
    run_en2de,
    run_hband,
    run_hcv,
    run_hdrop,
    run_pnmf,
    run_tlvis,
)

ROWS = [
    ["HCV", "Grid Search / Cross Validation", "Synthetic",
     "Async. OPs, local & RDD reuse"],
    ["PNMF", "Non-negative Matrix Factorization", "MovieLens-like",
     "Checkpoint placement"],
    ["HBAND", "Hyperband Model Selection", "Synthetic",
     "Multi-level reuse, delayed caching"],
    ["CLEAN", "Data Cleaning Pipelines", "APS-like",
     "Large #intermediates & #evictions"],
    ["HDROP", "Dropout Rate Tuning", "KDD98-like",
     "Local and GPU ptr. reuse"],
    ["EN2DE", "Machine Translation Inference", "WMT14-like",
     "Recycle & reuse GPU ptrs."],
    ["TLVIS", "Transfer Learning Feature Extraction",
     "ImageNet/CIFAR-like", "Evictions & mem. management"],
]


def test_table3_overview(benchmark):
    def render():
        return format_table(
            ["name", "use case", "dataset", "influential techniques"],
            ROWS, title="Table 3: ML pipeline use cases & datasets",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print()
    print(table)


def test_table3_influential_techniques(benchmark):
    """Each pipeline exercises the technique Table 3 attributes to it."""
    hcv = benchmark.pedantic(run_hcv, args=("MPH", 50.0),
                             rounds=1, iterations=1)
    assert hcv.counter("async/prefetch_issued") > 0  # async OPs
    assert hcv.counter("spark/rdds_reused") > 0  # RDD reuse

    pnmf = run_pnmf("MPH", 8)
    assert pnmf.counter("compiler/checkpoints_placed") >= 8

    hband = run_hband("MPH", 5.0)
    assert hband.counter("cache/function_hits") > 0  # multi-level reuse

    clean = run_clean("MPH", 60)
    assert clean.counter("cache/hits") > 50  # many intermediates
    assert clean.counter("cache/evictions") > 0  # ... and evictions

    hdrop = run_hdrop("MPH")
    assert hdrop.counter("gpu/pointers_reused") > 0

    en2de = run_en2de("MPH")
    assert en2de.counter("gpu/pointers_recycled") > 0

    tlvis = run_tlvis("MPH")
    assert tlvis.counter("compiler/evict_instructions") >= 2
