"""A2: ablation of operator linearization (Algorithm 2) on HCV."""

from repro.harness import run_ablation_ordering


def test_ablation_ordering(benchmark, print_report):
    result = benchmark.pedantic(
        run_ablation_ordering, rounds=1, iterations=1
    )
    print_report(result)
    assert result.grid["maxParallelize"].elapsed <= \
        result.grid["depth-first"].elapsed * 1.02
