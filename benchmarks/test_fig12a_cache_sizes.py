"""E5 (paper Fig. 12(a)): influence of driver cache sizes.

Paper: even a 900MB cache achieves a consistent 1.2x speedup; for larger
inputs the 5GB cache yields slightly less speedup than 30GB (1.4x vs
1.6x) — robustness of the eviction policy under small caches.
"""

from repro.harness import run_experiment_fig12a


def test_fig12a_cache_sizes(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_fig12a, rounds=1, iterations=1
    )
    print_report(result)
    for gb, cells in result.grid.items():
        base = cells["Base"].elapsed
        small = base / cells["900MB"].elapsed
        large = base / cells["30GB"].elapsed
        assert small > 1.02, f"small cache must still help at {gb}GB"
        assert large >= small * 0.9, "bigger caches never hurt much"
