"""A3: federated multi-tenant reuse ablation (paper §5.4 extension).

The paper notes that for hierarchically-structured backends, local
lineage-based reuse directly applies at federated workers [19].  This
benchmark runs two tenants over a shared fleet and compares worker-local
reuse on vs off.
"""

import numpy as np

from repro.backends.federated import (
    FederatedConfig,
    FederatedCoordinator,
    FederatedWorker,
)
from repro.common.simclock import SimClock
from repro.harness.report import format_table


def _run(reuse: bool) -> tuple[float, int]:
    cfg = FederatedConfig(num_workers=4, flops_per_s=20e9)
    fleet = [FederatedWorker(i, cfg) for i in range(4)]
    clock = SimClock()
    data = np.random.default_rng(3).random((20_000, 128))
    total_reuses = 0
    start = clock.now()
    for _ in range(2):  # two tenants issue the same pipeline
        coord = FederatedCoordinator(fleet, cfg, clock=clock, reuse=reuse)
        fm = coord.federate("X", data)
        gram = coord.tsmm(fm)
        sums = coord.column_sums(fm)
        beta = np.linalg.solve(gram + np.eye(128), sums.T)
        coord.matvec(fm, beta)
        total_reuses += coord.stats.get("federated/worker_reuses")
    return clock.now() - start, total_reuses


def test_ablation_federated_reuse(benchmark, print_report):
    def run_both():
        return _run(reuse=False), _run(reuse=True)

    (t_off, _), (t_on, reuses) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    class _Result:
        table = format_table(
            ["worker-local reuse", "two-tenant time [ms]", "worker reuses"],
            [["off", t_off * 1000, 0], ["on", t_on * 1000, reuses]],
            title="Ablation: federated multi-tenant reuse (2 tenants)",
        )

    print_report(_Result())
    assert t_on < t_off
    assert reuses > 0
