"""E12 (paper Fig. 14(c)): EN2DE machine-translation scoring.

Paper: MPH yields 5x over Base-G by reusing scoring results at the host
(eliminating GPU computation for repeated words); MPH-F (pointer-level
reuse) gives 4x; Clipper performs similar to MPH; PyTorch is 2x faster
than Base-G but 2.4x slower than MPH.
"""

from repro.harness import run_experiment_en2de


def test_fig14c_en2de(benchmark, print_report):
    result = benchmark.pedantic(run_experiment_en2de, rounds=1, iterations=1)
    print_report(result)
    runs = result.grid[0]
    base = runs["Base-G"].elapsed
    assert base / runs["MPH"].elapsed > 2.5
    assert runs["MPH-F"].elapsed < base  # pointer reuse helps
    assert runs["PyTorch"].elapsed < base  # PyTorch beats Base-G
    assert runs["PyTorch"].elapsed > runs["MPH"].elapsed  # but loses to MPH
    # Clipper in the same ballpark as MPH (prediction caching)
    assert runs["Clipper"].elapsed < base / 1.5
    assert runs["MPH"].counter("cache/function_hits") > 500
