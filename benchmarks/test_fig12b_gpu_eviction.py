"""E6 (paper Fig. 12(b)): GPU cache eviction under CNN scoring.

Paper: probing overhead stays moderate even for batch size 2; from batch
size 4, despite many evictions, 20/40/80% reuse yield consistent 1.3x,
1.6x, and 4x improvements.
"""

from repro.harness import run_experiment_fig12b


def test_fig12b_gpu_eviction(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_fig12b, rounds=1, iterations=1
    )
    print_report(result)
    for bs in (4, 8, 16):
        cells = result.grid[bs]
        base = cells["Base"].elapsed
        assert base / cells["MPH80"].elapsed > \
            base / cells["MPH20"].elapsed * 0.95
        assert base / cells["MPH80"].elapsed > 1.2
        assert cells["MPH80"].counter("gpu/pointers_reused") > 0
