"""E14 (paper Table 2): measured backend properties.

Verifies that the configured simulator matches the paper's Table 2 and
that the *measured* behaviour matches the configuration: Spark transfers
run at ~15 GB/s, GPU pageable copies at ~6.1 GB/s, Spark is lazy, the
GPU stream is asynchronous.
"""

import numpy as np

from repro.common.config import GB, MemphisConfig
from repro.common.simclock import DEVICE, HOST
from repro.core.session import Session
from repro.harness import run_experiment_table2
from repro.runtime.values import MatrixValue


def test_table2_report(benchmark, print_report):
    result = benchmark.pedantic(run_experiment_table2, rounds=1, iterations=1)
    print_report(result)


def test_table2_spark_bandwidth_measured(benchmark):
    sess = Session(MemphisConfig.base())
    value = MatrixValue(np.ones((1024, 128)))  # 1 MiB

    def roundtrip():
        dm = sess.spark.distribute(value)
        t0 = sess.clock.now(HOST)
        sess.spark.collect(dm)
        return sess.clock.now(HOST) - t0

    elapsed = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    # two transfers (up on compute, down on collect) + overheads
    floor = 2 * value.nbytes / (15 * GB)
    assert elapsed >= floor

def test_table2_gpu_bandwidth_measured(benchmark):
    cfg = MemphisConfig.base()
    cfg.gpu_enabled = True
    sess = Session(cfg)
    value = MatrixValue(np.ones((1024, 128)))

    def upload():
        t0 = sess.clock.now(HOST)
        sess.gpu.to_device(value)
        return sess.clock.now(HOST) - t0

    elapsed = benchmark.pedantic(upload, rounds=1, iterations=1)
    assert elapsed >= value.nbytes / (6.2 * GB)

def test_table2_execution_models(benchmark):
    cfg = MemphisConfig.base()
    cfg.gpu_enabled = True
    sess = Session(cfg)

    def exercise():
        dm = sess.spark.distribute(MatrixValue(np.ones((2048, 4))))
        sess.spark.unary("exp", dm)
        jobs = sess.stats.get("spark/jobs")
        data = sess.gpu.to_device(MatrixValue(np.ones((64, 64))))
        sess.gpu.execute("ba+*", [data, data], {})
        return jobs

    jobs = benchmark.pedantic(exercise, rounds=1, iterations=1)
    # Spark lazy: transformations trigger no jobs
    assert jobs == 0
    # GPU async: kernels leave the device timeline ahead of the host
    assert sess.clock.now(DEVICE) > sess.clock.now(HOST)
