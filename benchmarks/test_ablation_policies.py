"""A1: ablation of eviction policies (Eq. 1 vs LRU/LRC/MRD) and delay
factors on the CLEAN workload (design choices of §4.1/§5.2)."""

from repro.harness import run_ablation_policies


def test_ablation_policies(benchmark, print_report):
    result = benchmark.pedantic(
        run_ablation_policies, rounds=1, iterations=1
    )
    print_report(result)
    cost_size = result.grid["cost_size"]
    assert cost_size.counter("cache/hits") > 0
    # every configuration completes and produces reuse
    for label, run in result.grid.items():
        assert run.elapsed > 0
