"""E11 (paper Fig. 14(b)): HDROP dropout-rate tuning.

Paper: MPH achieves 1.7x over Base-G by reusing the batch-wise input
data pipeline across epochs (feature transform on the host, normalization
on the GPU); CoorDL reuses only the CPU part and is 24% slower than MPH.
"""

from repro.harness import run_experiment_hdrop


def test_fig14b_hdrop(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_hdrop, kwargs={"epochs": 5}, rounds=1, iterations=1
    )
    print_report(result)
    runs = result.grid[0]
    assert runs["MPH"].elapsed < runs["Base-G"].elapsed
    assert runs["MPH"].elapsed <= runs["CoorDL"].elapsed * 1.02
    assert runs["MPH"].counter("gpu/pointers_reused") > 0
    assert runs["MPH"].counter("gpu/pointers_recycled") > 0
