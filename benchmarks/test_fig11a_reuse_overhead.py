"""E3 (paper Fig. 11(a)): lineage tracing and reuse overhead vs size.

Paper: for small inputs, tracing adds ~1.3x and probing ~2x overhead;
for 8MB inputs the overheads become negligible and reuse yields 1.1x
(20% reusable) to 3x (80% reusable) speedups.
"""

from repro.harness import run_experiment_fig11a


def test_fig11a_reuse_overhead(benchmark, print_report):
    result = benchmark.pedantic(
        run_experiment_fig11a, rounds=1, iterations=1
    )
    print_report(result)
    small = result.grid[800]
    big = result.grid[8 * 1024 * 1024]
    # overheads visible on tiny inputs
    assert small["Trace"].elapsed > 1.1 * small["Base"].elapsed
    assert small["Probe"].elapsed > 1.5 * small["Base"].elapsed
    # overheads negligible and reuse profitable on large inputs
    assert big["Probe"].elapsed < 1.35 * big["Base"].elapsed
    assert big["Base"].elapsed / big["Reuse80"].elapsed > 2.0
    assert big["Base"].elapsed / big["Reuse40"].elapsed > 1.15
