"""E13 (paper Fig. 14(d)): TLVIS transfer-learning feature extraction.

Paper: MEMPHIS yields 2-3x speedups by reusing intermediates during
repetitive feature extraction, with evict(100) between models; VISTA
performs similar to MPH via CSE; PyTorch (torch.compile) fails with OOM
without manual empty_cache() (PyTorch-Clr) and is 1.5x slower than MPH.
"""

from repro.common.config import MB
from repro.harness import run_experiment_tlvis
from repro.workloads.tlvis import run_tlvis


def test_fig14d_tlvis(benchmark, print_report):
    result = benchmark.pedantic(run_experiment_tlvis, rounds=1, iterations=1)
    print_report(result)
    runs = result.grid[0]
    base = runs["Base-G"].elapsed
    assert runs["MPH"].elapsed < base
    assert runs["VISTA"].elapsed < base
    assert runs["MPH"].counter("compiler/evict_instructions") >= 2
    assert runs["MPH"].counter("gpu/pointers_reused") > 0


def test_fig14d_pytorch_oom_without_clear(benchmark):
    """On a memory-constrained device, PyTorch OOMs across models while
    PyTorch-Clr (manual empty_cache between models) and MPH survive."""
    tight = 23 * MB

    def run_all():
        return (
            run_tlvis("PyTorch", device_memory=tight),
            run_tlvis("PyTorch-Clr", device_memory=tight),
            run_tlvis("MPH", device_memory=tight),
        )

    pt, clr, mph = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert pt.failed is not None, "PyTorch should OOM without cleanup"
    assert clr.failed is None, "PyTorch-Clr should survive"
    assert mph.failed is None, "MPH eviction injection should survive"
