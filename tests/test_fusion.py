"""Differential fused-vs-unfused tests for the reuse-aware fusion pass.

Three layers of evidence that ``repro.compiler.rewrites.fusion`` never
changes semantics:

* a differential suite running every harness experiment fused and
  unfused — results (workload metrics) must be byte-identical, lineage
  probe/hit/put counters must be identical (reuse boundaries forbid
  fusion wherever the cache is live), and the fused instruction count
  must never rise;
* a hypothesis property test over randomly generated cell-wise chains —
  fused output equals unfused output bit-for-bit and interior hops are
  never also cached;
* unit tests for the planner's reuse-awareness/boundary gates and for
  the FUS analysis rule family.

The slow experiments are skipped by default; set
``MEMPHIS_FULL_DIFFERENTIAL=1`` to run all 16 (CI nightly / release).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.common.config import (
    MemphisConfig,
    ReuseMode,
    clear_fusion_override,
    install_fusion_override,
)
from repro.common.stats import (
    CACHE_HITS,
    CACHE_PUTS,
    CPU_BYTES_ALLOCATED,
    FUSION_BYTES_SAVED,
    FUSION_CHAINS,
    FUSION_INSTRUCTIONS,
    INSTRUCTIONS_EXECUTED,
    LINEAGE_PROBES,
    LINEAGE_TRACED,
)
from repro.compiler.ir import Hop, literal_hop, op_hop
from repro.compiler.rewrites.fusion import (
    FUSED_OPCODE,
    FusedHop,
    fusion_spec,
    plan_fusion,
    retention_candidate,
)
from repro.core.session import Session
from repro.faults.determinism import reset_global_ids
from repro.harness.__main__ import EXPERIMENTS
from repro.harness.telemetry import _workload_results
from repro.lineage.item import LineageItem

# ------------------------------------------------------------- helpers


def _session(reuse_mode=ReuseMode.NONE, fusion=False) -> Session:
    config = MemphisConfig.memphis()
    config.reuse_mode = reuse_mode
    config.enable_fusion = fusion
    return Session(config)


def _chain(handle):
    return (((handle * 2.0) + 1.0).sigmoid() * 0.5).relu()


DATA = (np.arange(32.0 * 32).reshape(32, 32) % 23.0) / 23.0 - 0.5


# ---------------------------------------------- fused execution semantics


class TestFusedExecution:
    def test_cellwise_chain_byte_equal_single_instruction(self):
        base = _session()
        fused = _session(fusion=True)
        out_base = _chain(base.read(DATA, "X")).compute()
        out_fused = _chain(fused.read(DATA, "X")).compute()
        assert out_fused.tobytes() == out_base.tobytes()
        assert out_fused.dtype == np.float64
        assert base.stats.get(INSTRUCTIONS_EXECUTED) == 5
        assert fused.stats.get(INSTRUCTIONS_EXECUTED) == 1
        assert fused.stats.get(FUSION_CHAINS) == 1
        assert fused.stats.get(FUSION_INSTRUCTIONS) == 1

    def test_fusion_reduces_allocated_bytes(self):
        base = _session()
        fused = _session(fusion=True)
        _chain(base.read(DATA, "X")).compute()
        _chain(fused.read(DATA, "X")).compute()
        saved = fused.stats.get(FUSION_BYTES_SAVED)
        assert saved > 0
        assert (fused.stats.get(CPU_BYTES_ALLOCATED) + saved
                == base.stats.get(CPU_BYTES_ALLOCATED))

    def test_matmul_epilogue_fuses(self):
        rng = np.random.default_rng(7)
        a, b = rng.random((24, 16)), rng.random((16, 8))
        base = _session()
        fused = _session(fusion=True)
        out_base = ((base.read(a, "A") @ base.read(b, "B")) * 0.5).relu()
        out_fused = ((fused.read(a, "A") @ fused.read(b, "B")) * 0.5).relu()
        assert out_fused.compute().tobytes() == out_base.compute().tobytes()
        assert fused.stats.get(INSTRUCTIONS_EXECUTED) == 1
        assert base.stats.get(INSTRUCTIONS_EXECUTED) == 3

    def test_comparison_chain_stays_float64(self):
        base = _session()
        fused = _session(fusion=True)
        out_base = (((base.read(DATA, "X") > 0.5) * 3.0) + 1.0).compute()
        out_fused = (((fused.read(DATA, "X") > 0.5) * 3.0) + 1.0).compute()
        assert out_fused.dtype == np.float64
        assert out_fused.tobytes() == out_base.tobytes()
        assert fused.stats.get(FUSION_CHAINS) == 1

    def test_trace_only_fuses_and_traces_per_step(self):
        fused = _session(ReuseMode.TRACE_ONLY, fusion=True)
        _chain(fused.read(DATA, "X")).compute()
        assert fused.stats.get(FUSION_CHAINS) == 1
        # the fused instruction re-interns each absorbed hop's lineage
        assert fused.stats.get(LINEAGE_TRACED) == 5

    def test_trace_only_tail_lineage_matches_unfused(self):
        base = _session(ReuseMode.TRACE_ONLY)
        fused = _session(ReuseMode.TRACE_ONLY, fusion=True)
        hb = _chain(base.read(DATA, "X"))
        hf = _chain(fused.read(DATA, "X"))
        hb.compute(), hf.compute()
        assert hb.lineage is not None and hf.lineage is not None
        assert hb.lineage.opcode == hf.lineage.opcode

    def test_shared_interior_ends_the_chain(self):
        # `mid` has two consumers: it must not be fused over
        base = _session()
        fused = _session(fusion=True)
        outs = []
        for sess in (base, fused):
            x = sess.read(DATA, "X")
            mid = (x * 2.0) + 1.0
            outs.append((mid.relu() + mid.sigmoid()).compute())
        assert outs[0].tobytes() == outs[1].tobytes()

    def test_explain_annotates_fused_steps(self):
        fused = _session(fusion=True)
        rendered = fused.explain(_chain(fused.read(DATA, "X")))
        assert "fused(5)" in rendered
        assert FUSED_OPCODE in rendered


# ------------------------------------------------------ reuse-awareness


class TestReuseAwareness:
    @pytest.mark.parametrize("factory", [
        MemphisConfig.memphis, MemphisConfig.lima, MemphisConfig.helix,
        MemphisConfig.memphis_fine_only,
    ])
    def test_fusion_refused_under_retaining_modes(self, factory):
        config = factory()
        config.enable_fusion = True
        session = Session(config)
        out = _chain(session.read(DATA, "X")).compute()
        assert session.stats.get(FUSION_CHAINS) == 0
        base = _session()
        expected = _chain(base.read(DATA, "X")).compute()
        assert out.tobytes() == expected.tobytes()

    def test_retention_candidate_tracks_reuse_mode(self):
        hop = op_hop("relu", [Hop("data", "data", [], shape=(4, 4))])
        none_cfg = MemphisConfig.base()
        assert none_cfg.reuse_mode is ReuseMode.NONE
        assert not retention_candidate(hop, none_cfg)
        full_cfg = MemphisConfig.memphis()
        assert retention_candidate(hop, full_cfg)
        # unseeded rand is never retained (non-deterministic lineage key)
        rand = Hop("op", "rand", [], attrs={"rows": 4, "cols": 4},
                   shape=(4, 4))
        assert not retention_candidate(rand, full_cfg)
        rand.attrs["seed"] = 1
        assert retention_candidate(rand, full_cfg)

    def test_plan_fusion_refuses_retaining_config(self):
        x = Hop("data", "data", [], shape=(8, 8))
        a = op_hop("*", [x, literal_hop(2.0)])
        b = op_hop("relu", [a])
        nodes = [b, a, x]
        consumers = {x.id: [a], a.id: [b]}
        assert plan_fusion([b], nodes, consumers, MemphisConfig.base())
        assert not plan_fusion([b], nodes, consumers,
                               MemphisConfig.memphis())

    def test_ambient_override_enables_fusion(self):
        install_fusion_override(True)
        try:
            config = MemphisConfig.base()
            assert config.enable_fusion
        finally:
            clear_fusion_override()
        assert not MemphisConfig.base().enable_fusion


# ------------------------------------------------- hypothesis property

_UNARY_OPS = ("sigmoid", "relu", "tanh", "abs", "sign", "round")
_BINARY_OPS = ("*", "+", "-", "min", "max", ">")


def _apply_op(handle, op, scalar):
    if op in _UNARY_OPS:
        return getattr(handle, op)()
    if op == "*":
        return handle * scalar
    if op == "+":
        return handle + scalar
    if op == "-":
        return handle - scalar
    if op == "min":
        return handle.minimum(scalar)
    if op == "max":
        return handle.maximum(scalar)
    return handle > scalar


_chain_strategy = st.lists(
    st.tuples(
        st.sampled_from(_UNARY_OPS + _BINARY_OPS),
        st.floats(min_value=-1.5, max_value=1.5,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=2, max_size=6,
)


class TestFusionProperty:
    @given(ops=_chain_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_random_chain_fused_equals_unfused(self, ops, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((12, 12)) - 0.5
        outs, sessions = {}, {}
        for fuse in (False, True):
            session = _session(fusion=fuse)
            handle = session.read(data.copy(), "X")
            for op, scalar in ops:
                handle = _apply_op(handle, op, scalar)
            outs[fuse] = handle.compute()
            sessions[fuse] = session
        assert outs[True].tobytes() == outs[False].tobytes()
        assert outs[True].dtype == outs[False].dtype == np.float64
        fused = sessions[True].stats
        # the whole chain collapses into one fused instruction ...
        assert fused.get(FUSION_CHAINS) == 1
        assert fused.get(INSTRUCTIONS_EXECUTED) == 1
        assert (sessions[False].stats.get(INSTRUCTIONS_EXECUTED)
                == len(ops))
        # ... and no interior is ever also cached
        assert fused.get(CACHE_PUTS) == 0
        assert fused.get(LINEAGE_PROBES) == 0


# ----------------------------------------------------------- FUS rules


def _leaf(rows=8, cols=8):
    hop = Hop("data", "data", [], shape=(rows, cols))
    hop.bundle = (LineageItem("data", (f"leaf{hop.id}",)), {"CP": object()})
    return hop


def _planned_fused(config=None):
    """A well-formed FusedHop straight from the planner."""
    x = _leaf()
    a = op_hop("*", [x, literal_hop(2.0)])
    b = op_hop("sigmoid", [a])
    c = op_hop("relu", [b])
    consumers = {x.id: [a], a.id: [b], b.id: [c]}
    fused = plan_fusion([c], [c, b, a, x], consumers,
                        config or MemphisConfig.base())
    assert len(fused) == 1
    return fused[0], x


class TestFusRules:
    def _rules(self, roots, config=None):
        report = analyze(roots, config=config or MemphisConfig.base(),
                         passes=("fusion-legality",))
        return [d.rule for d in report]

    def test_clean_fused_plan_has_no_findings(self):
        fused, _x = _planned_fused()
        assert self._rules([fused]) == []

    def test_fus001_plain_hop_with_fused_opcode(self):
        bogus = Hop("op", FUSED_OPCODE, [_leaf()],
                    attrs={"steps": "relu", "rows": 8, "cols": 8},
                    shape=(8, 8))
        assert "FUS001" in self._rules([bogus])

    def test_fus002_offcp_placement(self):
        fused, _x = _planned_fused()
        fused.placement = "GPU"
        assert "FUS002" in self._rules([fused])

    def test_fus003_checkpoint_boundary(self):
        fused, _x = _planned_fused()
        fused.chain[0].checkpoint = True
        assert "FUS003" in self._rules([fused])

    def test_fus004_retention_candidate_absorbed(self):
        fused, _x = _planned_fused()
        rules = self._rules([fused], config=MemphisConfig.memphis())
        assert "FUS004" in rules

    def test_fus005_interior_still_reachable(self):
        fused, _x = _planned_fused()
        # re-expose an absorbed interior through a second root
        leak = op_hop("exp", [fused.chain[0]])
        assert "FUS005" in self._rules([fused, leak])

    def test_fusion_spec_helper(self):
        fused, _x = _planned_fused()
        spec = fusion_spec(fused)
        assert spec is not None and "sigmoid" in spec
        assert fusion_spec(_x) is None


# --------------------------------------- experiment differential suite

#: experiments that take > 10s per pass; run with
#: ``MEMPHIS_FULL_DIFFERENTIAL=1`` (the differential runs each twice).
SLOW_EXPERIMENTS = frozenset(
    {"fig11b", "hcv", "pnmf", "hband", "clean", "hdrop"})

_FULL = os.environ.get("MEMPHIS_FULL_DIFFERENTIAL") == "1"


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_differential(name):
    """Every experiment produces identical results fused vs unfused."""
    if name in SLOW_EXPERIMENTS and not _FULL:
        pytest.skip("slow experiment: set MEMPHIS_FULL_DIFFERENTIAL=1")
    reset_global_ids()
    base = EXPERIMENTS[name]()
    reset_global_ids()
    install_fusion_override(True)
    try:
        fused = EXPERIMENTS[name]()
    finally:
        clear_fusion_override()
    base_runs = _workload_results(base.grid)
    fused_runs = _workload_results(fused.grid)
    assert len(base_runs) == len(fused_runs)
    if not base_runs:
        # raw-dict grid (fig2c/fig2d-style micro breakdowns): no CPU
        # cell-wise chains, so the runs must be byte-identical
        assert repr(base.grid) == repr(fused.grid)
        assert base.table == fused.table
        return
    for b, f in zip(base_runs, fused_runs):
        where = (name, b.workload, b.system, b.params)
        assert (b.workload, b.system, b.params) == \
               (f.workload, f.system, f.params)
        assert b.failed is None and f.failed is None, where
        # results are byte-identical (repr compares NaN-safely)
        assert repr(b.metric) == repr(f.metric), where
        # lineage reuse is untouched: fusion never fires where the
        # cache probes or puts, so hit rates are identical
        for key in (LINEAGE_PROBES, CACHE_HITS, CACHE_PUTS):
            assert b.counter(key) == f.counter(key), (*where, key)
        # instruction count never rises under fusion
        assert (f.counter(INSTRUCTIONS_EXECUTED)
                <= b.counter(INSTRUCTIONS_EXECUTED)), where
        if f.counter(FUSION_CHAINS) == 0:
            # fusion never fired: the runs must be fully identical
            assert b.counters == f.counters, where
        else:
            assert (f.counter(INSTRUCTIONS_EXECUTED)
                    < b.counter(INSTRUCTIONS_EXECUTED)), where
