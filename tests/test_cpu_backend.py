"""Tests for CPU kernels and the buffer pool."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.backends.cpu import BufferPool, CpuBackend, kernels
from repro.common.config import CpuConfig
from repro.common.errors import BackendError, BufferPoolError
from repro.common.simclock import SimClock
from repro.common.stats import BUFFERPOOL_EVICTIONS, Stats
from repro.runtime.values import MatrixValue, ScalarValue


def run(opcode, inputs, attrs=None):
    return kernels.execute(opcode, inputs, attrs or {})


def mat(arr):
    return MatrixValue(np.asarray(arr, dtype=float))


class TestKernels:
    def test_binary_matrix_matrix(self):
        out = run("+", [mat([[1, 2]]), mat([[3, 4]])])
        assert np.allclose(out.data, [[4, 6]])

    def test_binary_matrix_scalar(self):
        out = run("*", [mat([[1, 2]]), ScalarValue(3.0)])
        assert np.allclose(out.data, [[3, 6]])

    def test_binary_scalar_scalar(self):
        out = run("+", [ScalarValue(1.0), ScalarValue(2.0)])
        assert isinstance(out, ScalarValue)
        assert out.value == 3.0

    def test_comparison_yields_indicator(self):
        out = run(">", [mat([[1, 5]]), ScalarValue(2.0)])
        assert np.allclose(out.data, [[0, 1]])

    def test_matmul(self):
        a, b = np.arange(6).reshape(2, 3), np.arange(12).reshape(3, 4)
        out = run("ba+*", [mat(a), mat(b)])
        assert np.allclose(out.data, a @ b)

    def test_transpose(self):
        out = run("r'", [mat([[1, 2], [3, 4]])])
        assert np.allclose(out.data, [[1, 3], [2, 4]])

    def test_solve(self):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        b = np.array([[2.0], [8.0]])
        out = run("solve", [mat(a), mat(b)])
        assert np.allclose(out.data, [[1.0], [2.0]])

    def test_solve_singular_falls_back_to_lstsq(self):
        a = np.ones((2, 2))
        b = np.array([[2.0], [2.0]])
        out = run("solve", [mat(a), mat(b)])
        assert np.allclose(a @ out.data, b)

    def test_aggregates(self):
        m = mat([[1, 2], [3, 4]])
        assert run("uak+", [m]).value == 10.0
        assert np.allclose(run("uark+", [m]).data, [[3], [7]])
        assert np.allclose(run("uack+", [m]).data, [[4, 6]])
        assert run("uamean", [m]).value == 2.5
        assert run("uamax", [m]).value == 4.0
        assert run("uamin", [m]).value == 1.0

    def test_row_argmax_one_indexed(self):
        out = run("uarimax", [mat([[1, 9, 2], [8, 1, 1]])])
        assert np.allclose(out.data, [[2], [1]])

    def test_rand_deterministic_by_seed(self):
        attrs = {"rows": 4, "cols": 3, "seed": 7}
        a = run("rand", [], attrs)
        b = run("rand", [], attrs)
        assert np.allclose(a.data, b.data)
        c = run("rand", [], {**attrs, "seed": 8})
        assert not np.allclose(a.data, c.data)

    def test_rand_range_and_sparsity(self):
        out = run("rand", [], {"rows": 100, "cols": 10, "min": 2, "max": 3,
                               "seed": 1, "sparsity": 0.5})
        nonzero = out.data[out.data != 0]
        assert ((nonzero >= 2) & (nonzero <= 3)).all()
        assert 0.3 < (out.data != 0).mean() < 0.7

    def test_seq(self):
        out = run("seq", [], {"from": 1, "to": 5, "incr": 2})
        assert np.allclose(out.data, [[1], [3], [5]])

    def test_right_index_one_based(self):
        m = mat(np.arange(20).reshape(4, 5))
        out = run("rightIndex", [m], {"rl": 2, "ru": 3, "cl": 1, "cu": 2})
        assert np.allclose(out.data, [[5, 6], [10, 11]])

    def test_left_index(self):
        m = mat(np.zeros((3, 3)))
        out = run("leftIndex", [m, mat([[1, 2]])], {"rl": 2, "cl": 2})
        assert out.data[1, 1] == 1 and out.data[1, 2] == 2

    def test_cbind_rbind(self):
        a, b = mat([[1], [2]]), mat([[3], [4]])
        assert run("cbind", [a, b]).shape == (2, 2)
        assert run("rbind", [a, b]).shape == (4, 1)

    def test_table_one_hot(self):
        rows = mat([[1], [2], [3]])
        codes = mat([[2], [1], [2]])
        out = run("table", [rows, codes], {"rows": 3, "cols": 2})
        assert np.allclose(out.data, [[0, 1], [1, 0], [0, 1]])

    def test_replace_nan(self):
        m = mat([[1, np.nan], [np.nan, 4]])
        out = run("replace", [m], {"pattern": float("nan"), "replacement": 0})
        assert np.allclose(out.data, [[1, 0], [0, 4]])

    def test_softmax_rows_sum_to_one(self):
        out = run("softmax", [mat(np.random.default_rng(0).random((5, 4)))])
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_dropout_deterministic_and_scaled(self):
        m = mat(np.ones((100, 100)))
        a = run("dropout", [m], {"rate": 0.5, "seed": 3})
        b = run("dropout", [m], {"rate": 0.5, "seed": 3})
        assert np.allclose(a.data, b.data)
        # inverted dropout preserves expectation
        assert abs(a.data.mean() - 1.0) < 0.05

    def test_conv2d_matches_direct(self):
        rng = np.random.default_rng(0)
        n, c, h, w, k, r, s = 2, 3, 8, 8, 4, 3, 3
        x = rng.random((n, c, h, w))
        f = rng.random((k, c, r, s))
        out = run("conv2d", [mat(x.reshape(n, -1)), mat(f.reshape(k, -1))],
                  {"N": n, "C": c, "H": h, "W": w, "K": k, "R": r, "S": s})
        # direct convolution reference
        hout = wout = h - r + 1
        ref = np.zeros((n, k, hout, wout))
        for i in range(hout):
            for j in range(wout):
                patch = x[:, :, i:i + r, j:j + s].reshape(n, -1)
                ref[:, :, i, j] = patch @ f.reshape(k, -1).T
        assert np.allclose(out.data, ref.reshape(n, -1))

    def test_maxpool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = run("maxpool", [mat(x.reshape(1, -1))],
                  {"N": 1, "C": 1, "H": 4, "W": 4, "R": 2, "S": 2, "stride": 2})
        assert np.allclose(out.data, [[5, 7, 13, 15]])

    def test_unknown_opcode_raises(self):
        with pytest.raises(BackendError):
            run("frobnicate", [mat([[1]])])


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2,
                                               min_side=1, max_side=8),
                  elements=st.floats(-100, 100)))
def test_property_transpose_involution(arr):
    once = run("r'", [mat(arr)])
    twice = run("r'", [once])
    assert np.allclose(twice.data, arr)


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, (4, 4), elements=st.floats(-10, 10)))
def test_property_relu_idempotent(arr):
    once = run("relu", [mat(arr)])
    twice = run("relu", [once])
    assert np.allclose(once.data, twice.data)
    assert (once.data >= 0).all()


class TestCpuBackend:
    def test_charges_time(self):
        clock, stats = SimClock(), Stats()
        backend = CpuBackend(CpuConfig(), clock, stats)
        backend.execute("+", [mat([[1]]), mat([[2]])], {})
        assert clock.now() > 0
        assert stats.get("runtime/instructions_executed") == 1

    def test_bigger_ops_cost_more(self):
        clock, stats = SimClock(), Stats()
        backend = CpuBackend(CpuConfig(), clock, stats)
        a = mat(np.ones((500, 500)))
        backend.execute("ba+*", [a, a], {})
        t1 = clock.now()
        big = mat(np.ones((1000, 1000)))
        backend.execute("ba+*", [big, big], {})
        assert clock.now() - t1 > t1


class TestBufferPool:
    def _pool(self, capacity=1000):
        cfg = CpuConfig(buffer_pool_bytes=capacity)
        return BufferPool(cfg, SimClock(), Stats()), cfg

    def test_put_get(self):
        pool, _ = self._pool()
        value = mat(np.ones((5, 5)))  # 200 bytes
        pool.put(1, value)
        assert pool.get(1) is value

    def test_eviction_to_disk_and_restore(self):
        pool, _ = self._pool(capacity=600)
        a, b, c = (mat(np.ones((5, 5))) for _ in range(3))
        pool.put(1, a)
        pool.put(2, b)
        pool.put(3, c)  # evicts block 1 (LRU)
        assert pool.in_memory_bytes <= 600
        restored = pool.get(1)  # restore from disk, evicting another
        assert restored is a

    def test_pinned_blocks_survive(self):
        pool, _ = self._pool(capacity=600)
        pool.put(1, mat(np.ones((5, 5))))
        pool.pin(1)
        pool.put(2, mat(np.ones((5, 5))))
        pool.put(3, mat(np.ones((5, 5))))  # must evict 2, not pinned 1
        stats_pool = pool._blocks
        assert not stats_pool[1].on_disk

    def test_oversized_block_rejected(self):
        pool, _ = self._pool(capacity=100)
        with pytest.raises(BufferPoolError):
            pool.put(1, mat(np.ones((10, 10))))

    def test_all_pinned_exhaustion(self):
        pool, _ = self._pool(capacity=400)
        pool.put(1, mat(np.ones((5, 5))))
        pool.pin(1)
        pool.put(2, mat(np.ones((5, 5))))
        pool.pin(2)
        with pytest.raises(BufferPoolError):
            pool.put(3, mat(np.ones((5, 5))))

    def test_unknown_block(self):
        pool, _ = self._pool()
        with pytest.raises(BufferPoolError):
            pool.get(99)

    def test_remove_frees_memory(self):
        pool, _ = self._pool()
        pool.put(1, mat(np.ones((5, 5))))
        used = pool.in_memory_bytes
        pool.remove(1)
        assert pool.in_memory_bytes == used - 200
