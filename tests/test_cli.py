"""Tests for the harness CLI (`python -m repro.harness`)."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2c", "hcv", "tlvis", "table2"):
            assert name in out

    def test_every_benchmark_has_a_cli_entry(self):
        # one CLI entry per experiment of the DESIGN.md index
        expected = {
            "fig2c", "fig2d", "fig11a", "fig11b", "fig12a", "fig12b",
            "hcv", "pnmf", "hband", "clean", "hdrop", "en2de", "tlvis",
            "table2", "ablation-policies", "ablation-ordering",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Spark" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
