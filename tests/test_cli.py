"""Tests for the harness CLI (`python -m repro.harness`)."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2c", "hcv", "tlvis", "table2"):
            assert name in out

    def test_every_benchmark_has_a_cli_entry(self):
        # one CLI entry per experiment of the DESIGN.md index
        expected = {
            "fig2c", "fig2d", "fig11a", "fig11b", "fig12a", "fig12b",
            "hcv", "pnmf", "hband", "clean", "hdrop", "en2de", "tlvis",
            "table2", "ablation-policies", "ablation-ordering",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Spark" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestObservabilityFlags:
    def test_trace_summary_without_trace(self, capsys):
        # regression: --trace-summary used to be silently ignored
        # unless --trace was also given
        assert main(["fig2c", "--trace-summary"]) == 0
        out = capsys.readouterr().out
        assert "=== trace summary ===" in out
        assert "[trace:" not in out  # no file export without --trace

    def test_trace_summary_with_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.json")
        assert main(["fig2c", "--trace", trace, "--trace-summary"]) == 0
        out = capsys.readouterr().out
        assert "=== trace summary ===" in out
        assert "[trace:" in out

    def test_metrics_flag_writes_jsonl(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "metrics.jsonl")
        assert main(["fig2c", "--metrics", path]) == 0
        out = capsys.readouterr().out
        assert "[metrics:" in out
        assert "=== metrics" in out  # sparkline summary printed
        subsystems = set()
        with open(path) as fh:
            for line in fh:
                row = json.loads(line)
                if row["kind"] == "gauge" and row["t"]:
                    subsystems.add(row["series"].split("/", 1)[0])
        assert {"memory", "cache", "spark", "gpu"} <= subsystems

    def test_metrics_series_become_counter_tracks(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.jsonl")
        assert main(["fig2c", "--trace", trace, "--metrics", metrics]) == 0
        import json

        with open(trace) as fh:
            doc = json.load(fh)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(doc) == []

    def test_explain_flag_prints_plans(self, capsys):
        assert main(["fig2c", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "=== explain" in out
        assert "-- HOP DAG (post-rewrite) --" in out
        assert "-- instruction stream (linearized) --" in out
