"""Chaos, differential, and property-based fault-recovery tests.

The headline guarantee of ``repro.faults``: every injected-fault run
converges to outputs **numerically identical** to the fault-free run —
faults only ever alter simulated time, allocation churn, and counters —
with the recovery visible in the ``faults/*`` stats and the trace.

Marked ``tier2_chaos`` (select with ``-m tier2_chaos``); kept fast
enough to ride along in the default suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.config import CacheConfig
from repro.common.errors import FaultInjectionError, GpuOutOfMemoryError
from repro.common.simclock import SimClock
from repro.common.stats import (
    FAULT_CACHE_ENTRIES_LOST,
    FAULT_EXECUTORS_LOST,
    FAULT_FED_RETRIES,
    FAULT_GPU_ALLOC_RETRIES,
    FAULT_LINEAGE_RECOMPUTES,
    FAULT_PARTITIONS_DROPPED,
    FAULT_QUORUM_DEGRADED,
    FAULT_RESTORE_IO_ERRORS,
    FAULT_SHUFFLE_INVALIDATED,
    FAULT_SPARK_TASK_RETRIES,
    FAULT_SPILL_IO_ERRORS,
    FAULTS_INJECTED,
    FAULTS_RECOVERED,
    Stats,
)
from repro.core.cache import BACKEND_DISK, LineageCache
from repro.core.entry import BACKEND_CP
from repro.faults import FaultInjector, FaultPlan, FaultSpec, reset_global_ids
from repro.lineage.item import LineageItem

pytestmark = pytest.mark.tier2_chaos

RNG_DATA = (np.arange(2000.0 * 8).reshape(2000, 8) % 23.0) / 23.0
RNG_TARGET = (np.arange(2000.0).reshape(2000, 1) % 7.0) / 7.0


def cp_config() -> MemphisConfig:
    return MemphisConfig.memphis()


def sp_config() -> MemphisConfig:
    """Ops on the 2000x8 inputs exceed operation memory -> Spark."""
    cfg = MemphisConfig.memphis()
    cfg.cpu.operation_memory_bytes = 64 * 1024
    return cfg


def gpu_config() -> MemphisConfig:
    cfg = MemphisConfig.memphis()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    return cfg


def run_workload(cfg: MemphisConfig, plan: FaultPlan | None = None,
                 iters: int = 3):
    """Iterative linear-regression workload; returns (session, ndarray)."""
    cfg.faults = plan
    sess = Session(cfg)
    X = sess.read(RNG_DATA, "X")
    y = sess.read(RNG_TARGET, "y")
    w = sess.read(np.zeros((8, 1)), "w0")
    for _ in range(iters):
        grad = X.t() @ (X @ w) - X.t() @ y
        w = w - 0.01 * grad
    return sess, w.compute()


def baseline(cfg_factory) -> np.ndarray:
    reset_global_ids()
    _, out = run_workload(cfg_factory())
    reset_global_ids()
    return out


class TestSparkRecovery:
    def test_task_retry_converges_to_fault_free(self):
        expected = baseline(sp_config)
        sess, out = run_workload(
            sp_config(), FaultPlan.parse("spark_task@0,count=2")
        )
        assert np.array_equal(out, expected)
        assert sess.stats.get(FAULT_SPARK_TASK_RETRIES) == 2
        assert sess.stats.get(FAULTS_INJECTED) == 2
        assert sess.stats.get(FAULTS_RECOVERED) >= 1

    def test_retries_respect_budget(self):
        plan = FaultPlan.parse("spark_task@0,count=3")
        sess, out = run_workload(sp_config(), plan)
        assert sess.stats.get(FAULT_SPARK_TASK_RETRIES) \
            <= plan.max_task_retries
        with pytest.raises(FaultInjectionError):
            run_workload(sp_config(), FaultPlan.parse("spark_task@0,count=9"))

    def test_retry_charges_extra_task_time(self):
        def serial_config():
            cfg = sp_config()  # 1 core total: task attempts serialize
            cfg.spark.num_executors = 1
            cfg.spark.cores_per_executor = 1
            return cfg

        reset_global_ids()
        sess, _ = run_workload(serial_config())
        fault_free_elapsed = sess.elapsed()
        reset_global_ids()
        sess, _ = run_workload(serial_config(),
                               FaultPlan.parse("spark_task@0,count=2"))
        assert sess.elapsed() > fault_free_elapsed

    def test_executor_loss_recovers(self):
        expected = baseline(sp_config)
        sess, out = run_workload(
            sp_config(), FaultPlan.parse("executor_loss@1,count=2;seed=5")
        )
        assert np.array_equal(out, expected)
        assert sess.stats.get(FAULT_EXECUTORS_LOST) == 2
        invalidated = sess.stats.get(FAULT_SHUFFLE_INVALIDATED)
        dropped = sess.stats.get(FAULT_PARTITIONS_DROPPED)
        assert invalidated + dropped >= 0  # counters exist and are exact
        # shuffle-store accounting stays exact after invalidation
        ctx = sess.spark_context
        assert ctx.shuffle_store_bytes >= 0


class TestGpuRecovery:
    def test_alloc_retry_converges(self):
        expected = baseline(gpu_config)
        sess, out = run_workload(
            gpu_config(), FaultPlan.parse("gpu_alloc@0,count=2")
        )
        assert np.array_equal(out, expected)
        assert sess.stats.get(FAULT_GPU_ALLOC_RETRIES) == 2
        assert sess.stats.get(FAULTS_RECOVERED) >= 1

    def test_no_leaked_allocations_after_chaos(self):
        sess, _ = run_workload(
            gpu_config(), FaultPlan.parse("gpu_alloc@1,count=3;gpu_alloc@4")
        )
        report = sess.gpu.memory.device.allocation_report()
        assert report["consistent"]
        assert report["used_bytes"] + report["hole_bytes"] \
            == sess.gpu.memory.device.capacity

    def test_alloc_budget_exceeded_raises(self):
        cfg = gpu_config()
        cfg.faults = FaultPlan.parse("gpu_alloc@0,count=9")
        sess = Session(cfg)
        with pytest.raises(GpuOutOfMemoryError):
            sess.gpu.memory.allocate(4096, (16, 32))
        assert sess.stats.get(FAULT_GPU_ALLOC_RETRIES) \
            == cfg.faults.max_alloc_retries + 1

    def test_retry_costs_device_time(self):
        reset_global_ids()
        sess_a, _ = run_workload(gpu_config())
        reset_global_ids()
        sess_b, _ = run_workload(gpu_config(),
                                 FaultPlan.parse("gpu_alloc@0,count=2"))
        assert sess_b.elapsed() > sess_a.elapsed()


class TestCacheLossRecovery:
    def test_cache_lost_recomputes_identically(self):
        expected = baseline(cp_config)
        sess, out = run_workload(
            cp_config(), FaultPlan.parse("cache_lost@4,count=2;seed=13")
        )
        assert np.array_equal(out, expected)
        assert sess.stats.get(FAULT_CACHE_ENTRIES_LOST) == 2

    def test_stripped_handle_recovers_through_lineage(self):
        cfg = cp_config()
        cfg.faults = FaultPlan()  # recovery machinery armed, no faults
        sess = Session(cfg)
        X = sess.read(RNG_DATA[:64], "X")
        A = X.t() @ X
        expected = A.compute().copy()
        # lose every copy: cache entries and the handle's own payloads
        for entry in sess.cache.entries():
            sess.cache.invalidate_entry(entry, spark_mgr=sess.spark_mgr)
        A.payloads.pop(BACKEND_CP, None)
        recovered = A.compute()
        assert np.array_equal(recovered, expected)
        assert sess.stats.get(FAULT_LINEAGE_RECOMPUTES) >= 1
        assert sess.stats.get(FAULTS_RECOVERED) >= 1

    def test_buffer_accounting_exact_after_chaos(self):
        sess, _ = run_workload(
            cp_config(), FaultPlan.parse("cache_lost@2;cache_lost@6;seed=2")
        )
        assert sess.cache.cp_bytes >= 0
        assert sess.cache.cp_bytes == sum(
            e.cp_accounted for e in sess.cache.entries()
        )
        cached_disk = sum(
            e.size for e in sess.cache.entries()
            if BACKEND_DISK in e.payloads
        )
        assert sess.cache.disk_bytes == cached_disk


class TestSpillRestoreFaults:
    def _spilling_cache(self, plan: FaultPlan):
        stats = Stats()
        clock = SimClock()
        faults = FaultInjector(plan, clock, stats)
        cache = LineageCache(
            CacheConfig(driver_cache_bytes=1000, spill_to_disk=True,
                        disk_cache_bytes=10_000),
            stats, clock=clock, faults=faults,
        )
        return cache, stats

    def _fill(self, cache: LineageCache):
        # expensive-to-recompute entries, so eviction prefers spilling
        for i in range(3):
            cache.put(LineageItem("op", (f"k{i}",)), object(),
                      BACKEND_CP, 400, compute_cost=10**12)

    def test_spill_io_fault_drops_instead_of_spilling(self):
        cache, stats = self._spilling_cache(
            FaultPlan.parse("spill_io@0")
        )
        self._fill(cache)  # third put forces one eviction -> faulted spill
        assert stats.get(FAULT_SPILL_IO_ERRORS) == 1
        assert cache.disk_bytes == 0
        # a clean run of the same sequence spills instead
        cache2, stats2 = self._spilling_cache(FaultPlan())
        self._fill(cache2)
        assert stats2.get("cache/disk_spills") == 1
        assert cache2.disk_bytes == 400

    def test_restore_io_fault_loses_disk_copy(self):
        cache, stats = self._spilling_cache(
            FaultPlan.parse("restore_io@0")
        )
        self._fill(cache)
        spilled = next(k for k, in
                       [(e.key,) for e in cache.entries()
                        if BACKEND_DISK in e.payloads])
        assert cache.probe(spilled) is None  # restore fails
        assert stats.get(FAULT_RESTORE_IO_ERRORS) == 1
        entry = cache.get_entry(spilled)
        assert BACKEND_DISK not in entry.payloads
        # disk accounting stays exact (make-space may spill another entry)
        assert cache.disk_bytes == sum(
            e.size for e in cache.entries() if BACKEND_DISK in e.payloads
        )


class TestFederatedRecovery:
    def _fleet(self, plan: FaultPlan | None = None, n: int = 3):
        from repro.backends.federated.coordinator import FederatedCoordinator
        from repro.backends.federated.worker import (
            FederatedConfig,
            FederatedWorker,
        )

        cfg = FederatedConfig(num_workers=n)
        workers = [FederatedWorker(i, cfg) for i in range(n)]
        coord = FederatedCoordinator(workers, cfg, faults=plan)
        matrix = (np.arange(60.0 * 4).reshape(60, 4) % 11.0) / 11.0
        fm = coord.federate("X", matrix)
        return coord, fm, matrix

    def test_timeout_retry_converges(self):
        coord0, fm0, matrix = self._fleet()
        expected = coord0.tsmm(fm0)
        coord, fm, _ = self._fleet(
            FaultPlan.parse("fed_timeout@0,worker=1,count=2")
        )
        out = coord.tsmm(fm)
        assert np.array_equal(out, expected)
        assert coord.stats.get(FAULT_FED_RETRIES) == 2
        assert coord.stats.get(FAULTS_RECOVERED) >= 1
        assert coord.clock.now("host") > coord0.clock.now("host")

    def test_quorum_degraded_round_still_exact(self):
        coord0, fm0, _ = self._fleet()
        expected = coord0.column_sums(fm0)
        coord, fm, _ = self._fleet(
            FaultPlan.parse("fed_timeout@0,worker=2,count=9;quorum=0.5")
        )
        out = coord.column_sums(fm)
        assert np.array_equal(out, expected)
        assert coord.stats.get(FAULT_QUORUM_DEGRADED) == 1

    def test_strict_quorum_raises_after_budget(self):
        coord, fm, _ = self._fleet(
            FaultPlan.parse("fed_timeout@0,worker=0,count=9")
        )
        with pytest.raises(FaultInjectionError):
            coord.tsmm(fm)

    def test_slow_worker_changes_time_not_numerics(self):
        coord0, fm0, matrix = self._fleet()
        vec = np.arange(4.0).reshape(4, 1)
        expected = coord0.matvec(fm0, vec)
        coord, fm, _ = self._fleet(
            FaultPlan.parse("fed_slow@0,worker=1,factor=16")
        )
        out = coord.matvec(fm, vec)
        assert np.array_equal(out, expected)
        assert coord.stats.get(FAULTS_INJECTED) == 1
        assert coord.clock.now("host") > coord0.clock.now("host")

    def test_worker_restart_loses_cache_keeps_shards(self):
        coord, fm, _ = self._fleet()
        coord.tsmm(fm)
        worker = coord.workers[0]
        assert len(worker.cache) > 0
        worker.restart()
        assert len(worker.cache) == 0
        assert worker.busy_until == 0.0
        # shards survive: the same request is still answerable
        assert np.array_equal(coord.tsmm(fm), coord.tsmm(fm))


class TestDifferential:
    """Bit-equal outputs across reuse modes and placements, under faults."""

    PLAN = "cache_lost@3;spark_task@0;seed=21"

    def test_reuse_on_off_bit_equal_under_faults(self):
        from repro.common.config import ReuseMode

        reset_global_ids()
        cfg_full = sp_config()
        _, out_full = run_workload(cfg_full, FaultPlan.parse(self.PLAN))
        reset_global_ids()
        cfg_none = sp_config()
        cfg_none.reuse_mode = ReuseMode.NONE
        _, out_none = run_workload(cfg_none, FaultPlan.parse(self.PLAN))
        assert np.array_equal(out_full, out_none)

    def test_placements_unperturbed_by_faults(self):
        """Per placement, faulted == fault-free bit-for-bit.

        Across placements only ``allclose`` holds — blocked/distributed
        execution reorders floating-point sums even without faults — so
        the differential contract is: faults never add *any* numeric
        perturbation on top of the placement's own execution order.
        """
        outs = []
        for factory in (cp_config, sp_config, gpu_config):
            expected = baseline(factory)
            reset_global_ids()
            _, out = run_workload(factory(), FaultPlan.parse(self.PLAN))
            assert np.array_equal(out, expected)
            outs.append(out)
        assert np.allclose(outs[0], outs[1])
        assert np.allclose(outs[0], outs[2])


class TestChaosSweepProperties:
    """Randomized plans (pure functions of the seed) all converge."""

    def test_random_plans_converge_and_account_exactly(self):
        expected = baseline(sp_config)
        for seed in range(5):
            plan = FaultPlan.randomize(seed)
            reset_global_ids()
            sess, out = run_workload(sp_config(), plan)
            assert np.array_equal(out, expected), f"diverged at seed {seed}"
            # retry budgets respected
            assert sess.stats.get(FAULT_SPARK_TASK_RETRIES) \
                <= plan.max_task_retries * max(
                    1, sum(s.count for s in plan.specs))
            # buffer accounting exact: the budget holds exactly the sum
            # of per-entry charges, and never drifts negative
            assert sess.cache.cp_bytes >= 0
            assert sess.cache.cp_bytes == sum(
                e.cp_accounted for e in sess.cache.entries())

    def test_hypothesis_plan_round_trip_and_convergence(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        expected = baseline(cp_config)

        @settings(max_examples=10, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=10_000))
        def check(seed):
            plan = FaultPlan.randomize(
                seed, kinds=("cache_lost", "spill_io", "restore_io"))
            assert FaultPlan.loads(plan.dumps()) == plan
            reset_global_ids()
            _, out = run_workload(cp_config(), plan)
            assert np.array_equal(out, expected)

        check()
