"""Stateful property-based tests of the memory managers' invariants."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.backends.gpu import (
    GpuDevice,
    GpuMemoryManager,
    GpuStream,
    MODE_MEMPHIS,
)
from repro.backends.cpu.bufferpool import BufferPool
from repro.backends.spark import BlockManager
from repro.common.config import (
    CpuConfig,
    EvictionPolicyName,
    GpuConfig,
    SparkConfig,
    StorageLevel,
)
from repro.common.errors import BufferPoolError, GpuOutOfMemoryError
from repro.common.simclock import SimClock
from repro.common.stats import Stats
from repro.memory import MemoryArbiter
from repro.runtime.values import MatrixValue


class GpuAllocatorMachine(RuleBasedStateMachine):
    """Random allocate/release/reuse/evict sequences preserve invariants:

    * device accounting is exact (used + holes == capacity);
    * live and free pointer sets are disjoint;
    * freed pointers never appear in either list;
    * pooled byte accounting matches the free lists.
    """

    def __init__(self):
        super().__init__()
        cfg = GpuConfig(device_memory=256 * 1024, alignment=512)
        clock, stats = SimClock(), Stats()
        device = GpuDevice(cfg)
        stream = GpuStream(cfg, clock, stats)
        self.mgr = GpuMemoryManager(device, stream, clock, stats,
                                    MODE_MEMPHIS)
        self.live = []

    @rule(size=st.integers(min_value=1, max_value=32 * 1024))
    def allocate(self, size):
        try:
            ptr = self.mgr.allocate(size)
            self.live.append(ptr)
        except GpuOutOfMemoryError:
            pass  # legal under pressure from live pointers

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        ptr = self.live.pop(idx)
        self.mgr.release(ptr)

    @precondition(lambda self: any(
        q for q in self.mgr.free_lists.values()))
    @rule(data=st.data())
    def reuse_from_free(self, data):
        pools = [p for q in self.mgr.free_lists.values() for p in q]
        ptr = pools[data.draw(st.integers(0, len(pools) - 1))]
        revived = self.mgr.reuse_from_free(ptr)
        self.live.append(revived)

    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def empty_cache(self, fraction):
        self.mgr.empty_cache(fraction)

    @invariant()
    def device_accounting_exact(self):
        device = self.mgr.device
        holes = sum(size for _, size in device._free)
        assert device.used_bytes + holes == device.capacity

    @invariant()
    def live_and_free_disjoint(self):
        live_ids = {p.id for p in self.mgr.live.values()}
        free_ids = {p.id for q in self.mgr.free_lists.values() for p in q}
        assert not (live_ids & free_ids)

    @invariant()
    def no_freed_pointers_tracked(self):
        for p in self.mgr.live.values():
            assert not p.freed
        for q in self.mgr.free_lists.values():
            for p in q:
                assert not p.freed

    @invariant()
    def pooled_bytes_match(self):
        actual = sum(p.size for q in self.mgr.free_lists.values() for p in q)
        assert self.mgr.free_bytes_pooled == actual

    @invariant()
    def free_queues_keyed_by_size(self):
        for size, queue in self.mgr.free_lists.items():
            assert all(p.size == size for p in queue)


TestGpuAllocatorStateful = GpuAllocatorMachine.TestCase
TestGpuAllocatorStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class BlockManagerMachine(RuleBasedStateMachine):
    """Random partition caching never overflows the storage region and
    keeps the byte accounting exact."""

    def __init__(self):
        super().__init__()
        cfg = SparkConfig(num_executors=1, executor_memory=120_000)
        self.bm = BlockManager(cfg, Stats())
        self.next_rdd = 1

    @rule(
        partitions=st.integers(min_value=1, max_value=4),
        rows=st.integers(min_value=1, max_value=200),
        level=st.sampled_from([StorageLevel.MEMORY_ONLY,
                               StorageLevel.MEMORY_AND_DISK]),
    )
    def cache_rdd(self, partitions, rows, level):
        rdd_id = self.next_rdd
        self.next_rdd += 1
        for idx in range(partitions):
            self.bm.put_partition(rdd_id, idx, np.ones((rows, 4)), level)

    @rule(rdd_id=st.integers(min_value=1, max_value=30))
    def drop(self, rdd_id):
        self.bm.drop_rdd(rdd_id)

    @invariant()
    def never_over_capacity(self):
        assert self.bm.memory_used <= self.bm.capacity

    @invariant()
    def accounting_matches_partitions(self):
        actual = sum(
            p.nbytes for p in self.bm._partitions.values() if not p.on_disk
        )
        assert self.bm.memory_used == actual


TestBlockManagerStateful = BlockManagerMachine.TestCase
TestBlockManagerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class _Chunk:
    """Model of one committed allocation in the ledger machine."""

    __slots__ = ("size", "last_access", "pinned")

    def __init__(self, size, last_access):
        self.size = size
        self.last_access = last_access
        self.pinned = False


class RegionLedgerMachine(RuleBasedStateMachine):
    """Random reserve/commit/cancel/acquire/release/pin/unpin sequences
    through the arbiter preserve the region ledger invariants:

    * ``used + reserved + free == capacity`` (``MemoryRegion.check``);
    * used/reserved/pinned exactly match the model's outstanding chunks;
    * policy-driven eviction never selects a pinned chunk.
    """

    CAPACITY = 10_000

    def __init__(self):
        super().__init__()
        self.arb = MemoryArbiter(Stats())
        self.region = self.arb.add_region(
            "R", self.CAPACITY, policy_name=EvictionPolicyName.LRU
        )
        self.chunks = []
        self.holds = []
        self.ticks = 0

    @rule(size=st.integers(min_value=1, max_value=3000))
    def reserve(self, size):
        ok = self.arb.reserve("R", size)
        if ok:
            self.holds.append(size)
        else:
            used = self.region.used + self.region.reserved
            assert used + size > self.CAPACITY

    @precondition(lambda self: self.holds)
    @rule(data=st.data())
    def commit(self, data):
        size = self.holds.pop(data.draw(st.integers(0, len(self.holds) - 1)))
        self.arb.commit("R", size)
        self.ticks += 1
        self.chunks.append(_Chunk(size, self.ticks))

    @precondition(lambda self: self.holds)
    @rule(data=st.data())
    def cancel(self, data):
        size = self.holds.pop(data.draw(st.integers(0, len(self.holds) - 1)))
        self.arb.cancel("R", size)

    @rule(size=st.integers(min_value=1, max_value=3000))
    def acquire(self, size):
        if not self.region.fits(size):
            return
        self.arb.acquire("R", size)
        self.ticks += 1
        self.chunks.append(_Chunk(size, self.ticks))

    @precondition(lambda self: any(not c.pinned for c in self.chunks))
    @rule(data=st.data())
    def release(self, data):
        unpinned = [c for c in self.chunks if not c.pinned]
        chunk = unpinned[data.draw(st.integers(0, len(unpinned) - 1))]
        self.chunks.remove(chunk)
        self.arb.release("R", chunk.size)

    @precondition(lambda self: any(not c.pinned for c in self.chunks))
    @rule(data=st.data())
    def pin(self, data):
        unpinned = [c for c in self.chunks if not c.pinned]
        chunk = unpinned[data.draw(st.integers(0, len(unpinned) - 1))]
        chunk.pinned = True
        self.arb.pin("R", chunk.size)

    @precondition(lambda self: any(c.pinned for c in self.chunks))
    @rule(data=st.data())
    def unpin(self, data):
        pinned = [c for c in self.chunks if c.pinned]
        chunk = pinned[data.draw(st.integers(0, len(pinned) - 1))]
        chunk.pinned = False
        self.arb.unpin("R", chunk.size)

    @rule(size=st.integers(min_value=1, max_value=3000))
    def make_space_by_eviction(self, size):
        """ensure_space with the unpinned chunks as eviction candidates."""

        def evict(victim):
            assert not victim.pinned, "policy evicted a pinned chunk"
            self.chunks.remove(victim)
            self.arb.release("R", victim.size)

        candidates = lambda: [c for c in self.chunks if not c.pinned]
        ok = self.arb.ensure_space("R", size, candidates=candidates,
                                   evict=evict, now=self.ticks)
        if not ok:
            immovable = self.region.used + self.region.reserved \
                - sum(c.size for c in self.chunks if not c.pinned)
            assert size > self.CAPACITY or immovable + size > self.CAPACITY

    @invariant()
    def ledger_invariants_hold(self):
        self.region.check()

    @invariant()
    def ledgers_match_model(self):
        assert self.region.used == sum(c.size for c in self.chunks)
        assert self.region.reserved == sum(self.holds)
        assert self.region.pinned == sum(
            c.size for c in self.chunks if c.pinned
        )

    @invariant()
    def free_tiles_capacity(self):
        assert self.region.free == max(
            self.CAPACITY - self.region.used - self.region.reserved, 0
        )


TestRegionLedgerStateful = RegionLedgerMachine.TestCase
TestRegionLedgerStateful.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)


class _TenantChunk:
    """Model of one committed, tenant-attributed allocation."""

    __slots__ = ("size", "tenant")

    def __init__(self, size, tenant):
        self.size = size
        self.tenant = tenant


class TenantLedgerMachine(RuleBasedStateMachine):
    """Random tenant-attributed acquire/release/quota sequences keep the
    per-tenant sub-ledger exact (multi-tenant server, docs/SERVER.md):

    * ``MemoryRegion.check`` holds (every tenant usage >= 0, and the sum
      of tenant usage never exceeds the region's ``used``);
    * each tenant's usage matches the model's outstanding chunks;
    * quota headroom is consistent with quota and usage.
    """

    CAPACITY = 10_000
    TENANTS = ("alpha", "beta", "gamma")

    def __init__(self):
        super().__init__()
        self.arb = MemoryArbiter(Stats())
        self.region = self.arb.add_region("R", self.CAPACITY)
        self.chunks = []

    @rule(size=st.integers(min_value=1, max_value=2000),
          tenant=st.sampled_from(TENANTS))
    def acquire_for_tenant(self, size, tenant):
        if not self.region.fits(size):
            return
        self.arb.acquire("R", size)
        self.arb.charge_tenant("R", tenant, size)
        self.chunks.append(_TenantChunk(size, tenant))

    @precondition(lambda self: self.chunks)
    @rule(data=st.data())
    def release_chunk(self, data):
        chunk = self.chunks.pop(
            data.draw(st.integers(0, len(self.chunks) - 1)))
        self.arb.release("R", chunk.size)
        self.arb.charge_tenant("R", chunk.tenant, -chunk.size)

    @rule(tenant=st.sampled_from(TENANTS),
          quota=st.one_of(st.none(),
                          st.integers(min_value=0, max_value=12_000)))
    def set_quota(self, tenant, quota):
        self.arb.set_quota("R", tenant, quota)

    @invariant()
    def ledger_invariants_hold(self):
        self.region.check()

    @invariant()
    def tenant_usage_matches_model(self):
        for tenant in self.TENANTS:
            expected = sum(
                c.size for c in self.chunks if c.tenant == tenant)
            assert self.arb.tenant_usage("R", tenant) == expected

    @invariant()
    def headroom_consistent(self):
        for tenant in self.TENANTS:
            headroom = self.arb.quota_headroom("R", tenant)
            quota = self.region.quota(tenant)
            if quota is None:
                assert headroom is None
            else:
                used = self.arb.tenant_usage("R", tenant)
                # negative headroom = over quota (quota set below usage)
                assert headroom == quota - used
                assert self.arb.over_quota("R", tenant) == (used > quota)


TestTenantLedgerStateful = TenantLedgerMachine.TestCase
TestTenantLedgerStateful.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)


class BufferPoolMachine(RuleBasedStateMachine):
    """Random put/get/pin/unpin/remove sequences on the buffer pool keep
    the ``CPU_BP`` region exact and never spill a pinned block."""

    def __init__(self):
        super().__init__()
        cfg = CpuConfig(buffer_pool_bytes=50_000)
        self.pool = BufferPool(cfg, SimClock(), Stats())
        self.next_id = 1
        self.ids = []

    @rule(rows=st.integers(min_value=1, max_value=800))
    def put(self, rows):
        block_id = self.next_id
        self.next_id += 1
        try:
            self.pool.put(block_id, MatrixValue(np.ones((rows, 4))))
        except BufferPoolError:
            return  # everything pinned: a legal rejection
        self.ids.append(block_id)

    @precondition(lambda self: self.ids)
    @rule(data=st.data())
    def get(self, data):
        block_id = self.ids[data.draw(st.integers(0, len(self.ids) - 1))]
        try:
            self.pool.get(block_id)
        except BufferPoolError:
            pass  # restore blocked by pinned residents

    @precondition(lambda self: self.ids)
    @rule(data=st.data())
    def pin(self, data):
        block_id = self.ids[data.draw(st.integers(0, len(self.ids) - 1))]
        try:
            self.pool.pin(block_id)
        except BufferPoolError:
            pass

    @precondition(lambda self: self.ids)
    @rule(data=st.data())
    def unpin(self, data):
        block_id = self.ids[data.draw(st.integers(0, len(self.ids) - 1))]
        self.pool.unpin(block_id)

    @precondition(lambda self: self.ids)
    @rule(data=st.data())
    def remove(self, data):
        idx = data.draw(st.integers(0, len(self.ids) - 1))
        self.pool.remove(self.ids.pop(idx))

    @invariant()
    def never_over_capacity(self):
        assert self.pool.in_memory_bytes <= self.pool.capacity

    @invariant()
    def region_matches_blocks(self):
        resident = sum(
            b.nbytes for b in self.pool._blocks.values() if not b.on_disk
        )
        assert self.pool.in_memory_bytes == resident
        self.pool._region.check()

    @invariant()
    def pinned_blocks_stay_resident(self):
        for block in self.pool._blocks.values():
            if block.pinned:
                assert not block.on_disk


TestBufferPoolStateful = BufferPoolMachine.TestCase
TestBufferPoolStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
