"""Stateful property-based tests of the memory managers' invariants."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.backends.gpu import (
    GpuDevice,
    GpuMemoryManager,
    GpuStream,
    MODE_MEMPHIS,
)
from repro.backends.spark import BlockManager
from repro.common.config import GpuConfig, SparkConfig, StorageLevel
from repro.common.errors import GpuOutOfMemoryError
from repro.common.simclock import SimClock
from repro.common.stats import Stats


class GpuAllocatorMachine(RuleBasedStateMachine):
    """Random allocate/release/reuse/evict sequences preserve invariants:

    * device accounting is exact (used + holes == capacity);
    * live and free pointer sets are disjoint;
    * freed pointers never appear in either list;
    * pooled byte accounting matches the free lists.
    """

    def __init__(self):
        super().__init__()
        cfg = GpuConfig(device_memory=256 * 1024, alignment=512)
        clock, stats = SimClock(), Stats()
        device = GpuDevice(cfg)
        stream = GpuStream(cfg, clock, stats)
        self.mgr = GpuMemoryManager(device, stream, clock, stats,
                                    MODE_MEMPHIS)
        self.live = []

    @rule(size=st.integers(min_value=1, max_value=32 * 1024))
    def allocate(self, size):
        try:
            ptr = self.mgr.allocate(size)
            self.live.append(ptr)
        except GpuOutOfMemoryError:
            pass  # legal under pressure from live pointers

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        ptr = self.live.pop(idx)
        self.mgr.release(ptr)

    @precondition(lambda self: any(
        q for q in self.mgr.free_lists.values()))
    @rule(data=st.data())
    def reuse_from_free(self, data):
        pools = [p for q in self.mgr.free_lists.values() for p in q]
        ptr = pools[data.draw(st.integers(0, len(pools) - 1))]
        revived = self.mgr.reuse_from_free(ptr)
        self.live.append(revived)

    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def empty_cache(self, fraction):
        self.mgr.empty_cache(fraction)

    @invariant()
    def device_accounting_exact(self):
        device = self.mgr.device
        holes = sum(size for _, size in device._free)
        assert device.used_bytes + holes == device.capacity

    @invariant()
    def live_and_free_disjoint(self):
        live_ids = {p.id for p in self.mgr.live.values()}
        free_ids = {p.id for q in self.mgr.free_lists.values() for p in q}
        assert not (live_ids & free_ids)

    @invariant()
    def no_freed_pointers_tracked(self):
        for p in self.mgr.live.values():
            assert not p.freed
        for q in self.mgr.free_lists.values():
            for p in q:
                assert not p.freed

    @invariant()
    def pooled_bytes_match(self):
        actual = sum(p.size for q in self.mgr.free_lists.values() for p in q)
        assert self.mgr.free_bytes_pooled == actual

    @invariant()
    def free_queues_keyed_by_size(self):
        for size, queue in self.mgr.free_lists.items():
            assert all(p.size == size for p in queue)


TestGpuAllocatorStateful = GpuAllocatorMachine.TestCase
TestGpuAllocatorStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class BlockManagerMachine(RuleBasedStateMachine):
    """Random partition caching never overflows the storage region and
    keeps the byte accounting exact."""

    def __init__(self):
        super().__init__()
        cfg = SparkConfig(num_executors=1, executor_memory=120_000)
        self.bm = BlockManager(cfg, Stats())
        self.next_rdd = 1

    @rule(
        partitions=st.integers(min_value=1, max_value=4),
        rows=st.integers(min_value=1, max_value=200),
        level=st.sampled_from([StorageLevel.MEMORY_ONLY,
                               StorageLevel.MEMORY_AND_DISK]),
    )
    def cache_rdd(self, partitions, rows, level):
        rdd_id = self.next_rdd
        self.next_rdd += 1
        for idx in range(partitions):
            self.bm.put_partition(rdd_id, idx, np.ones((rows, 4)), level)

    @rule(rdd_id=st.integers(min_value=1, max_value=30))
    def drop(self, rdd_id):
        self.bm.drop_rdd(rdd_id)

    @invariant()
    def never_over_capacity(self):
        assert self.bm.memory_used <= self.bm.capacity

    @invariant()
    def accounting_matches_partitions(self):
        actual = sum(
            p.nbytes for p in self.bm._partitions.values() if not p.on_disk
        )
        assert self.bm.memory_used == actual


TestBlockManagerStateful = BlockManagerMachine.TestCase
TestBlockManagerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
