"""Integration tests for the end-to-end workloads (Table 3).

Each workload must (1) run under every relevant system configuration,
(2) produce *identical quality metrics* regardless of reuse — the core
correctness property of lineage-based reuse — and (3) exercise the
influential technique Table 3 attributes to it.
"""

import numpy as np
import pytest

from repro.workloads import (
    run_clean,
    run_en2de,
    run_fig2c,
    run_hband,
    run_hcv,
    run_hdrop,
    run_pnmf,
    run_reuse_overhead,
    run_tlvis,
)


class TestHcv:
    def test_metric_invariant_under_reuse(self):
        base = run_hcv("Base", 5.0)
        mph = run_hcv("MPH", 5.0)
        assert mph.metric == pytest.approx(base.metric, rel=1e-9)

    def test_mph_reuses_and_wins(self):
        base = run_hcv("Base", 5.0)
        mph = run_hcv("MPH", 5.0)
        assert mph.elapsed < base.elapsed
        assert mph.counter("cache/hits") > 0

    def test_distributed_scale_uses_spark_reuse(self):
        mph = run_hcv("MPH", 50.0)
        assert mph.counter("spark/rdds_reused") > 0
        assert mph.counter("async/prefetch_issued") > 0

    def test_lima_matches_base_when_distributed(self):
        base = run_hcv("Base", 50.0)
        lima = run_hcv("LIMA", 50.0)
        assert lima.elapsed == pytest.approx(base.elapsed, rel=0.1)


class TestPnmf:
    def test_loss_invariant_under_reuse(self):
        base = run_pnmf("Base", 6)
        mph = run_pnmf("MPH", 6)
        assert mph.metric == pytest.approx(base.metric, rel=1e-6)

    def test_base_superlinear_mph_linear(self):
        base_short = run_pnmf("Base", 5)
        base_long = run_pnmf("Base", 20)
        mph_short = run_pnmf("MPH", 5)
        mph_long = run_pnmf("MPH", 20)
        base_ratio = (base_long.elapsed / 20) / (base_short.elapsed / 5)
        mph_ratio = (mph_long.elapsed / 20) / (mph_short.elapsed / 5)
        assert base_ratio > mph_ratio
        assert mph_ratio < 1.4  # roughly constant per-iteration cost

    def test_checkpoints_placed_per_iteration(self):
        mph = run_pnmf("MPH", 7)
        assert mph.counter("compiler/checkpoints_placed") >= 7
        base = run_pnmf("Base", 7)
        assert base.counter("compiler/checkpoints_placed") == 0


class TestHband:
    def test_metric_invariant_under_reuse(self):
        base = run_hband("Base", 5.0)
        mph = run_hband("MPH", 5.0)
        assert mph.metric == pytest.approx(base.metric, rel=1e-9)

    def test_mph_beats_all(self):
        runs = {s: run_hband(s, 5.0) for s in ("Base", "LIMA", "HELIX", "MPH")}
        assert runs["MPH"].elapsed < runs["LIMA"].elapsed
        assert runs["MPH"].elapsed < runs["HELIX"].elapsed
        assert runs["MPH"].elapsed < runs["Base"].elapsed


class TestClean:
    def test_metric_invariant_under_reuse(self):
        base = run_clean("Base", 12)
        mph = run_clean("MPH", 12)
        assert mph.metric == pytest.approx(base.metric, rel=1e-9)

    def test_accuracy_is_sane(self):
        result = run_clean("MPH", 12)
        assert 0.5 < result.metric <= 1.0

    def test_distributed_scale_reuses(self):
        mph = run_clean("MPH", 120)
        base = run_clean("Base", 120)
        assert mph.elapsed < base.elapsed
        assert mph.counter("spark/rdds_reused") > 0


class TestHdrop:
    def test_metric_invariant_between_gpu_and_cpu(self):
        cpu = run_hdrop("Base-C", epochs=2)
        gpu = run_hdrop("Base-G", epochs=2)
        mph = run_hdrop("MPH", epochs=2)
        assert gpu.metric == pytest.approx(cpu.metric, rel=1e-9)
        assert mph.metric == pytest.approx(cpu.metric, rel=1e-9)

    def test_mph_reuses_idp_on_both_backends(self):
        mph = run_hdrop("MPH", epochs=3)
        assert mph.counter("cache/hits") > 0  # host-side transform reuse
        assert mph.counter("gpu/pointers_reused") > 0  # GPU-side reuse

    def test_coordl_between_base_and_mph(self):
        base = run_hdrop("Base-G", epochs=3)
        coordl = run_hdrop("CoorDL", epochs=3)
        mph = run_hdrop("MPH", epochs=3)
        assert mph.elapsed <= coordl.elapsed * 1.05
        assert coordl.elapsed < base.elapsed


class TestEn2de:
    def test_checksum_invariant_across_systems(self):
        results = [run_en2de(s) for s in ("Base-G", "MPH", "Clipper",
                                          "PyTorch", "MPH-F")]
        for r in results[1:]:
            assert r.metric == pytest.approx(results[0].metric, rel=1e-9)

    def test_prediction_reuse_eliminates_gpu_work(self):
        base = run_en2de("Base-G")
        mph = run_en2de("MPH")
        assert mph.counter("cache/function_hits") > 100
        assert mph.counter("gpu/kernels_launched") < \
            base.counter("gpu/kernels_launched") / 2
        assert mph.elapsed < base.elapsed / 2


class TestTlvis:
    def test_metric_invariant(self):
        base = run_tlvis("Base-G")
        mph = run_tlvis("MPH")
        assert mph.metric == pytest.approx(base.metric, rel=1e-9)

    def test_eviction_injection_between_models(self):
        mph = run_tlvis("MPH")
        assert mph.counter("compiler/evict_instructions") >= 2

    def test_pytorch_oom_on_tight_device(self):
        # a capacity where PyTorch's cross-model pooled allocations OOM
        # but manual empty_cache (Clr) and MEMPHIS's eviction survive
        tight = 23 * 1024 * 1024
        assert run_tlvis("PyTorch", device_memory=tight).failed is not None
        assert run_tlvis("PyTorch-Clr", device_memory=tight).failed is None
        assert run_tlvis("MPH", device_memory=tight).failed is None


class TestMicros:
    def test_fig2c_metric_invariant(self):
        nocache = run_fig2c("NoCache", num_chains=24)
        memphis = run_fig2c("MEMPHIS", num_chains=24)
        assert memphis.metric == pytest.approx(nocache.metric, rel=1e-9)

    def test_reuse_overhead_checksum_invariant(self):
        base = run_reuse_overhead("Base", 80_000, iterations=20,
                                  reuse_fraction=0.0)
        reuse = run_reuse_overhead("Reuse", 80_000, iterations=20,
                                   reuse_fraction=0.0)
        assert reuse.metric == pytest.approx(base.metric, rel=1e-9)

    def test_trace_probe_monotone_overhead(self):
        base = run_reuse_overhead("Base", 800, iterations=30)
        trace = run_reuse_overhead("Trace", 800, iterations=30)
        probe = run_reuse_overhead("Probe", 800, iterations=30)
        assert base.elapsed < trace.elapsed < probe.elapsed
