"""Tests for the data generators and the reporting harness."""

import numpy as np
import pytest

from repro.common.config import GB, SCALE
from repro.harness.report import (
    check_metrics_agree,
    format_table,
    speedup_series,
)
from repro.workloads.base import WorkloadResult
from repro.workloads.datagen import (
    aps_like,
    image_set,
    kdd98_like,
    movielens_like,
    rows_for_gb,
    scaled_bytes,
    synthetic_classification,
    synthetic_regression,
    word_sequence,
)


class TestDatagen:
    def test_scaled_bytes(self):
        assert scaled_bytes(1.0) == GB // SCALE

    def test_rows_for_gb_sizing(self):
        rows = rows_for_gb(5.0, 64)
        assert rows * 64 * 8 == pytest.approx(scaled_bytes(5.0), rel=0.01)

    def test_regression_has_signal(self):
        X, y = synthetic_regression(1.0, 16)
        beta, *_ = np.linalg.lstsq(X, y, rcond=None)
        residual = y - X @ beta
        assert residual.var() < y.var() / 2

    def test_classification_binary_labels(self):
        X, y = synthetic_classification(1.0, 16, 2)
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_classification_multiclass_codes(self):
        X, y = synthetic_classification(1.0, 16, 4)
        assert y.min() >= 1.0 and y.max() <= 4.0

    def test_movielens_nonnegative_low_rankish(self):
        M = movielens_like()
        assert (M > 0).all()
        # approximately low rank: top-8 singular values dominate
        s = np.linalg.svd(M[:200, :200], compute_uv=False)
        assert s[:8].sum() > 5 * s[8:].sum()

    def test_aps_missing_rate_and_imbalance(self):
        X, y = aps_like(scale_factor=4, missing_rate=0.01)
        rate = np.isnan(X).mean()
        assert 0.005 < rate < 0.02
        assert (y == 1.0).mean() < 0.3  # imbalanced classes

    def test_aps_scale_factor_replicates_rows(self):
        X1, _ = aps_like(scale_factor=1)
        X4, _ = aps_like(scale_factor=4)
        assert X4.shape[0] == 4 * X1.shape[0]

    def test_kdd98_categorical_codes(self):
        cat, num = kdd98_like(cardinality=7)
        assert cat.min() >= 1 and cat.max() <= 7
        assert (num >= 0).all()

    def test_word_sequence_zipf_duplicates(self):
        ids, table = word_sequence(seed=1)
        unique = len(np.unique(ids))
        assert unique < len(ids) / 2  # heavy duplication
        assert ids.max() < table.shape[0]

    def test_image_set_duplicates(self):
        imgs = image_set(num_images=2048, duplicate_rate=0.5, seed=2)
        unique_rows = len(np.unique(imgs, axis=0))
        assert unique_rows < imgs.shape[0]

    def test_generators_deterministic(self):
        a, _ = synthetic_regression(1.0, 8, seed=5)
        b, _ = synthetic_regression(1.0, 8, seed=5)
        assert np.allclose(a, b)


def _result(system, elapsed, metric=1.0, failed=None):
    return WorkloadResult("w", system, {}, elapsed, {"cache/hits": 3},
                          metric=metric, failed=failed)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], ["xx", 3.14159]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "3.142" in table

    def test_format_table_title_and_exponents(self):
        table = format_table(["v"], [[12345.678]], title="T")
        assert table.startswith("== T ==")
        assert "e+04" in table

    def test_speedup_series(self):
        results = {"Base": _result("Base", 2.0), "MPH": _result("MPH", 0.5)}
        series = speedup_series(results)
        assert series["MPH"] == pytest.approx(4.0)
        assert series["Base"] == pytest.approx(1.0)

    def test_metrics_agree(self):
        results = {"a": _result("a", 1, metric=5.0),
                   "b": _result("b", 2, metric=5.0 + 1e-9)}
        assert check_metrics_agree(results)

    def test_metrics_disagree(self):
        results = {"a": _result("a", 1, metric=5.0),
                   "b": _result("b", 2, metric=6.0)}
        assert not check_metrics_agree(results)

    def test_failed_runs_ignored_in_agreement(self):
        results = {"a": _result("a", 1, metric=5.0),
                   "b": _result("b", 2, metric=99.0, failed="OOM")}
        assert check_metrics_agree(results)

    def test_workload_result_counter(self):
        assert _result("x", 1.0).counter("cache/hits") == 3
        assert _result("x", 1.0).counter("missing") == 0
