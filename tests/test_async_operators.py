"""Tests for the asynchronous operators (prefetch/broadcast, §5.1) and
operator ordering at the session level."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.simclock import CLUSTER, HOST

RNG = np.random.default_rng(23)


def distributed_session(**flags):
    cfg = MemphisConfig.memphis()
    cfg.cpu.operation_memory_bytes = 64 * 1024
    for key, value in flags.items():
        setattr(cfg, key, value)
    return cfg


class TestPrefetch:
    def test_prefetch_overlaps_jobs(self):
        """Two independent Spark chains collected by one consumer: the
        async version overlaps the jobs and beats the sync version."""
        def run(async_on: bool) -> float:
            cfg = distributed_session(enable_async_ops=async_on,
                                      enable_max_parallelize=async_on)
            cfg.reuse_mode = cfg.reuse_mode  # keep MPH reuse either way
            sess = Session(cfg)
            X = sess.read(RNG.random((20_000, 16)), "X")
            Y = sess.read(RNG.random((20_000, 16)), "Y")
            a = (X * 2.0).sum()
            b = (Y * 3.0).sum()
            (a + b).compute()
            return sess.elapsed()

        assert run(True) < run(False)

    def test_prefetch_results_are_correct(self):
        cfg = distributed_session()
        sess = Session(cfg)
        data = RNG.random((10_000, 8))
        X = sess.read(data, "X")
        out = ((X * 2.0).t() @ (X * 2.0)).compute()
        assert np.allclose(out, (2 * data).T @ (2 * data))
        assert sess.stats.get("async/prefetch_issued") > 0

    def test_prefetched_result_cached_for_reuse(self):
        """The prefetch thread PUTs the fetched data once available."""
        cfg = distributed_session()
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 8)), "X")
        (X.t() @ X).compute()
        jobs = sess.stats.get("spark/jobs")
        (X.t() @ X).compute()
        assert sess.stats.get("spark/jobs") == jobs  # fully reused

    def test_cluster_timeline_advances_independently(self):
        cfg = distributed_session()
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 8)), "X")
        (X * 2.0).evaluate()  # lazy: no job yet
        assert sess.clock.now(CLUSTER) == 0.0
        (X * 2.0).sum().compute()
        assert sess.clock.now(CLUSTER) > 0.0


class TestBroadcastRewrite:
    def test_small_local_results_broadcast_async(self):
        cfg = distributed_session()
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 16)), "X")
        B = sess.read(RNG.random((16, 4)), "B")
        # B * 2 is a small CP op feeding a Spark matmul
        out = (X @ (B * 2.0)).compute()
        assert sess.stats.get("async/broadcast_issued") > 0
        assert out.shape == (10_000, 4)

    def test_no_async_broadcast_when_disabled(self):
        cfg = distributed_session(enable_async_ops=False,
                                  enable_max_parallelize=False)
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 16)), "X")
        B = sess.read(RNG.random((16, 4)), "B")
        (X @ (B * 2.0)).compute()
        assert sess.stats.get("async/broadcast_issued") == 0


class TestLazyGc:
    def test_broadcasts_destroyed_after_materialization(self):
        cfg = distributed_session()
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 16)), "X")
        B = sess.read(RNG.random((16, 4)), "B")
        for _ in range(6):  # reuse drives async materialization + GC
            (X @ B).sum().compute()
        assert sess.stats.get("spark/dangling_cleaned") > 0

    def test_driver_memory_reclaimed(self):
        cfg = distributed_session()
        sess = Session(cfg)
        X = sess.read(RNG.random((10_000, 16)), "X")
        B = sess.read(RNG.random((16, 4)), "B")
        for _ in range(6):
            (X @ B).sum().compute()
        retained = sess.spark_context.driver_retained_bytes
        broadcasts = sess.stats.get("spark/broadcasts")
        cleaned = sess.stats.get("spark/dangling_cleaned")
        assert cleaned > 0
        assert retained < broadcasts * 16 * 4 * 8  # some were destroyed


class TestSessionReporting:
    def test_report_lists_counters(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(RNG.random((20, 4)), "X")
        (X.t() @ X).sum().compute()
        report = sess.report()
        assert "cache/" in report
        assert "runtime/instructions_executed" in report

    def test_elapsed_monotone(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(RNG.random((20, 4)), "X")
        t0 = sess.elapsed()
        (X @ X.t()).sum().compute()
        assert sess.elapsed() > t0
