"""Integration tests for the Session: end-to-end reuse across backends."""

import numpy as np
import pytest

from repro import MemphisConfig, ReuseMode, Session
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP


RNG = np.random.default_rng(7)


@pytest.fixture()
def sess():
    return Session(MemphisConfig.memphis())


class TestBasicEvaluation:
    def test_scalar_math(self, sess):
        x = sess.read(np.array([[1.0, 2.0], [3.0, 4.0]]), "x")
        assert x.sum().item() == 10.0
        assert x.mean().item() == 2.5

    def test_expression_chain(self, sess):
        x = sess.read(np.full((4, 4), 2.0), "x")
        out = ((x * 3 + 1).sqrt()).compute()
        assert np.allclose(out, np.sqrt(7.0))

    def test_matmul_transpose_solve(self, sess):
        a = RNG.random((20, 6))
        b = RNG.random((20, 1))
        X = sess.read(a, "X")
        y = sess.read(b, "y")
        beta = sess.solve(X.t() @ X, (y.t() @ X).t())
        expect = np.linalg.solve(a.T @ a, a.T @ b)
        assert np.allclose(beta.compute(), expect)

    def test_indexing(self, sess):
        m = np.arange(20, dtype=float).reshape(4, 5)
        X = sess.read(m, "X")
        assert np.allclose(X[1:3, 0:2].compute(), m[1:3, 0:2])

    def test_rand_seeded_deterministic(self, sess):
        a = sess.rand(10, 5, seed=3).compute()
        b = sess.rand(10, 5, seed=3).compute()
        assert np.allclose(a, b)

    def test_rand_unseeded_unique(self, sess):
        a = sess.rand(10, 5).compute()
        b = sess.rand(10, 5).compute()
        assert not np.allclose(a, b)

    def test_eye_and_diag(self, sess):
        assert np.allclose(sess.eye(3).compute(), np.eye(3))

    def test_cbind_rbind(self, sess):
        a = sess.read(np.ones((3, 2)), "a")
        b = sess.read(np.zeros((3, 1)), "b")
        assert sess.cbind(a, b).compute().shape == (3, 3)

    def test_comparison_ops(self, sess):
        x = sess.read(np.array([[1.0, 5.0]]), "x")
        assert np.allclose((x > 2).compute(), [[0, 1]])


class TestReuseCorrectness:
    def test_hit_matches_recomputation(self):
        """Every cache hit must produce exactly the recomputed value."""
        data = RNG.random((50, 8))
        mph = Session(MemphisConfig.memphis())
        base = Session(MemphisConfig.base())
        for sess_ in (mph, base):
            X = sess_.read(data, "X")
            for i in range(4):
                out = ((X.t() @ X) * 2.0).exp().sum()
                sess_.evaluate([out])
        expect = np.exp(2.0 * (data.T @ data)).sum()
        Xm = mph.read(data, "X")
        assert np.isclose(((Xm.t() @ Xm) * 2.0).exp().sum().item(), expect)
        assert mph.stats.get("cache/hits") > 0

    def test_repeated_block_skips_instructions(self, sess):
        X = sess.read(RNG.random((30, 5)), "X")
        for _ in range(3):
            (X.t() @ X).sum().compute()
        assert sess.stats.get("runtime/instructions_skipped") > 0

    def test_no_reuse_across_different_inputs(self, sess):
        a = sess.read(RNG.random((10, 3)), "a")
        b = sess.read(RNG.random((10, 3)), "b")
        ra = (a.t() @ a).sum().item()
        rb = (b.t() @ b).sum().item()
        assert not np.isclose(ra, rb)

    def test_base_mode_never_probes(self):
        sess = Session(MemphisConfig.base())
        X = sess.read(RNG.random((10, 3)), "X")
        for _ in range(3):
            (X.t() @ X).sum().compute()
        assert sess.stats.get("cache/probes") == 0
        assert sess.stats.get("cache/hits") == 0

    def test_trace_only_traces_without_probing(self):
        cfg = MemphisConfig.base()
        cfg.reuse_mode = ReuseMode.TRACE_ONLY
        sess = Session(cfg)
        X = sess.read(RNG.random((10, 3)), "X")
        (X.t() @ X).sum().compute()
        assert sess.stats.get("lineage/items_traced") > 0
        assert sess.stats.get("cache/probes") == 0

    def test_probe_only_never_caches(self):
        cfg = MemphisConfig.base()
        cfg.reuse_mode = ReuseMode.PROBE_ONLY
        sess = Session(cfg)
        X = sess.read(RNG.random((10, 3)), "X")
        for _ in range(3):
            (X.t() @ X).sum().compute()
        assert sess.stats.get("cache/probes") > 0
        assert sess.stats.get("cache/hits") == 0

    def test_cse_within_dag(self, sess):
        X = sess.read(RNG.random((10, 3)), "X")
        g = X.t() @ X
        out = (g + g).sum()  # same sub-DAG used twice
        before = sess.stats.get("runtime/instructions_executed")
        out.compute()
        executed = sess.stats.get("runtime/instructions_executed") - before
        # tsmm executed once despite two references
        assert executed <= 5


class TestFunctionReuse:
    def test_function_hit_skips_body(self, sess):
        calls = []

        @sess.function("fit")
        def fit(X, reg):
            calls.append(1)
            return sess.solve(X.t() @ X + sess.eye(X.ncol) * reg,
                              (X.t() @ X).col_sums().t())

        X = sess.read(RNG.random((20, 4)), "X")
        a = fit(X, 0.1).compute()
        b = fit(X, 0.1).compute()
        assert np.allclose(a, b)
        assert len(calls) == 1
        assert sess.stats.get("cache/function_hits") == 1

    def test_function_different_args_reruns(self, sess):
        calls = []

        @sess.function("f2")
        def f2(X, reg):
            calls.append(1)
            return X * reg

        X = sess.read(np.ones((4, 4)), "X")
        f2(X, 1.0).compute()
        f2(X, 2.0).compute()
        assert len(calls) == 2

    def test_function_tuple_outputs(self, sess):
        @sess.function("split")
        def split(X):
            return X * 2, X * 3

        X = sess.read(np.ones((3, 3)), "X")
        a1, b1 = split(X)
        a2, b2 = split(X)
        assert np.allclose(a2.compute(), 2.0)
        assert np.allclose(b2.compute(), 3.0)
        assert sess.stats.get("cache/function_hits") == 1

    def test_nondeterministic_function_not_reused(self, sess):
        calls = []

        @sess.function("noise", deterministic=False)
        def noise(X):
            calls.append(1)
            return X + 1

        X = sess.read(np.ones((3, 3)), "X")
        noise(X)
        noise(X)
        assert len(calls) == 2

    def test_helix_mode_only_function_reuse(self):
        sess = Session(MemphisConfig.helix())

        @sess.function("g")
        def g(X):
            return (X.t() @ X).sum()

        X = sess.read(RNG.random((10, 3)), "X")
        g(X)
        g(X)
        assert sess.stats.get("cache/function_hits") == 1
        # no operator-level caching happened
        assert sess.cache.cached_count(BACKEND_CP) == 1  # just the function

    def test_operator_only_mode_disables_function_reuse(self):
        sess = Session(MemphisConfig.memphis_fine_only())
        calls = []

        @sess.function("h")
        def h(X):
            calls.append(1)
            return X * 2

        X = sess.read(np.ones((3, 3)), "X")
        h(X)
        h(X)
        assert len(calls) == 2


class TestRecompute:
    def test_serialize_recompute_roundtrip(self, sess):
        data = RNG.random((15, 4))
        X = sess.read(data, "X")
        out = (X.t() @ X).exp().sum()
        expect = out.item()
        log = sess.serialize_lineage(out)
        # recompute in a fresh session (different environment)
        fresh = Session(MemphisConfig.base())
        result = fresh.recompute(log, inputs={"X": data})
        assert np.isclose(float(result[0, 0]), expect)

    def test_recompute_with_rand(self, sess):
        out = sess.rand(6, 6, seed=11).sum()
        expect = out.item()
        log = sess.serialize_lineage(out)
        fresh = Session(MemphisConfig.memphis())
        assert np.isclose(float(fresh.recompute(log)[0, 0]), expect)

    def test_recompute_missing_input_raises(self, sess):
        X = sess.read(np.ones((3, 3)), "X")
        log = sess.serialize_lineage((X * 2).sum())
        fresh = Session()
        from repro.common.errors import RecomputationError
        with pytest.raises(RecomputationError):
            fresh.recompute(log)


class TestSparkIntegration:
    def _distributed_session(self, cfg=None):
        sess = Session(cfg or MemphisConfig.memphis())
        rows = sess.config.cpu.operation_memory_bytes // (8 * 10) + 1000
        data = RNG.random((rows, 10))
        return sess, sess.read(data, "X"), data

    def test_large_op_goes_to_spark(self):
        sess, X, data = self._distributed_session()
        out = (X.t() @ X).compute()
        assert np.allclose(out, data.T @ data)
        assert sess.stats.get("spark/jobs") >= 1

    def test_action_reuse_skips_job(self):
        sess, X, data = self._distributed_session()
        (X.t() @ X).compute()
        jobs = sess.stats.get("spark/jobs")
        (X.t() @ X).compute()
        assert sess.stats.get("spark/jobs") == jobs
        assert sess.stats.get("spark/actions_reused") >= 1

    def test_rdd_reuse(self):
        sess, X, data = self._distributed_session()
        for _ in range(2):
            out = ((X * 2.0).t() @ (X * 2.0)).compute()
        assert sess.stats.get("spark/rdds_reused") >= 1
        assert np.allclose(out, 4 * data.T @ data)

    def test_prefetch_issued_with_async(self):
        sess, X, _ = self._distributed_session()
        (X.t() @ X).compute()
        assert sess.stats.get("async/prefetch_issued") >= 1

    def test_no_prefetch_without_async(self):
        sess, X, _ = self._distributed_session(MemphisConfig.memphis_no_async())
        (X.t() @ X).compute()
        assert sess.stats.get("async/prefetch_issued") == 0

    def test_elementwise_distributed_correct(self):
        sess, X, data = self._distributed_session()
        out = (X * 2.0 + 1.0).sum().item()
        assert np.isclose(out, (data * 2 + 1).sum())

    def test_rowsums_distributed(self):
        sess, X, data = self._distributed_session()
        out = X.row_sums().sum().item()
        assert np.isclose(out, data.sum())

    def test_loop_checkpoint_limits_job_growth(self):
        sess, X, data = self._distributed_session()
        tasks = []
        with sess.loop("iter") as loop:
            W = X
            for i in range(4):
                before = sess.stats.get("spark/tasks")
                W = (W * 0.5).evaluate()
                loop.update(W=W)
                tasks.append(sess.stats.get("spark/tasks") - before)
        # with per-iteration checkpoints, later iterations do not re-execute
        # the whole history: task counts stay bounded
        assert tasks[-1] <= tasks[1] + 1
        assert sess.stats.get("compiler/checkpoints_placed") >= 1


class TestGpuIntegration:
    def _gpu_session(self, mode=None):
        cfg = mode or MemphisConfig.memphis()
        cfg.gpu_enabled = True
        cfg.spark_enabled = False
        return Session(cfg)

    def test_gpu_op_correct(self):
        sess = self._gpu_session()
        X = sess.read(RNG.random((64, 64)), "X")
        out = (X @ X).relu().compute()
        data = X.payloads[BACKEND_CP].data
        assert np.allclose(out, np.maximum(data @ data, 0))
        assert sess.stats.get("gpu/kernels_launched") >= 1

    def test_gpu_pointer_reuse_across_iterations(self):
        sess = self._gpu_session()
        X = sess.read(RNG.random((64, 64)), "X")
        for _ in range(3):
            (X @ X).relu().sum().compute()
        assert sess.stats.get("gpu/pointers_reused") >= 1

    def test_gpu_recycling_in_minibatch_loop(self):
        sess = self._gpu_session()
        W = sess.read(RNG.standard_normal((32, 16)), "W")
        for i in range(6):
            Xb = sess.read(RNG.standard_normal((64, 32)), f"batch{i}")
            (Xb @ W).relu().sum().compute()
        assert sess.stats.get("gpu/pointers_recycled") > 0

    def test_eviction_injection_between_loops(self):
        sess = self._gpu_session()
        X = sess.read(RNG.random((64, 64)), "X")
        with sess.loop("model_a"):
            (X @ X).relu().sum().compute()
        with sess.loop("model_b"):
            (X * 2 @ X).relu().sum().compute()
        assert sess.stats.get("compiler/evict_instructions") >= 1

    def test_no_eviction_injection_same_loop(self):
        sess = self._gpu_session()
        X = sess.read(RNG.random((64, 64)), "X")
        for _ in range(2):
            with sess.loop("same"):
                (X @ X).sum().compute()
        assert sess.stats.get("compiler/evict_instructions") == 0


class TestDelayedCachingIntegration:
    def test_block_tuning_sets_delay(self):
        sess = Session(MemphisConfig.memphis())
        with sess.block("fs", execution_frequency=10, reusable_fraction=0.1):
            assert sess.delay_factor == 4
        assert sess.delay_factor == 1

    def test_delayed_block_defers_caching(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(RNG.random((10, 4)), "X")
        with sess.block("b", execution_frequency=10, reusable_fraction=0.5):
            (X.t() @ X).sum().compute()
            assert sess.stats.get("cache/delayed_entries") > 0
            hits_before = sess.stats.get("cache/hits")
            (X.t() @ X).sum().compute()  # second occurrence: now cached
            (X.t() @ X).sum().compute()  # third: hits
            assert sess.stats.get("cache/hits") > hits_before

    def test_auto_tuning_disabled(self):
        cfg = MemphisConfig.memphis()
        cfg.enable_auto_tuning = False
        sess = Session(cfg)
        with sess.block("fs", execution_frequency=10, reusable_fraction=0.1):
            assert sess.delay_factor == 1
