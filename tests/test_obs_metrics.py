"""Tests for repro.obs.metrics: registry, sampling, export, overhead."""

import json

import numpy as np
import pytest

from repro.common.config import MemphisConfig
from repro.common.simclock import HOST, SimClock
from repro.common.stats import Stats
from repro.core.session import Session
from repro.faults.determinism import reset_global_ids
from repro.obs import (
    Histogram,
    MetricSeries,
    MetricsCollector,
    MetricsRegistry,
    NULL_METRICS,
    chrome_trace_dict,
    counter_tracks,
    current_metrics,
    disable_metrics,
    enable_metrics,
    format_metrics,
    metering,
    read_metrics_jsonl,
    sparkline,
    validate_chrome_trace,
    write_metrics_jsonl,
)


# ------------------------------------------------------------ primitives


class TestMetricSeries:
    def test_record_and_digest(self):
        s = MetricSeries("cache/entries")
        for t, v in ((0.0, 1.0), (1.0, 3.0), (2.0, 2.0)):
            s.record(t, v)
        d = s.digest()
        assert d["n"] == 3
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == 2.0 and d["last"] == 2.0

    def test_empty_digest(self):
        d = MetricSeries("x").digest()
        assert d == {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0}


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram("runtime/lat", (1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.counts == [1, 1, 1]  # <=1, <=10, +inf
        assert h.mean == pytest.approx(55.5 / 3)
        d = h.digest()
        assert d["n"] == 3 and d["min"] == 0.5 and d["max"] == 50.0


class TestSparkline:
    def test_width_and_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty(self):
        assert sparkline([]) == ""


# ------------------------------------------------------------ registry


class TestMetricsRegistry:
    def test_gauge_created_once(self):
        reg = MetricsRegistry(SimClock())
        g1 = reg.gauge("cache/entries")
        g2 = reg.gauge("cache/entries")
        assert g1 is g2

    def test_num_samples_and_subsystems(self):
        reg = MetricsRegistry(SimClock())
        reg.gauge("cache/entries").record(0.0, 1.0)
        reg.gauge("gpu/residency").record(0.0, 0.5)
        reg.gauge("empty/one")  # registered but never sampled
        assert reg.num_samples() == 2
        assert reg.subsystems() == {"cache", "gpu"}


# ------------------------------------------------------------ session sampling


def _run_workload(cfg: MemphisConfig) -> Session:
    reset_global_ids()
    sess = Session(cfg)
    a = sess.read(np.arange(256.0).reshape(16, 16))
    w = sess.read(np.ones((16, 1)))
    for _ in range(4):
        w = (a @ w) * 0.5
        sess.evaluate([w])
    return sess


class TestSessionSampling:
    def test_disabled_by_default(self):
        sess = Session(MemphisConfig())
        assert sess.metrics is NULL_METRICS
        assert not sess.metrics.enabled
        assert sess.metrics_collector is None

    def test_config_flag_creates_registry(self):
        sess = _run_workload(MemphisConfig(metrics_enabled=True))
        assert sess.metrics.enabled
        assert sess.metrics.num_samples() > 0

    def test_covers_required_subsystems(self):
        sess = _run_workload(MemphisConfig(metrics_enabled=True))
        assert {"memory", "cache", "spark", "gpu"} <= sess.metrics.subsystems()

    def test_region_occupancy_series(self):
        sess = _run_workload(MemphisConfig(metrics_enabled=True))
        series = sess.metrics.series()
        assert "memory/CP/used" in series
        assert series["memory/CP/used"].last > 0

    def test_ambient_collector_registers_sessions(self):
        collector = enable_metrics()
        try:
            _run_workload(MemphisConfig())
            _run_workload(MemphisConfig())
        finally:
            disable_metrics()
        assert collector.num_sessions == 2
        assert collector.num_samples() > 0
        assert current_metrics() is None

    def test_metering_contextmanager(self):
        with metering() as collector:
            assert current_metrics() is collector
            _run_workload(MemphisConfig())
        assert current_metrics() is None
        assert collector.num_sessions == 1


class TestZeroOverhead:
    def test_metered_run_identical_to_plain(self):
        """Sampling must never advance the sim clock or touch counters."""
        plain = _run_workload(MemphisConfig())
        metered = _run_workload(MemphisConfig(metrics_enabled=True,
                                              explain_capture=True))
        assert metered.clock.now(HOST) == plain.clock.now(HOST)
        assert metered.stats.counters() == plain.stats.counters()
        assert metered.stats.timers() == plain.stats.timers()

    def test_null_metrics_is_shared_and_inert(self):
        sess = Session(MemphisConfig())
        g = NULL_METRICS.gauge("x")
        g.record(0.0, 1.0)
        assert NULL_METRICS.series() == {}
        assert NULL_METRICS.num_samples() == 0
        NULL_METRICS.tick(sess)
        NULL_METRICS.sample(sess)
        assert NULL_METRICS.subsystems() == set()


# ------------------------------------------------------------ export


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        with metering() as collector:
            _run_workload(MemphisConfig())
        path = str(tmp_path / "metrics.jsonl")
        written = write_metrics_jsonl(collector, path)
        assert written > 0
        rows = read_metrics_jsonl(path)
        assert len(rows) == written
        gauges = [r for r in rows if r["kind"] == "gauge"]
        assert gauges
        for row in gauges:
            assert len(row["t"]) == len(row["v"])
        names = {r["series"] for r in gauges}
        assert "memory/CP/used" in names

    def test_lines_are_json_objects(self, tmp_path):
        with metering() as collector:
            _run_workload(MemphisConfig())
        path = str(tmp_path / "metrics.jsonl")
        write_metrics_jsonl(collector, path)
        with open(path) as fh:
            for line in fh:
                assert isinstance(json.loads(line), dict)


class TestCounterTracks:
    def test_tracks_and_chrome_export(self):
        with metering() as collector:
            _run_workload(MemphisConfig())
        tracks = counter_tracks(collector)
        assert tracks
        session_id, name, samples = tracks[0]
        assert session_id >= 0 and "/" in name and samples
        doc = chrome_trace_dict([], counters=tracks)
        counter_events = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counter_events
        assert all("value" in e["args"] for e in counter_events)
        assert validate_chrome_trace(doc) == []


class TestFormatMetrics:
    def test_sparkline_summary(self):
        with metering() as collector:
            _run_workload(MemphisConfig())
        registry = collector.registries[0]
        text = format_metrics(registry)
        assert text.startswith("=== metrics")
        assert "-- memory --" in text
        assert "memory/CP/used" in text


# ------------------------------------------------------------ aggregation


class TestMetricsCollector:
    def test_aggregate_stats_merges_sessions(self):
        collector = MetricsCollector()
        for hits in (2, 3):
            stats = Stats()
            stats.inc("cache/hits", hits)
            collector.registry(SimClock(), stats=stats)
        assert collector.aggregate_stats().get("cache/hits") == 5

    def test_merged_digests_across_sessions(self):
        collector = MetricsCollector()
        for value in (1.0, 3.0):
            reg = collector.registry(SimClock())
            reg.gauge("cache/entries").record(0.0, value)
        digests = collector.merged_digests()
        assert digests["cache/entries"]["n"] == 2
        assert digests["cache/entries"]["mean"] == 2.0
