"""Tests for the static memory planner (repro.analysis.memplan).

Covers the charge model and its soundness contract (predicted peak >=
observed ``MemoryRegion.peak_used`` on every tier-1 workload), the
compile-time GPU spill scheduler, the ``reserve_plan`` two-phase bulk
reservation, the reject/accept acceptance scenario from the PR issue,
and the GPU placement feasibility guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    SessionMemPlanner,
    current_memplan_collector,
    format_footprint_table,
    format_region_peaks,
    plan_block,
    plan_diagnostics,
    planning,
    schedule_gpu_spills,
)
from repro.analysis.memplan import (
    PLAN_REGIONS,
    REGION_CP,
    REGION_GPU,
    REGION_SPARK_CACHE,
    REGION_SPARK_STORAGE,
    STICKY_REGIONS,
    _put_enabled,
)
from repro.common.config import MemphisConfig, ReuseMode
from repro.common.errors import VerificationError
from repro.core.entry import BACKEND_CP, BACKEND_GPU
from repro.core.session import Session
from repro.faults.determinism import reset_global_ids
from repro.memory import MemoryArbiter, region_capacities
from repro.memory.budget import RegionBudget
from repro.runtime.placement import gpu_working_set


# --------------------------------------------------------------- helpers

def _planned_session(**overrides) -> Session:
    """A session with planning on and any config overrides applied."""
    cfg = MemphisConfig.memphis()
    cfg.memplan = True
    for key, val in overrides.items():
        if "." in key:
            group, attr = key.split(".")
            setattr(getattr(cfg, group), attr, val)
        else:
            setattr(cfg, key, val)
    return Session(cfg)


def _gpu_chain_session(device_bytes: int, *, spills: bool, enforce: bool,
                       links: int = 10):
    """The over-budget GPU scenario: a cell-wise chain on a tiny device.

    Each link is three GPU ops (~20 KB each aligned) over a 50x50
    matrix (2500 cells, above ``gpu.min_cells``); the chain total far
    exceeds ``device_bytes`` while any single instruction's working set
    fits — exactly the MEM002 regime.
    """
    reset_global_ids()
    cfg = MemphisConfig.memphis()
    cfg.gpu_enabled = True
    cfg.gpu.device_memory = device_bytes
    cfg.memplan = True
    cfg.memplan_enforce = enforce
    cfg.memplan_spills = spills
    sess = Session(cfg)
    rng = np.random.default_rng(3)
    h = sess.read(rng.random((50, 50)), "X")
    for _ in range(links):
        h = (h * 1.001 + 0.5).relu()
    return sess, h


def _cpu_reference(links: int = 10) -> np.ndarray:
    reset_global_ids()
    sess = Session(MemphisConfig.memphis())
    rng = np.random.default_rng(3)
    h = sess.read(rng.random((50, 50)), "X")
    for _ in range(links):
        h = (h * 1.001 + 0.5).relu()
    return sess.compute(h)


# ------------------------------------------------------- charge model

class TestPlanBlock:
    def test_cp_demand_covers_put_stage(self):
        sess = _planned_session()
        a = sess.read(np.ones((32, 32)))
        b = (a @ a) + a
        sess.evaluate([b])
        plan = sess.memplanner.last_plan
        assert plan is not None
        # with FULL reuse every op hop is offered to the CP cache, plus
        # the function-level allowance for the root
        op_bytes = sum(c.nbytes for c in plan.charges
                       if c.region == REGION_CP)
        assert plan.demand[REGION_CP] == op_bytes
        assert plan.demand[REGION_CP] >= 2 * b.hop.output_bytes

    def test_reuse_none_charges_nothing_to_cp(self):
        sess = _planned_session(reuse_mode=ReuseMode.NONE)
        a = sess.read(np.ones((32, 32)))
        sess.evaluate([a @ a])
        plan = sess.memplanner.last_plan
        assert plan.demand[REGION_CP] == 0

    def test_literals_and_fused_hops_skipped(self):
        sess = _planned_session()
        a = sess.read(np.ones((16, 16)))
        sess.evaluate([a * 2.0 + 1.0])
        plan = sess.memplanner.last_plan
        assert all(c.hop.kind != "literal" for c in plan.charges)
        assert all(not c.hop.fused for c in plan.charges)

    def test_bounded_peaks_clamped_at_capacity(self):
        sess = _planned_session(**{"cache.unlimited": False,
                                   "cache.driver_cache_bytes": 1024})
        a = sess.read(np.ones((64, 64)))
        sess.evaluate([(a @ a) + a])
        plan = sess.memplanner.last_plan
        assert plan.demand[REGION_CP] > 1024
        assert plan.peaks[REGION_CP] == 1024

    def test_gpu_charges_are_aligned(self):
        sess, h = _gpu_chain_session(48 * 1024 * 1024, spills=True,
                                     enforce=False, links=2)
        sess.evaluate([h])
        plan = sess.memplanner.last_plan
        alignment = sess.config.gpu.alignment
        gpu = [c for c in plan.charges if c.region == REGION_GPU]
        assert gpu, "chain should place ops on the GPU"
        assert all(c.nbytes % alignment == 0 for c in gpu)
        assert {c.reason for c in gpu} <= {"alloc", "upload"}

    def test_put_enabled_mirror_stays_in_sync(self):
        """memplan._put_enabled must mirror Interpreter._put_enabled."""
        sess = Session(MemphisConfig())
        for mode in ReuseMode:
            assert _put_enabled(mode) == \
                sess.interpreter._put_enabled(mode), mode

    def test_footprint_table_renders(self):
        sess = _planned_session()
        a = sess.read(np.ones((32, 32)))
        sess.evaluate([(a @ a) + a])
        plan = sess.memplanner.last_plan
        text = format_footprint_table(plan)
        assert "memory plan (per-hop charges, worst case):" in text
        assert "demand" in text and "capacity" in text

    def test_region_peaks_table_flags_violations(self):
        text = format_region_peaks(
            predicted={n: 100 for n in PLAN_REGIONS},
            observed={REGION_CP: 200},
        )
        row = next(ln for ln in text.splitlines()
                   if ln.split() and ln.split()[0] == "CP")
        assert "LOW" in row
        text_ok = format_region_peaks(
            predicted={n: 100 for n in PLAN_REGIONS},
            observed={REGION_CP: 50},
        )
        assert "LOW" not in text_ok


class TestBudgets:
    def test_region_capacities_cover_plan_regions(self):
        budgets = region_capacities(MemphisConfig.memphis())
        assert set(budgets) == set(PLAN_REGIONS)
        for budget in budgets.values():
            assert isinstance(budget, RegionBudget)
            assert budget.capacity >= 0

    def test_spark_storage_scales_with_executors(self):
        cfg = MemphisConfig.memphis()
        one = region_capacities(cfg)[REGION_SPARK_STORAGE].capacity
        cfg.spark.num_executors *= 2
        two = region_capacities(cfg)[REGION_SPARK_STORAGE].capacity
        assert two == 2 * one


# ----------------------------------------------------- spill scheduling

class TestScheduleSpills:
    def test_fitting_block_needs_no_spills(self):
        sess, h = _gpu_chain_session(48 * 1024 * 1024, spills=True,
                                     enforce=False, links=2)
        sess.evaluate([h])
        plan = sess.memplanner.last_plan
        assert plan.gpu_spills == []

    def test_overflow_block_gets_schedule(self):
        sess, h = _gpu_chain_session(64 * 1024, spills=True,
                                     enforce=False, links=10)
        sess.evaluate([h])
        plan = sess.memplanner.last_plan
        assert plan.gpu_spills, "over-budget chain must get a schedule"
        rules = {d.rule for d in plan.diagnostics}
        assert "MEM002" in rules
        assert not plan.errors

    def test_schedule_keeps_resident_bytes_under_capacity(self):
        sess, h = _gpu_chain_session(64 * 1024, spills=True,
                                     enforce=False, links=10)
        sess.evaluate([h])
        plan = sess.memplanner.last_plan
        assert self._replay_fits(plan)

    @staticmethod
    def _replay_fits(plan) -> bool:
        """Simulate the schedule: resident bytes never exceed capacity."""
        capacity = plan.budgets[REGION_GPU].capacity
        spills_at = plan.executable_spills()
        live: dict[int, int] = {}
        for charge in sorted((c for c in plan.charges
                              if c.region == REGION_GPU),
                             key=lambda c: c.start):
            for sp in spills_at.get(charge.start, ()):
                live.pop(sp.victim.id, None)
            live[charge.hop.id] = charge.nbytes
            if sum(live.values()) > capacity:
                return False
        return True

    def test_no_schedule_when_spills_disabled(self):
        sess, h = _gpu_chain_session(64 * 1024, spills=False,
                                     enforce=False, links=10)
        # plan directly without executing (execution would OOM)
        roots, order = _compile_only(sess, h)
        plan = plan_block(roots, order, sess.config)
        diags = plan_diagnostics(plan, sess.config)
        assert plan.gpu_spills is None
        assert any(d.rule == "MEM002" and d.severity.label == "error"
                   for d in diags)


def _compile_only(sess: Session, handle):
    """Compile a pending handle to (root_hops, order) without executing."""
    compiled = sess._compile([handle])
    assert compiled is not None
    _, root_hops, order, _ = compiled
    return root_hops, order


# ----------------------------------------------------- reserve_plan

class TestReservePlan:
    def _arbiter(self) -> MemoryArbiter:
        arb = MemoryArbiter()
        arb.add_region("CP", 1000)
        arb.add_region("GPU", 500)
        arb.add_region("INF", 10, unlimited=True)
        return arb

    def test_lenient_reserve_holds_clamped_headroom(self):
        arb = self._arbiter()
        res = arb.reserve_plan({"CP": 600, "GPU": 9000, "INF": 50,
                                "NOPE": 10})
        assert res is not None
        assert res.holds == {"CP": 600, "GPU": 500}
        assert arb.region("CP").reserved == 600
        assert arb.region("GPU").reserved == 500
        res.commit()
        assert arb.region("CP").reserved == 0
        assert arb.region("GPU").reserved == 0

    def test_existing_usage_reduces_hold(self):
        arb = self._arbiter()
        arb.region("CP").acquire(400)
        res = arb.reserve_plan({"CP": 600})
        assert res.holds == {"CP": 200}
        res.cancel()
        assert arb.region("CP").reserved == 0
        assert arb.region("CP").used == 400

    def test_commit_and_cancel_are_idempotent(self):
        arb = self._arbiter()
        res = arb.reserve_plan({"CP": 100})
        res.commit()
        res.cancel()  # no-op, already settled
        assert arb.region("CP").reserved == 0

    def test_strict_mode_refuses_infeasible_demand(self):
        arb = self._arbiter()
        assert arb.reserve_plan({"GPU": 501}, strict=True) is None
        assert arb.stats.get("memory/plan_reserve_failures") == 1
        # partial holds must be rolled back
        assert arb.region("CP").reserved == 0
        assert arb.region("GPU").reserved == 0

    def test_strict_mode_admits_feasible_demand(self):
        arb = self._arbiter()
        res = arb.reserve_plan({"GPU": 500, "CP": 1000}, strict=True)
        assert res is not None
        assert res.total == 1500
        res.commit()

    def test_net_zero_ledger_effect(self):
        arb = self._arbiter()
        before = [r.snapshot() for r in arb.regions()]
        res = arb.reserve_plan({"CP": 777, "GPU": 123})
        res.commit()
        after = [r.snapshot() for r in arb.regions()]
        for snap_a, snap_b in zip(before, after):
            for key in ("used", "reserved", "pinned", "free"):
                assert snap_a[key] == snap_b[key]


# -------------------------------------------- reject / accept (acceptance)

class TestRejectAccept:
    """The PR's acceptance scenario: one over-budget workload is
    rejected at compile time with a MEM diagnostic, and accepted after
    the planner inserts a pre-scheduled spill."""

    def test_rejected_at_compile_time_without_spills(self):
        sess, h = _gpu_chain_session(64 * 1024, spills=False, enforce=True)
        with pytest.raises(VerificationError, match="MEM002"):
            sess.evaluate([h])
        # the bulk reservation must have been cancelled on the way out
        for region in sess.arbiter.regions():
            assert region.reserved == 0

    def test_accepted_with_planned_spills(self):
        sess, h = _gpu_chain_session(64 * 1024, spills=True, enforce=True)
        sess.evaluate([h])
        assert sess.stats.get("memplan/planned_spills_executed") > 0
        got = sess.compute(h)
        assert np.allclose(got, _cpu_reference())

    def test_planned_spills_keep_results_identical(self):
        """memplan on vs off must be byte-identical on a fitting block."""
        def run(memplan: bool):
            reset_global_ids()
            cfg = MemphisConfig.memphis()
            cfg.memplan = memplan
            sess = Session(cfg)
            rng = np.random.default_rng(7)
            w = sess.read(rng.random((24, 24)), "w")
            x = sess.read(rng.random((24, 24)), "x")
            for _ in range(3):
                w = (w - (w @ x) * 0.01).relu()
                sess.evaluate([w])
            return (sess.compute(w).tobytes(), sess.elapsed(),
                    sess.stats.get("runtime/instructions_executed"))

        assert run(True) == run(False)


# --------------------------------------------------- placement feasibility

class TestPlacementFeasibility:
    def test_infeasible_working_set_falls_back_to_cp(self):
        """An op whose working set can never fit on the device must not
        be GPU-placed (memplan MEM001 feasibility, placement guard)."""
        sess, h = _gpu_chain_session(4 * 1024, spills=True, enforce=False,
                                     links=1)
        roots, order = _compile_only(sess, h)
        ops = [hop for hop in order if hop.kind == "op"]
        assert ops and all(hop.placement == BACKEND_CP for hop in ops)

    def test_feasible_working_set_stays_on_gpu(self):
        sess, h = _gpu_chain_session(48 * 1024 * 1024, spills=True,
                                     enforce=False, links=1)
        roots, order = _compile_only(sess, h)
        assert any(hop.placement == BACKEND_GPU for hop in order)

    def test_gpu_working_set_matches_planner_arithmetic(self):
        sess, h = _gpu_chain_session(48 * 1024 * 1024, spills=True,
                                     enforce=False, links=1)
        roots, order = _compile_only(sess, h)
        alignment = sess.config.gpu.alignment
        for hop in order:
            if hop.placement != BACKEND_GPU or hop.kind != "op":
                continue
            ws = gpu_working_set(hop, alignment)
            assert ws % alignment == 0
            assert ws >= hop.output_bytes


# --------------------------------------------- session planner / collector

class TestSessionPlanner:
    def test_sticky_regions_accumulate_across_blocks(self):
        sess = _planned_session()
        a = sess.read(np.ones((32, 32)))
        sess.evaluate([a @ a])
        first = dict(sess.memplanner.cumulative)
        b = sess.read(np.ones((32, 32)) * 2)
        sess.evaluate([b @ b])
        second = sess.memplanner.cumulative
        for name in STICKY_REGIONS:
            if first[name]:
                assert second[name] > first[name]

    def test_observe_tracks_runtime_watermarks(self):
        sess = _planned_session()
        a = sess.read(np.ones((32, 32)))
        sess.evaluate([a @ a])
        assert sess.memplanner.observed[REGION_CP] > 0
        for name, pred, obs, ok in sess.memplanner.check_bounds():
            assert ok, f"{name}: predicted {pred} < observed {obs}"

    def test_ambient_collector_registers_sessions(self):
        with planning() as collector:
            sess = Session(MemphisConfig.memphis())
            assert sess.memplanner is not None
            a = sess.read(np.ones((16, 16)))
            sess.evaluate([a + a])
        assert current_memplan_collector() is None
        assert len(collector.entries) == 1
        rows = collector.check_bounds()
        assert rows and all(ok for *_, ok in rows)

    def test_determinism_reset_uninstalls_collector(self):
        from repro.analysis import install_memplan_collector, MemplanCollector
        from repro.faults.determinism import reset_ambient_state

        install_memplan_collector(MemplanCollector())
        reset_ambient_state()
        assert current_memplan_collector() is None

    def test_explain_runtime_includes_watermarks(self):
        cfg = MemphisConfig(explain_capture=True)
        cfg.memplan = True
        sess = Session(cfg)
        a = sess.read(np.ones((16, 16)))
        sess.evaluate([a @ a])
        text = sess.explain(level="runtime")
        assert "region peaks" in text
        assert "observed" in text and "predicted" in text


# ------------------------------------------------ pass registration / CLI

class TestPassIntegration:
    def test_memory_plan_pass_registered(self):
        from repro.analysis.base import registered_passes
        from repro.analysis.manager import DEFAULT_PASS_ORDER

        assert "memory-plan" in registered_passes()
        assert "memory-plan" in DEFAULT_PASS_ORDER

    def test_cli_memplan_flag(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["micro", "--memplan"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "region peaks" in out
        assert "predicted" in out and "observed" in out


# ----------------------------------------- predicted >= observed (16 runs)

def _experiments():
    """The paper's tier-1 experiment matrix: 7 workloads x 2 systems
    plus the two microbenchmarks — 16 runs total."""
    from repro.workloads.clean import run_clean
    from repro.workloads.en2de import run_en2de
    from repro.workloads.hband import run_hband
    from repro.workloads.hcv import run_hcv
    from repro.workloads.hdrop import run_hdrop
    from repro.workloads.micro import run_fig2c, run_reuse_overhead
    from repro.workloads.pnmf_wl import run_pnmf
    from repro.workloads.tlvis import run_tlvis

    runs = []
    for system in ("MPH", "Base"):
        runs += [
            (f"hcv/{system}", lambda s=system: run_hcv(s, 5.0)),
            (f"pnmf/{system}", lambda s=system: run_pnmf(s, 5)),
            (f"hband/{system}", lambda s=system: run_hband(s, 5.0)),
            (f"clean/{system}", lambda s=system: run_clean(s, 12)),
            (f"hdrop/{system}", lambda s=system: run_hdrop(s, epochs=1)),
            (f"en2de/{system}", lambda s=system: run_en2de(s)),
            (f"tlvis/{system}",
             lambda s=system: run_tlvis(s, num_images=2000)),
        ]
    runs.append(("fig2c/MEMPHIS",
                 lambda: run_fig2c("MEMPHIS", num_chains=20)))
    runs.append(("reuse_overhead",
                 lambda: run_reuse_overhead("Reuse", 8 * 1024,
                                            iterations=10)))
    return runs


@pytest.mark.parametrize("label,thunk", _experiments(),
                         ids=[label for label, _ in _experiments()])
def test_predicted_peak_bounds_observed(label, thunk):
    """Soundness on every tier-1 experiment: for each session the
    workload creates, the static per-region predicted peak must be an
    upper bound on the runtime's observed ``peak_used`` watermark."""
    with planning() as collector:
        thunk()
    rows = collector.check_bounds()
    assert rows, f"{label}: no sessions registered with the collector"
    bad = [(sess_label, region, pred, obs)
           for sess_label, region, pred, obs, ok in rows if not ok]
    assert not bad, f"{label}: predicted < observed for {bad}"


# ------------------------------------------------------- property-based

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(
    links=st.integers(min_value=1, max_value=12),
    side=st.integers(min_value=24, max_value=64),
    budget_kb=st.integers(min_value=48, max_value=512),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_cellwise_chain_plan_is_sound(links, side, budget_kb, seed):
    """Property: for a random cell-wise GPU chain under a random device
    budget, the planner either (a) certifies the block with a schedule
    that keeps resident bytes under capacity, or (b) reports an
    unfixable MEM001/MEM002 error — and executing a certified block
    reproduces the CPU result and never trips the device allocator."""
    reset_global_ids()
    cfg = MemphisConfig.memphis()
    cfg.gpu_enabled = True
    cfg.gpu.device_memory = budget_kb * 1024
    cfg.memplan = True
    cfg.memplan_enforce = True
    cfg.memplan_spills = True
    sess = Session(cfg)
    rng = np.random.default_rng(seed)
    data = rng.random((side, side))
    ops = rng.integers(0, 3, size=links)
    h = sess.read(data, "X")
    for op in ops:
        if op == 0:
            h = h * 1.01
        elif op == 1:
            h = h + 0.25
        else:
            h = h.relu()

    roots, order = _compile_only(sess, h)
    plan = plan_block(roots, order, cfg)
    plan_diagnostics(plan, cfg)

    if plan.errors:
        with pytest.raises(VerificationError):
            sess.evaluate([h])
        return

    # certified: schedule replays under capacity, execution succeeds
    # and matches plain numpy
    assert TestScheduleSpills._replay_fits(plan)
    got = sess.compute(h)
    want = data
    for op in ops:
        if op == 0:
            want = want * 1.01
        elif op == 1:
            want = want + 0.25
        else:
            want = np.maximum(want, 0.0)
    assert np.allclose(got, want)
