"""Tests for repro.obs.explain: plan capture, rendering, DOT unification."""

import numpy as np
import pytest

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.common.config import MemphisConfig
from repro.core.session import Session
from repro.lineage.query import to_dot
from repro.obs import (
    ExplainCollector,
    LEVEL_FULL,
    LEVEL_HOPS,
    LEVEL_RUNTIME,
    current_explain,
    explaining,
    install_explain,
    plan_to_dot,
    render_plan,
    uninstall_explain,
)


def _pending(sess: Session):
    a = sess.read(np.ones((8, 8)))
    b = (a @ a) + a
    return b


def _captured_plan():
    with explaining() as collector:
        sess = Session(MemphisConfig())
        sess.evaluate([_pending(sess)])
    assert collector.plans
    return collector.plans[0]


# ------------------------------------------------------------ capture


class TestCapture:
    def test_config_flag_creates_private_collector(self):
        sess = Session(MemphisConfig(explain_capture=True))
        sess.evaluate([_pending(sess)])
        assert sess.explain_collector is not None
        assert sess.explain_collector.blocks_captured == 1

    def test_disabled_by_default(self):
        sess = Session(MemphisConfig())
        sess.evaluate([_pending(sess)])
        assert sess.explain_collector is None
        assert "explain capture is off" in sess.explain()

    def test_ambient_collector(self):
        with explaining() as collector:
            assert current_explain() is collector
            sess = Session(MemphisConfig())
            sess.evaluate([_pending(sess)])
        assert current_explain() is None
        assert collector.blocks_captured == 1

    def test_install_uninstall_round_trip(self):
        collector = install_explain()
        assert current_explain() is collector
        assert uninstall_explain() is collector
        assert current_explain() is None

    def test_dedup_counts_executions(self):
        with explaining() as collector:
            sess = Session(MemphisConfig())
            x = sess.read(np.ones((4, 4)))
            for _ in range(3):
                y = x @ x
                sess.evaluate([y])
        # three structurally identical blocks -> one plan, 3 executions
        assert collector.blocks_captured == 3
        assert len(collector.plans) == 1
        assert collector.plans[0].executions == 3
        assert "(x3 executions)" in collector.render()

    def test_snapshots_hold_no_live_hops(self):
        plan = _captured_plan()
        for snap in plan.order:
            assert isinstance(snap.id, int)
            assert isinstance(snap.input_ids, tuple)
            assert not hasattr(snap, "inputs")


# ------------------------------------------------------------ rendering


class TestRenderPlan:
    def test_full_has_dag_and_stream(self):
        text = render_plan(_captured_plan(), LEVEL_FULL)
        assert "-- HOP DAG (post-rewrite) --" in text
        assert "-- instruction stream (linearized) --" in text

    def test_hops_level_omits_stream(self):
        text = render_plan(_captured_plan(), LEVEL_HOPS)
        assert "-- HOP DAG (post-rewrite) --" in text
        assert "instruction stream" not in text

    def test_runtime_level_omits_dag(self):
        text = render_plan(_captured_plan(), LEVEL_RUNTIME)
        assert "HOP DAG" not in text
        assert "-- instruction stream (linearized) --" in text

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            render_plan(_captured_plan(), "verbose")

    def test_hop_ids_and_costs_rendered(self):
        plan = _captured_plan()
        text = render_plan(plan, LEVEL_FULL)
        for snap in plan.order:
            assert f"#{snap.id}" in text
        assert "op-mem" in text and "FLOP" in text

    def test_reuse_annotations_present(self):
        # default config probes the lineage cache -> op hops marked {reuse}
        text = render_plan(_captured_plan(), LEVEL_RUNTIME)
        assert "{reuse" in text

    def test_diagnostics_attach_by_hop_id(self):
        plan = _captured_plan()
        hop_id = plan.root_ids[0]
        report = DiagnosticReport([Diagnostic(
            rule="DAG999", severity=Severity.WARNING,
            message="synthetic finding", passname="test", hop=hop_id,
        )])
        text = render_plan(plan, LEVEL_FULL, diagnostics=report)
        assert "! warning [DAG999] synthetic finding" in text

    def test_evicts_rendered(self):
        collector = ExplainCollector()
        with explaining(collector):
            sess = Session(MemphisConfig(explain_capture=False))
            sess.evaluate([_pending(sess)])
            sess.evict_gpu(50.0)
        assert "[evict] evict_gpu(50%)" in collector.render()


# ------------------------------------------------------------ Session.explain


class TestSessionExplain:
    def test_explain_pending_handles_without_execution(self):
        sess = Session(MemphisConfig())
        handle = _pending(sess)
        before = sess.stats.get("runtime/instructions_executed")
        text = sess.explain(handle)
        assert "-- HOP DAG (post-rewrite) --" in text
        assert sess.stats.get("runtime/instructions_executed") == before

    def test_explain_nothing_pending(self):
        sess = Session(MemphisConfig())
        materialized = sess.read(np.ones((4, 4)))
        sess.evaluate([materialized])
        assert "nothing to explain" in sess.explain(materialized)

    def test_explain_renders_captured_plans(self):
        sess = Session(MemphisConfig(explain_capture=True))
        sess.evaluate([_pending(sess)])
        text = sess.explain()
        assert text.startswith("=== explain")
        assert "block 1" in text

    def test_explain_matches_evaluate_pipeline(self):
        """explain(handles) shows the same hop count evaluate compiles."""
        cfg = MemphisConfig(explain_capture=True)
        sess = Session(cfg)
        handle = _pending(sess)
        explained = sess.explain(handle, level=LEVEL_RUNTIME)
        sess.evaluate([handle])
        captured = sess.explain_collector.plans[0]
        # the runtime level appends memory-plan / region-watermark
        # sections (repro.analysis.memplan); the stream section proper
        # still renders one line per compiled instruction (+2 headers)
        stream = explained.split("\n\nmemory plan")[0]
        assert len(stream.splitlines()) - 2 == len(captured.order)


# ------------------------------------------------------------ DOT unification


class TestDotUnification:
    def test_lineage_to_dot_delegates(self):
        sess = Session(MemphisConfig())
        h = sess.read(np.ones((4, 4)))
        r = h @ h
        sess.evaluate([r])
        dot = to_dot(sess.lineage_of(r))
        assert dot.startswith("digraph lineage {")
        assert "rankdir=BT;" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_plan_to_dot_same_grammar(self):
        dot = plan_to_dot(_captured_plan())
        assert dot.startswith("digraph plan {")
        assert "rankdir=BT;" in dot
        assert "->" in dot

    def test_truncation(self):
        sess = Session(MemphisConfig())
        h = sess.read(np.ones((2, 2)))
        for _ in range(12):
            h = h + h
        sess.evaluate([h])
        dot = to_dot(sess.lineage_of(h), max_nodes=3)
        assert 'truncated [label="...", shape=plaintext];' in dot
