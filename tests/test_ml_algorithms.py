"""Correctness tests for the ML algorithm library."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.ml import (
    cross_validate_linreg,
    grid_search_linreg,
    kfold_indices,
    l2svm,
    l2svm_accuracy,
    l2svm_predict,
    lin_reg_ds,
    lin_reg_predict,
    mlogreg,
    mlogreg_accuracy,
    mlogreg_predict,
    pnmf,
    pnmf_loss,
    r2_score,
    successive_halving,
    weighted_ensemble,
)

RNG = np.random.default_rng(3)


@pytest.fixture()
def sess():
    return Session(MemphisConfig.memphis())


class TestLinReg:
    def test_recovers_true_coefficients(self, sess):
        X_data = RNG.random((300, 6))
        beta_true = RNG.standard_normal((6, 1))
        y_data = X_data @ beta_true
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        beta = lin_reg_ds(sess, X, y, reg=1e-8)
        assert np.allclose(beta.compute(), beta_true, atol=1e-6)

    def test_matches_closed_form(self, sess):
        X_data, y_data = RNG.random((100, 4)), RNG.random((100, 1))
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        beta = lin_reg_ds(sess, X, y, reg=0.5).compute()
        expect = np.linalg.solve(
            X_data.T @ X_data + 0.5 * np.eye(4), X_data.T @ y_data
        )
        assert np.allclose(beta, expect)

    def test_r2_of_perfect_fit_is_one(self, sess):
        y = sess.read(RNG.random((50, 1)), "y")
        assert r2_score(sess, y, y).item() == pytest.approx(1.0)

    def test_r2_of_mean_predictor_is_zero(self, sess):
        y_data = RNG.random((50, 1))
        y = sess.read(y_data, "y")
        mean = sess.read(np.full((50, 1), y_data.mean()), "m")
        assert r2_score(sess, y, mean).item() == pytest.approx(0.0, abs=1e-9)

    def test_stronger_regularization_shrinks_weights(self, sess):
        X_data, y_data = RNG.random((200, 5)), RNG.random((200, 1))
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        weak = np.abs(lin_reg_ds(sess, X, y, 0.001).compute()).sum()
        strong = np.abs(lin_reg_ds(sess, X, y, 1000.0).compute()).sum()
        assert strong < weak


class TestL2svm:
    def _separable(self, n=400, d=8):
        X = RNG.random((n, d))
        w = RNG.standard_normal((d, 1))
        y = np.where(X @ w > np.median(X @ w), 1.0, -1.0)
        return X, y

    def test_learns_separable_data(self, sess):
        X_data, y_data = self._separable()
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        w = l2svm(sess, X, y, reg=0.01, max_iterations=30)
        acc = l2svm_accuracy(sess, l2svm_predict(sess, X, w), y)
        assert acc > 0.9

    def test_intercept_adds_column(self, sess):
        X_data, y_data = self._separable(100, 4)
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        w = l2svm(sess, X, y, intercept=1, max_iterations=3)
        assert w.nrow == 5

    def test_deterministic(self, sess):
        X_data, y_data = self._separable(100, 4)
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        w1 = l2svm(sess, X, y, reg=0.1, max_iterations=5).compute()
        w2 = l2svm(sess, X, y, reg=0.1, max_iterations=5).compute()
        assert np.allclose(w1, w2)


class TestMlogreg:
    def test_learns_three_classes(self, sess):
        n, d, k = 450, 6, 3
        rng = np.random.default_rng(11)
        X_data = rng.random((n, d))
        w = rng.standard_normal((d, k))
        labels = np.argmax(X_data @ w, axis=1)
        Y_data = np.eye(k)[labels]
        X, Y = sess.read(X_data, "X"), sess.read(Y_data, "Y")
        W = mlogreg(sess, X, Y, reg=0.001, max_iterations=50, step_size=1.0)
        probs = mlogreg_predict(sess, X, W)
        # mlogreg_accuracy expects one-hot labels
        assert mlogreg_accuracy(sess, probs, Y) > 0.8

    def test_probabilities_sum_to_one(self, sess):
        X = sess.read(RNG.random((40, 5)), "X")
        Y = sess.read(np.eye(2)[RNG.integers(0, 2, 40)], "Y")
        W = mlogreg(sess, X, Y, max_iterations=2)
        probs = mlogreg_predict(sess, X, W).compute()
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestPnmf:
    def test_loss_decreases(self, sess):
        data = RNG.random((60, 40)) + 0.05
        X = sess.read(data, "X")
        W1, H1 = pnmf(sess, X, rank=4, iterations=1)
        loss_1 = pnmf_loss(sess, X, W1, H1)
        W5, H5 = pnmf(sess, X, rank=4, iterations=8)
        loss_5 = pnmf_loss(sess, X, W5, H5)
        assert loss_5 < loss_1

    def test_factors_nonnegative(self, sess):
        X = sess.read(RNG.random((40, 30)) + 0.05, "X")
        W, H = pnmf(sess, X, rank=3, iterations=4)
        assert (W.compute() >= 0).all()
        assert (H.compute() >= 0).all()

    def test_reconstruction_improves_over_random(self, sess):
        data = (RNG.random((50, 8)) @ RNG.random((8, 30))) + 0.01
        X = sess.read(data, "X")
        W, H = pnmf(sess, X, rank=8, iterations=15)
        recon = W.compute() @ H.compute()
        err = np.abs(recon - data).mean() / data.mean()
        assert err < 0.5


class TestTuningDrivers:
    def test_kfold_indices_cover_all_rows(self):
        folds = kfold_indices(103, 4)
        assert folds[0][0] == 0
        assert folds[-1][1] == 103
        covered = sum(stop - start for start, stop in folds)
        assert covered == 103

    def test_grid_search_picks_best(self, sess):
        X_data = RNG.random((200, 5))
        y_data = X_data @ RNG.standard_normal((5, 1))
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        best_reg, best_r2 = grid_search_linreg(
            sess, X, y, [1e-6, 1.0, 1000.0]
        )
        assert best_reg == 1e-6  # noiseless data favors least shrinkage
        assert best_r2 > 0.999

    def test_cross_validation_reasonable(self, sess):
        X_data = RNG.random((300, 5))
        y_data = X_data @ RNG.standard_normal((5, 1)) \
            + 0.01 * RNG.standard_normal((300, 1))
        X, y = sess.read(X_data, "X"), sess.read(y_data, "y")
        score = cross_validate_linreg(sess, X, y, reg=0.001, folds=3)
        assert score > 0.95

    def test_successive_halving_halves(self, sess):
        trained = []

        def train(cfg, iters):
            trained.append((cfg["v"], iters))
            return cfg["v"]

        def score(model, cfg):
            return float(model)

        configs = [{"v": v} for v in range(8)]
        best_cfg, best_model, best_score = successive_halving(
            sess, configs, train, score, brackets=3, start_iterations=1
        )
        assert best_cfg["v"] == 7
        # bracket sizes 8, 4, 2 with doubling budgets 1, 2, 4
        budgets = [it for _, it in trained]
        assert budgets.count(1) == 8
        assert budgets.count(2) == 4
        assert budgets.count(4) == 2

    def test_weighted_ensemble_prefers_better_model(self, sess):
        n, k = 200, 3
        labels = RNG.integers(1, k + 1, n).astype(float).reshape(-1, 1)
        perfect = np.eye(k)[(labels.ravel() - 1).astype(int)]
        noise = RNG.random((n, k))
        noise /= noise.sum(axis=1, keepdims=True)
        truth = sess.read(labels, "t")
        a = sess.read(perfect, "a")
        b = sess.read(noise, "b")
        w, acc = weighted_ensemble(sess, a, b, truth,
                                   [0.0, 0.25, 0.5, 0.75, 1.0])
        assert w >= 0.25  # nonzero weight on the perfect model
        assert acc == pytest.approx(1.0)
