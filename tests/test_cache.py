"""Tests for the hierarchical lineage cache, policies, and Spark manager."""

import numpy as np
import pytest

from repro.backends.spark import SparkBackend, SparkContext
from repro.common.config import (
    CacheConfig,
    EvictionPolicyName,
    SparkConfig,
)
from repro.common.simclock import SimClock
from repro.common.stats import Stats
from repro.core.cache import LineageCache
from repro.core.entry import BACKEND_CP, BACKEND_SP, CacheEntry, EntryStatus
from repro.core.policies import (
    CostSizePolicy,
    LrcPolicy,
    LruPolicy,
    MrdPolicy,
    make_policy,
)
from repro.core.spark_cache import SparkCacheManager
from repro.lineage.item import LineageItem, dataset
from repro.runtime.values import MatrixValue


def key(tag: str) -> LineageItem:
    return LineageItem("exp", (tag,), (dataset("X"),))


def value(cells=100):
    return MatrixValue(np.ones((cells, 1)))


def make_cache(budget=10_000, policy=EvictionPolicyName.COST_SIZE,
               unlimited=False, delay=1):
    cfg = CacheConfig(driver_cache_bytes=budget, policy=policy,
                      unlimited=unlimited, delay_factor=delay)
    return LineageCache(cfg, Stats())


class TestLineageCacheBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        k = key("a")
        assert cache.probe(k) is None
        cache.put(k, value(), BACKEND_CP, 800, 100.0)
        entry = cache.probe(key("a"))  # structurally equal key
        assert entry is not None
        assert entry.hits == 1

    def test_put_returns_entry_when_cached(self):
        cache = make_cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        assert entry is not None
        assert entry.status is EntryStatus.CACHED

    def test_stats_counters(self):
        cache = make_cache()
        cache.probe(key("a"))
        cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        cache.probe(key("a"))
        stats = cache.stats
        assert stats.get("cache/probes") == 2
        assert stats.get("cache/misses") == 1
        assert stats.get("cache/hits") == 1
        assert stats.get("cache/puts") == 1

    def test_cp_budget_enforced(self):
        cache = make_cache(budget=2000)
        cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        cache.put(key("b"), value(), BACKEND_CP, 800, 1.0)
        cache.put(key("c"), value(), BACKEND_CP, 800, 1.0)
        assert cache.cp_bytes <= 2000
        assert cache.stats.get("cache/evictions") >= 1

    def test_oversized_object_not_cached(self):
        cache = make_cache(budget=100)
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        assert entry is None
        assert cache.cp_bytes == 0

    def test_unlimited_skips_eviction(self):
        cache = make_cache(budget=100, unlimited=True)
        for i in range(10):
            cache.put(key(str(i)), value(), BACKEND_CP, 800, 1.0)
        assert cache.cached_count(BACKEND_CP) == 10
        assert cache.stats.get("cache/evictions") == 0

    def test_cost_size_evicts_cheapest_per_byte(self):
        cache = make_cache(budget=2000)
        cheap = cache.put(key("cheap"), value(), BACKEND_CP, 900, 1.0)
        exp = cache.put(key("exp"), value(), BACKEND_CP, 900, 1e9)
        cache.put(key("new"), value(), BACKEND_CP, 900, 10.0)
        assert cheap.status is EntryStatus.EVICTED
        assert exp.status is EntryStatus.CACHED

    def test_remove_and_clear(self):
        cache = make_cache()
        cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        cache.remove(key("a"))
        assert cache.cp_bytes == 0
        cache.put(key("b"), value(), BACKEND_CP, 800, 1.0)
        cache.clear()
        assert len(cache) == 0


class TestDelayedCaching:
    def test_delay_two_defers_first_put(self):
        cache = make_cache(delay=2)
        assert cache.put(key("a"), value(), BACKEND_CP, 800, 1.0) is None
        assert cache.probe(key("a")) is None  # placeholder: still a miss
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        assert entry is not None
        assert cache.probe(key("a")) is not None

    def test_delay_counts_per_key(self):
        cache = make_cache(delay=3)
        for i in range(2):
            assert cache.put(key("a"), value(), BACKEND_CP, 800, 1.0) is None
        assert cache.put(key("a"), value(), BACKEND_CP, 800, 1.0) is not None
        # an unrelated key starts its own count
        assert cache.put(key("b"), value(), BACKEND_CP, 800, 1.0) is None

    def test_placeholder_tracks_misses(self):
        cache = make_cache(delay=5)
        cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        cache.probe(key("a"))
        entry = cache.get_entry(key("a"))
        assert entry.misses == 1
        assert cache.stats.get("cache/delayed_entries") == 1

    def test_override_delay_per_put(self):
        cache = make_cache(delay=4)
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0,
                          delay_factor=1)
        assert entry is not None


class TestPolicies:
    def _entry(self, hits, size, cost, last_access=0.0):
        entry = CacheEntry(key(f"{hits}-{size}-{cost}"), cost, size)
        entry.hits = hits
        entry.last_access = last_access
        entry.status = EntryStatus.CACHED
        return entry

    def test_factory(self):
        for name, cls in [
            (EvictionPolicyName.COST_SIZE, CostSizePolicy),
            (EvictionPolicyName.LRU, LruPolicy),
            (EvictionPolicyName.LRC, LrcPolicy),
            (EvictionPolicyName.MRD, MrdPolicy),
        ]:
            assert isinstance(make_policy(name), cls)

    def test_cost_size_ordering(self):
        policy = CostSizePolicy()
        cheap_big = self._entry(hits=0, size=1000, cost=1.0)
        costly_small = self._entry(hits=5, size=10, cost=1000.0)
        assert policy.score(cheap_big, 0) < policy.score(costly_small, 0)

    def test_lru_ordering(self):
        policy = LruPolicy()
        old = self._entry(0, 10, 1.0, last_access=1.0)
        recent = self._entry(0, 10, 1.0, last_access=9.0)
        assert policy.score(old, 10) < policy.score(recent, 10)

    def test_lrc_ordering(self):
        policy = LrcPolicy()
        rare = self._entry(hits=1, size=10, cost=1.0)
        frequent = self._entry(hits=50, size=10, cost=1.0)
        assert policy.score(rare, 0) < policy.score(frequent, 0)

    def test_mrd_far_and_rare_evicted_first(self):
        policy = MrdPolicy()
        far = self._entry(hits=1, size=10, cost=1.0, last_access=0.0)
        near = self._entry(hits=1, size=10, cost=1.0, last_access=90.0)
        assert policy.score(far, 100.0) < policy.score(near, 100.0)


class TestSparkCacheManager:
    def _setup(self, executor_memory=400_000, fraction=0.8, k=3):
        stats = Stats()
        clock = SimClock()
        spark_cfg = SparkConfig(block_size_rows=100, num_executors=1,
                                executor_memory=executor_memory)
        sc = SparkContext(spark_cfg, clock, stats)
        sb = SparkBackend(sc)
        cache_cfg = CacheConfig(spark_cache_fraction=fraction,
                                async_materialize_after_misses=k)
        cache = LineageCache(cache_cfg, stats)
        mgr = SparkCacheManager(cache, sc, cache_cfg, stats)
        return mgr, cache, sc, sb, stats

    def _dm(self, sb, rows=300, cols=4, seed=0):
        return sb.distribute(
            MatrixValue(np.random.default_rng(seed).random((rows, cols))),
        )

    def test_cache_rdd_persists_lazily(self):
        mgr, cache, sc, sb, stats = self._setup()
        dm = self._dm(sb)
        entry = CacheEntry(key("a"), 100.0, dm.nbytes)
        assert mgr.cache_rdd(entry, dm)
        assert dm.rdd.is_persisted
        assert not entry.rdd_materialized
        assert stats.get("spark/rdds_persisted") == 1

    def test_reuse_unmaterialized_rdd(self):
        mgr, cache, sc, sb, stats = self._setup()
        dm = self._dm(sb)
        entry = CacheEntry(key("a"), 100.0, dm.nbytes)
        mgr.cache_rdd(entry, dm)
        out = mgr.reuse_rdd(entry)
        assert out is dm
        assert stats.get("spark/rdds_reused") == 1

    def test_async_materialize_after_k_misses(self):
        mgr, cache, sc, sb, stats = self._setup(k=3)
        dm = self._dm(sb)
        entry = CacheEntry(key("a"), 100.0, dm.nbytes)
        mgr.cache_rdd(entry, dm)
        for _ in range(3):
            mgr.reuse_rdd(entry)
        assert stats.get("spark/async_materializations") == 1
        assert entry.rdd_materialized

    def test_lazy_gc_destroys_upstream_broadcasts(self):
        mgr, cache, sc, sb, stats = self._setup()
        base = self._dm(sb)
        bc = sb.broadcast(MatrixValue(np.ones((4, 2))))
        mapped = sb.mapmm(base, bc, 2)
        entry = CacheEntry(key("mm"), 100.0, mapped.nbytes)
        mgr.cache_rdd(entry, mapped)
        sc.collect(mapped.rdd)  # materialize
        mgr.reuse_rdd(entry)
        assert bc.destroyed
        assert stats.get("spark/dangling_cleaned") >= 1

    def test_eviction_on_budget_overflow(self):
        # budget = 400_000 * 0.6 * 0.5 * 0.8 = 96_000 bytes
        mgr, cache, sc, sb, stats = self._setup()
        entries = []
        for i in range(8):
            dm = self._dm(sb, rows=2000, cols=4, seed=i)  # 64_000 bytes each
            entry = cache.put(key(str(i)), dm, BACKEND_SP, dm.nbytes, 10.0)
            assert entry is not None
            mgr.cache_rdd(entry, dm)
            entries.append(entry)
        assert mgr.sp_bytes <= mgr.budget
        assert stats.get("spark/rdds_unpersisted") >= 1

    def test_make_space_rejects_oversized(self):
        mgr, cache, sc, sb, stats = self._setup()
        assert not mgr.make_space(mgr.budget + 1)

    def test_evicted_entry_loses_sp_payload(self):
        mgr, cache, sc, sb, stats = self._setup()
        dm = self._dm(sb)
        entry = cache.put(key("a"), dm, BACKEND_SP, dm.nbytes, 10.0)
        mgr.cache_rdd(entry, dm)
        mgr.evict(entry)
        assert BACKEND_SP not in entry.payloads
        assert not dm.rdd.is_persisted


class TestGpuInvalidation:
    def test_invalidate_drops_gpu_payload(self):
        cache = make_cache()

        class FakePtr:
            id = 7
            freed = False

        class FakeData:
            ptr = FakePtr()

        data = FakeData()
        entry = cache.put(key("g"), data, "GPU", 1024, 5.0)
        assert entry is not None
        cache.on_gpu_invalidate(data.ptr)
        assert "GPU" not in entry.payloads
        assert entry.status is EntryStatus.EVICTED
