"""Tests for the Spark simulator: RDDs, scheduler, memory, broadcast."""

import numpy as np
import pytest

from repro.backends.spark import SparkBackend, SparkContext
from repro.common.config import SparkConfig, StorageLevel
from repro.common.simclock import CLUSTER, HOST, SimClock
from repro.common.stats import Stats
from repro.runtime.values import MatrixValue


@pytest.fixture()
def ctx():
    cfg = SparkConfig(block_size_rows=100)
    return SparkContext(cfg, SimClock(), Stats())


@pytest.fixture()
def sb(ctx):
    return SparkBackend(ctx)


def _mat(rows, cols, seed=0):
    return MatrixValue(np.random.default_rng(seed).random((rows, cols)))


class TestRddBasics:
    def test_parallelize_partitions(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4)))
        assert rdd.num_partitions == 3  # 100+100+50

    def test_transformations_are_lazy(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4)))
        rdd.map_blocks(lambda b: b * 2, "double")
        assert ctx.stats.get("spark/jobs") == 0

    def test_collect_triggers_one_job(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4)))
        out = ctx.collect(rdd.map_blocks(lambda b: b * 2, "double"))
        assert np.allclose(out, 2.0)
        assert ctx.stats.get("spark/jobs") == 1

    def test_collect_advances_host_clock(self, ctx):
        rdd = ctx.parallelize(np.ones((500, 10)))
        ctx.collect(rdd)
        assert ctx.clock.now(HOST) > 0
        assert ctx.clock.now(CLUSTER) > 0

    def test_zip_requires_alignment(self, ctx):
        a = ctx.parallelize(np.ones((200, 2)))
        b = ctx.parallelize(np.ones((300, 2)))
        with pytest.raises(ValueError):
            a.zip_blocks(b, lambda x, y: x + y, "+")

    def test_count(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4)))
        assert ctx.count(rdd) == 250

    def test_async_collect_future(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4)))
        future = ctx.collect_async(rdd)
        # host has not advanced to job completion yet
        assert ctx.clock.now(HOST) < future.ready_time
        out = future.wait()
        assert out.shape == (250, 4)
        assert ctx.clock.now(HOST) >= future.ready_time


class TestJobLanes:
    def test_concurrent_jobs_overlap(self, ctx):
        rdd1 = ctx.parallelize(np.ones((1000, 50)))
        rdd2 = ctx.parallelize(np.ones((1000, 50)))
        f1 = ctx.collect_async(rdd1.map_blocks(lambda b: b + 1, "a"))
        f2 = ctx.collect_async(rdd2.map_blocks(lambda b: b + 1, "b"))
        # second job did not start after the first ended (lanes overlap)
        assert f2.ready_time < 2 * f1.ready_time


class TestDistributedOps:
    def test_tsmm(self, sb):
        x = _mat(500, 8)
        out = sb.collect(sb.tsmm(sb.distribute(x)))
        assert np.allclose(out.data, x.data.T @ x.data)

    def test_mapmm(self, sb):
        x, b = _mat(300, 10), _mat(10, 3, seed=1)
        bc = sb.broadcast(b)
        out = sb.collect(sb.mapmm(sb.distribute(x), bc, 3))
        assert np.allclose(out.data, x.data @ b.data)

    def test_bcmm_left(self, sb):
        x, v = _mat(350, 6), _mat(1, 350, seed=2)
        out = sb.collect(sb.bcmm_left(sb.broadcast(v), 1, sb.distribute(x)))
        assert np.allclose(out.data, v.data @ x.data)

    def test_cpmm(self, sb):
        a, b = _mat(400, 5), _mat(400, 7, seed=3)
        out = sb.collect(sb.cpmm(sb.distribute(a), sb.distribute(b)))
        assert np.allclose(out.data, a.data.T @ b.data)

    def test_transpose(self, sb):
        x = _mat(250, 30)
        out = sb.collect(sb.transpose(sb.distribute(x)))
        assert np.allclose(out.data, x.data.T)

    def test_elementwise_zip_scalar_broadcast(self, sb):
        x = _mat(220, 5)
        dx = sb.distribute(x)
        assert np.allclose(
            sb.collect(sb.elementwise_zip("*", dx, dx)).data, x.data**2
        )
        assert np.allclose(
            sb.collect(sb.elementwise_scalar("+", dx, 1.0)).data, x.data + 1
        )

    def test_elementwise_broadcast_vector(self, sb):
        x, v = _mat(220, 5), _mat(1, 5, seed=4)
        out = sb.collect(sb.elementwise_broadcast(
            "-", sb.distribute(x), sb.broadcast(v), 5
        ))
        assert np.allclose(out.data, x.data - v.data)

    def test_unary(self, sb):
        x = _mat(150, 4)
        out = sb.collect(sb.unary("exp", sb.distribute(x)))
        assert np.allclose(out.data, np.exp(x.data))

    def test_aggregates(self, sb):
        x = _mat(330, 6)
        dx = sb.distribute(x)
        assert np.isclose(sb.sum_action(dx), x.data.sum())
        assert np.allclose(sb.col_sums_action(dx).data, x.data.sum(0, keepdims=True))
        assert np.allclose(sb.collect(sb.row_sums(dx)).data,
                           x.data.sum(1, keepdims=True))

    def test_rbind(self, sb):
        a, b = _mat(120, 3), _mat(80, 3, seed=9)
        out = sb.collect(sb.rbind(sb.distribute(a), sb.distribute(b)))
        assert np.allclose(out.data, np.vstack([a.data, b.data]))


class TestPersistence:
    def test_persist_is_lazy(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4))).persist()
        info = ctx.block_manager.rdd_storage_info(rdd.id, rdd.num_partitions)
        assert info["num_cached_partitions"] == 0

    def test_materialized_after_job(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4))) \
            .map_blocks(lambda b: b + 1, "inc").persist()
        ctx.collect(rdd)
        info = ctx.block_manager.rdd_storage_info(rdd.id, rdd.num_partitions)
        assert info["fully_cached"]

    def test_cached_partitions_skip_recompute(self, ctx):
        calls = []

        def fn(b):
            calls.append(1)
            return b + 1

        rdd = ctx.parallelize(np.ones((250, 4))).map_blocks(fn, "inc").persist()
        ctx.collect(rdd)
        first = len(calls)
        ctx.collect(rdd)
        assert len(calls) == first  # served from cache

    def test_unpersist_drops_partitions(self, ctx):
        rdd = ctx.parallelize(np.ones((250, 4))) \
            .map_blocks(lambda b: b, "id").persist()
        ctx.collect(rdd)
        rdd.unpersist()
        info = ctx.block_manager.rdd_storage_info(rdd.id, rdd.num_partitions)
        assert info["num_cached_partitions"] == 0

    def test_eviction_lru_partitions(self):
        cfg = SparkConfig(block_size_rows=100, num_executors=1,
                          executor_memory=40_000)
        ctx = SparkContext(cfg, SimClock(), Stats())
        # storage capacity = 40000*0.6*0.5 = 12000 bytes; each partition
        # 100x4x8 = 3200 bytes
        first = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b, "a").persist(StorageLevel.MEMORY_ONLY)
        ctx.collect(first)
        second = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b, "b").persist(StorageLevel.MEMORY_ONLY)
        ctx.collect(second)
        assert ctx.stats.get("spark/partitions_evicted") > 0

    def test_evicted_partition_recomputed(self):
        cfg = SparkConfig(block_size_rows=100, num_executors=1,
                          executor_memory=40_000)
        ctx = SparkContext(cfg, SimClock(), Stats())
        first = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b * 2, "a").persist(StorageLevel.MEMORY_ONLY)
        ctx.collect(first)
        second = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b * 3, "b").persist(StorageLevel.MEMORY_ONLY)
        ctx.collect(second)  # evicts partitions of first
        out = ctx.collect(first)  # recomputes them from lineage
        assert np.allclose(out, 2.0)
        assert ctx.stats.get("spark/partitions_recomputed") > 0

    def test_memory_and_disk_spills(self):
        cfg = SparkConfig(block_size_rows=100, num_executors=1,
                          executor_memory=40_000)
        ctx = SparkContext(cfg, SimClock(), Stats())
        a = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b, "a").persist(StorageLevel.MEMORY_AND_DISK)
        ctx.collect(a)
        b = ctx.parallelize(np.ones((300, 4))) \
            .map_blocks(lambda b: b, "b").persist(StorageLevel.MEMORY_AND_DISK)
        ctx.collect(b)
        assert ctx.stats.get("spark/partitions_spilled") > 0
        # no partitions lost: both still fully readable
        assert np.allclose(ctx.collect(a), 1.0)


class TestShuffleFiles:
    def test_shuffle_files_reused_across_jobs(self, sb, ctx):
        x = _mat(500, 8)
        mm = sb.tsmm(sb.distribute(x))
        sb.collect(mm)
        tasks_before = ctx.stats.get("spark/tasks")
        sb.collect(mm)  # map side skipped: shuffle files retained
        delta = ctx.stats.get("spark/tasks") - tasks_before
        assert delta == 1  # only the single reduce/result task
        assert ctx.stats.get("spark/shuffle_files_reused") >= 1


class TestBroadcast:
    def test_driver_memory_retained_until_destroy(self, ctx):
        bc = ctx.broadcast(np.ones((100, 100)))
        assert ctx.driver_retained_bytes == 80_000
        bc.destroy()
        assert ctx.driver_retained_bytes == 0

    def test_use_after_destroy_raises(self, ctx, sb):
        x = _mat(300, 10)
        b = _mat(10, 2, seed=5)
        bc = sb.broadcast(b)
        out = sb.mapmm(sb.distribute(x), bc, 2)
        bc.destroy()
        with pytest.raises(RuntimeError):
            sb.collect(out)

    def test_chunking(self, ctx):
        bc = ctx.broadcast(np.ones((1024, 1024)))  # 8 MB -> 2 chunks
        assert bc.num_chunks == 2
