"""Tests for runtime values and the handle API surface."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MemphisConfig, Session
from repro.runtime.values import (
    MatrixValue,
    ScalarValue,
    as_matrix,
    make_value,
    value_bytes,
)


class TestValues:
    def test_matrix_coerces_1d(self):
        v = MatrixValue(np.arange(4.0))
        assert v.shape == (4, 1)

    def test_matrix_rejects_3d(self):
        with pytest.raises(ValueError):
            MatrixValue(np.zeros((2, 2, 2)))

    def test_nbytes_dense(self):
        assert MatrixValue(np.zeros((10, 5))).nbytes == 400

    def test_scalar_float(self):
        s = ScalarValue(2.5)
        assert s.as_float() == 2.5
        assert s.shape == (1, 1)
        assert s.nbytes == 8

    def test_as_matrix_on_scalar(self):
        assert as_matrix(ScalarValue(3.0))[0, 0] == 3.0

    def test_make_value_dispatch(self):
        assert isinstance(make_value(np.zeros((2, 2))), MatrixValue)
        assert isinstance(make_value(1.5), ScalarValue)
        assert isinstance(make_value(np.float64(1.5)), ScalarValue)
        assert make_value(np.int64(3)).value == 3
        with pytest.raises(TypeError):
            make_value(object())

    def test_value_bytes(self):
        assert value_bytes(ScalarValue(1.0)) == 8

    def test_copy_is_independent(self):
        v = MatrixValue(np.ones((2, 2)))
        c = v.copy()
        c.data[0, 0] = 9
        assert v.data[0, 0] == 1.0


@pytest.fixture()
def sess():
    return Session(MemphisConfig.memphis())


class TestHandleSurface:
    def test_operator_sugar_matches_numpy(self, sess):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[2.0, 0.5], [1.0, 2.0]])
        A, B = sess.read(a, "A"), sess.read(b, "B")
        cases = [
            (A + B, a + b), (A - B, a - b), (A * B, a * b),
            (A / B, a / b), (A ** 2.0, a ** 2), (A ^ 2.0, a ** 2),
            (A @ B, a @ b), (-A, -a),
            (2.0 + A, 2 + a), (2.0 - A, 2 - a), (2.0 * A, 2 * a),
            (2.0 / A, 2 / a),
            (A.maximum(B), np.maximum(a, b)),
            (A.minimum(2.0), np.minimum(a, 2)),
        ]
        for handle, expect in cases:
            assert np.allclose(handle.compute(), expect)

    def test_comparisons(self, sess):
        a = np.array([[1.0, 5.0]])
        A = sess.read(a, "A")
        assert np.allclose((A > 2).compute(), a > 2)
        assert np.allclose((A <= 1).compute(), a <= 1)
        assert np.allclose(A.eq(5.0).compute(), a == 5)

    def test_unary_methods(self, sess):
        a = np.array([[0.5, 2.0]])
        A = sess.read(a, "A")
        assert np.allclose(A.exp().compute(), np.exp(a))
        assert np.allclose(A.log().compute(), np.log(a))
        assert np.allclose(A.sqrt().compute(), np.sqrt(a))
        assert np.allclose(A.tanh().compute(), np.tanh(a))
        assert np.allclose(A.sigmoid().compute(), 1 / (1 + np.exp(-a)))

    def test_aggregate_methods(self, sess):
        a = np.arange(12.0).reshape(3, 4)
        A = sess.read(a, "A")
        assert A.sum().item() == a.sum()
        assert A.mean().item() == a.mean()
        assert A.max().item() == a.max()
        assert A.min().item() == a.min()
        assert np.allclose(A.row_sums().compute(), a.sum(1, keepdims=True))
        assert np.allclose(A.col_sums().compute(), a.sum(0, keepdims=True))
        assert np.allclose(A.col_means().compute(), a.mean(0, keepdims=True))
        assert np.allclose(A.col_maxs().compute(), a.max(0, keepdims=True))
        assert np.allclose(A.col_mins().compute(), a.min(0, keepdims=True))
        assert np.allclose(A.row_maxs().compute(), a.max(1, keepdims=True))

    def test_indexing_forms(self, sess):
        a = np.arange(20.0).reshape(4, 5)
        A = sess.read(a, "A")
        assert np.allclose(A[1:3, :].compute(), a[1:3, :])
        assert np.allclose(A[:, 2:4].compute(), a[:, 2:4])
        assert np.allclose(A[2, 3].compute(), a[2:3, 3:4])

    def test_shapes_inferred_lazily(self, sess):
        A = sess.read(np.zeros((7, 3)), "A")
        out = (A.t() @ A) + 1.0
        assert out.shape == (3, 3)
        assert not out.is_evaluated

    def test_repr_states(self, sess):
        A = sess.read(np.zeros((2, 2)), "A")
        assert "evaluated" in repr(A)
        lazy = A + 1.0
        assert "lazy" in repr(lazy)

    def test_eq_identity_preserved(self, sess):
        # __eq__ stays identity so handles work in dicts/sets
        A = sess.read(np.zeros((2, 2)), "A")
        B = sess.read(np.zeros((2, 2)), "B")
        assert A != B
        assert len({A, B}) == 2


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=-10, max_value=10),
)
def test_property_scalar_ops_match_numpy(rows, cols, scalar):
    sess = Session(MemphisConfig.base())
    data = np.random.default_rng(rows * 7 + cols).random((rows, cols))
    A = sess.read(data, "A")
    assert np.allclose((A + scalar).compute(), data + scalar)
    assert np.allclose((A * scalar).compute(), data * scalar)
