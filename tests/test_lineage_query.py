"""Tests for lineage-trace query processing (model debugging)."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.lineage.item import LineageItem, dataset, literal
from repro.lineage.query import (
    common_subtraces,
    data_sources,
    depends_on,
    diff_traces,
    find_by_opcode,
    subtraces,
    to_dot,
    trace_stats,
)


def _trace(reg: float = 0.5) -> LineageItem:
    x = dataset("X")
    y = dataset("y")
    gram = LineageItem("ba+*", (), (LineageItem("r'", (), (x,)), x))
    rhs = LineageItem("ba+*", (), (LineageItem("r'", (), (y,)), x))
    reg_item = LineageItem("+", (), (gram, literal(reg)))
    return LineageItem("solve", (), (reg_item, rhs))


class TestTraceStats:
    def test_counts(self):
        stats = trace_stats(_trace())
        assert stats.num_data_sources == 2
        assert stats.num_literals == 1
        assert stats.opcode_histogram["ba+*"] == 2
        assert stats.num_operators == stats.num_nodes - 3

    def test_height(self):
        assert trace_stats(_trace()).height == _trace().height


class TestQueries:
    def test_find_by_opcode(self):
        assert len(find_by_opcode(_trace(), "r'")) == 2
        assert len(find_by_opcode(_trace(), "solve")) == 1

    def test_data_sources_sorted_unique(self):
        assert data_sources(_trace()) == ["X", "y"]

    def test_depends_on(self):
        trace = _trace()
        assert depends_on(trace, "X")
        assert depends_on(trace, "y")
        assert not depends_on(trace, "Z")

    def test_subtraces_are_recomputable(self):
        sub = subtraces(_trace(), "ba+*")
        assert all(s.opcode == "ba+*" for s in sub)
        assert all(depends_on(s, "X") for s in sub)


class TestDiff:
    def test_equal_traces(self):
        diff = diff_traces(_trace(0.5), _trace(0.5))
        assert diff.equal
        assert diff.divergence is None

    def test_hyperparameter_change_located(self):
        diff = diff_traces(_trace(0.5), _trace(0.9))
        assert not diff.equal
        left, right = diff.divergence
        # divergence is the changed literal (or its immediate consumer)
        assert "lit" in (left.opcode, right.opcode) or \
            left.opcode == right.opcode == "+"

    def test_extra_step_reported_in_histogram(self):
        base = _trace()
        extended = LineageItem("exp", (), (base,))
        diff = diff_traces(extended, base)
        assert diff.only_left_ops.get("exp") == 1
        assert not diff.only_right_ops


class TestCommonSubtraces:
    def test_shared_gram_matrix_found(self):
        left, right = _trace(0.5), _trace(0.9)
        shared = common_subtraces(left, right)
        opcodes = sorted(s.opcode for s in shared)
        # the reg-independent parts are shared: X'X and (y'X)
        assert "ba+*" in opcodes

    def test_shared_are_maximal(self):
        left, right = _trace(0.5), _trace(0.9)
        shared = common_subtraces(left, right)
        ids = {id(s) for s in shared}
        for s in shared:
            for inner in s.iter_dag():
                if inner is not s:
                    assert id(inner) not in ids  # no nested duplicates

    def test_identical_traces_share_root(self):
        left = _trace()
        shared = common_subtraces(left, _trace())
        assert len(shared) == 1
        assert shared[0].opcode == "solve"


class TestDot:
    def test_renders_nodes_and_edges(self):
        dot = to_dot(_trace())
        assert dot.startswith("digraph")
        assert "solve" in dot
        assert "->" in dot

    def test_truncation(self):
        x = dataset("X")
        node = x
        for _ in range(50):
            node = LineageItem("exp", (), (node,))
        dot = to_dot(node, max_nodes=10)
        assert "truncated" in dot


class TestSessionIntegration:
    def test_query_real_session_trace(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(np.random.default_rng(0).random((30, 4)), "X")
        out = ((X.t() @ X) * 2.0).sum()
        item = sess.lineage_of(out)
        assert depends_on(item, "X")
        stats = trace_stats(item)
        assert stats.opcode_histogram.get("ba+*") == 1

    def test_explain_reuse_between_runs(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(np.random.default_rng(0).random((30, 4)), "X")
        a = (X.t() @ X) + 0.1
        b = (X.t() @ X) + 0.9
        item_a = sess.lineage_of(a.sum())
        item_b = sess.lineage_of(b.sum())
        shared = common_subtraces(item_a, item_b)
        assert any(s.opcode == "ba+*" for s in shared)
