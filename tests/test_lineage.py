"""Tests for lineage items, tracing, compaction, and serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import LineageError
from repro.lineage import (
    LineageItem,
    LineageMap,
    dags_equal,
    dataset,
    deserialize,
    function_item,
    literal,
    serialize,
)


def _chain(depth: int, leaf_name: str = "X") -> LineageItem:
    item = dataset(leaf_name)
    for _ in range(depth):
        item = LineageItem("exp", (), (item,))
    return item


class TestLineageItem:
    def test_equal_structures_are_equal(self):
        x = dataset("X")
        a = LineageItem("ba+*", (), (x, x))
        b = LineageItem("ba+*", (), (x, x))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_opcode_not_equal(self):
        x = dataset("X")
        assert LineageItem("+", (), (x, x)) != LineageItem("-", (), (x, x))

    def test_different_data_not_equal(self):
        x = dataset("X")
        a = LineageItem("rand", ("seed", 1), (x,))
        b = LineageItem("rand", ("seed", 2), (x,))
        assert a != b

    def test_different_leaf_not_equal(self):
        a = LineageItem("exp", (), (dataset("X"),))
        b = LineageItem("exp", (), (dataset("Y"),))
        assert a != b

    def test_structurally_equal_distinct_leaves(self):
        # distinct objects, same structure: equal by value
        a = LineageItem("exp", (), (dataset("X"),))
        b = LineageItem("exp", (), (dataset("X"),))
        assert a == b

    def test_height(self):
        x = dataset("X")
        assert x.height == 0
        op = LineageItem("exp", (), (x,))
        assert op.height == 1
        op2 = LineageItem("+", (), (op, x))
        assert op2.height == 2

    def test_height_mismatch_early_abort(self):
        assert not dags_equal(_chain(3), _chain(4))

    def test_deep_chain_equality_non_recursive(self):
        # would blow the recursion limit with a recursive implementation
        a = _chain(5000)
        b = _chain(5000)
        assert a == b

    def test_shared_subdag_identity_shortcut(self):
        shared = _chain(50)
        a = LineageItem("+", (), (shared, shared))
        b = LineageItem("+", (), (shared, shared))
        assert a == b

    def test_dag_size_counts_shared_once(self):
        shared = _chain(3)  # 4 nodes
        root = LineageItem("+", (), (shared, shared))
        assert root.dag_size() == 5

    def test_function_item(self):
        item = function_item("linreg", (dataset("X"), literal(0.1)))
        assert item.is_function
        assert not dataset("X").is_function

    def test_literal_leaf(self):
        assert literal(3.5).is_leaf
        assert literal(3.5) == literal(3.5)
        assert literal(3.5) != literal(4.5)


class TestLineageMap:
    def test_trace_binds_output(self):
        lmap = LineageMap()
        item = lmap.trace("exp", "out", ["X"])
        assert lmap.get("out") is item
        assert item.inputs[0].opcode == "data"

    def test_untracked_inputs_become_dataset_leaves(self):
        lmap = LineageMap()
        item = lmap.trace("+", "z", ["a", "b"])
        assert all(i.opcode == "data" for i in item.inputs)

    def test_trace_chains(self):
        lmap = LineageMap()
        lmap.trace("exp", "y", ["X"])
        item = lmap.trace("log", "z", ["y"])
        assert item.inputs[0].opcode == "exp"

    def test_compaction_replaces_entry(self):
        lmap = LineageMap()
        lmap.trace("exp", "y", ["X"])
        cached_key = LineageItem("exp", (), (dataset("X"),))
        lmap.compact("y", cached_key)
        assert lmap.get("y") is cached_key
        assert lmap.compactions == 1

    def test_compaction_reduces_distinct_nodes(self):
        lmap = LineageMap()
        lmap.trace("exp", "y1", ["X"])
        lmap.trace("exp", "y2", ["X"])
        before = lmap.total_dag_nodes()
        lmap.compact("y2", lmap.get("y1"))
        assert lmap.total_dag_nodes() < before

    def test_remove_and_clear(self):
        lmap = LineageMap()
        lmap.trace("exp", "y", ["X"])
        lmap.remove("y")
        assert lmap.get("y") is None
        lmap.trace("exp", "y", ["X"])
        lmap.clear()
        assert len(lmap) == 0

    def test_set_literal(self):
        lmap = LineageMap()
        item = lmap.set_literal("c", 2.5)
        assert item.data == (2.5,)


class TestSerialization:
    def test_roundtrip_simple(self):
        x = dataset("X")
        root = LineageItem("ba+*", (), (LineageItem("r'", (), (x,)), x))
        back = deserialize(serialize(root))
        assert back == root

    def test_roundtrip_with_data(self):
        root = LineageItem(
            "rand", ("rows", 10, "cols", 5, "seed", 42, "label", "a;b\\c"), ()
        )
        back = deserialize(serialize(root))
        assert back == root
        assert back.data == root.data

    def test_roundtrip_floats_bools(self):
        root = LineageItem("dropout", ("rate", 0.5, "flag", True), (dataset("X"),))
        back = deserialize(serialize(root))
        assert back.data == ("rate", 0.5, "flag", True)

    def test_shared_subdags_preserved(self):
        shared = LineageItem("exp", (), (dataset("X"),))
        root = LineageItem("+", (), (shared, shared))
        back = deserialize(serialize(root))
        assert back == root
        assert back.inputs[0] is back.inputs[1]

    def test_empty_log_rejected(self):
        with pytest.raises(LineageError):
            deserialize("")

    def test_malformed_line_rejected(self):
        with pytest.raises(LineageError):
            deserialize("not a lineage line")

    def test_forward_reference_rejected(self):
        with pytest.raises(LineageError):
            deserialize("(0) + () (1)")


@settings(max_examples=50, deadline=None)
@given(st.recursive(
    st.sampled_from(["X", "Y", "Z"]).map(dataset),
    lambda children: st.tuples(
        st.sampled_from(["+", "ba+*", "exp"]),
        st.lists(children, min_size=1, max_size=2),
    ).map(lambda t: LineageItem(t[0], (), tuple(t[1]))),
    max_leaves=12,
))
def test_property_serialize_roundtrip(item):
    """Any lineage DAG round-trips through serialization."""
    assert deserialize(serialize(item)) == item


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
def test_property_chain_equality_iff_same_depth(d1, d2):
    assert (_chain(d1) == _chain(d2)) == (d1 == d2)
