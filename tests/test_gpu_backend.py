"""Tests for the GPU simulator: device, stream, memory manager, backend."""

import numpy as np
import pytest

from repro.backends.gpu import (
    GpuBackend,
    GpuDevice,
    GpuMemoryManager,
    GpuStream,
    MODE_MALLOC,
    MODE_MEMPHIS,
    MODE_POOL,
)
from repro.common.config import GpuConfig
from repro.common.errors import GpuError, GpuOutOfMemoryError
from repro.common.simclock import DEVICE, HOST, SimClock
from repro.common.stats import Stats
from repro.runtime.values import MatrixValue


def small_config(capacity=64 * 1024):
    return GpuConfig(device_memory=capacity, alignment=512)


class TestGpuDevice:
    def test_malloc_free_roundtrip(self):
        dev = GpuDevice(small_config())
        off = dev.malloc(1000)
        assert off == 0
        assert dev.used_bytes == 1024  # aligned to 512
        dev.free(off)
        assert dev.used_bytes == 0

    def test_first_fit(self):
        dev = GpuDevice(small_config())
        a = dev.malloc(1024)
        b = dev.malloc(1024)
        dev.free(a)
        c = dev.malloc(512)
        assert c == a  # reuses the first hole

    def test_exhaustion_returns_none(self):
        dev = GpuDevice(small_config(capacity=2048))
        assert dev.malloc(2048) is not None
        assert dev.malloc(512) is None

    def test_fragmentation_blocks_large_alloc(self):
        dev = GpuDevice(small_config(capacity=4096))
        a = dev.malloc(1024)
        b = dev.malloc(1024)
        c = dev.malloc(1024)
        d = dev.malloc(1024)
        dev.free(a)
        dev.free(c)
        # 2048 bytes free but fragmented into two 1024 holes
        assert dev.free_bytes == 2048
        assert dev.malloc(2048) is None
        assert dev.fragmentation > 0

    def test_coalescing_adjacent_holes(self):
        dev = GpuDevice(small_config(capacity=4096))
        a = dev.malloc(1024)
        b = dev.malloc(1024)
        dev.free(a)
        dev.free(b)  # adjacent: coalesce into 2048 + tail
        assert dev.largest_free_block == 4096

    def test_defragment_compacts(self):
        dev = GpuDevice(small_config(capacity=4096))
        a = dev.malloc(1024)
        b = dev.malloc(1024)
        c = dev.malloc(1024)
        dev.free(b)
        moved = dev.defragment()
        assert moved == 1024  # c moved down
        assert dev.largest_free_block == 2048
        assert dev.relocation_map[c] == 1024

    def test_double_free_raises(self):
        dev = GpuDevice(small_config())
        off = dev.malloc(512)
        dev.free(off)
        with pytest.raises(GpuError):
            dev.free(off)

    def test_invalid_size(self):
        dev = GpuDevice(small_config())
        with pytest.raises(GpuError):
            dev.malloc(0)


class TestGpuStream:
    def test_kernel_async_for_host(self):
        clock, stats = SimClock(), Stats()
        stream = GpuStream(GpuConfig(), clock, stats)
        stream.launch(flops=1e9, bytes_touched=0)
        assert clock.now(HOST) < clock.now(DEVICE)

    def test_synchronize_joins(self):
        clock, stats = SimClock(), Stats()
        stream = GpuStream(GpuConfig(), clock, stats)
        stream.launch(flops=1e9, bytes_touched=0)
        stream.synchronize()
        assert clock.now(HOST) == clock.now(DEVICE)
        assert stats.get("gpu/synchronizations") == 1

    def test_d2h_copy_synchronizes(self):
        clock, stats = SimClock(), Stats()
        stream = GpuStream(GpuConfig(), clock, stats)
        stream.launch(flops=1e9, bytes_touched=0)
        stream.copy_d2h(1024)
        assert clock.now(HOST) >= clock.now(DEVICE) - 1e-12
        assert stats.get("gpu/d2h_copies") == 1

    def test_h2d_blocks_host(self):
        clock, stats = SimClock(), Stats()
        cfg = GpuConfig()
        stream = GpuStream(cfg, clock, stats)
        stream.copy_h2d(int(cfg.h2d_bandwidth_bytes_per_s))
        assert clock.now(HOST) == pytest.approx(1.0)


def manager(mode, capacity=64 * 1024):
    clock, stats = SimClock(), Stats()
    cfg = small_config(capacity)
    dev = GpuDevice(cfg)
    stream = GpuStream(cfg, clock, stats)
    return GpuMemoryManager(dev, stream, clock, stats, mode), stats


class TestMemoryManagerModes:
    def test_malloc_mode_frees_immediately(self):
        mgr, stats = manager(MODE_MALLOC)
        ptr = mgr.allocate(1024)
        mgr.release(ptr)
        assert ptr.freed
        assert stats.get("gpu/cuda_frees") == 1
        assert mgr.free_bytes_pooled == 0

    def test_pool_mode_recycles_exact_size(self):
        mgr, stats = manager(MODE_POOL)
        ptr = mgr.allocate(1024)
        mgr.release(ptr)
        assert not ptr.freed
        again = mgr.allocate(1024)
        assert again.offset == ptr.offset
        assert stats.get("gpu/pointers_recycled") == 1
        assert stats.get("gpu/cuda_mallocs") == 1  # only the first

    def test_pool_mode_flushes_on_pressure(self):
        mgr, stats = manager(MODE_POOL, capacity=4096)
        ptr = mgr.allocate(1024)
        mgr.release(ptr)
        big = mgr.allocate(4096)  # needs the pooled block freed
        assert big is not None
        assert stats.get("gpu/cuda_frees") >= 1

    def test_memphis_recycles_and_reuses(self):
        mgr, stats = manager(MODE_MEMPHIS)
        ptr = mgr.allocate(2048)
        mgr.release(ptr)
        revived = mgr.reuse_from_free(ptr)
        assert revived.ref_count == 1
        assert stats.get("gpu/pointers_reused") == 1
        mgr.release(revived)
        fresh = mgr.allocate(2048)
        assert fresh.offset == ptr.offset
        assert stats.get("gpu/pointers_recycled") == 1


class TestAlgorithmOne:
    def test_free_just_larger_on_miss(self):
        mgr, stats = manager(MODE_MEMPHIS, capacity=8192)
        big = mgr.allocate(4096)
        small = mgr.allocate(2048)
        fill = mgr.allocate(1536)
        mgr.release(big)
        # request 3072: no exact 3072 pool entry; frees the larger 4096
        out = mgr.allocate(3072)
        assert out is not None
        assert stats.get("gpu/cuda_frees") >= 1

    def test_repeatedly_free_until_success(self):
        mgr, _ = manager(MODE_MEMPHIS, capacity=8192)
        ptrs = [mgr.allocate(2048) for _ in range(4)]
        for p in ptrs:
            mgr.release(p)
        out = mgr.allocate(8192)  # must free several pooled pointers
        assert out is not None

    def test_oom_raises_with_context(self):
        mgr, _ = manager(MODE_MEMPHIS, capacity=4096)
        keep = mgr.allocate(4096)  # live, cannot be evicted
        with pytest.raises(GpuOutOfMemoryError) as err:
            mgr.allocate(1024)
        assert err.value.requested == 1024

    def test_defragmentation_rescues_fragmented_device(self):
        mgr, stats = manager(MODE_MEMPHIS, capacity=6144)
        a = mgr.allocate(2048)
        b = mgr.allocate(1024)
        c = mgr.allocate(2048)
        mgr.release(a)
        mgr.allocate(512)  # reuse part of a's hole -> fragmentation
        mgr.release(c)
        # flush pools then defrag to satisfy a large request
        out = mgr.allocate(3584)
        assert out is not None

    def test_invalidation_callback_fires_on_recycle(self):
        invalidated = []
        mgr, _ = manager(MODE_MEMPHIS)
        mgr.on_invalidate = invalidated.append
        ptr = mgr.allocate(1024)
        mgr.release(ptr)
        mgr.allocate(1024)  # recycles ptr
        assert invalidated == [ptr]

    def test_empty_cache_partial(self):
        mgr, _ = manager(MODE_MEMPHIS)
        ptrs = [mgr.allocate(1024) for _ in range(4)]
        for ptr in ptrs:
            mgr.release(ptr)
        freed = mgr.empty_cache(0.5)
        assert freed == 2
        assert mgr.free_bytes_pooled == 2048

    def test_empty_cache_full(self):
        mgr, _ = manager(MODE_MEMPHIS)
        ptrs = [mgr.allocate(size) for size in (512, 1024, 2048)]
        for ptr in ptrs:
            mgr.release(ptr)
        mgr.empty_cache(1.0)
        assert mgr.free_bytes_pooled == 0
        assert not mgr.free_lists


class TestEvictionScoring:
    def test_recent_and_expensive_survive(self):
        mgr, _ = manager(MODE_MEMPHIS)
        clock = mgr.clock
        old = mgr.allocate(1024)
        old.compute_cost = 1.0
        recent = mgr.allocate(1024)
        recent.compute_cost = 1e9
        mgr.release(old)
        clock.advance(1.0, DEVICE)
        recent.last_access = clock.now(DEVICE)
        mgr.release(recent)
        victim = mgr._global_victim()
        assert victim is old

    def test_short_lineage_preserved(self):
        # 1/h(o) term: shorter lineage -> higher score -> survives
        mgr, _ = manager(MODE_MEMPHIS)
        deep = mgr.allocate(1024)
        deep.lineage_height = 100
        shallow = mgr.allocate(1024)
        shallow.lineage_height = 1
        mgr.release(deep)
        mgr.release(shallow)
        victim = mgr._global_victim()
        assert victim is deep


class TestGpuBackend:
    def test_execute_computes_and_charges(self):
        clock, stats = SimClock(), Stats()
        backend = GpuBackend(GpuConfig(), clock, stats)
        x = backend.to_device(MatrixValue(np.ones((32, 32))))
        out = backend.execute("relu", [x], {})
        assert np.allclose(out.value.data, 1.0)
        assert clock.now(DEVICE) > 0
        assert stats.get("gpu/kernels_launched") == 1

    def test_scalar_aggregate_syncs(self):
        clock, stats = SimClock(), Stats()
        backend = GpuBackend(GpuConfig(), clock, stats)
        x = backend.to_device(MatrixValue(np.ones((16, 16))))
        out = backend.execute("uak+", [x], {})
        assert out.value == 256.0
        assert stats.get("gpu/synchronizations") >= 1

    def test_to_host_roundtrip(self):
        clock, stats = SimClock(), Stats()
        backend = GpuBackend(GpuConfig(), clock, stats)
        value = MatrixValue(np.arange(16, dtype=float).reshape(4, 4))
        data = backend.to_device(value)
        back = backend.to_host(data)
        assert np.allclose(back.data, value.data)
