"""Shared-substrate server tests: cross-session dedup, tenant fairness,
deterministic scheduling (docs/SERVER.md).

The multi-session scenario tests are additionally marked
``tier2_server`` so the server suite can be selected on its own
(``pytest -m tier2_server``); all of them are fast enough for tier 1.
"""

import numpy as np
import pytest

from repro.common.config import MemphisConfig
from repro.common.errors import AdmissionError
from repro.common.stats import (
    SERVER_BACKPRESSURE,
    SERVER_CROSS_HITS,
    SERVER_DEDUP_BYTES,
    SERVER_QUOTA_REFUSALS,
    SERVER_SCOPED_KEYS,
    SERVER_SESSIONS,
)
from repro.core.session import Session
from repro.core.substrate import (
    Substrate,
    clear_ambient_substrate,
    current_substrate,
    fingerprint,
    install_substrate,
)
from repro.faults.determinism import reset_ambient_state
from repro.lineage.item import LineageItem
from repro.memory import REGION_CP
from repro.server import Scheduler, run_server_demo


def _data(rows=32, cols=4, offset=0.0):
    return ((np.arange(rows * cols, dtype=np.float64) + offset)
            % 11.0).reshape(rows, cols)


def _ridge(session, data, labels, name="X"):
    """A fully deterministic (pure) pipeline over named datasets."""
    X = session.read(data, name)
    y = session.read(labels, name + "_y")
    gram = X.t() @ X
    xty = (y.t() @ X).t()
    beta = session.solve(gram + 0.1 * session.eye(data.shape[1]), xty)
    return session.compute(beta)


def _noise_sum(session, seed=None):
    """A pipeline rooted at ``rand`` (impure under the sharing rules)."""
    noise = session.rand(16, 4, seed=seed)
    return session.compute((noise.t() @ noise).sum())


def _shared(config=None):
    return Substrate.shared_substrate(
        config or MemphisConfig.server_session()
    )


# --------------------------------------------------------------- namespacing


class TestCrossSessionDedup:
    @pytest.mark.tier2_server
    def test_second_session_hits_pure_subexpressions(self):
        sub = _shared()
        data, labels = _data(), _data(32, 1, offset=5.0)
        s1 = Session(MemphisConfig.server_session(), substrate=sub,
                     tenant="alpha")
        r1 = _ridge(s1, data, labels)
        assert sub.stats.get(SERVER_CROSS_HITS) == 0
        s2 = Session(MemphisConfig.server_session(), substrate=sub,
                     tenant="beta")
        r2 = _ridge(s2, data, labels)
        assert sub.stats.get(SERVER_CROSS_HITS) > 0
        assert sub.stats.get(SERVER_DEDUP_BYTES) > 0
        assert sub.stats.get(SERVER_SESSIONS) == 2
        assert np.array_equal(r1, r2)

    @pytest.mark.tier2_server
    def test_shared_result_byte_identical_to_isolated(self):
        data, labels = _data(), _data(32, 1, offset=5.0)
        isolated = _ridge(Session(MemphisConfig.server_session()),
                          data, labels)
        sub = _shared()
        Session(MemphisConfig.server_session(), substrate=sub)  # warm
        first = Session(MemphisConfig.server_session(), substrate=sub,
                        tenant="alpha")
        warm = _ridge(first, data, labels)
        second = Session(MemphisConfig.server_session(), substrate=sub,
                         tenant="beta")
        reused = _ridge(second, data, labels)
        assert np.array_equal(isolated, warm)
        assert np.array_equal(isolated, reused)

    @pytest.mark.tier2_server
    def test_seeded_rand_stays_session_scoped(self):
        sub = _shared()
        s1 = Session(MemphisConfig.server_session(), substrate=sub)
        s2 = Session(MemphisConfig.server_session(), substrate=sub)
        r1 = _noise_sum(s1, seed=7)
        r2 = _noise_sum(s2, seed=7)
        # numerically equal (same seed) but never unified: zero
        # cross-session hits, every rand-rooted key wrapped per session
        assert np.array_equal(r1, r2)
        assert sub.stats.get(SERVER_CROSS_HITS) == 0
        assert sub.stats.get(SERVER_SCOPED_KEYS) > 0

    @pytest.mark.tier2_server
    def test_unseeded_rand_stays_session_scoped(self):
        sub = _shared()
        s1 = Session(MemphisConfig.server_session(), substrate=sub)
        s2 = Session(MemphisConfig.server_session(), substrate=sub)
        _noise_sum(s1)
        _noise_sum(s2)
        assert sub.stats.get(SERVER_CROSS_HITS) == 0

    @pytest.mark.tier2_server
    def test_conflicting_datasets_never_unify(self):
        sub = _shared()
        a, b = _data(), _data(offset=3.0)
        la, lb = _data(32, 1, offset=5.0), _data(32, 1, offset=6.0)
        s1 = Session(MemphisConfig.server_session(), substrate=sub)
        s2 = Session(MemphisConfig.server_session(), substrate=sub)
        r1 = _ridge(s1, a, la, name="D")
        r2 = _ridge(s2, b, lb, name="D")
        # same dataset *names*, different bytes: no false hits, each
        # session sees its own answer
        assert sub.stats.get(SERVER_CROSS_HITS) == 0
        assert np.array_equal(
            r1, _ridge(Session(MemphisConfig.server_session()), a, la,
                       name="D"))
        assert np.array_equal(
            r2, _ridge(Session(MemphisConfig.server_session()), b, lb,
                       name="D"))

    def test_fingerprint_distinguishes_content_not_name(self):
        assert fingerprint(_data()) == fingerprint(_data())
        assert fingerprint(_data()) != fingerprint(_data(offset=1.0))
        assert fingerprint(2.0) != fingerprint(3.0)


class TestPrivateSubstrateUnchanged:
    def test_default_session_is_private(self):
        session = Session(MemphisConfig.memphis())
        assert session.substrate.shared is False
        assert session._ctx is None
        assert session.cache._scope is None
        # ownership moved, object graph did not: the session's cache,
        # arbiter, and interner are exactly the substrate's
        assert session.cache is session.substrate.cache
        assert session.arbiter is session.substrate.arbiter
        assert session.lineage_interner is session.substrate.interner

    def test_private_sessions_byte_identical(self):
        data, labels = _data(), _data(32, 1, offset=5.0)
        r1 = _ridge(Session(MemphisConfig.memphis()), data, labels)
        r2 = _ridge(Session(MemphisConfig.memphis()), data, labels)
        assert np.array_equal(r1, r2)

    def test_private_session_reports_no_server_counters(self):
        session = Session(MemphisConfig.memphis())
        _ridge(session, _data(), _data(32, 1, offset=5.0))
        for name in (SERVER_CROSS_HITS, SERVER_DEDUP_BYTES,
                     SERVER_SCOPED_KEYS, SERVER_SESSIONS):
            assert session.stats.get(name) == 0


# ---------------------------------------------------------------- tenancy


def _small_cp_config(cp_bytes):
    cfg = MemphisConfig.server_session()
    cfg.cache.driver_cache_bytes = cp_bytes
    cfg.cache.spill_to_disk = False
    return cfg


def _fill(sub, ctx, n, size, prefix):
    """Directly put ``n`` cached CP entries for ``ctx``'s tenant."""
    sub.activate(ctx)
    keys = []
    for i in range(n):
        key = sub.interner.intern(f"{prefix}{i}", (i,), ())
        sub.cache.put(key, object(), "CP", size, compute_cost=1e9,
                      delay_factor=1)
        keys.append(key)
    return keys


class TestTenantFairShare:
    @pytest.mark.tier2_server
    def test_quota_caps_tenant_occupancy(self):
        sub = _shared(_small_cp_config(16384))
        sub.set_quota("greedy", 4096)
        ctx = sub.attach(None, "greedy")
        _fill(sub, ctx, 6, 2048, "g")
        region = sub.arbiter.region(REGION_CP)
        assert region.tenant_usage("greedy") <= 4096
        sub.arbiter.check()

    @pytest.mark.tier2_server
    def test_greedy_tenant_cannot_evict_pinned_entry(self):
        sub = _shared(_small_cp_config(8192))
        victim = sub.attach(None, "victim")
        [vkey] = _fill(sub, victim, 1, 2048, "v")
        assert victim.pin(vkey)
        greedy = sub.attach(None, "greedy")
        _fill(sub, greedy, 8, 2048, "g")
        entry = sub.cache._entries[vkey]
        assert entry.is_cached and entry.pinned
        assert sub.arbiter.region(REGION_CP).tenant_usage("victim") == 2048
        sub.arbiter.check()

    @pytest.mark.tier2_server
    def test_within_quota_tenant_protected_from_other_tenants(self):
        sub = _shared(_small_cp_config(8192))
        sub.set_quota("victim", 4096)
        victim = sub.attach(None, "victim")
        vkeys = _fill(sub, victim, 2, 2048, "v")
        greedy = sub.attach(None, "greedy")
        _fill(sub, greedy, 8, 2048, "g")
        region = sub.arbiter.region(REGION_CP)
        # the victim is within quota, so the greedy tenant could only
        # ever recycle its own bytes
        assert region.tenant_usage("victim") == 4096
        for key in vkeys:
            assert sub.cache._entries[key].is_cached
        sub.arbiter.check()

    @pytest.mark.tier2_server
    def test_over_quota_tenant_loses_protection(self):
        sub = _shared(_small_cp_config(8192))
        hog = sub.attach(None, "hog")
        _fill(sub, hog, 3, 2048, "h")  # unquota'd: 6144 bytes resident
        sub.set_quota("hog", 2048)  # quota set after the fact: over it
        other = sub.attach(None, "other")
        _fill(sub, other, 2, 2048, "o")
        region = sub.arbiter.region(REGION_CP)
        assert region.tenant_usage("other") == 4096
        sub.arbiter.check()

    def test_admit_refuses_over_quota_demand(self):
        sub = _shared(_small_cp_config(16384))
        sub.set_quota("t", 1024)
        ctx = sub.attach(None, "t")
        fired = []
        sub.arbiter.on_pressure(
            REGION_CP, lambda region, needed: fired.append(needed) and 0
        )
        with pytest.raises(AdmissionError) as err:
            ctx.admit({REGION_CP: 4096})
        assert err.value.tenant == "t"
        assert fired == [4096]
        assert sub.stats.get(SERVER_QUOTA_REFUSALS) == 1
        assert sub.stats.get(SERVER_BACKPRESSURE) == 1

    def test_admit_refuses_unsatisfiable_demand(self):
        sub = _shared(_small_cp_config(4096))
        ctx = sub.attach(None, "t")
        with pytest.raises(AdmissionError):
            ctx.admit({REGION_CP: 1 << 20})
        assert sub.stats.get(SERVER_BACKPRESSURE) == 1
        sub.arbiter.check()

    def test_admit_ignores_session_private_regions(self):
        sub = _shared(_small_cp_config(4096))
        ctx = sub.attach(None, "t")
        # GPU/Spark demands are per-session concerns; only the shared
        # CP/DISK subset is admitted here
        ctx.admit({"GPU": 1 << 40, REGION_CP: 512})
        sub.arbiter.check()


# --------------------------------------------------------------- scheduler


class TestScheduler:
    @pytest.mark.tier2_server
    def test_demo_reports_dedup_and_is_deterministic(self):
        first = run_server_demo(4, seed=3)
        second = run_server_demo(4, seed=3)
        assert first.ok
        assert first.server_counter(SERVER_CROSS_HITS) > 0
        assert first.server_counter(SERVER_DEDUP_BYTES) > 0
        assert first.as_record() == second.as_record()

    @pytest.mark.tier2_server
    def test_different_seeds_same_results(self):
        a = run_server_demo(3, seed=0)
        b = run_server_demo(3, seed=99)
        values_a = {r.name: r.value for r in a.results}
        values_b = {r.name: r.value for r in b.results}
        # interleave changes, answers must not
        assert values_a == values_b

    @pytest.mark.tier2_server
    def test_quota_refusal_surfaces_as_failed_request(self):
        sub = _shared()
        scheduler = Scheduler(sub, seed=0, max_retries=2)
        scheduler.add_tenant("starved", 64)  # nothing fits in 64 bytes
        scheduler.add_tenant("normal")
        from repro.server import pure_program

        starved = scheduler.submit("starved", pure_program(), name="s")
        scheduler.submit("normal", pure_program(), name="n")
        report = scheduler.run()
        by_name = {r.name: r for r in report.results}
        assert not by_name["s"].ok
        assert "admission refused" in by_name["s"].error
        assert by_name["s"].retries == 3
        assert by_name["n"].ok  # fault isolation: the other tenant runs
        assert report.server_counter(SERVER_QUOTA_REFUSALS) > 0
        assert report.server_counter(SERVER_BACKPRESSURE) > 0
        assert starved.tenant == "starved"

    @pytest.mark.tier2_server
    def test_program_exception_is_isolated(self):
        scheduler = Scheduler(seed=0)

        def boom(session):
            raise RuntimeError("tenant bug")

        scheduler.submit("a", boom, name="bad")
        scheduler.submit("a", lambda session: 42, name="good")
        report = scheduler.run()
        by_name = {r.name: r for r in report.results}
        assert not by_name["bad"].ok
        assert "tenant bug" in by_name["bad"].error
        assert by_name["good"].ok and by_name["good"].value == 42

    @pytest.mark.tier2_server
    def test_report_tenant_occupancy(self):
        report = run_server_demo(2, quota=1 << 20)
        assert set(report.tenants) == {"alpha", "beta"}
        for occ in report.tenants.values():
            assert occ["quota"] == 1 << 20
            assert 0 <= occ["used"] <= occ["quota"]


# ----------------------------------------------------------- ambient install


class TestAmbientSubstrate:
    def test_install_makes_sessions_attach(self):
        sub = _shared()
        install_substrate(sub)
        try:
            session = Session(MemphisConfig.server_session())
            assert session.cache is sub.cache
            assert session._ctx is not None
        finally:
            clear_ambient_substrate()
        assert current_substrate() is None

    def test_reset_ambient_state_clears_substrate(self):
        sub = _shared()
        sub.set_quota("t", 123)
        install_substrate(sub)
        reset_ambient_state()
        assert current_substrate() is None
        assert sub.tenants == {}
        assert sub.cache._scope is None


# ------------------------------------------------------------- namespacing unit


class TestNamespacingRules:
    def test_pure_dag_is_shareable_after_registration(self):
        sub = _shared()
        ctx = sub.attach(None, "t")
        sub.register_dataset(ctx, "X", _data())
        leaf = LineageItem("data", ("X",))
        item = LineageItem("ba+*", (), (leaf, leaf))
        assert sub.shareable(ctx, item)
        assert ctx.namespaced(item) is item

    def test_unregistered_dataset_is_scoped(self):
        sub = _shared()
        ctx = sub.attach(None, "t")
        item = LineageItem("ba+*", (), (LineageItem("data", ("X",)),))
        assert not sub.shareable(ctx, item)
        wrapped = ctx.namespaced(item)
        assert wrapped.is_namespaced
        assert wrapped.inputs == (item,)

    def test_mismatched_fingerprint_is_scoped(self):
        sub = _shared()
        first = sub.attach(None, "a")
        sub.register_dataset(first, "X", _data())
        second = sub.attach(None, "b")
        sub.register_dataset(second, "X", _data(offset=1.0))
        item = LineageItem("r'", (), (LineageItem("data", ("X",)),))
        assert sub.shareable(first, item)
        assert not sub.shareable(second, item)

    def test_rand_and_function_dags_are_scoped(self):
        sub = _shared()
        ctx = sub.attach(None, "t")
        rand = LineageItem("rand", (1, 2, 7))
        assert not sub.shareable(ctx, LineageItem("tsmm", (), (rand,)))
        func = LineageItem("func:train", (0,), ())
        assert not sub.shareable(ctx, func)

    def test_scoping_is_stable_and_per_session(self):
        sub = _shared()
        a, b = sub.attach(None, "t"), sub.attach(None, "t")
        item = sub.interner.intern("rand", (1, 1, 5), ())
        wrapped_a = a.namespaced(item)
        assert a.namespaced(item) is wrapped_a  # hash-consed
        assert b.namespaced(item) is not wrapped_a
        assert sub.stats.get(SERVER_SCOPED_KEYS) == 2
