"""Tests for the unified memory-arbitration substrate (repro.memory).

Covers the region ledgers and the reservation protocol, victim
selection through ``core/policies.py``, the spill-vs-drop decision,
delayed-caching admission, cross-region pressure callbacks, and the
holistic behaviours that only exist because the four managers share one
arbiter: GPU eviction consulting driver-cache residency before paying a
D2H transfer, and spill/restore ledger moves surviving hard
invalidation.
"""

from types import SimpleNamespace

import pytest

from repro.backends.gpu import (
    GpuDevice,
    GpuMemoryManager,
    GpuStream,
    MODE_MEMPHIS,
)
from repro.common.config import CacheConfig, EvictionPolicyName, GpuConfig
from repro.common.simclock import DEVICE, SimClock
from repro.common.stats import (
    CACHE_DELAYED,
    CACHE_RESTORES,
    CACHE_SPILLS,
    GPU_EVICT_D2H,
    MEM_D2H_AVOIDED,
    MEM_PRESSURE_EVENTS,
    MEM_RESERVE_FAILURES,
    MEM_RESERVES,
    Stats,
)
from repro.core.cache import BACKEND_DISK, LineageCache
from repro.core.entry import BACKEND_CP, BACKEND_GPU, EntryStatus
from repro.core.policies import LruPolicy
from repro.lineage.item import LineageItem, dataset
from repro.memory import (
    REGION_CP,
    REGION_DISK,
    REGION_GPU,
    MemoryArbiter,
    MemoryRegion,
)
from repro.runtime.values import MatrixValue

import numpy as np


def key(tag: str) -> LineageItem:
    return LineageItem("exp", (tag,), (dataset("X"),))


def value(cells=100):
    return MatrixValue(np.ones((cells, 1)))


# -- MemoryRegion ledgers -----------------------------------------------------


class TestMemoryRegion:
    def test_two_phase_reserve_commit(self):
        region = MemoryRegion("R", 1000)
        region.reserve(300)
        assert (region.used, region.reserved, region.free) == (0, 300, 700)
        region.commit(300)
        assert (region.used, region.reserved, region.free) == (300, 0, 700)
        region.release(300)
        assert region.free == 1000
        region.check()

    def test_cancel_drops_reservation(self):
        region = MemoryRegion("R", 1000)
        region.reserve(400)
        region.cancel(400)
        assert (region.used, region.reserved) == (0, 0)
        region.check()

    def test_acquire_is_one_shot(self):
        region = MemoryRegion("R", 1000)
        region.acquire(250)
        assert (region.used, region.reserved) == (250, 0)
        assert region.peak_used == 250
        region.check()

    def test_peak_tracks_high_water(self):
        region = MemoryRegion("R", 1000)
        region.acquire(600)
        region.release(600)
        region.acquire(100)
        assert region.peak_used == 600

    def test_pin_unpin(self):
        region = MemoryRegion("R", 1000)
        region.acquire(500)
        region.pin(500)
        assert region.pinned == 500
        region.unpin(500)
        assert region.pinned == 0
        region.check()

    def test_fits_and_unlimited(self):
        region = MemoryRegion("R", 100)
        assert region.fits(100)
        region.acquire(60)
        assert not region.fits(41)
        unlimited = MemoryRegion("U", 100, unlimited=True)
        assert unlimited.fits(10**9)

    def test_reset_keeps_capacity(self):
        region = MemoryRegion("R", 1000, policy=LruPolicy())
        region.acquire(700)
        region.pin(100)
        region.reset()
        assert (region.used, region.reserved, region.pinned) == (0, 0, 0)
        assert region.capacity == 1000
        assert region.policy is not None

    def test_snapshot_fields(self):
        region = MemoryRegion("R", 1000, policy=LruPolicy())
        region.acquire(100)
        snap = region.snapshot()
        assert snap["region"] == "R"
        assert snap["used"] == 100
        assert snap["policy"] == "lru"


# -- reservation protocol -----------------------------------------------------


class TestArbiterReservation:
    def test_duplicate_region_rejected(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100)
        with pytest.raises(ValueError):
            arb.add_region("R", 200)

    def test_reserve_commit_release(self):
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 1000)
        assert arb.reserve("R", 400)
        arb.commit("R", 400)
        assert arb.region("R").used == 400
        arb.release("R", 400)
        assert arb.region("R").used == 0
        assert stats.get(MEM_RESERVES) == 1

    def test_oversized_request_fails(self):
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 100)
        assert not arb.reserve("R", 101)
        assert stats.get(MEM_RESERVE_FAILURES) == 1

    def test_reserve_evicts_lowest_score_first(self):
        arb = MemoryArbiter()
        arb.add_region("R", 1000, policy=LruPolicy())
        live = [SimpleNamespace(last_access=t, size=250) for t in (3, 1, 2)]
        for item in live:
            arb.acquire("R", item.size)
        evicted = []

        def evict(victim):
            evicted.append(victim.last_access)
            live.remove(victim)
            arb.release("R", victim.size)

        assert arb.reserve("R", 600, candidates=lambda: live, evict=evict)
        # LRU evicts the two oldest stamps, in order
        assert evicted == [1, 2]
        arb.cancel("R", 600)
        arb.region("R").check()

    def test_reserve_fails_without_candidates(self):
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 100)
        arb.acquire("R", 100)
        assert not arb.reserve("R", 50)
        assert stats.get(MEM_RESERVE_FAILURES) == 1

    def test_non_releasing_evict_terminates(self):
        # an eviction callback that frees nothing must fail the
        # reservation instead of spinning on the same victim forever
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 100, policy=LruPolicy())
        arb.acquire("R", 100)
        stuck = [SimpleNamespace(last_access=1, size=100)]
        assert not arb.reserve("R", 50, candidates=lambda: stuck,
                               evict=lambda v: None)
        assert stats.get(MEM_RESERVE_FAILURES) == 1

    def test_ensure_space_leaves_no_reservation(self):
        arb = MemoryArbiter()
        arb.add_region("R", 1000)
        assert arb.ensure_space("R", 700)
        region = arb.region("R")
        assert (region.used, region.reserved) == (0, 0)

    def test_unlimited_region_overcommits(self):
        arb = MemoryArbiter()
        arb.add_region("R", 10, unlimited=True)
        assert arb.reserve("R", 10**6)
        arb.commit("R", 10**6)
        assert arb.region("R").used == 10**6


# -- victim selection ---------------------------------------------------------


class TestVictimSelection:
    def test_empty_candidates(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100, policy=LruPolicy())
        assert arb.select_victim("R", []) is None

    def test_policy_orders_victims(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100, policy_name=EvictionPolicyName.LRU)
        items = [SimpleNamespace(last_access=t) for t in (5, 2, 9)]
        assert arb.select_victim("R", items).last_access == 2

    def test_score_override_wins(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100, policy=LruPolicy())
        items = [SimpleNamespace(last_access=t) for t in (1, 2, 3)]
        victim = arb.select_victim("R", items,
                                   score=lambda e: -e.last_access)
        assert victim.last_access == 3

    def test_no_policy_returns_first(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100)
        items = [SimpleNamespace(last_access=t) for t in (7, 1)]
        assert arb.select_victim("R", items).last_access == 7

    def test_first_minimum_wins_ties(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100, policy=LruPolicy())
        a = SimpleNamespace(last_access=1)
        b = SimpleNamespace(last_access=1)
        assert arb.select_victim("R", [a, b]) is a


# -- admission (delayed caching) ----------------------------------------------


class TestAdmission:
    def test_admit_threshold(self):
        arb = MemoryArbiter()
        arb.add_region("R", 100)
        assert not arb.admit("R", seen_count=1, delay_factor=2)
        assert arb.admit("R", seen_count=2, delay_factor=2)

    def test_delayed_caching_through_cache(self):
        stats = Stats()
        cfg = CacheConfig(driver_cache_bytes=10_000, delay_factor=2)
        cache = LineageCache(cfg, stats)
        assert cache.put(key("a"), value(), BACKEND_CP, 800, 1.0) is None
        assert stats.get(CACHE_DELAYED) == 1
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        assert entry is not None and entry.is_cached


# -- spill-vs-drop decision ---------------------------------------------------


class TestSpillDecision:
    def _arbiter(self, disk_capacity=10_000):
        arb = MemoryArbiter()
        arb.add_region("R", 1000)
        arb.add_region("D", disk_capacity)
        arb.configure_spill("R", enabled=True, disk_region="D",
                            bytes_per_s=1024**3, flops_per_s=1.5e12)
        return arb

    def test_unconfigured_region_never_spills(self):
        arb = MemoryArbiter()
        arb.add_region("R", 1000)
        assert not arb.should_spill("R", 800, 1e12)

    def test_breakeven(self):
        arb = self._arbiter()
        # recompute time (cost/flops) must exceed 2*size/bandwidth
        assert arb.should_spill("R", 800, compute_cost=1e9)
        assert not arb.should_spill("R", 800, compute_cost=1.0)

    def test_full_disk_blocks_spill(self):
        arb = self._arbiter(disk_capacity=500)
        assert not arb.should_spill("R", 800, compute_cost=1e9)


# -- cross-region pressure callbacks ------------------------------------------


class TestPressureCallbacks:
    def test_pressure_rescues_reservation(self):
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 1000)
        arb.acquire("R", 1000)

        def shed(region, needed):
            # another tier drops a shadowing copy and frees our bytes
            arb.release("R", 600)
            return 600

        arb.on_pressure("R", shed)
        assert arb.reserve("R", 500)
        assert stats.get(MEM_PRESSURE_EVENTS) == 1
        region = arb.region("R")
        assert region.used + region.reserved == 900
        region.check()

    def test_unhelpful_pressure_fails_once(self):
        stats = Stats()
        arb = MemoryArbiter(stats)
        arb.add_region("R", 100)
        arb.acquire("R", 100)
        calls = []
        arb.on_pressure("R", lambda region, needed: calls.append(needed) or 0)
        assert not arb.reserve("R", 50)
        assert calls == [50]  # fired once, not in a loop
        assert stats.get(MEM_RESERVE_FAILURES) == 1


# -- residency probes + holistic GPU eviction ---------------------------------


def gpu_with_cache(capacity=64 * 1024):
    """A GPU manager and a driver cache sharing one arbiter (as wired
    by the session)."""
    clock, stats = SimClock(), Stats()
    arbiter = MemoryArbiter(stats)
    cache = LineageCache(CacheConfig(driver_cache_bytes=100_000), stats,
                         arbiter=arbiter)
    cfg = GpuConfig(device_memory=capacity, alignment=512)
    device = GpuDevice(cfg)
    stream = GpuStream(cfg, clock, stats)
    mgr = GpuMemoryManager(device, stream, clock, stats, MODE_MEMPHIS,
                           on_invalidate=cache.on_gpu_invalidate,
                           arbiter=arbiter)
    return mgr, cache, stats


class TestHolisticGpuEviction:
    """GPU D2H eviction consults driver-cache residency via the arbiter.

    These tests fail on the pre-refactor silos: without the shared
    arbiter the GPU manager cannot know a host copy exists and always
    pays the device-to-host transfer.
    """

    def test_resident_elsewhere_probes_other_regions(self):
        arb = MemoryArbiter()
        arb.add_region("A", 100)
        arb.add_region("B", 100)
        arb.register_residency("A", lambda token: token == "x")
        assert arb.resident_elsewhere("x")
        assert not arb.resident_elsewhere("y")
        assert not arb.resident_elsewhere("x", exclude=("A",))

    def test_d2h_skipped_when_host_copy_exists(self):
        mgr, cache, stats = gpu_with_cache()
        k = key("a")
        cache.put(k, value(), BACKEND_CP, 800, 1.0)
        ptr = mgr.allocate(1024)
        cache.put(k, SimpleNamespace(ptr=ptr), BACKEND_GPU, 1024, 1.0)
        assert ptr.cached
        mgr.release(ptr)  # refcount 0: pointer parks on the Free list
        mgr.evict_to_host(ptr)
        assert stats.get(MEM_D2H_AVOIDED) == 1
        assert stats.get(GPU_EVICT_D2H) == 0
        assert stats.get("gpu/d2h_copies") == 0
        entry = cache.get_entry(k)
        # the GPU copy is invalidated, the host copy survives the probe
        assert BACKEND_GPU not in entry.payloads
        assert BACKEND_CP in entry.payloads
        assert cache.probe(k) is entry

    def test_d2h_paid_without_host_copy(self):
        mgr, cache, stats = gpu_with_cache()
        ptr = mgr.allocate(1024)
        cache.put(key("a"), SimpleNamespace(ptr=ptr), BACKEND_GPU,
                  1024, 1.0)
        mgr.release(ptr)
        mgr.evict_to_host(ptr)
        assert stats.get(GPU_EVICT_D2H) == 1
        assert stats.get("gpu/d2h_copies") == 1
        assert stats.get(MEM_D2H_AVOIDED) == 0

    def test_gpu_region_mirrors_device_ledger(self):
        mgr, cache, stats = gpu_with_cache()
        region = mgr.arbiter.region(REGION_GPU)
        a = mgr.allocate(1000)  # aligned to 1024
        b = mgr.allocate(2048)
        assert region.used == mgr.device.used_bytes
        mgr.release(a)
        mgr.release(b)
        mgr.empty_cache(1.0)  # destroys pooled pointers -> cudaFree
        assert region.used == mgr.device.used_bytes == 0
        region.check()


# -- GPU victim order: Eq. 2 regression ---------------------------------------


def eq2_reference(ptr, now, max_cost):
    """The pre-refactor inline scoring math, kept verbatim as oracle."""
    t_a = ptr.last_access / max(now, 1e-9)
    height_term = 1.0 / max(ptr.lineage_height, 1)
    cost_term = ptr.compute_cost / max(max_cost, 1e-9)
    return t_a + height_term + cost_term


def pooled_manager(sizes):
    """A manager whose Free list holds released pointers of ``sizes``."""
    clock, stats = SimClock(), Stats()
    cfg = GpuConfig(device_memory=256 * 1024, alignment=512)
    device = GpuDevice(cfg)
    stream = GpuStream(cfg, clock, stats)
    mgr = GpuMemoryManager(device, stream, clock, stats, MODE_MEMPHIS)
    ptrs = [mgr.allocate(size) for size in sizes]
    for ptr in ptrs:
        mgr.release(ptr)
    return mgr, ptrs


class TestGpuVictimOrderRegression:
    def test_pop_victim_matches_inline_eq2(self):
        mgr, ptrs = pooled_manager([1024] * 5)
        for ptr, (t, h, c) in zip(ptrs, [
            (5.0, 1, 10.0), (1.0, 4, 50.0), (3.0, 2, 20.0),
            (2.0, 5, 40.0), (4.0, 3, 30.0),
        ]):
            ptr.last_access, ptr.lineage_height, ptr.compute_cost = t, h, c
        now = mgr.clock.now(DEVICE)
        remaining = list(mgr.free_lists[1024])
        expected = []
        while remaining:
            max_cost = max(p.compute_cost for p in remaining)
            victim = min(remaining,
                         key=lambda p: eq2_reference(p, now, max_cost))
            expected.append(victim.id)
            remaining.remove(victim)
        queue = mgr.free_lists[1024]
        actual = []
        while queue:
            actual.append(mgr._pop_victim(queue, 1024).id)
        assert actual == expected

    def test_global_victim_matches_inline_eq2(self):
        mgr, ptrs = pooled_manager([512, 1024, 2048, 4096])
        for ptr, (t, h, c) in zip(ptrs, [
            (4.0, 1, 5.0), (1.0, 3, 80.0), (2.0, 2, 10.0), (3.0, 4, 40.0),
        ]):
            ptr.last_access, ptr.lineage_height, ptr.compute_cost = t, h, c
        now = mgr.clock.now(DEVICE)
        pool = [p for q in mgr.free_lists.values() for p in q]
        max_cost = max(p.compute_cost for p in pool)
        expected = min(pool, key=lambda p: eq2_reference(p, now, max_cost))
        assert mgr._global_victim() is expected

    def test_policy_override_changes_victim_order(self):
        clock, stats = SimClock(), Stats()
        cfg = GpuConfig(device_memory=256 * 1024, alignment=512,
                        policy=EvictionPolicyName.LRU)
        device = GpuDevice(cfg)
        stream = GpuStream(cfg, clock, stats)
        mgr = GpuMemoryManager(device, stream, clock, stats, MODE_MEMPHIS)
        assert isinstance(mgr.policy, LruPolicy)
        ptrs = [mgr.allocate(1024) for _ in range(3)]
        for ptr in ptrs:
            mgr.release(ptr)
        stamps = [9.0, 2.0, 5.0]
        for ptr, stamp in zip(ptrs, stamps):
            ptr.last_access = stamp
        # LRU ignores height/cost: the oldest stamp goes first
        assert mgr._global_victim() is ptrs[1]

    def test_no_scoring_math_outside_policies(self):
        # the acceptance criterion made executable: Eq. 1 / Eq. 2
        # scoring terms appear only in core/policies.py
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in root.rglob("*.py"):
            if path.name == "policies.py":
                continue
            text = path.read_text()
            if "lineage_height, 1)" in text or "compute_cost / max(" in text:
                offenders.append(str(path))
        assert not offenders, offenders


# -- spill / restore / invalidate ledger moves --------------------------------


class TestSpillRestoreLedgers:
    def _cache(self):
        stats = Stats()
        cfg = CacheConfig(driver_cache_bytes=2000, disk_cache_bytes=10_000)
        return LineageCache(cfg, stats, clock=SimClock()), stats

    def test_spill_moves_bytes_cp_to_disk(self):
        cache, stats = self._cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1e9)
        assert cache.cp_bytes == 800
        cache.evict_cp(entry)
        assert entry.status is EntryStatus.SPILLED
        assert BACKEND_DISK in entry.payloads
        assert (cache.cp_bytes, cache.disk_bytes) == (0, 800)
        assert stats.get(CACHE_SPILLS) == 1
        for region in cache.arbiter.regions():
            region.check()

    def test_probe_restores_spilled_entry(self):
        cache, stats = self._cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1e9)
        cache.evict_cp(entry)
        hit = cache.probe(key("a"))
        assert hit is entry and entry.is_cached
        assert (cache.cp_bytes, cache.disk_bytes) == (800, 0)
        assert stats.get(CACHE_RESTORES) == 1

    def test_cheap_entry_dropped_not_spilled(self):
        cache, stats = self._cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1.0)
        cache.evict_cp(entry)
        assert BACKEND_DISK not in entry.payloads
        assert cache.disk_bytes == 0

    def test_invalidate_releases_spilled_bytes(self):
        cache, stats = self._cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1e9)
        cache.evict_cp(entry)
        dropped = cache.invalidate_entry(entry)
        assert dropped == [BACKEND_DISK]
        assert entry.status is EntryStatus.EVICTED
        assert (cache.cp_bytes, cache.disk_bytes) == (0, 0)
        assert cache.probe(key("a")) is None
        for region in cache.arbiter.regions():
            region.check()

    def test_respill_after_invalidate_and_recompute(self):
        # lose the entry outright, recompute it, spill it again: the
        # ledgers must track the full round trip without drift
        cache, stats = self._cache()
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1e9)
        cache.evict_cp(entry)
        cache.invalidate_entry(entry)
        entry = cache.put(key("a"), value(), BACKEND_CP, 800, 1e9)
        assert entry is not None and entry.is_cached
        cache.evict_cp(entry)
        assert (cache.cp_bytes, cache.disk_bytes) == (0, 800)
        assert cache.probe(key("a")) is entry
        assert (cache.cp_bytes, cache.disk_bytes) == (800, 0)
        for region in cache.arbiter.regions():
            region.check()


# -- snapshots ----------------------------------------------------------------


class TestSnapshots:
    def test_arbiter_snapshot_covers_all_regions(self):
        cache = LineageCache(CacheConfig(driver_cache_bytes=2000), Stats())
        names = {snap["region"] for snap in cache.arbiter.snapshot()}
        assert names == {REGION_CP, REGION_DISK}
