"""End-to-end request observability for the reuse server (tier 2).

Covers the ``repro.obs.request`` layer: trace-context propagation (every
span/instant emitted while a request is scheduled carries its
``request_id``/``tenant``), deterministic per-tenant SLO metrics and
cost attribution under a fixed interleave seed, the always-on flight
recorder and its automatic post-mortem dumps, per-tenant Chrome-trace
lanes, and the ``SERVER_SCHEMA`` JSONL stream.  Everything is marked
``tier2_server`` (``pytest -m tier2_server``) and fast enough for
tier 1.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.tier2_server

from repro.common.config import MemphisConfig
from repro.harness.telemetry import (
    SERVER_SLO_KEYS,
    assert_valid_server_records,
    read_server_jsonl,
    server_report_records,
    validate_server_records,
    write_server_jsonl,
)
from repro.obs import (
    FlightRecorder,
    RequestContext,
    chrome_trace_dict,
    percentile,
    tracing,
)
from repro.server import Scheduler, pure_program, run_server_demo
from repro.server.demo import impure_program


def three_tenant_scheduler(seed: int = 7, quota=None,
                           max_retries: int = 8) -> Scheduler:
    """Three tenants, five requests, shared pure pipeline + one impure."""
    scheduler = Scheduler(config=MemphisConfig.server_session(),
                          seed=seed, max_retries=max_retries)
    for tenant in ("alpha", "beta", "gamma"):
        scheduler.add_tenant(tenant, quota)
    for i, tenant in enumerate(("alpha", "beta", "gamma", "alpha")):
        scheduler.submit(tenant, pure_program(), name=f"pure{i}")
    scheduler.submit("gamma", impure_program(), name="impure0")
    return scheduler


class TestRequestPropagation:
    def test_every_event_carries_request_id_and_tenant(self):
        with tracing() as tc:
            report = three_tenant_scheduler().run()
        assert report.ok
        events = tc.events()
        assert len(events) > 50  # instruction spans, probes, steps, ...
        by_id = {r.request_id: r.tenant for r in report.results}
        unstamped = [e for e in events
                     if not e.args or "request_id" not in e.args]
        assert unstamped == []
        for event in events:
            assert event.args["request_id"] in by_id, event
            assert event.args["tenant"] \
                == by_id[event.args["request_id"]], event

    def test_request_ids_are_deterministic(self):
        report = three_tenant_scheduler().run()
        assert [r.request_id for r in report.results] == [
            "req-000-pure0", "req-001-pure1", "req-002-pure2",
            "req-003-pure3", "req-004-impure0",
        ]

    def test_substrate_events_stamped_with_consumer_request(self):
        """Cross-session hits fire on the substrate tracer mid-quantum;
        the stamp must name the *consuming* request, the attribution
        args the *producing* tenant."""
        with tracing() as tc:
            report = three_tenant_scheduler().run()
        by_id = {r.request_id: r.tenant for r in report.results}
        attributions = [e for e in tc.events()
                        if e.name == "server/attribution"]
        assert attributions, "pure pipeline must cross-hit"
        for event in attributions:
            assert event.args["consumer"] == by_id[event.args["request_id"]]
            assert event.args["producer"] in ("alpha", "beta", "gamma")

    def test_binding_cleared_after_run(self):
        with tracing():
            scheduler = three_tenant_scheduler()
            scheduler.run()
            assert scheduler.substrate.tracer.request is None

    def test_tenant_lanes_in_chrome_export(self):
        with tracing() as tc:
            three_tenant_scheduler().run()
        doc = chrome_trace_dict(tc.events(), tc.session_labels)
        thread_names = {e["args"]["name"] for e in doc["traceEvents"]
                        if e.get("name") == "thread_name"}
        assert any("[alpha]" in name for name in thread_names)
        assert any("[gamma]" in name for name in thread_names)
        # tenant lanes must not collide with the base backend lanes
        tids = {}
        for e in doc["traceEvents"]:
            if e.get("name") == "thread_name":
                tids.setdefault((e["pid"], e["args"]["name"]), e["tid"])
        assert len(set(tids.values())) >= 2


class TestDeterministicAttribution:
    def test_attribution_matrix_identical_across_same_seed_runs(self):
        first = three_tenant_scheduler(seed=7).run()
        second = three_tenant_scheduler(seed=7).run()
        assert first.attribution == second.attribution
        assert first.attribution, "shared pure pipeline must attribute"
        assert first.slo == second.slo
        assert first.as_record() == second.as_record()

    def test_attribution_cells_are_producer_consumer_sorted(self):
        report = three_tenant_scheduler(seed=7).run()
        pairs = [(c["producer"], c["consumer"]) for c in report.attribution]
        assert pairs == sorted(pairs)
        for cell in report.attribution:
            assert cell["hits"] >= 1
            assert cell["bytes"] > 0
            assert cell["cost_avoided"] > 0

    def test_slo_rows_cover_every_tenant(self):
        report = three_tenant_scheduler(seed=7).run()
        assert sorted(report.slo) == ["alpha", "beta", "gamma"]
        for row in report.slo.values():
            assert set(SERVER_SLO_KEYS) <= set(row)
            assert row["requests"] == row["completed"] + row["failed"]
            assert 0.0 <= row["hit_rate"] <= 1.0
            assert row["latency_p99_s"] >= row["latency_p50_s"] >= 0.0

    def test_latency_includes_only_own_session_time(self):
        report = three_tenant_scheduler(seed=7).run()
        for result, session in zip(report.results, report.sessions):
            assert result.sim_latency_s == pytest.approx(
                session.clock.timelines.get("host", 0.0))


class TestFlightRecorder:
    def test_dump_on_admission_exhaustion(self):
        scheduler = three_tenant_scheduler(seed=3, quota=512,
                                           max_retries=2)
        report = scheduler.run()
        assert not report.ok
        failed = [r for r in report.results if not r.ok]
        assert failed
        assert report.flight_dumps, "exhausted retries must dump"
        reasons = {d["reason"] for d in report.flight_dumps}
        assert "admission_error" in reasons
        dump = next(d for d in report.flight_dumps
                    if d["reason"] == "admission_error")
        assert dump["request_id"] in {r.request_id for r in failed}
        assert dump["tenant"] in ("alpha", "beta", "gamma")
        assert dump["events"], "dump must carry the recent-event window"
        # the dumped window was recorded with tracing fully off
        for session in report.sessions:
            assert not session.tracer.enabled

    def test_dump_on_program_exception(self):
        scheduler = Scheduler(config=MemphisConfig.server_session(), seed=0)
        scheduler.add_tenant("alpha")

        def boom(session):
            raise ValueError("injected failure")

        scheduler.submit("alpha", boom, name="boom")
        report = scheduler.run()
        assert not report.ok
        assert report.results[0].error == "ValueError: injected failure"
        assert [d["reason"] for d in report.flight_dumps] == ["ValueError"]
        assert report.flight_dumps[0]["request_id"] == "req-000-boom"

    def test_no_dumps_on_clean_run(self):
        report = three_tenant_scheduler(seed=7).run()
        assert report.flight_dumps == []

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        ctx = RequestContext("req-x", "alpha")
        for i in range(10):
            recorder.record("server/step", float(i), ctx=ctx, step=i)
        assert len(recorder) == 4
        dump = recorder.dump("test", ts=10.0, ctx=ctx)
        assert dump["dropped"] == 6
        assert [e["args"]["step"] for e in dump["events"]] == [6, 7, 8, 9]


class TestServerSchema:
    def test_records_round_trip_and_validate(self, tmp_path):
        report = run_server_demo(4, seed=11)
        records = server_report_records(report, 4, 11)
        assert_valid_server_records(records)
        path = tmp_path / "server.jsonl"
        write_server_jsonl(str(path), records)
        assert read_server_jsonl(str(path)) == records

    def test_jsonl_byte_identical_for_same_seed(self, tmp_path):
        paths = []
        for i in range(2):
            report = run_server_demo(4, seed=11)
            path = tmp_path / f"server{i}.jsonl"
            write_server_jsonl(str(path),
                               server_report_records(report, 4, 11))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_validator_rejects_malformed_streams(self):
        report = run_server_demo(3, seed=0)
        records = server_report_records(report, 3, 0)
        assert validate_server_records([]) != []
        assert validate_server_records(records[1:]) != []  # no header
        broken = [dict(r) for r in records]
        broken[0]["format"] = "WRONG"
        assert any("format" in p for p in validate_server_records(broken))
        broken = [dict(r) for r in records]
        slo = next(r for r in broken if r["kind"] == "tenant_slo")
        slo["hit_rate"] = 1.5
        assert any("hit_rate" in p for p in validate_server_records(broken))

    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0
