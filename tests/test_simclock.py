"""Tests for the multi-timeline simulated clock."""

import pytest

from repro.common.simclock import CLUSTER, DEVICE, HOST, SimClock, SimFuture


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now(HOST) == 0.0
        assert clock.now(CLUSTER) == 0.0
        assert clock.now(DEVICE) == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now(HOST) == 1.5
        assert clock.now(CLUSTER) == 0.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_moves_forward_only(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock.now() == 5.0
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_sync_joins_timelines(self):
        clock = SimClock()
        clock.advance(2.0, DEVICE)
        clock.advance(1.0, HOST)
        t = clock.sync(DEVICE, HOST)
        assert t == 2.0
        assert clock.now(HOST) == 2.0
        assert clock.now(DEVICE) == 2.0

    def test_sync_when_host_ahead(self):
        clock = SimClock()
        clock.advance(4.0, HOST)
        clock.advance(1.0, DEVICE)
        clock.sync(DEVICE, HOST)
        assert clock.now(DEVICE) == 4.0

    def test_independent_timelines(self):
        clock = SimClock()
        clock.advance(1.0, HOST)
        clock.advance(2.0, CLUSTER)
        clock.advance(3.0, DEVICE)
        assert clock.now(HOST) == 1.0
        assert clock.now(CLUSTER) == 2.0
        assert clock.now(DEVICE) == 3.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(9.0, CLUSTER)
        clock.reset()
        assert clock.now(CLUSTER) == 0.0


class TestSimFuture:
    def test_wait_advances_host(self):
        clock = SimClock()
        future = SimFuture(clock, ready_time=5.0, value=42)
        assert future.wait() == 42
        assert clock.now(HOST) == 5.0

    def test_wait_no_backwards_jump(self):
        clock = SimClock()
        clock.advance(10.0)
        future = SimFuture(clock, ready_time=5.0, value="x")
        future.wait()
        assert clock.now(HOST) == 10.0

    def test_done_before_and_after(self):
        clock = SimClock()
        future = SimFuture(clock, ready_time=5.0, value=1)
        assert not future.done
        clock.advance(6.0)
        assert future.done

    def test_done_after_wait(self):
        clock = SimClock()
        future = SimFuture(clock, ready_time=2.0, value=1)
        future.wait()
        assert future.done
