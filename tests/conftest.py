"""Shared test fixtures: cross-test isolation for global state.

``Stats`` itself is per-instance (each :class:`~repro.core.session.Session`
owns one), but the repository does hold real module-level mutable state
that bleeds between tests and breaks determinism assertions:

* five global id generators (``itertools.count``): HOP ids, lineage item
  ids, RDD ids, broadcast ids, GPU pointer ids — tests comparing trace
  event sequences or serialized lineage across two runs need both runs
  to start from id 1;
* ambient collectors/plans installed via module globals: the trace
  collector (``repro.obs``), the analysis collector (``repro.analysis``),
  and the fault plan (``repro.faults``) — a test that installs one and
  fails before its cleanup would silently alter every later test.

The autouse fixture below resets all of it around every test, so each
test observes a process-fresh world.
"""

from __future__ import annotations

import pytest

from repro.faults.determinism import reset_ambient_state, reset_global_ids


@pytest.fixture(autouse=True)
def _fresh_global_state():
    """Reset global id counters and ambient collectors around each test."""
    reset_global_ids()
    reset_ambient_state()
    yield
    reset_ambient_state()
