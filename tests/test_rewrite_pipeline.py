"""Pass-ordering and idempotence tests for the compiler rewrites.

The rewrite pipeline (``Session._compile``) runs CSE, placement,
transpose fusion, reuse-aware operator fusion, then the
checkpoint/prefetch/broadcast flag passes.  Each rewrite must be
idempotent — running it twice leaves the DAG exactly as running it
once — and fusion must slot after CSE (it respects merged nodes and
their extra handles) and before checkpoint insertion (the flag passes
must see the fused stream).
"""

import inspect

import numpy as np

from repro.analysis import DEFAULT_PASS_ORDER, registered_passes
from repro.common.config import MemphisConfig, ReuseMode, StorageLevel
from repro.compiler.ir import Hop, literal_hop, op_hop
from repro.compiler.linearize import depth_first
from repro.compiler.rewrites.async_ops import (
    consumers_map,
    place_broadcast,
    place_prefetch,
)
from repro.compiler.rewrites.checkpoint import place_shared_checkpoints
from repro.compiler.rewrites.cse import eliminate_common_subexpressions
from repro.compiler.rewrites.fusion import apply_fusion
from repro.compiler.rewrites.tuning import ProgramBlock, tune_program
from repro.core.entry import BACKEND_CP, BACKEND_SP
from repro.core.session import Session
from repro.lineage.item import LineageItem


def _leaf(rows=8, cols=8, placement=None):
    hop = Hop("data", "data", [], shape=(rows, cols))
    hop.bundle = (LineageItem("data", (f"leaf{hop.id}",)), {"CP": object()})
    if placement is not None:
        hop.placement = placement
    return hop


def _flags(roots):
    """Rewrite-visible flag state of every reachable hop."""
    return {
        (h.id, h.checkpoint, h.prefetch, h.async_broadcast, h.fused)
        for h in depth_first(roots)
    }


def _shape(roots):
    """Structural fingerprint: (id, opcode, input ids) per hop."""
    return {
        (h.id, h.opcode, tuple(i.id for i in h.inputs))
        for h in depth_first(roots)
    }


# ------------------------------------------------------------ pass order


class TestRegisteredPassOrder:
    def test_every_default_pass_is_registered(self):
        registry = registered_passes()
        for name in DEFAULT_PASS_ORDER:
            assert name in registry, name

    def test_relative_order(self):
        order = list(DEFAULT_PASS_ORDER)
        assert order[0] == "dag-verify"
        assert order[-1] == "memory-plan"
        # fusion legality needs placement decisions and runs before the
        # memory plan charges the (fused) footprints
        assert (order.index("placement-legality")
                < order.index("fusion-legality")
                < order.index("memory-plan"))

    def test_compile_pipeline_source_order(self):
        """Fusion slots after CSE and before checkpoint insertion."""
        src = inspect.getsource(Session._compile)
        cse = src.index("eliminate_common_subexpressions")
        fusion = src.index("apply_fusion")
        checkpoint = src.index("place_shared_checkpoints")
        prefetch = src.index("place_prefetch")
        assert cse < fusion < checkpoint < prefetch


# ------------------------------------------------------------ idempotence


class TestRewriteIdempotence:
    def test_cse_idempotent(self):
        x = _leaf()
        dup1 = op_hop("*", [x, literal_hop(2.0)])
        dup2 = op_hop("*", [x, literal_hop(2.0)])
        root = op_hop("+", [op_hop("relu", [dup1]), op_hop("relu", [dup2])])
        before = len(depth_first([root]))
        once, extra = eliminate_common_subexpressions([root])
        assert len(depth_first(once)) < before
        twice, extra2 = eliminate_common_subexpressions(list(once))
        assert _shape(twice) == _shape(once)
        assert extra2 == {}

    def test_checkpoint_idempotent(self):
        config = MemphisConfig.memphis()
        shared = op_hop("*", [_leaf(64, 64, BACKEND_SP),
                              _leaf(64, 64, BACKEND_SP)])
        shared.placement = BACKEND_SP
        c1 = op_hop("relu", [shared])
        c2 = op_hop("sigmoid", [shared])
        c1.placement = c2.placement = BACKEND_SP
        roots = [c1, c2]
        nodes = depth_first(roots)
        consumers = consumers_map(roots, nodes)
        assert place_shared_checkpoints(roots, config, consumers, nodes) == 1
        assert shared.checkpoint
        state = _flags(roots)
        assert place_shared_checkpoints(roots, config, consumers, nodes) == 0
        assert _flags(roots) == state

    def test_async_ops_idempotent(self):
        config = MemphisConfig.memphis()
        remote = op_hop("*", [_leaf(64, 64, BACKEND_SP),
                              _leaf(64, 64, BACKEND_SP)])
        remote.placement = BACKEND_SP
        local = op_hop("relu", [_leaf(4, 4)])
        local.placement = BACKEND_CP
        sink = op_hop("+", [remote, local])
        sink.placement = BACKEND_SP
        collect = op_hop("sum", [sink])
        collect.placement = BACKEND_CP
        roots = [collect]
        nodes = depth_first(roots)
        consumers = consumers_map(roots, nodes)
        place_prefetch(roots, config, consumers, nodes)
        place_broadcast(roots, config, consumers, nodes)
        state = _flags(roots)
        assert any(flag for _, _, flag, _, _ in state)  # prefetch placed
        place_prefetch(roots, config, consumers, nodes)
        place_broadcast(roots, config, consumers, nodes)
        assert _flags(roots) == state

    def test_tuning_idempotent(self):
        program = ProgramBlock("main", 1, 10, 2, children=[
            ProgramBlock("loop", 20, 10, 1),
            ProgramBlock("cold", 20, 10, 9),
        ])
        once = tune_program(program)
        twice = tune_program(program)
        assert once == twice
        assert once["loop"].delay_factor == 1
        assert once["cold"].storage_level is StorageLevel.MEMORY_ONLY

    def test_fusion_idempotent(self):
        config = MemphisConfig.base()
        config.enable_fusion = True
        x = _leaf()
        a = op_hop("*", [x, literal_hop(2.0)])
        b = op_hop("sigmoid", [a])
        c = op_hop("relu", [b])
        roots = [c]
        nodes = depth_first(roots)
        consumers = consumers_map(roots, nodes)
        roots1, fused1, _ = apply_fusion(roots, nodes, consumers, config)
        assert len(fused1) == 1
        nodes1 = depth_first(roots1)
        consumers1 = consumers_map(roots1, nodes1)
        roots2, fused2, _ = apply_fusion(roots1, nodes1, consumers1, config)
        assert fused2 == []
        assert roots2 == roots1
        assert _shape(roots2) == _shape(roots1)


# -------------------------------------------- fusion x CSE interaction


class TestFusionSlotsAfterCse:
    def test_cse_merged_chain_fuses_once_and_binds_both_handles(self):
        config = MemphisConfig.memphis()
        config.reuse_mode = ReuseMode.NONE
        config.enable_fusion = True
        session = Session(config)
        data = (np.arange(16.0 * 16).reshape(16, 16) % 7.0) / 7.0
        x = session.read(data, "X")
        a = ((x * 2.0) + 1.0).relu()
        b = ((x * 2.0) + 1.0).relu()
        session.evaluate([a, b])
        out_a, out_b = a.compute(), b.compute()
        assert out_a.tobytes() == out_b.tobytes()
        expected = np.maximum(data * 2.0 + 1.0, 0.0)
        np.testing.assert_array_equal(out_a, expected)

    def test_cse_protected_interior_is_not_fused_over(self):
        # `mid` is CSE-merged and carries an extra live handle: fusion
        # must keep it materialized (protected), not absorb it
        config = MemphisConfig.memphis()
        config.reuse_mode = ReuseMode.NONE
        config.enable_fusion = True
        session = Session(config)
        data = (np.arange(16.0 * 16).reshape(16, 16) % 7.0) / 7.0
        x = session.read(data, "X")
        mid_a = (x * 2.0) + 1.0
        mid_b = (x * 2.0) + 1.0
        tail = mid_a.relu()
        session.evaluate([tail, mid_b])
        expected_mid = data * 2.0 + 1.0
        np.testing.assert_array_equal(mid_b.compute(), expected_mid)
        np.testing.assert_array_equal(tail.compute(),
                                      np.maximum(expected_mid, 0.0))
