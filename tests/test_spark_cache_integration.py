"""Deeper integration tests of Spark-tier cache behaviour (§4.1)."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.config import StorageLevel

RNG = np.random.default_rng(31)


def spark_session(**cache_kw):
    cfg = MemphisConfig.memphis()
    cfg.cpu.operation_memory_bytes = 64 * 1024
    for key, value in cache_kw.items():
        setattr(cfg.cache, key, value)
    return Session(cfg)


class TestUnmaterializedReuse:
    def test_rdd_reused_before_materialization(self):
        """persist is lazy: the RDD is reusable even before any job ran."""
        sess = spark_session()
        X = sess.read(RNG.random((5000, 16)), "X")
        (X * 2.0).evaluate()  # lazy chain, cached (persist marked)
        jobs = sess.stats.get("spark/jobs")
        assert jobs == 0
        out = ((X * 2.0) + 1.0).sum().compute()  # builds on the cached RDD
        assert sess.stats.get("spark/rdds_reused") >= 1

    def test_async_materialization_after_k_misses(self):
        sess = spark_session(async_materialize_after_misses=2)
        X = sess.read(RNG.random((5000, 16)), "X")
        for _ in range(4):
            (X * 2.0).evaluate()
        assert sess.stats.get("spark/async_materializations") >= 1

    def test_shuffle_file_reuse_across_jobs(self):
        sess = spark_session()
        cfg_base = MemphisConfig.base()
        cfg_base.cpu.operation_memory_bytes = 64 * 1024
        base = Session(cfg_base)
        data = RNG.random((5000, 16))
        for s in (sess, base):
            X = s.read(data, "X")
            (X.t() @ X).compute()
            (X.t() @ X).compute()
        # even Base benefits from Spark's implicit shuffle-file caching,
        # but only MEMPHIS elides the jobs entirely
        assert sess.stats.get("spark/jobs") < base.stats.get("spark/jobs")


class TestStorageLevels:
    def test_tuned_storage_level_applied(self):
        sess = spark_session()
        with sess.block("b", execution_frequency=10, reusable_fraction=0.9):
            assert sess.spark_mgr.storage_level is \
                StorageLevel.MEMORY_AND_DISK
        with sess.block("c", execution_frequency=10, reusable_fraction=0.1):
            assert sess.spark_mgr.storage_level is StorageLevel.MEMORY_ONLY

    def test_memory_only_partitions_dropped_not_spilled(self):
        cfg = MemphisConfig.memphis()
        cfg.cpu.operation_memory_bytes = 16 * 1024
        cfg.spark.num_executors = 1
        cfg.spark.executor_memory = 200_000
        sess = Session(cfg)
        sess.spark_mgr.storage_level = StorageLevel.MEMORY_ONLY
        X = sess.read(RNG.random((3000, 8)), "X")
        for scale in range(1, 6):
            (X * float(scale)).sum().compute()
        assert sess.stats.get("spark/partitions_spilled") == 0


class TestEvictionUnderPressure:
    def test_spark_tier_evicts_and_stays_within_budget(self):
        cfg = MemphisConfig.memphis()
        cfg.cpu.operation_memory_bytes = 16 * 1024
        cfg.spark.num_executors = 1
        cfg.spark.executor_memory = 1_200_000  # reuse budget: 288 KB
        sess = Session(cfg)
        X = sess.read(RNG.random((3000, 8)), "X")  # 192 KB per RDD
        for scale in range(1, 10):
            (X * float(scale)).sum().compute()
        assert sess.spark_mgr.sp_bytes <= sess.spark_mgr.budget
        assert sess.stats.get("spark/rdds_unpersisted") > 0

    def test_results_correct_despite_eviction(self):
        cfg = MemphisConfig.memphis()
        cfg.cpu.operation_memory_bytes = 16 * 1024
        cfg.spark.num_executors = 1
        cfg.spark.executor_memory = 600_000
        sess = Session(cfg)
        data = RNG.random((3000, 8))
        X = sess.read(data, "X")
        outs = {}
        for rounds in range(2):
            for scale in range(1, 10):
                value = (X * float(scale)).sum().item()
                if rounds == 0:
                    outs[scale] = value
                else:
                    assert value == pytest.approx(outs[scale])
                assert value == pytest.approx(data.sum() * scale)
