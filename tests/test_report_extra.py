"""Additional tests: statistics registry and results_table rendering."""

from repro.common.stats import Stats
from repro.harness.report import results_table
from repro.workloads.base import WorkloadResult


class TestStats:
    def test_counters_and_timers(self):
        stats = Stats()
        stats.inc("a/b")
        stats.inc("a/b", 4)
        stats.add_time("t", 0.5)
        stats.add_time("t", 0.25)
        assert stats.get("a/b") == 5
        assert stats.get_time("t") == 0.75
        assert stats.counters() == {"a/b": 5}
        assert stats.timers() == {"t": 0.75}

    def test_missing_counter_is_zero(self):
        assert Stats().get("nothing") == 0

    def test_reset(self):
        stats = Stats()
        stats.inc("x")
        stats.reset()
        assert stats.get("x") == 0

    def test_report_sorted_and_formatted(self):
        stats = Stats()
        stats.inc("z/last")
        stats.inc("a/first")
        report = stats.report()
        assert report.index("a/first") < report.index("z/last")
        assert report.startswith("=== statistics ===")


class TestResultsTable:
    def _result(self, system, elapsed, failed=None):
        return WorkloadResult("w", system, {}, elapsed,
                              {"spark/rdds_reused": 7}, failed=failed)

    def test_grid_rendering(self):
        grid = {
            "5GB": {"Base": self._result("Base", 0.10),
                    "MPH": self._result("MPH", 0.02)},
            "20GB": {"Base": self._result("Base", 0.50),
                     "MPH": self._result("MPH", 0.09)},
        }
        table = results_table(grid, "input", "demo",
                              extra_counters=("spark/rdds_reused",))
        assert "Base [ms]" in table
        assert "MPH [ms]" in table
        assert "5GB" in table and "20GB" in table
        assert "7" in table  # the counter column

    def test_failed_runs_render_as_oom(self):
        grid = {"x": {"Base": self._result("Base", 0.1),
                      "MPH": self._result("MPH", 0.0, failed="boom")}}
        table = results_table(grid, "input", "demo")
        assert "OOM" in table
