"""Fast-path / instrumented-path dispatch equivalence guards.

The interpreter selects one of two dispatch loops per run
(:func:`repro.runtime.dispatch.select_loop`): ``run_fast`` when
tracing, metrics, and fault injection are all disabled, otherwise the
fully-guarded ``run_instrumented``.  The contract — asserted here on
the quickstart and Fig. 12(b) workloads — is that both loops produce
**byte-identical** results, identical stats counters, and identical
simulated-clock readings.  The fast path may only change real
wall-clock cost (measured by the ``BENCH_wallclock`` track, see
docs/PERFORMANCE.md), never a single observable value.

Forcing the instrumented loop without changing semantics uses two
existing zero-overhead guarantees:

* an **empty fault plan** enables the injector (``faults.enabled``)
  but injects nothing — byte-identical by ``tests/test_faults.py``;
* an ambient **metrics collector** enables sampling, which reads
  counters/ledgers but never advances the sim clock.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.config import ReuseMode
from repro.faults import FaultPlan, reset_global_ids
from repro.obs import MetricsCollector, disable_metrics, enable_metrics
from repro.runtime.dispatch import run_fast, run_instrumented, select_loop
from repro.workloads.micro import run_fig12b


def _flag_interp(tracer: bool, metrics: bool, faults: bool):
    return SimpleNamespace(
        tracer=SimpleNamespace(enabled=tracer),
        metrics=SimpleNamespace(enabled=metrics),
        faults=SimpleNamespace(enabled=faults),
    )


class TestLoopSelection:
    def test_fast_loop_when_all_layers_disabled(self):
        assert select_loop(_flag_interp(False, False, False)) is run_fast

    @pytest.mark.parametrize("flags", [
        (True, False, False),
        (False, True, False),
        (False, False, True),
        (True, True, True),
    ])
    def test_instrumented_loop_when_any_layer_live(self, flags):
        assert select_loop(_flag_interp(*flags)) is run_instrumented

    def test_default_session_selects_fast_loop(self):
        session = Session(MemphisConfig.memphis())
        assert not (session.tracer.enabled or session.metrics.enabled
                    or session.faults.enabled)


# ------------------------------------------------------------------ workloads

def _quickstart(config: MemphisConfig, iters: int = 4):
    """Ridge-regression steps with cross-iteration reuse; returns a
    ``(final ndarray, counters, timelines)`` observation triple."""
    reset_global_ids()
    session = Session(config)
    data = (np.arange(200.0 * 8).reshape(200, 8) % 17.0) / 17.0
    target = (np.arange(200.0).reshape(200, 1) % 5.0) / 5.0
    X = session.read(data, "X")
    y = session.read(target, "y")
    w = session.read(np.zeros((8, 1)), "w0")
    for _ in range(iters):
        grad = X.t() @ (X @ w) - X.t() @ y
        w = w - 0.002 * grad
    out = w.compute()
    return out, session.stats.counters(), dict(session.clock.timelines)


def _cellwise(config: MemphisConfig, iters: int = 3):
    """Straight-line ufunc chains (batch-dispatch eligible under
    ``ReuseMode.NONE``); same observation triple as :func:`_quickstart`."""
    reset_global_ids()
    session = Session(config)
    data = (np.arange(64.0 * 64).reshape(64, 64) % 23.0) / 23.0 - 0.5
    X = session.read(data, "X")
    out = None
    for _ in range(iters):
        out = (((X * 2.0) + 1.0).sigmoid() * 0.5).relu().compute()
    return out, session.stats.counters(), dict(session.clock.timelines)


def _with_empty_fault_plan(config: MemphisConfig) -> MemphisConfig:
    # enables the injector (forcing run_instrumented) without injecting
    config.faults = FaultPlan(specs=[])
    return config


def _assert_equivalent(fast, instrumented):
    out_f, counters_f, clock_f = fast
    out_i, counters_i, clock_i = instrumented
    assert out_f.tobytes() == out_i.tobytes()
    assert counters_f == counters_i
    assert clock_f == clock_i


class TestQuickstartEquivalence:
    @pytest.mark.parametrize("make_config", [
        MemphisConfig.memphis, MemphisConfig.base,
    ], ids=["memphis", "base"])
    def test_byte_identical_under_empty_fault_plan(self, make_config):
        _assert_equivalent(
            _quickstart(make_config()),
            _quickstart(_with_empty_fault_plan(make_config())),
        )

    def test_byte_identical_under_metrics_collector(self):
        fast = _quickstart(MemphisConfig.memphis())
        enable_metrics(MetricsCollector())
        try:
            instrumented = _quickstart(MemphisConfig.memphis())
        finally:
            disable_metrics()
        _assert_equivalent(fast, instrumented)


class TestChainEquivalence:
    def test_batch_dispatch_byte_identical(self):
        """ReuseMode.NONE engages chain batching on the fast path only;
        the instrumented loop runs the same plan per-instruction."""
        def config():
            cfg = MemphisConfig.memphis()
            cfg.reuse_mode = ReuseMode.NONE
            return cfg
        _assert_equivalent(
            _cellwise(config()),
            _cellwise(_with_empty_fault_plan(config())),
        )

    def test_chain_interior_not_cached(self):
        cfg = MemphisConfig.memphis()
        cfg.reuse_mode = ReuseMode.NONE
        reset_global_ids()
        session = Session(cfg)
        X = session.read(np.ones((16, 16)), "X")
        (((X * 2.0) + 1.0).sigmoid() * 0.5).relu().compute()
        assert len(session.cache) == 0


class TestServerZeroOverhead:
    """The request-observability layer must cost nothing when disabled.

    ``benchmarks/baselines/server_mixed_counters.json`` was captured
    from the committed tree *before* the request layer existed; the
    same demo run today — request contexts minted, flight recorder on,
    attribution matrix maintained — must reproduce it byte-for-byte:
    identical merged counters, request outcomes, tenant occupancy, and
    result values, with every session still on the fast dispatch loop.
    """

    BASELINE = "benchmarks/baselines/server_mixed_counters.json"

    @pytest.fixture()
    def baseline(self):
        import json
        import os

        path = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), self.BASELINE)
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def test_counters_byte_identical_to_pre_request_baseline(self, baseline):
        from repro.server import run_server_demo

        report = run_server_demo(baseline["sessions"],
                                 seed=baseline["seed"])
        assert dict(report.merged.counters()) == baseline["merged_counters"]
        assert report.tenants == baseline["tenants"]
        assert {r.name: r.value for r in report.results} \
            == baseline["values"]
        records = {r["name"]: r for r in
                   (res.as_record() for res in report.results)}
        for rec in baseline["requests"]:
            got = records[rec["name"]]
            for key in ("tenant", "ok", "steps", "retries", "error"):
                assert got[key] == rec[key], (rec["name"], key)

    def test_fast_loop_selected_with_request_layer_disabled(self, baseline):
        from repro.obs.tracer import NULL_TRACER
        from repro.server import run_server_demo

        report = run_server_demo(baseline["sessions"],
                                 seed=baseline["seed"])
        for session in report.sessions:
            assert session.tracer is NULL_TRACER
            assert select_loop(session.interpreter) is run_fast


class TestFig12Equivalence:
    @pytest.mark.parametrize("setting", ["Base", "MPH"])
    def test_byte_identical_under_metrics_collector(self, setting):
        reset_global_ids()
        fast = run_fig12b(setting, batch_size=64, num_images=128,
                          reuse_fraction=0.5, hw=12)
        reset_global_ids()
        enable_metrics(MetricsCollector())
        try:
            instrumented = run_fig12b(setting, batch_size=64,
                                      num_images=128,
                                      reuse_fraction=0.5, hw=12)
        finally:
            disable_metrics()
        assert fast.metric == instrumented.metric
        assert fast.counters == instrumented.counters
        assert fast.elapsed == instrumented.elapsed
