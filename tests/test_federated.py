"""Tests for the federated backend extension (paper §5.4)."""

import numpy as np
import pytest

from repro.backends.federated import (
    FederatedConfig,
    FederatedCoordinator,
    FederatedWorker,
)


@pytest.fixture()
def fleet():
    cfg = FederatedConfig(num_workers=4)
    workers = [FederatedWorker(i, cfg) for i in range(4)]
    return workers, cfg


@pytest.fixture()
def coord(fleet):
    workers, cfg = fleet
    return FederatedCoordinator(workers, cfg)


RNG = np.random.default_rng(21)


class TestFederatedOps:
    def test_federate_partitions_rows(self, coord):
        data = RNG.random((1000, 8))
        fm = coord.federate("X", data)
        assert fm.shape == (1000, 8)
        assert sum(rows for _, _, rows in fm.placement) == 1000
        assert len(fm.placement) == 4

    def test_tsmm_correct(self, coord):
        data = RNG.random((800, 12))
        fm = coord.federate("X", data)
        assert np.allclose(coord.tsmm(fm), data.T @ data)

    def test_matvec_correct(self, coord):
        data = RNG.random((600, 10))
        v = RNG.random((10, 1))
        fm = coord.federate("X", data)
        assert np.allclose(coord.matvec(fm, v), data @ v)

    def test_column_sums_correct(self, coord):
        data = RNG.random((500, 6))
        fm = coord.federate("X", data)
        assert np.allclose(coord.column_sums(fm),
                           data.sum(axis=0, keepdims=True))

    def test_elementwise_map(self, coord):
        data = RNG.random((400, 5))
        fm = coord.federate("X", data)
        doubled = coord.map_elementwise("*", fm, 2.0)
        assert np.allclose(coord.tsmm(doubled), (2 * data).T @ (2 * data))

    def test_requests_counted(self, coord):
        fm = coord.federate("X", RNG.random((400, 5)))
        coord.tsmm(fm)
        assert coord.stats.get("federated/requests") == 4


class TestFederatedReuse:
    def test_repeated_request_reuses_worker_cache(self, coord):
        fm = coord.federate("X", RNG.random((800, 12)))
        coord.tsmm(fm)
        t_first = coord.clock.now()
        coord.tsmm(fm)
        t_second = coord.clock.now() - t_first
        assert coord.stats.get("federated/worker_reuses") == 4
        # the reused round costs only latency, not compute
        assert t_second < t_first

    def test_reuse_disabled(self, fleet):
        workers, cfg = fleet
        coord = FederatedCoordinator(workers, cfg, reuse=False)
        fm = coord.federate("X", RNG.random((800, 12)))
        coord.tsmm(fm)
        coord.tsmm(fm)
        assert coord.stats.get("federated/worker_reuses") == 0

    def test_multi_tenant_cache_sharing(self, fleet):
        """A second tenant reuses what the first tenant computed [19]."""
        workers, cfg = fleet
        data = RNG.random((800, 12))
        tenant_a = FederatedCoordinator(workers, cfg)
        fm_a = tenant_a.federate("X", data)
        result_a = tenant_a.tsmm(fm_a)

        tenant_b = FederatedCoordinator(workers, cfg)
        fm_b = tenant_b.federate("X", data)  # same shards, same lineage
        result_b = tenant_b.tsmm(fm_b)
        assert np.allclose(result_a, result_b)
        assert tenant_b.stats.get("federated/worker_reuses") == 4

    def test_different_data_not_reused(self, fleet):
        workers, cfg = fleet
        tenant_a = FederatedCoordinator(workers, cfg)
        tenant_a.tsmm(tenant_a.federate("X", RNG.random((400, 6))))
        tenant_b = FederatedCoordinator(workers, cfg)
        tenant_b.tsmm(tenant_b.federate("Y", RNG.random((400, 6))))
        assert tenant_b.stats.get("federated/worker_reuses") == 0

    def test_shipped_vector_identity_in_lineage(self, coord):
        """matvec with a different vector must not hit the cache."""
        data = RNG.random((400, 6))
        fm = coord.federate("X", data)
        v1 = RNG.random((6, 1))
        v2 = RNG.random((6, 1))
        out1 = coord.matvec(fm, v1)
        out2 = coord.matvec(fm, v2)
        assert not np.allclose(out1, out2)
        assert coord.stats.get("federated/worker_reuses") == 0
        # same vector again: hits
        out1b = coord.matvec(fm, v1)
        assert np.allclose(out1, out1b)
        assert coord.stats.get("federated/worker_reuses") == 4


class TestFederatedCostModel:
    def test_workers_run_in_parallel(self):
        """4-site execution takes ~1/4 of single-site time (minus fixed
        costs): sites compute concurrently."""
        data = RNG.random((4000, 40))
        cfg = FederatedConfig(request_latency_s=0.0,
                              bandwidth_bytes_per_s=1e15)

        def run(num_workers: int) -> float:
            workers = [FederatedWorker(i, cfg) for i in range(num_workers)]
            coord = FederatedCoordinator(workers, cfg)
            fm = coord.federate("X", data)
            t0 = coord.clock.now()
            coord.tsmm(fm)
            return coord.clock.now() - t0

        serial = run(1)
        parallel = run(4)
        assert parallel < serial / 2

    def test_latency_floor(self, coord):
        fm = coord.federate("X", RNG.random((40, 4)))
        t0 = coord.clock.now()
        coord.tsmm(fm)
        assert coord.clock.now() - t0 >= 2 * coord.config.request_latency_s
