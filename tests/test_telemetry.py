"""Tests for the benchmark telemetry pipeline (repro.harness.telemetry)."""

import importlib.util
import json
import os
import subprocess
import sys

from repro.common.stats import CACHE_HITS, LINEAGE_PROBES
from repro.harness.runner import ExperimentResult
from repro.harness.telemetry import (
    BENCH_FORMAT,
    BENCH_SCHEMA,
    KEY_COUNTERS,
    assert_valid_bench_report,
    build_bench_report,
    experiment_record,
    validate_bench_report,
)
from repro.obs import MetricsCollector
from repro.common.simclock import SimClock
from repro.workloads.base import WorkloadResult

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _result(elapsed=1.5, hits=4, probes=8) -> WorkloadResult:
    return WorkloadResult(
        "w", "MPH", {}, elapsed,
        counters={CACHE_HITS: hits, LINEAGE_PROBES: probes},
    )


def _experiment(grid) -> ExperimentResult:
    return ExperimentResult("fake", grid, "table")


class TestExperimentRecord:
    def test_sums_nested_grid(self):
        grid = {
            10: {"Base": _result(1.0), "MPH": _result(2.0)},
            20: {"Base": _result(3.0), "MPH": _result(4.0)},
        }
        record = experiment_record("fake", _experiment(grid), wall_s=0.5)
        assert record["workloads"] == 4
        assert record["sim_time_s"] == 10.0
        assert record["counters"][CACHE_HITS] == 16
        assert record["counters"][LINEAGE_PROBES] == 32
        assert set(record["counters"]) == set(KEY_COUNTERS)

    def test_non_workload_grid_tolerated(self):
        # fig2d-style grids hold raw dicts, not WorkloadResults
        record = experiment_record(
            "fig2d", _experiment({0: {"compute_s": 1.0}}), wall_s=0.1)
        assert record["workloads"] == 0
        assert record["sim_time_s"] == 0.0

    def test_metric_series_digests(self):
        collector = MetricsCollector()
        reg = collector.registry(SimClock())
        reg.gauge("cache/entries").record(0.0, 2.0)
        record = experiment_record("fake", _experiment({}), 0.1, collector)
        assert record["metric_series"]["cache/entries"]["n"] == 1


class TestValidation:
    def _valid_doc(self):
        record = experiment_record("fake", _experiment({0: {"m": _result()}}),
                                   wall_s=0.5)
        return build_bench_report([record], issue=5)

    def test_valid_round_trip(self):
        doc = self._valid_doc()
        assert validate_bench_report(doc) == []
        assert_valid_bench_report(doc)
        # and survives JSON serialization
        assert validate_bench_report(json.loads(json.dumps(doc))) == []

    def test_format_pinned(self):
        doc = self._valid_doc()
        assert doc["format"] == BENCH_FORMAT
        assert BENCH_SCHEMA["properties"]["format"]["const"] == BENCH_FORMAT

    def test_rejects_non_object(self):
        assert validate_bench_report([]) == \
            ["top-level document is not a JSON object"]

    def test_rejects_missing_experiments(self):
        problems = validate_bench_report({"format": BENCH_FORMAT, "issue": 5})
        assert any("experiments" in p for p in problems)

    def test_rejects_bad_record_fields(self):
        doc = self._valid_doc()
        doc["experiments"][0]["wall_s"] = -1
        doc["experiments"][0]["name"] = ""
        problems = validate_bench_report(doc)
        assert any("wall_s" in p for p in problems)
        assert any("name" in p for p in problems)

    def test_rejects_non_integer_counters(self):
        doc = self._valid_doc()
        doc["experiments"][0]["counters"] = {"cache/hits": 1.5}
        assert any("not an integer" in p
                   for p in validate_bench_report(doc))

    def test_rejects_bad_digest(self):
        doc = self._valid_doc()
        doc["experiments"][0]["metric_series"] = {"cache/x": {"n": 1}}
        assert any("bad digest" in p for p in validate_bench_report(doc))


class TestBenchReportScript:
    def test_validate_mode_accepts_valid_file(self, tmp_path):
        record = experiment_record("fake", _experiment({0: {"m": _result()}}),
                                   wall_s=0.5)
        doc = build_bench_report([record], issue=5)
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "scripts", "bench_report.py"),
             "--validate", str(path)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_validate_mode_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 0}))
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "scripts", "bench_report.py"),
             "--validate", str(path)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout


def _load_bench_report_module():
    spec = importlib.util.spec_from_file_location(
        "bench_report", os.path.join(REPO, "scripts", "bench_report.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestValidationHoisted:
    """Regression: schema validation runs once per report, not once per
    experiment — the ``--fast`` path used to re-validate per record."""

    def test_write_report_validates_exactly_once(self, tmp_path,
                                                 monkeypatch):
        mod = _load_bench_report_module()
        calls = []
        real = mod.validate_bench_report

        def counting(doc):
            calls.append(1)
            return real(doc)

        monkeypatch.setattr(mod, "validate_bench_report", counting)
        records = [
            experiment_record(f"fake{i}",
                              _experiment({0: {"m": _result()}}), wall_s=0.5)
            for i in range(4)
        ]
        out = tmp_path / "bench.json"
        assert mod.write_report(records, str(out)) == 0
        assert len(calls) == 1  # once per report, not per experiment
        assert validate_bench_report(json.loads(out.read_text())) == []

    def test_experiment_loop_never_validates(self, monkeypatch):
        mod = _load_bench_report_module()

        def forbidden(doc):  # pragma: no cover - failure path
            raise AssertionError("validation ran inside the "
                                 "per-experiment loop")

        monkeypatch.setattr(mod, "validate_bench_report", forbidden)
        monkeypatch.setitem(mod.EXPERIMENTS, "tiny",
                            lambda: _experiment({0: {"m": _result()}}))
        records = mod.run_experiments(["tiny"])
        assert len(records) == 1
        assert records[0]["name"] == "tiny"
