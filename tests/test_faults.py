"""Unit tests for the fault-injection framework (``repro.faults``).

Covers the plan surface (DSL / JSON round-trips, validation), the
injector's deterministic occurrence counters, and the two framework-wide
guarantees the chaos suite builds on:

* **zero overhead when disabled** — with no plan, sessions hold
  :data:`NULL_INJECTOR` and a run is byte-for-byte identical (stats,
  instruction counts, simulated durations) to one with an *empty* plan;
* **recovery determinism** — a plan replayed after a JSON round-trip
  reproduces the identical trace event sequence and outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.simclock import HOST, SimClock
from repro.common.stats import Stats
from repro.faults import (
    KIND_FED_SLOW,
    KIND_FED_TIMEOUT,
    KIND_SPARK_TASK,
    KINDS,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    current_plan,
    install_plan,
    reset_global_ids,
    uninstall_plan,
)


def quickstart(cfg: MemphisConfig | None = None,
               plan: FaultPlan | None = None):
    """The docs' quickstart workload: 3 gradient steps of ridge regression.

    Deterministic data, multi-op DAG with cross-iteration reuse; returns
    ``(session, final ndarray)``.
    """
    cfg = cfg or MemphisConfig.memphis()
    cfg.faults = plan
    sess = Session(cfg)
    data = (np.arange(200.0 * 8).reshape(200, 8) % 17.0) / 17.0
    target = (np.arange(200.0).reshape(200, 1) % 5.0) / 5.0
    X = sess.read(data, "X")
    y = sess.read(target, "y")
    w = sess.read(np.zeros((8, 1)), "w0")
    for _ in range(3):
        grad = X.t() @ (X @ w) - X.t() @ y
        w = w - 0.01 * grad
    return sess, w.compute()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", at=0)

    def test_needs_index_or_clock_key(self):
        with pytest.raises(ValueError, match="needs an index"):
            FaultSpec(KIND_SPARK_TASK)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(KIND_SPARK_TASK, at=0, count=0)

    def test_clock_keyed_spec_is_valid(self):
        spec = FaultSpec("spill_io", after_time=1.5)
        assert spec.at is None and spec.after_time == 1.5

    def test_json_round_trip_every_kind(self):
        for i, kind in enumerate(KINDS):
            factor = 8.0 if kind == KIND_FED_SLOW else 4.0
            spec = FaultSpec(kind, at=i, count=2, target=1, factor=factor)
            assert FaultSpec.from_json(spec.to_json()) == spec


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=[FaultSpec(KIND_SPARK_TASK, at=3, count=2),
                   FaultSpec(KIND_FED_SLOW, at=0, target=2, factor=6.0),
                   FaultSpec("spill_io", after_time=0.25)],
            seed=99, max_task_retries=5, quorum_fraction=0.5,
        )
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_parse_dsl(self):
        plan = FaultPlan.parse(
            "spark_task@3;fed_timeout@1,worker=2,count=3;"
            "fed_slow@0,factor=8;spill_io,after=0.5;"
            "seed=7;max_task_retries=5;quorum=0.25"
        )
        assert plan.seed == 7
        assert plan.max_task_retries == 5
        assert plan.quorum_fraction == 0.25
        by_kind = {s.kind: s for s in plan.specs}
        assert by_kind[KIND_SPARK_TASK].at == 3
        assert by_kind[KIND_FED_TIMEOUT].target == 2
        assert by_kind[KIND_FED_TIMEOUT].count == 3
        assert by_kind[KIND_FED_SLOW].factor == 8.0
        assert by_kind["spill_io"].after_time == 0.5

    def test_parse_inline_json_and_file(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec(KIND_SPARK_TASK, at=1)], seed=3)
        assert FaultPlan.parse(plan.dumps()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.dumps(), encoding="utf-8")
        assert FaultPlan.parse(str(path)) == plan

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.parse("spark_task@0,flavor=3")
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.parse("warp_speed=9")

    def test_randomize_is_pure_in_seed(self):
        a, b = FaultPlan.randomize(42), FaultPlan.randomize(42)
        assert a == b
        assert FaultPlan.randomize(43) != a
        budgets = FaultPlan()
        for spec in a.specs:
            assert 1 <= spec.count <= 2 <= budgets.max_task_retries

    def test_ambient_install_uninstall(self):
        plan = FaultPlan(specs=[FaultSpec(KIND_SPARK_TASK, at=0)])
        assert current_plan() is None
        install_plan(plan)
        try:
            assert current_plan() is plan
            # a session created under an ambient plan picks it up
            sess = Session(MemphisConfig.memphis())
            assert sess.faults.enabled
            assert sess.faults.plan is plan
        finally:
            assert uninstall_plan() is plan
        assert current_plan() is None


class TestInjector:
    def _injector(self, *specs, seed=1234) -> FaultInjector:
        return FaultInjector(FaultPlan(specs=list(specs), seed=seed),
                             SimClock(), Stats())

    def test_occurrence_counter_indexes_draws(self):
        inj = self._injector(FaultSpec(KIND_SPARK_TASK, at=2))
        assert inj.spark_task() is None
        assert inj.spark_task() is None
        fault = inj.spark_task()
        assert fault is not None and fault.spec.at == 2
        assert inj.spark_task() is None

    def test_count_consumed_by_take(self):
        inj = self._injector(FaultSpec(KIND_SPARK_TASK, at=0, count=2))
        fault = inj.spark_task()
        assert fault.take() and fault.take() and not fault.take()

    def test_target_restricts_worker(self):
        inj = self._injector(FaultSpec(KIND_FED_TIMEOUT, at=1, target=2))
        rnd = inj.fed_round()
        assert rnd == 0
        assert inj.fed_timeout(rnd, 2) is None  # wrong round
        rnd = inj.fed_round()
        assert inj.fed_timeout(rnd, 0) is None  # wrong worker
        assert inj.fed_timeout(rnd, 2) is not None

    def test_clock_keyed_fault_waits_for_sim_time(self):
        clock = SimClock()
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("spill_io", after_time=1.0)]),
            clock, Stats(),
        )
        assert not inj.spill_io()
        clock.advance(2.0, HOST)
        assert inj.spill_io()
        assert not inj.spill_io()  # consumed

    def test_executor_losses_deterministic_in_seed(self):
        spec = FaultSpec("executor_loss", at=0, count=3)
        a = self._injector(spec, seed=7).executor_losses(8)
        b = self._injector(FaultSpec("executor_loss", at=0, count=3),
                           seed=7).executor_losses(8)
        assert a == b and len(a) == 3
        assert all(0 <= e < 8 for e in a)

    def test_null_injector_is_inert(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.spark_task() is None
        assert NULL_INJECTOR.executor_losses(4) == []
        assert NULL_INJECTOR.gpu_alloc() is None
        assert not NULL_INJECTOR.spill_io()
        assert NULL_INJECTOR.lost_cache_entries(None) == 0


class TestZeroOverheadWhenDisabled:
    def test_session_without_plan_holds_null_injector(self):
        sess = Session(MemphisConfig.memphis())
        assert sess.faults is NULL_INJECTOR
        assert sess.spark_context.faults is NULL_INJECTOR
        assert sess.gpu.memory.faults is NULL_INJECTOR
        assert sess.cache.faults is NULL_INJECTOR

    def test_empty_plan_changes_nothing(self):
        """Empty plan == no plan: stats, durations, outputs identical."""
        sess_a, out_a = quickstart()
        reset_global_ids()
        sess_b, out_b = quickstart(plan=FaultPlan())
        assert sess_b.faults is not NULL_INJECTOR  # machinery armed
        assert np.array_equal(out_a, out_b)
        assert sess_a.elapsed() == sess_b.elapsed()
        assert sess_a.stats.counters() == sess_b.stats.counters()
        assert sess_a.stats.timers() == sess_b.stats.timers()
        assert not any(k.startswith("faults/")
                       for k in sess_b.stats.counters())

    def test_no_plan_run_has_no_fault_counters(self):
        sess, _ = quickstart()
        assert not any(k.startswith("faults/")
                       for k in sess.stats.counters())


class TestRecoveryDeterminism:
    """Satellite: plan -> JSON -> plan, rerun, identical traces."""

    def _traced_run(self, plan: FaultPlan):
        cfg = MemphisConfig.memphis()
        cfg.trace_enabled = True
        sess, out = quickstart(cfg, plan=plan)
        events = [(e.name, e.ph, round(e.ts, 12), e.lane,
                   round(e.dur, 12)) for e in sess.trace_events()]
        return out, events, sess.stats.counters()

    def test_round_tripped_plan_replays_identically(self):
        plan = FaultPlan.parse("cache_lost@4;spark_task@0,count=2;seed=11")
        out_a, events_a, stats_a = self._traced_run(plan)
        reset_global_ids()
        out_b, events_b, stats_b = self._traced_run(
            FaultPlan.loads(plan.dumps())
        )
        assert np.array_equal(out_a, out_b)
        assert events_a == events_b
        assert stats_a == stats_b
        assert len(events_a) > 0


class TestHarnessFlag:
    def test_faults_flag_installs_and_uninstalls(self, capsys):
        from repro.harness.__main__ import main

        code = main(["fig11a", "--faults", "cache_lost@6;seed=3"])
        assert code == 0
        assert current_plan() is None  # uninstalled on exit
        captured = capsys.readouterr().out
        assert "[faults: injecting 1 fault spec(s), seed 3]" in captured

    def test_faults_flag_rejects_bad_spec(self):
        from repro.harness.__main__ import main

        with pytest.raises(ValueError):
            main(["fig11a", "--faults", "meteor_strike@0"])
