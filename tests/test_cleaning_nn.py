"""Tests for cleaning primitives, feature transforms, and NN layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MemphisConfig, Session
from repro.ml import (
    Autoencoder,
    MlpModel,
    alexnet,
    equi_width_bin,
    impute_by_mean,
    impute_by_mode,
    minibatch,
    normalize,
    one_hot,
    outlier_by_iqr,
    pca_project,
    recode,
    resnet18,
    scale,
    transform_encode,
    under_sampling,
    vgg16,
)

RNG = np.random.default_rng(9)


@pytest.fixture()
def sess():
    return Session(MemphisConfig.memphis())


class TestCleaning:
    def test_impute_by_mean_fills_nans(self, sess):
        data = RNG.random((50, 4))
        data[5, 1] = np.nan
        data[10, 2] = np.nan
        out = impute_by_mean(sess, sess.read(data, "X")).compute()
        assert not np.isnan(out).any()
        observed_mean = np.nanmean(data[:, 1])
        assert out[5, 1] == pytest.approx(observed_mean, rel=0.05)

    def test_impute_preserves_observed(self, sess):
        data = RNG.random((30, 3))
        data[0, 0] = np.nan
        out = impute_by_mean(sess, sess.read(data, "X")).compute()
        assert np.allclose(out[1:], data[1:])

    def test_impute_by_mode_integer_codes(self, sess):
        data = RNG.integers(1, 4, (60, 2)).astype(float)
        data[3, 0] = np.nan
        out = impute_by_mode(sess, sess.read(data, "X")).compute()
        assert not np.isnan(out).any()
        assert out[3, 0] == np.round(out[3, 0])  # integer-valued

    def test_outlier_by_iqr_winsorizes(self, sess):
        data = RNG.random((200, 2))
        data[0, 0] = 1000.0  # extreme outlier
        out = outlier_by_iqr(sess, sess.read(data, "X")).compute()
        assert out[0, 0] < 10.0
        # non-outliers survive
        assert np.allclose(out[1:, :], data[1:, :], atol=1.0)

    def test_scale_zero_mean_unit_variance(self, sess):
        out = scale(sess, sess.read(RNG.random((500, 3)) * 7 + 3, "X"))
        data = out.compute()
        assert np.allclose(data.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(data.std(axis=0), 1.0, atol=1e-6)

    def test_normalize_range(self, sess):
        out = normalize(sess, sess.read(RNG.random((100, 4)) * 9 - 4, "X"))
        data = out.compute()
        assert data.min() >= -1e-9
        assert data.max() <= 1.0 + 1e-9

    def test_under_sampling_reduces_rows(self, sess):
        X = sess.read(RNG.random((100, 3)), "X")
        y = sess.read(RNG.random((100, 1)), "y")
        Xs, ys = under_sampling(sess, X, y, ratio=0.4)
        assert Xs.nrow == 60
        assert ys.nrow == 60

    def test_pca_projects_to_k(self, sess):
        out = pca_project(sess, sess.read(RNG.random((80, 10)), "X"), 3)
        assert out.compute().shape == (80, 3)

    def test_pca_captures_dominant_direction(self, sess):
        # data with one dominant direction
        base = RNG.standard_normal((300, 1)) @ np.array([[5.0, 5.0, 0.1]])
        noise = 0.01 * RNG.standard_normal((300, 3))
        out = pca_project(sess, sess.read(base + noise, "X"), 1).compute()
        assert out.var() > 10.0  # projected variance dominated by signal


class TestTransforms:
    def test_recode_dense_codes(self, sess):
        data = np.array([[5.0], [2.0], [5.0], [9.0]])
        out = recode(sess, sess.read(data, "X")).compute()
        assert np.allclose(out, [[2], [1], [2], [3]])

    def test_bin_bounds(self, sess):
        out = equi_width_bin(
            sess, sess.read(RNG.random((100, 3)) * 10, "X"), num_bins=5
        ).compute()
        assert out.min() >= 1.0
        assert out.max() <= 5.0

    def test_one_hot_rows_sum_to_one(self, sess):
        codes = sess.read(np.array([[1.0], [3.0], [2.0]]), "c")
        out = one_hot(sess, codes, 3).compute()
        assert np.allclose(out.sum(axis=1), 1.0)
        assert out[1, 2] == 1.0

    def test_transform_encode_width(self, sess):
        cat = sess.read(RNG.integers(1, 4, (50, 2)).astype(float), "cat")
        num = sess.read(RNG.random((50, 3)), "num")
        out = transform_encode(sess, cat, num, num_bins=4, one_hot_width=8)
        assert out.compute().shape == (50, 2 + 3 + 8)

    def test_minibatch_slices(self, sess):
        data = np.arange(100, dtype=float).reshape(20, 5)
        X = sess.read(data, "X")
        b1 = minibatch(X, 1, 8).compute()
        assert np.allclose(b1, data[8:16])
        tail = minibatch(X, 2, 8).compute()
        assert tail.shape == (4, 5)  # clipped final batch


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=5))
def test_property_recode_codes_contiguous(rows, cols):
    sess = Session(MemphisConfig.base())
    data = np.random.default_rng(rows).integers(0, 5, (rows, cols)) * 3.0
    out = recode(sess, sess.read(data, "X")).compute()
    for j in range(cols):
        codes = np.unique(out[:, j])
        assert np.allclose(codes, np.arange(1, len(codes) + 1))


class TestNeuralNets:
    def test_mlp_forward_shapes_and_softmax(self, sess):
        model = MlpModel.pretrained(sess, [10, 16, 8], seed=1)
        out = model.forward(sess, sess.read(RNG.random((4, 10)), "X"))
        data = out.compute()
        assert data.shape == (4, 8)
        assert np.allclose(data.sum(axis=1), 1.0)

    def test_autoencoder_roundtrip_shapes(self, sess):
        ae = Autoencoder.init(sess, num_features=20, h1=12, h2=2)
        X = sess.read(RNG.random((16, 20)), "X")
        recon = ae.forward(sess, X, dropout_rate=0.2, dropout_seed=1)
        assert recon.compute().shape == (16, 20)

    def test_autoencoder_step_reduces_loss(self, sess):
        ae = Autoencoder.init(sess, num_features=12, h1=8, h2=2)
        X = sess.read(RNG.random((32, 12)), "X")
        losses = [
            ae.step(sess, X, dropout_rate=0.0, dropout_seed=0, lr=0.05).item()
            for _ in range(10)
        ]
        assert losses[-1] < losses[0]

    @pytest.mark.parametrize("factory", [alexnet, vgg16, resnet18])
    def test_cnn_extractors_run(self, sess, factory):
        model = factory(input_hw=16).build(sess)
        images = sess.read(RNG.random((4, 3 * 16 * 16)), "imgs")
        feats = model.extract_features(sess, images)
        assert feats.compute().shape[0] == 4
        probs = model.score(sess, images).compute()
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_cnn_layer_prefix_selection(self, sess):
        model = alexnet(input_hw=16).build(sess)
        images = sess.read(RNG.random((2, 3 * 16 * 16)), "imgs")
        conv_only = model.extract_features(sess, images, upto_fc=0)
        with_fc = model.extract_features(sess, images, upto_fc=1)
        assert conv_only.ncol != with_fc.ncol

    def test_pretrained_weights_deterministic(self, sess):
        m1 = alexnet(input_hw=16).build(sess, seed=5)
        m2 = alexnet(input_hw=16).build(sess, seed=5)
        assert np.allclose(m1.filters[0].compute(), m2.filters[0].compute())
