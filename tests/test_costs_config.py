"""Tests for the analytic cost model and configuration presets."""

from repro.common.config import (
    GB,
    EvictionPolicyName,
    MemphisConfig,
    ReuseMode,
    SparkConfig,
)
from repro.common.costs import (
    compute_time,
    matrix_bytes,
    op_flops,
    transfer_time,
)


class TestCostModel:
    def test_matrix_bytes_dense(self):
        assert matrix_bytes(100, 10) == 100 * 10 * 8

    def test_matrix_bytes_sparsity_floor(self):
        # very sparse matrices still cost at least 5% of dense
        assert matrix_bytes(100, 100, sparsity=0.0001) == int(
            100 * 100 * 8 * 0.05
        )

    def test_matmul_flops(self):
        assert op_flops("ba+*", [(10, 20), (20, 30)], (10, 30)) == \
            2.0 * 10 * 20 * 30

    def test_solve_cubic(self):
        small = op_flops("solve", [(10, 10), (10, 1)], (10, 1))
        large = op_flops("solve", [(20, 20), (20, 1)], (20, 1))
        assert large > 7 * small  # ~n^3 scaling

    def test_elementwise_linear_in_output(self):
        assert op_flops("+", [(10, 10), (10, 10)], (10, 10)) == 100.0

    def test_transcendental_more_expensive(self):
        cheap = op_flops("+", [(10, 10)], (10, 10))
        costly = op_flops("exp", [(10, 10)], (10, 10))
        assert costly == 20 * cheap

    def test_aggregate_counts_input_cells(self):
        assert op_flops("uak+", [(100, 50)], (1, 1)) == 5000.0

    def test_unknown_opcode_defaults(self):
        assert op_flops("mystery", [(5, 5)], (5, 5)) == 25.0

    def test_transfer_time(self):
        assert transfer_time(10 * GB, 10 * GB) == 1.0
        assert transfer_time(0, 10 * GB, latency_s=0.5) == 0.5

    def test_compute_time_roofline(self):
        # memory-bound when bytes dominate
        t = compute_time(1.0, 1e12, nbytes_touched=10**9,
                         mem_bandwidth_bytes_per_s=1e9)
        assert t == 1.0


class TestConfigPresets:
    def test_base_disables_everything(self):
        cfg = MemphisConfig.base()
        assert cfg.reuse_mode is ReuseMode.NONE
        assert not cfg.enable_async_ops
        assert not cfg.enable_checkpoint_rewrite

    def test_base_async_only_async(self):
        cfg = MemphisConfig.base_async()
        assert cfg.reuse_mode is ReuseMode.NONE
        assert cfg.enable_async_ops
        assert cfg.enable_max_parallelize

    def test_lima_local_only(self):
        assert MemphisConfig.lima().reuse_mode is ReuseMode.LOCAL_ONLY

    def test_helix_coarse_only(self):
        assert MemphisConfig.helix().reuse_mode is ReuseMode.COARSE_ONLY

    def test_memphis_full(self):
        cfg = MemphisConfig.memphis()
        assert cfg.reuse_mode is ReuseMode.FULL
        assert cfg.enable_async_ops

    def test_memphis_no_async(self):
        cfg = MemphisConfig.memphis_no_async()
        assert cfg.reuse_mode is ReuseMode.FULL
        assert not cfg.enable_async_ops

    def test_fine_only_mode(self):
        cfg = MemphisConfig.memphis_fine_only()
        assert cfg.reuse_mode is ReuseMode.OPERATOR_ONLY

    def test_spark_memory_regions(self):
        spark = SparkConfig()
        assert spark.storage_memory + spark.execution_memory == int(
            spark.executor_memory * spark.unified_memory_fraction
        )

    def test_default_policy_is_cost_size(self):
        cfg = MemphisConfig()
        assert cfg.cache.policy is EvictionPolicyName.COST_SIZE
