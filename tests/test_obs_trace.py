"""Tests for the structured tracing subsystem (``repro.obs``)."""

import json

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.simclock import CLUSTER, DEVICE, HOST, SimClock
from repro.common.stats import Stats
from repro.obs import (
    EV_INSTR,
    EV_PROBE,
    EV_SPARK_JOB,
    Event,
    JsonlSink,
    LANE_CP,
    LANE_GPU,
    LANE_SP,
    NULL_TRACER,
    PHASE_INSTANT,
    PHASE_SPAN,
    RingBufferSink,
    TraceCollector,
    Tracer,
    chrome_trace_dict,
    current_collector,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
    format_summary,
    load_chrome_trace,
    read_jsonl,
    summarize,
    tracing,
    validate_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def tracer():
    return Tracer(SimClock())


# ---------------------------------------------------------------- span nesting


class TestSpans:
    def test_span_records_clock_interval(self, tracer):
        with tracer.span("instr", LANE_CP, opcode="+", hop=7):
            tracer.clock.advance(0.25, HOST)
        (event,) = tracer.events()
        assert event.ph == PHASE_SPAN
        assert event.ts == pytest.approx(0.0)
        assert event.dur == pytest.approx(0.25)
        assert event.args == {"opcode": "+", "hop": 7}

    def test_nested_event_attributed_to_instruction(self, tracer):
        with tracer.span(EV_INSTR, LANE_CP, opcode="ba+*", hop=42):
            tracer.instant(EV_PROBE, hit=True, opcode="ba+*")
        probe, instr = tracer.events()
        assert probe.args["instr"] == "ba+*#42"
        assert instr.name == EV_INSTR

    def test_attribution_uses_innermost_instruction(self, tracer):
        with tracer.span(EV_INSTR, LANE_CP, opcode="outer", hop=1):
            with tracer.span(EV_INSTR, LANE_CP, opcode="inner", hop=2):
                tracer.instant("cache/put")
        put = tracer.events()[0]
        assert put.args["instr"] == "inner#2"

    def test_no_attribution_outside_spans(self, tracer):
        tracer.instant(EV_PROBE, hit=False)
        (event,) = tracer.events()
        assert "instr" not in (event.args or {})
        assert tracer.current_instruction is None

    def test_complete_spans_carry_explicit_interval(self, tracer):
        tracer.complete(EV_SPARK_JOB, LANE_SP, 1.0, 3.5, rdd="X")
        (event,) = tracer.events()
        assert event.ts == 1.0 and event.dur == 2.5
        assert event.lane == LANE_SP


# ------------------------------------------------------- sim-clock ordering


class TestClockOrdering:
    def test_lanes_stamp_their_own_timelines(self, tracer):
        clock = tracer.clock
        clock.advance(1.0, HOST)
        clock.advance(2.0, CLUSTER)
        clock.advance(3.0, DEVICE)
        tracer.instant("a", LANE_CP)
        tracer.instant("b", LANE_SP)
        tracer.instant("c", LANE_GPU)
        a, b, c = tracer.events()
        assert (a.ts, b.ts, c.ts) == (1.0, 2.0, 3.0)

    def test_events_emitted_in_monotone_order_per_lane(self, tracer):
        for _ in range(5):
            tracer.instant("tick", LANE_CP)
            tracer.clock.advance(0.1, HOST)
        stamps = [e.ts for e in tracer.events()]
        assert stamps == sorted(stamps)

    def test_span_duration_never_negative(self, tracer):
        with tracer.span("noop", LANE_CP):
            pass
        assert tracer.events()[0].dur == 0.0


# ----------------------------------------------------------------------- sinks


class TestSinks:
    def test_ring_buffer_drops_oldest(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.emit(Event("e", PHASE_INSTANT, float(i)))
        assert [e.ts for e in ring.events()] == [2.0, 3.0, 4.0]
        assert ring.total_emitted == 5
        assert ring.dropped == 2

    def test_jsonl_round_trip(self, tmp_path):
        events = [
            Event("instr", PHASE_SPAN, 0.5, LANE_CP, 0.25, 1,
                  {"opcode": "+", "hop": 3}),
            Event("cache/probe", PHASE_INSTANT, 0.75, LANE_CP, 0.0, 1,
                  {"hit": False}),
        ]
        path = str(tmp_path / "events.jsonl")
        assert write_jsonl(events, path) == 2
        assert read_jsonl(path) == events

    def test_jsonl_sink_streams_from_tracer(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        clock = SimClock()
        with JsonlSink(path) as sink:
            tracer = Tracer(clock, sinks=[sink])
            tracer.instant("x", LANE_CP)
        (event,) = read_jsonl(path)
        assert event.name == "x"


# ------------------------------------------------------------- chrome export


class TestChromeExport:
    def _sample_events(self):
        return [
            Event("instr", PHASE_SPAN, 0.001, LANE_CP, 0.002, 0,
                  {"opcode": "+", "hop": 1}),
            Event("spark/job", PHASE_SPAN, 0.002, LANE_SP, 0.004, 0,
                  {"rdd": "X"}),
            Event("gpu/kernel", PHASE_SPAN, 0.003, LANE_GPU, 0.001, 1),
            Event("cache/probe", PHASE_INSTANT, 0.0015, LANE_CP, 0.0, 0,
                  {"hit": True, "instr": "+#1"}),
        ]

    def test_round_trip_and_schema(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export_chrome_trace(self._sample_events(), path, {0: "full", 1: "base"})
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc) == []

    def test_lanes_become_distinct_threads(self):
        doc = chrome_trace_dict(self._sample_events())
        rows = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
                if e["ph"] != "M"}
        # session 0 uses CP+SP threads, session 1 the GPU thread
        assert len(rows) == 3
        tids = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert tids["CP"] != tids["SP"]

    def test_timestamps_converted_to_microseconds(self):
        doc = chrome_trace_dict(self._sample_events())
        instr = next(e for e in doc["traceEvents"] if e["name"] == "instr")
        assert instr["ts"] == pytest.approx(1000.0)
        assert instr["dur"] == pytest.approx(2000.0)

    def test_session_labels_name_processes(self):
        doc = chrome_trace_dict(self._sample_events(), {0: "full", 1: "base"})
        names = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {0: "full", 1: "base"}

    def test_validator_flags_malformed_documents(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_phase = {"traceEvents": [
            {"name": "e", "ph": "Q", "pid": 0, "tid": 1, "ts": 0.0}
        ]}
        assert any("ph" in p for p in validate_chrome_trace(bad_phase))


# ------------------------------------------------------ disabled == no events


class TestDisabledTracing:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("instr", LANE_CP, opcode="+"):
            NULL_TRACER.instant("cache/probe", hit=True)
        assert NULL_TRACER.events() == []

    def test_disabled_session_emits_nothing(self):
        assert current_collector() is None
        sess = Session(MemphisConfig.memphis())
        assert sess.tracer is NULL_TRACER
        assert sess.trace_collector is None
        X = sess.read(np.random.default_rng(0).random((64, 8)), "X")
        (X.t() @ X).compute()
        assert sess.trace_events() == []

    def test_all_session_components_share_null_tracer(self):
        sess = Session(MemphisConfig.memphis())
        assert sess.cache.tracer is NULL_TRACER
        assert sess.spark_context.tracer is NULL_TRACER
        assert sess.gpu.stream.tracer is NULL_TRACER
        assert sess.gpu.memory.tracer is NULL_TRACER


# ----------------------------------------------------------- session / ambient


class TestSessionIntegration:
    def _run_workload(self, sess):
        rng = np.random.default_rng(0)
        X = sess.read(rng.random((256, 16)), "X")
        y = sess.read(rng.random((256, 1)), "y")
        for reg in (0.1, 0.1):
            A = X.t() @ X
            b = (y.t() @ X).t()
            sess.solve(A + sess.eye(16) * reg, b).compute()

    def test_config_flag_enables_private_collector(self):
        config = MemphisConfig.memphis()
        config.trace_enabled = True
        sess = Session(config)
        self._run_workload(sess)
        events = sess.trace_events()
        names = {e.name for e in events}
        assert EV_INSTR in names and EV_PROBE in names
        hits = [e for e in events
                if e.name == EV_PROBE and e.args.get("hit")]
        assert hits, "second grid iteration must produce probe hits"
        assert all(e.session == sess.tracer.session_id for e in events)

    def test_ambient_collector_captures_multiple_sessions(self):
        with tracing() as collector:
            for config in (MemphisConfig.base(), MemphisConfig.memphis()):
                self._run_workload(Session(config))
        assert current_collector() is None
        assert collector.num_sessions == 2
        sessions = {e.session for e in collector.events()}
        assert sessions == {0, 1}
        assert set(collector.session_labels) == {0, 1}

    def test_instruction_attribution_in_real_run(self):
        config = MemphisConfig.memphis()
        config.trace_enabled = True
        sess = Session(config)
        self._run_workload(sess)
        probes = [e for e in sess.trace_events() if e.name == EV_PROBE]
        assert probes
        assert all("instr" in e.args for e in probes)

    def test_export_trace_validates(self, tmp_path):
        config = MemphisConfig.memphis()
        config.trace_enabled = True
        sess = Session(config)
        self._run_workload(sess)
        path = str(tmp_path / "session.json")
        sess.export_trace(path)
        assert validate_chrome_trace(load_chrome_trace(path)) == []

    def test_enable_disable_round_trip(self):
        collector = enable_tracing()
        assert current_collector() is collector
        assert disable_tracing() is collector
        assert current_collector() is None


# --------------------------------------------------------------------- summary


class TestSummary:
    def _events(self):
        return [
            Event(EV_INSTR, PHASE_SPAN, 0.0, LANE_CP, 0.5, 0,
                  {"opcode": "ba+*", "hop": 1, "backend": "CP"}),
            Event(EV_INSTR, PHASE_SPAN, 0.5, LANE_CP, 0.1, 0,
                  {"opcode": "+", "hop": 2, "backend": "CP"}),
            Event(EV_PROBE, PHASE_INSTANT, 0.1, LANE_CP, 0.0, 0,
                  {"hit": True, "opcode": "ba+*"}),
            Event(EV_PROBE, PHASE_INSTANT, 0.2, LANE_CP, 0.0, 0,
                  {"hit": False, "opcode": "ba+*"}),
            Event("cache/evict", PHASE_INSTANT, 0.3, LANE_CP, 0.0, 0,
                  {"backend": "CP"}),
        ]

    def test_summarize_counts(self):
        summary = summarize(self._events())
        assert summary.num_events == 5
        assert summary.slowest[0].args["opcode"] == "ba+*"
        site = summary.reuse_sites["ba+*"]
        assert site.hits == 1 and site.misses == 1
        assert summary.evictions == {"driver-cache": 1}

    def test_format_summary_sections(self):
        text = format_summary(self._events())
        assert text.startswith("=== trace summary ===")
        assert "slowest instructions" in text
        assert "50.0%" in text
        assert "driver-cache" in text

    def test_empty_trace(self):
        assert "0" in format_summary([])


# ------------------------------------------------------------ stats merge


class TestStatsMerge:
    def test_merge_sums_counters_and_accumulators(self):
        a, b = Stats(), Stats()
        a.inc("cache/hits", 2)
        b.inc("cache/hits", 3)
        b.inc("spark/jobs")
        a.merge(b)
        assert a.get("cache/hits") == 5
        assert a.get("spark/jobs") == 1

    def test_collector_aggregates_session_stats(self):
        collector = TraceCollector()
        for hits in (2, 3):
            stats = Stats()
            stats.inc("cache/hits", hits)
            collector.tracer(SimClock(), label="s", stats=stats)
        assert collector.aggregate_stats().get("cache/hits") == 5

    def test_report_groups_by_subsystem(self):
        stats = Stats()
        stats.inc("cache/hits")
        stats.inc("spark/jobs")
        report = stats.report()
        assert report.splitlines()[0] == "=== statistics ==="
        assert "-- cache --" in report
        assert "-- spark --" in report

    def test_merge_sums_timers(self):
        a, b = Stats(), Stats()
        a.add_time("runtime/compute_s", 1.5)
        b.add_time("runtime/compute_s", 2.5)
        b.add_time("spark/shuffle_s", 0.5)
        a.merge(b)
        assert a.get_time("runtime/compute_s") == 4.0
        assert a.get_time("spark/shuffle_s") == 0.5
        assert "runtime/compute_s" in a.report()

    def test_get_does_not_insert_keys(self):
        stats = Stats()
        assert stats.get("cache/hits") == 0
        assert stats.get_time("runtime/x") == 0.0
        assert stats.counters() == {}
        assert stats.timers() == {}

    def test_report_derived_ratios(self):
        stats = Stats()
        stats.inc("cache/probes", 10)
        stats.inc("cache/hits", 4)
        stats.inc("gpu/pointers_recycled", 3)
        stats.inc("gpu/cuda_mallocs", 1)
        ratios = stats.derived_ratios()
        assert ratios["cache/hit_rate"] == pytest.approx(0.4)
        assert ratios["gpu/recycle_rate"] == pytest.approx(0.75)
        report = stats.report()
        assert "cache/hit_rate" in report
        assert "gpu/recycle_rate" in report

    def test_report_ratios_absent_without_denominator(self):
        stats = Stats()
        stats.inc("cache/hits", 4)  # hits but zero probes
        assert "cache/hit_rate" not in stats.report()

    def test_report_widens_name_column(self):
        stats = Stats()
        long_name = "subsystem/" + "x" * 60
        stats.inc(long_name)
        stats.inc("cache/hits")
        report = stats.report()
        for line in report.splitlines():
            if line.startswith("cache/hits"):
                assert len(line.split()[0]) == len("cache/hits")
                # value column starts after the widened name column
                assert line.index("1") > len(long_name)


# ------------------------------------------------------------ sink rotation


class TestRotatingJsonlSink:
    def _event(self, i):
        return Event(name=f"instr-{i:04d}", ph=PHASE_INSTANT, ts=float(i))

    def test_no_rotation_under_limit(self, tmp_path):
        from repro.obs import RotatingJsonlSink

        path = str(tmp_path / "t.jsonl")
        with RotatingJsonlSink(path, max_bytes=1 << 20) as sink:
            for i in range(10):
                sink.emit(self._event(i))
        assert sink.rotations == 0
        assert sink.files() == [path]
        assert len(read_jsonl(path)) == 10

    def test_rotation_preserves_every_event(self, tmp_path):
        from repro.obs import RotatingJsonlSink

        path = str(tmp_path / "t.jsonl")
        with RotatingJsonlSink(path, max_bytes=256, backup_count=64) as sink:
            for i in range(40):
                sink.emit(self._event(i))
        assert sink.rotations > 0
        recovered = []
        for part in sink.files():
            recovered.extend(read_jsonl(part))
        assert [e.name for e in recovered] == \
            [f"instr-{i:04d}" for i in range(40)]

    def test_backup_count_caps_files(self, tmp_path):
        from repro.obs import RotatingJsonlSink

        path = str(tmp_path / "t.jsonl")
        with RotatingJsonlSink(path, max_bytes=128, backup_count=2) as sink:
            for i in range(60):
                sink.emit(self._event(i))
        assert len(sink.files()) <= 3  # active + 2 backups
        # the newest events survive; the oldest were rotated away
        newest = read_jsonl(path)
        assert newest[-1].name == "instr-0059"

    def test_rejects_bad_parameters(self, tmp_path):
        from repro.obs import RotatingJsonlSink

        with pytest.raises(ValueError):
            RotatingJsonlSink(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError):
            RotatingJsonlSink(str(tmp_path / "y"), backup_count=0)


# ------------------------------------------------------------ empty traces


class TestEmptyTraceSummary:
    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.num_events == 0

    def test_format_summary_empty_is_complete(self):
        text = format_summary([])
        assert text.startswith("=== trace summary ===")
        # no crash, no per-site sections with stale data
        assert "0" in text
