"""Tests for the compiler: IR, CSE, rewrites, linearization, tuning."""

import pytest

from repro.analysis import check_linearization
from repro.common.config import MemphisConfig, StorageLevel
from repro.common.errors import CompilationError
from repro.compiler.ir import (
    Hop,
    data_hop,
    infer_shape,
    literal_hop,
    op_hop,
)
from repro.compiler.linearize import depth_first, max_parallelize
from repro.compiler.rewrites.async_ops import place_broadcast, place_prefetch
from repro.compiler.rewrites.checkpoint import (
    place_shared_checkpoints,
    should_checkpoint_loop_var,
)
from repro.compiler.rewrites.cse import eliminate_common_subexpressions
from repro.compiler.rewrites.tuning import ProgramBlock, tune_block, tune_program
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP


class TestShapeInference:
    def test_matmul(self):
        assert infer_shape("ba+*", [(10, 20), (20, 5)], {}) == (10, 5)

    def test_transpose(self):
        assert infer_shape("r'", [(3, 7)], {}) == (7, 3)

    def test_solve(self):
        assert infer_shape("solve", [(5, 5), (5, 2)], {}) == (5, 2)

    def test_aggregates(self):
        assert infer_shape("uak+", [(10, 5)], {}) == (1, 1)
        assert infer_shape("uark+", [(10, 5)], {}) == (10, 1)
        assert infer_shape("uack+", [(10, 5)], {}) == (1, 5)

    def test_rand_seq(self):
        assert infer_shape("rand", [], {"rows": 8, "cols": 3}) == (8, 3)
        assert infer_shape("seq", [], {"from": 0, "to": 9, "incr": 1}) == (10, 1)

    def test_indexing(self):
        assert infer_shape("rightIndex", [(10, 10)],
                           {"rl": 2, "ru": 5, "cl": 1, "cu": 3}) == (4, 3)

    def test_binds(self):
        assert infer_shape("cbind", [(5, 2), (5, 3)], {}) == (5, 5)
        assert infer_shape("rbind", [(5, 2), (3, 2)], {}) == (8, 2)

    def test_broadcasting_binary(self):
        assert infer_shape("+", [(10, 5), (1, 5)], {}) == (10, 5)
        assert infer_shape("*", [(10, 1), (10, 5)], {}) == (10, 5)

    def test_conv_shapes(self):
        shape = infer_shape("conv2d", [(4, 3 * 8 * 8), (16, 27)], {
            "N": 4, "C": 3, "H": 8, "W": 8, "K": 16, "R": 3, "S": 3,
        })
        assert shape == (4, 16 * 6 * 6)

    def test_memory_estimate(self):
        hop = op_hop("ba+*", [literal_and(10, 20), literal_and(20, 5)])
        assert hop.output_bytes == 10 * 5 * 8
        assert hop.memory_estimate == (10 * 5 + 10 * 20 + 20 * 5) * 8


def literal_and(rows, cols):
    """A leaf hop with a given shape (stand-in for data)."""
    return Hop("data", "data", [], shape=(rows, cols))


class TestCse:
    def test_merges_identical_subtrees(self):
        x = literal_and(10, 10)
        a = op_hop("exp", [x])
        b = op_hop("exp", [x])
        root = op_hop("+", [a, b])
        roots, extra = eliminate_common_subexpressions([root])
        merged = roots[0]
        assert merged.inputs[0] is merged.inputs[1]

    def test_respects_attrs(self):
        x = literal_and(10, 10)
        a = op_hop("rightIndex", [x], {"rl": 1, "ru": 5, "cl": 1, "cu": 10})
        b = op_hop("rightIndex", [x], {"rl": 6, "ru": 10, "cl": 1, "cu": 10})
        root = op_hop("rbind", [a, b])
        roots, _ = eliminate_common_subexpressions([root])
        assert roots[0].inputs[0] is not roots[0].inputs[1]

    def test_distinct_leaves_not_merged(self):
        a = op_hop("exp", [literal_and(5, 5)])
        b = op_hop("exp", [literal_and(5, 5)])
        root = op_hop("+", [a, b])
        roots, _ = eliminate_common_subexpressions([root])
        assert roots[0].inputs[0] is not roots[0].inputs[1]

    def test_deep_chain_no_recursion_error(self):
        x = literal_and(2, 2)
        node = x
        for _ in range(5000):
            node = op_hop("exp", [node])
        roots, _ = eliminate_common_subexpressions([node])
        assert roots[0] is node

    def test_literals_merged_by_value(self):
        a = op_hop("+", [literal_hop(1.0), literal_hop(1.0)])
        roots, _ = eliminate_common_subexpressions([a])
        assert roots[0].inputs[0] is roots[0].inputs[1]


class TestLinearize:
    def _diamond(self):
        x = literal_and(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        c = op_hop("sqrt", [a])
        root = op_hop("+", [b, c])
        return x, a, b, c, root

    def test_depth_first_postorder(self):
        x, a, b, c, root = self._diamond()
        order = depth_first([root])
        pos = {h.id: i for i, h in enumerate(order)}
        assert pos[x.id] < pos[a.id] < pos[b.id]
        assert pos[a.id] < pos[c.id]
        assert pos[root.id] == len(order) - 1

    def test_depth_first_no_duplicates(self):
        *_, root = self._diamond()
        order = depth_first([root])
        assert len(order) == len({h.id for h in order})

    def test_max_parallelize_falls_back_without_remote(self):
        *_, root = self._diamond()
        assert [h.id for h in max_parallelize([root])] == \
            [h.id for h in depth_first([root])]

    def test_max_parallelize_longest_chain_first(self):
        x = literal_and(4, 4)
        # chain 1: three SP ops ending in a prefetch root
        s1 = op_hop("exp", [x]); s1.placement = BACKEND_SP
        s2 = op_hop("log", [s1]); s2.placement = BACKEND_SP
        long_root = op_hop("sqrt", [s2])
        long_root.placement = BACKEND_SP
        long_root.prefetch = True
        # chain 2: single SP op
        short_root = op_hop("abs", [x])
        short_root.placement = BACKEND_SP
        short_root.prefetch = True
        final = op_hop("+", [short_root, long_root])
        final.placement = BACKEND_CP
        order = max_parallelize([final])
        pos = {h.id: i for i, h in enumerate(order)}
        # the longer chain's root is linearized before the shorter one
        assert pos[long_root.id] < pos[short_root.id]
        # dependencies still satisfied
        assert pos[s1.id] < pos[s2.id] < pos[long_root.id]
        assert pos[final.id] == len(order) - 1

    def test_max_parallelize_is_valid_topological_order(self):
        x = literal_and(4, 4)
        s1 = op_hop("exp", [x]); s1.placement = BACKEND_SP; s1.prefetch = True
        s2 = op_hop("log", [s1]); s2.placement = BACKEND_SP; s2.prefetch = True
        final = op_hop("+", [s1, s2])
        order = max_parallelize([final])
        pos = {h.id: i for i, h in enumerate(order)}
        for hop in order:
            for inp in hop.inputs:
                assert pos[inp.id] < pos[hop.id]

    def test_depth_first_node_is_inner_and_later_root(self):
        # a appears inside root's DAG *and* again as its own root: it
        # must be emitted exactly once, at its first post-order slot
        x, a, b, c, root = self._diamond()
        order = depth_first([root, a])
        assert [h.id for h in order].count(a.id) == 1
        assert len(order) == len({h.id for h in order})
        assert check_linearization([root, a], order) == []

    def test_depth_first_root_before_its_consumer_root(self):
        x, a, b, c, root = self._diamond()
        order = depth_first([a, root])
        pos = {h.id: i for i, h in enumerate(order)}
        assert pos[a.id] < pos[root.id]
        assert check_linearization([a, root], order) == []

    def test_depth_first_duplicate_roots(self):
        *_, root = self._diamond()
        order = depth_first([root, root])
        assert len(order) == len({h.id for h in order})
        assert check_linearization([root, root], order) == []

    def test_depth_first_same_input_twice(self):
        x = literal_and(4, 4)
        root = op_hop("+", [x, x])
        order = depth_first([root])
        assert [h.id for h in order] == [x.id, root.id]

    def test_depth_first_rejects_cycle(self):
        x = literal_and(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        a.inputs.append(b)
        with pytest.raises(CompilationError):
            depth_first([b])

    def test_iter_dag_matches_depth_first(self):
        *_, root = self._diamond()
        assert [h.id for h in root.iter_dag()] == \
            [h.id for h in depth_first([root])]

    def _prefetch_chain(self, x, length, backend):
        node = x
        for _ in range(length):
            node = op_hop("exp", [node])
            node.placement = backend
        node.prefetch = True
        return node

    def test_max_parallelize_tie_broken_by_discovery_order(self):
        # equal chain lengths: the sort is stable, so chains keep the
        # deterministic iter_dag discovery order (left-to-right)
        x = literal_and(4, 4)
        first = self._prefetch_chain(x, 2, BACKEND_SP)
        second = self._prefetch_chain(x, 2, BACKEND_SP)
        final = op_hop("+", [first, second])
        final.placement = BACKEND_CP
        order = max_parallelize([final])
        pos = {h.id: i for i, h in enumerate(order)}
        assert pos[first.id] < pos[second.id]
        # swapping the consumer's operands swaps the discovery order
        final2 = op_hop("+", [second, first])
        final2.placement = BACKEND_CP
        order2 = max_parallelize([final2])
        pos2 = {h.id: i for i, h in enumerate(order2)}
        assert pos2[second.id] < pos2[first.id]

    def test_max_parallelize_mixed_sp_and_gpu_chains(self):
        x = literal_and(4, 4)
        gpu_root = self._prefetch_chain(x, 3, BACKEND_GPU)
        sp_root = self._prefetch_chain(x, 1, BACKEND_SP)
        final = op_hop("+", [sp_root, gpu_root])
        final.placement = BACKEND_CP
        order = max_parallelize([final])
        pos = {h.id: i for i, h in enumerate(order)}
        # the longer GPU chain is linearized before the shorter SP one
        assert pos[gpu_root.id] < pos[sp_root.id]
        assert pos[final.id] == len(order) - 1
        assert check_linearization([final], order) == []


class TestAsyncRewrites:
    def _sp_to_cp(self):
        x = literal_and(10_000, 100)
        sp = op_hop("exp", [x])
        sp.placement = BACKEND_SP
        cp = op_hop("uak+", [sp])
        cp.placement = BACKEND_CP
        return sp, cp

    def test_prefetch_placed_on_boundary(self):
        sp, cp = self._sp_to_cp()
        placed = place_prefetch([cp], MemphisConfig.memphis())
        assert placed == 1
        assert sp.prefetch

    def test_prefetch_disabled_without_async(self):
        sp, cp = self._sp_to_cp()
        assert place_prefetch([cp], MemphisConfig.base()) == 0
        assert not sp.prefetch

    def test_broadcast_placed_for_small_cp_feeding_sp(self):
        small = op_hop("exp", [literal_and(10, 10)])
        small.placement = BACKEND_CP
        consumer = op_hop("+", [small, literal_and(10_000, 10)])
        consumer.placement = BACKEND_SP
        placed = place_broadcast([consumer], MemphisConfig.memphis())
        assert placed == 1
        assert small.async_broadcast

    def test_broadcast_skips_large(self):
        cfg = MemphisConfig.memphis()
        big_cols = cfg.spark.driver_memory // 2 // 8
        big = op_hop("exp", [literal_and(1, big_cols)])
        big.placement = BACKEND_CP
        consumer = op_hop("+", [big, literal_and(1, big_cols)])
        consumer.placement = BACKEND_SP
        assert place_broadcast([consumer], cfg) == 0


class TestCheckpointRewrites:
    def test_shared_sp_hop_checkpointed(self):
        x = literal_and(100_000, 100)
        shared = op_hop("exp", [x]); shared.placement = BACKEND_SP
        j1 = op_hop("uark+", [shared]); j1.placement = BACKEND_SP
        j2 = op_hop("log", [shared]); j2.placement = BACKEND_SP
        placed = place_shared_checkpoints([j1, j2], MemphisConfig.memphis())
        assert placed == 1
        assert shared.checkpoint

    def test_single_consumer_not_checkpointed(self):
        x = literal_and(100_000, 100)
        sp = op_hop("exp", [x]); sp.placement = BACKEND_SP
        j1 = op_hop("uark+", [sp]); j1.placement = BACKEND_SP
        assert place_shared_checkpoints([j1], MemphisConfig.memphis()) == 0

    def test_loop_var_predicate_uses_size(self):
        cfg = MemphisConfig.memphis()
        threshold_cells = cfg.cpu.operation_memory_bytes // 8
        assert should_checkpoint_loop_var((threshold_cells + 1, 1), cfg)
        assert not should_checkpoint_loop_var((10, 10), cfg)

    def test_loop_var_predicate_disabled(self):
        cfg = MemphisConfig.base()
        assert not should_checkpoint_loop_var((10**9, 10), cfg)


class TestAutoTuning:
    def test_highly_reusable_block_no_delay(self):
        block = ProgramBlock("clean", execution_frequency=18, num_ops=100,
                             num_loop_dependent_ops=0)
        tuning = tune_block(block)
        assert tuning.delay_factor == 1
        assert tuning.storage_level is StorageLevel.MEMORY_AND_DISK

    def test_loop_dependent_block_delayed(self):
        block = ProgramBlock("fs", execution_frequency=10, num_ops=100,
                             num_loop_dependent_ops=90)
        tuning = tune_block(block)
        assert tuning.delay_factor == 4
        assert tuning.storage_level is StorageLevel.MEMORY_ONLY

    def test_partially_reusable_block(self):
        block = ProgramBlock("train", execution_frequency=10, num_ops=100,
                             num_loop_dependent_ops=40)
        assert tune_block(block).delay_factor == 2

    def test_run_once_block_delayed(self):
        block = ProgramBlock("init", execution_frequency=1, num_ops=100,
                             num_loop_dependent_ops=0)
        assert tune_block(block).delay_factor == 4

    def test_tune_program_recurses(self):
        root = ProgramBlock("main", children=[
            ProgramBlock("inner", execution_frequency=10, num_ops=10),
        ])
        out = tune_program(root)
        assert set(out) == {"main", "inner"}
