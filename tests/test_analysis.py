"""Tests for the static IR verifier (repro.analysis).

Every pass is exercised with at least one violating and one clean
program; plus the diagnostics model, the dataflow infrastructure, the
pass manager, the session wiring, and the ambient collector.
"""

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_PASS_ORDER,
    AnalysisCollector,
    Diagnostic,
    DiagnosticReport,
    PassManager,
    Severity,
    StreamDefUse,
    analyze,
    check_linearization,
    collecting,
    current_collector,
    registered_passes,
    verify_ir,
    walk_dag,
)
from repro.common.config import MemphisConfig
from repro.common.errors import CompilationError, VerificationError
from repro.compiler.ir import Hop, literal_hop, op_hop
from repro.compiler.linearize import depth_first
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP
from repro.lineage.item import LineageItem


def leaf(rows, cols, name=None):
    """A data leaf with a lineage bundle and a materialized payload."""
    hop = Hop("data", "data", [], shape=(rows, cols))
    item = LineageItem("data", (name or f"leaf{hop.id}",))
    hop.bundle = (item, {"CP": object()})
    return hop


def bare_leaf(rows, cols):
    """A data leaf with neither handle nor bundle (invalid at runtime)."""
    return Hop("data", "data", [], shape=(rows, cols))


def place_all(roots, backend=BACKEND_CP):
    for root in roots:
        for hop in root.iter_dag():
            if hop.kind == "op" and hop.placement is None:
                hop.placement = backend


# ------------------------------------------------------------ diagnostics

class TestDiagnostics:
    def test_severity_ordering_and_parse(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.parse("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_format_includes_rule_hop_and_hint(self):
        diag = Diagnostic("DAG003", Severity.ERROR, "bad shape",
                          "dag-verify", hop=7, opcode="ba+*", hint="fix it")
        text = diag.format()
        assert "[error] DAG003 at hop#7(ba+*): bad shape" in text
        assert "hint: fix it" in text

    def test_report_queries(self):
        report = DiagnosticReport()
        report.add(Diagnostic("A1", Severity.INFO, "i", "p"))
        report.add(Diagnostic("A2", Severity.ERROR, "e", "p"))
        assert len(report) == 2
        assert [d.rule for d in report.errors()] == ["A2"]
        assert report.counts() == {"info": 1, "error": 1}
        assert "1 error" in report.summary()
        assert report.by_rule("A1")[0].message == "i"

    def test_empty_report_is_clean(self):
        report = DiagnosticReport()
        assert not report
        assert report.summary() == "clean"


# --------------------------------------------------------------- dataflow

class TestWalkDag:
    def test_postorder_and_dedup(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        root = op_hop("+", [a, a])
        nodes, back_edges = walk_dag([root])
        assert [n.id for n in nodes] == [x.id, a.id, root.id]
        assert not back_edges

    def test_detects_cycle(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        a.inputs.append(b)
        _, back_edges = walk_dag([b])
        assert back_edges


class TestStreamDefUse:
    def test_positions_and_liveness(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        du = StreamDefUse([x, a, b], roots=[b])
        assert du.def_pos[x.id] == 0
        assert du.first_use(x) == 1
        assert not du.is_dead(b)  # program output
        assert not du.is_dead(x)  # consumed

    def test_undefined_use_and_duplicates(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        du = StreamDefUse([a, x, x], roots=[a])
        assert du.undefined_uses  # a consumes x before its definition
        assert [h.id for h in du.duplicates] == [x.id]


# -------------------------------------------------------------- dag-verify

class TestDagVerify:
    def test_clean_program(self):
        x = leaf(8, 4)
        root = op_hop("uak+", [op_hop("exp", [x])])
        assert not analyze([root], passes=("dag-verify",))

    def test_dag001_cycle(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        a.inputs.append(b)
        report = analyze([b], passes=("dag-verify",))
        assert report.by_rule("DAG001")

    def test_dag002_dangling_data_leaf(self):
        root = op_hop("exp", [bare_leaf(4, 4)])
        report = analyze([root], passes=("dag-verify",))
        assert report.by_rule("DAG002")

    def test_dag003_stale_shape(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.shape = (9, 9)  # a "rewrite" forgot to re-derive
        report = analyze([root], passes=("dag-verify",))
        assert [d.severity for d in report.by_rule("DAG003")] == \
            [Severity.ERROR]

    def test_dag004_literal_with_inputs(self):
        bad = Hop("literal", "lit", [leaf(2, 2)], shape=(1, 1))
        report = analyze([bad], passes=("dag-verify",))
        assert report.by_rule("DAG004")

    def test_dag005_shape_inference_failure(self):
        bad = Hop("op", "nosuchop", [], shape=(4, 4))
        report = analyze([bad], passes=("dag-verify",))
        assert report.by_rule("DAG005")

    def test_dag006_empty_shape(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.inputs[0].shape = (0, 4)
        root.shape = (0, 4)
        report = analyze([root], passes=("dag-verify",))
        assert {d.severity for d in report.by_rule("DAG006")} == \
            {Severity.WARNING}


# ----------------------------------------------------- placement-legality

class TestPlacementLegality:
    def test_clean_cp_program(self):
        x = leaf(8, 4)
        root = op_hop("uak+", [op_hop("exp", [x])])
        place_all([root])
        assert not analyze([root], passes=("placement-legality",))

    def test_unplaced_dag_is_skipped(self):
        root = op_hop("exp", [bare_leaf(4, 4)])
        assert not analyze([root], passes=("placement-legality",))

    def test_plc001_unsupported_spark_op(self):
        a, b = leaf(5, 5), leaf(5, 2)
        root = op_hop("solve", [a, b])
        root.placement = BACKEND_SP
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC001")

    def test_plc002_disabled_backend(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.placement = BACKEND_GPU
        cfg = MemphisConfig()  # gpu_enabled defaults to False
        report = analyze([root], config=cfg,
                         passes=("placement-legality",))
        assert report.by_rule("PLC002")

    def test_plc003_missing_gpu_kernel(self):
        root = Hop("op", "seq", [], attrs={"from": 1, "to": 4},
                   shape=(4, 1))
        root.placement = BACKEND_GPU
        cfg = MemphisConfig(gpu_enabled=True)
        report = analyze([root], config=cfg,
                         passes=("placement-legality",))
        assert report.by_rule("PLC003")

    def test_plc004_exceeds_device_memory(self):
        cfg = MemphisConfig(gpu_enabled=True)
        rows = cfg.gpu.device_memory // 8
        root = op_hop("relu", [leaf(rows, 1)])
        root.placement = BACKEND_GPU
        report = analyze([root], config=cfg,
                         passes=("placement-legality",))
        assert report.by_rule("PLC004")

    def test_plc005_exceeds_operation_memory(self):
        cfg = MemphisConfig(gpu_enabled=True)
        rows = cfg.cpu.operation_memory_bytes // 8
        assert 2 * rows * 8 < cfg.gpu.device_memory
        root = op_hop("relu", [leaf(rows, 1)])
        root.placement = BACKEND_GPU
        report = analyze([root], config=cfg,
                         passes=("placement-legality",))
        assert {d.severity for d in report.by_rule("PLC005")} == \
            {Severity.WARNING}

    def test_plc006_prefetch_on_cp(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.placement = BACKEND_CP
        root.prefetch = True
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC006")

    def test_plc007_broadcast_on_spark(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.placement = BACKEND_SP
        root.async_broadcast = True
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC007")

    def test_plc009_partially_placed(self):
        inner = op_hop("exp", [leaf(4, 4)])
        root = op_hop("log", [inner])
        root.placement = BACKEND_CP  # inner left unplaced
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC009")

    def test_plc010_empty_payloads(self):
        x = leaf(4, 4)
        x.bundle = (x.bundle[0], {})  # lineage but nothing materialized
        root = op_hop("exp", [x])
        place_all([root])
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC010")

    def test_plc011_missing_cpu_kernel(self):
        root = Hop("op", "nosuchop", [leaf(4, 4)], shape=(4, 4))
        root.placement = BACKEND_CP
        report = analyze([root], passes=("placement-legality",))
        assert report.by_rule("PLC011")


# ----------------------------------------------- linearization-soundness

class TestLinearizationSoundness:
    def _program(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        return x, a, b

    def test_depth_first_order_is_sound(self):
        *_, b = self._program()
        assert check_linearization([b], depth_first([b])) == []

    def test_lin001_use_before_def(self):
        x, a, b = self._program()
        errors = check_linearization([b], [b, a, x])
        assert {d.rule for d in errors} == {"LIN001"}

    def test_lin002_duplicate_instruction(self):
        x, a, b = self._program()
        errors = check_linearization([b], [x, a, a, b])
        assert "LIN002" in {d.rule for d in errors}

    def test_lin003_missing_instruction(self):
        x, a, b = self._program()
        errors = check_linearization([b], [x, b])
        rules = {d.rule for d in errors}
        assert "LIN003" in rules  # a reachable but not scheduled
        assert "LIN001" in rules  # and b consumes it undefined

    def test_lin004_stray_instruction_is_warning(self):
        x, a, b = self._program()
        stray = op_hop("sqrt", [x])
        report = analyze([b], [x, a, stray, b],
                         passes=("linearization-soundness",))
        assert not report.errors()
        assert {d.severity for d in report.by_rule("LIN004")} == \
            {Severity.WARNING}


# ----------------------------------------------------------- liveness-leak

class TestLivenessLeak:
    def test_clean_program(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        report = analyze([b], [x, a, b], passes=("liveness-leak",))
        assert not report

    def test_liv001_dead_op(self):
        x = leaf(4, 4)
        dead = op_hop("exp", [x])
        root = op_hop("log", [x])
        report = analyze([root], [x, dead, root],
                         passes=("liveness-leak",))
        assert report.by_rule("LIV001")

    def test_liv002_dead_gpu_value(self):
        x = leaf(4, 4)
        dead = op_hop("exp", [x])
        dead.placement = BACKEND_GPU
        root = op_hop("log", [x])
        report = analyze([root], [x, dead, root],
                         passes=("liveness-leak",))
        assert report.by_rule("LIV002")

    def test_liv003_unused_data_leaf(self):
        x, unused = leaf(4, 4), leaf(2, 2)
        root = op_hop("exp", [x])
        report = analyze([root], [x, unused, root],
                         passes=("liveness-leak",))
        assert {d.severity for d in report.by_rule("LIV003")} == \
            {Severity.INFO}


# -------------------------------------------------------------- async-race

class TestAsyncRace:
    def _sp_chain(self):
        x = leaf(1000, 100)
        s = op_hop("exp", [x])
        s.placement = BACKEND_SP
        s.prefetch = True
        return x, s

    def test_clean_prefetch_with_overlap(self):
        x, s = self._sp_chain()
        other = op_hop("log", [x])
        other.placement = BACKEND_CP
        c = op_hop("uak+", [s])
        c.placement = BACKEND_CP
        root = op_hop("+", [other, c])
        root.placement = BACKEND_CP
        report = analyze([root], [x, s, other, c, root],
                         passes=("async-race",))
        assert not report

    def test_asy001_zero_overlap(self):
        x, s = self._sp_chain()
        c = op_hop("uak+", [s])
        c.placement = BACKEND_CP
        report = analyze([c], [x, s, c], passes=("async-race",))
        assert {d.severity for d in report.by_rule("ASY001")} == \
            {Severity.INFO}

    def test_asy002_device_race(self):
        x = leaf(100, 100)
        g = op_hop("exp", [x])
        g.placement = BACKEND_GPU
        g.prefetch = True
        c = op_hop("relu", [g])
        c.placement = BACKEND_GPU
        report = analyze([c], [x, g, c], passes=("async-race",))
        assert report.by_rule("ASY002")

    def test_asy003_spark_internal_prefetch(self):
        x, s = self._sp_chain()
        c = op_hop("log", [s])
        c.placement = BACKEND_SP
        report = analyze([c], [x, s, c], passes=("async-race",))
        assert report.by_rule("ASY003")

    def test_asy004_unconsumed_broadcast(self):
        x = leaf(4, 4)
        b = op_hop("exp", [x])
        b.placement = BACKEND_CP
        b.async_broadcast = True
        c = op_hop("log", [b])
        c.placement = BACKEND_CP
        report = analyze([c], [x, b, c], passes=("async-race",))
        assert report.by_rule("ASY004")


# ---------------------------------------------------- lineage-determinism

class TestLineageDeterminism:
    def test_clean_seeded_rand(self):
        root = op_hop("rand", [],
                      {"rows": 4, "cols": 4, "seed": 42})
        assert not analyze([root], passes=("lineage-determinism",))

    def test_det001_unseeded_rand(self):
        root = op_hop("rand", [], {"rows": 4, "cols": 4})
        report = analyze([root], passes=("lineage-determinism",))
        assert [d.severity for d in report.by_rule("DET001")] == \
            [Severity.ERROR]

    def test_det002_unseeded_dropout(self):
        root = op_hop("dropout", [leaf(4, 4)], {"p": 0.5})
        report = analyze([root], passes=("lineage-determinism",))
        assert {d.severity for d in report.by_rule("DET002")} == \
            {Severity.WARNING}

    def test_det003_name_collision_different_shapes(self):
        a = leaf(4, 4, name="X")
        b = leaf(2, 2, name="X")  # same dataset name, different data
        root = op_hop("+", [op_hop("uak+", [a]), op_hop("uak+", [b])])
        report = analyze([root], passes=("lineage-determinism",))
        assert [d.severity for d in report.by_rule("DET003")] == \
            [Severity.ERROR]

    def test_det004_aliasing_leaves_same_shape(self):
        a = leaf(4, 4, name="X")
        b = leaf(4, 4, name="X")
        root = op_hop("+", [a, b])
        report = analyze([root], passes=("lineage-determinism",))
        assert {d.severity for d in report.by_rule("DET004")} == \
            {Severity.INFO}

    def test_det004_missed_cse(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("exp", [x])
        root = op_hop("+", [a, b])
        report = analyze([root], passes=("lineage-determinism",))
        assert report.by_rule("DET004")

    def test_distinct_names_do_not_collide(self):
        root = op_hop("+", [leaf(4, 4, "X"), leaf(4, 4, "Y")])
        assert not analyze([root], passes=("lineage-determinism",))

    def test_det005_address_in_attr(self):
        root = op_hop("relu", [leaf(4, 4)], {"ctx": object()})
        report = analyze([root], passes=("lineage-determinism",))
        assert {d.severity for d in report.by_rule("DET005")} == \
            {Severity.WARNING}

    def test_det006_non_primitive_attr(self):
        root = op_hop("relu", [leaf(4, 4)], {"dims": (1, 2)})
        report = analyze([root], passes=("lineage-determinism",))
        assert {d.severity for d in report.by_rule("DET006")} == \
            {Severity.INFO}


# ------------------------------------------------------------ pass manager

class TestPassManager:
    def test_all_default_passes_registered(self):
        registry = registered_passes()
        assert set(DEFAULT_PASS_ORDER) <= set(registry)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            PassManager(passes=("no-such-pass",))

    def test_stream_passes_skipped_without_order(self):
        x = leaf(4, 4)
        dead = op_hop("exp", [x])  # would be LIV001 with a stream
        root = op_hop("log", [x])
        report = analyze([root, dead])  # no order given
        assert not report.by_rule("LIV001")

    def test_cyclic_dag_skips_dataflow_but_reports(self):
        x = leaf(4, 4)
        a = op_hop("exp", [x])
        b = op_hop("log", [a])
        a.inputs.append(b)
        report = analyze([b], [x, a, b])
        assert report.by_rule("DAG001")
        assert not report.by_rule("LIN001")  # skipped, not crashed


# ----------------------------------------------------------- Hop.validate

class TestHopValidate:
    def test_valid_dag(self):
        root = op_hop("exp", [leaf(4, 4)])
        assert not root.validate()

    def test_invalid_dag_raises(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.shape = (9, 9)
        with pytest.raises(VerificationError) as exc:
            root.validate()
        assert exc.value.report.by_rule("DAG003")

    def test_invalid_dag_report_only(self):
        root = op_hop("exp", [leaf(4, 4)])
        root.shape = (9, 9)
        report = root.validate(raise_on_error=False)
        assert report.errors()


# --------------------------------------------------------- verify_ir gate

class _FakeTracer:
    enabled = True

    def __init__(self):
        self.events = []

    def instant(self, name, lane, **fields):
        self.events.append((name, fields))


class _FakeStats:
    def __init__(self):
        self.counters = {}

    def inc(self, name, by=1):
        self.counters[name] = self.counters.get(name, 0) + by


class TestVerifyIr:
    def _broken(self):
        x = leaf(4, 4)
        root = op_hop("exp", [x])
        root.shape = (9, 9)
        return [root], [x, root]

    def test_raises_with_report(self):
        roots, order = self._broken()
        with pytest.raises(VerificationError) as exc:
            verify_ir(roots, order, MemphisConfig(), raise_on_error=True)
        assert exc.value.report.errors()

    def test_publishes_to_tracer_stats_and_collector(self):
        roots, order = self._broken()
        tracer, stats = _FakeTracer(), _FakeStats()
        collector = AnalysisCollector()
        report = verify_ir(roots, order, MemphisConfig(), tracer=tracer,
                           stats=stats, collector=collector)
        assert report.errors()
        assert any(name == "analysis/diagnostic"
                   for name, _ in tracer.events)
        assert stats.counters["analysis/errors"] >= 1
        assert collector.blocks_verified == 1

    def test_clean_block_raises_nothing(self):
        x = leaf(4, 4)
        root = op_hop("uak+", [x])
        place_all([root])
        report = verify_ir([root], [x, root], MemphisConfig(),
                           raise_on_error=True)
        assert not report.errors()


# ------------------------------------------------------- session wiring

class TestSessionIntegration:
    def _run_grid(self):
        from repro import Session

        cfg = MemphisConfig.memphis()
        cfg.verify_ir = True
        sess = Session(cfg)
        rng = np.random.default_rng(7)
        X = sess.read(rng.random((64, 8)), "X")
        y = sess.read(rng.random((64, 1)), "y")
        total = 0.0
        for reg in (0.1, 1.0):
            g = X.t() @ X + sess.eye(8) * reg
            total += float((g @ (X.t() @ y)).sum().item())
        return total

    def test_verified_evaluation_succeeds(self):
        assert np.isfinite(self._run_grid())

    def test_ambient_collector_sees_blocks(self):
        with collecting() as collector:
            self._run_grid()
        assert collector.blocks_verified > 0
        assert not collector.errors()
        assert current_collector() is None  # uninstalled on exit

    def test_collector_merge_dedups(self):
        collector = AnalysisCollector()
        report = DiagnosticReport()
        report.add(Diagnostic("A1", Severity.INFO, "same", "p", hop=3))
        collector.add(report)
        collector.add(report)
        assert collector.blocks_verified == 2
        assert len(collector.merged()) == 1


# ------------------------------------------------- depth_first cross-check

class TestLinearizerCrossCheck:
    def test_fuzzed_dags_linearize_soundly(self):
        rng = np.random.default_rng(3)
        for _ in range(25):
            leaves = [leaf(4, 4) for _ in range(3)]
            pool = list(leaves)
            for _ in range(int(rng.integers(2, 10))):
                k = int(rng.integers(1, 3))
                ins = [pool[int(i)]
                       for i in rng.integers(0, len(pool), size=k)]
                pool.append(op_hop("+" if k == 2 else "exp", ins))
            k = int(rng.integers(1, 4))
            roots = [pool[int(i)]
                     for i in rng.integers(0, len(pool), size=k)]
            assert check_linearization(roots, depth_first(roots)) == []
