"""Tests for disk spilling of evicted driver-cache entries (§3.3)."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.common.config import CacheConfig
from repro.common.simclock import SimClock
from repro.common.stats import Stats
from repro.core.cache import BACKEND_DISK, LineageCache
from repro.core.entry import BACKEND_CP, EntryStatus
from repro.lineage.item import LineageItem, dataset
from repro.runtime.values import MatrixValue


def key(tag: str) -> LineageItem:
    return LineageItem("exp", (tag,), (dataset("X"),))


def make_cache(budget=2000, spill=True, disk_budget=100_000):
    cfg = CacheConfig(driver_cache_bytes=budget, spill_to_disk=spill,
                      disk_cache_bytes=disk_budget)
    clock = SimClock()
    cache = LineageCache(cfg, Stats(), clock=clock,
                         disk_bytes_per_s=1e9, flops_per_s=1e12)
    return cache, clock


def value():
    return MatrixValue(np.ones((100, 1)))


class TestDiskSpill:
    def test_expensive_entry_spills_and_restores(self):
        cache, clock = make_cache()
        expensive = cache.put(key("a"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("b"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("c"), value(), BACKEND_CP, 900, 1e12)  # evicts one
        spilled = [e for e in cache.entries()
                   if e.status is EntryStatus.SPILLED]
        assert spilled, "an expensive entry must spill, not drop"
        assert cache.stats.get("cache/disk_spills") >= 1
        # probing the spilled key restores it (a hit, with disk read cost)
        t0 = clock.now()
        entry = cache.probe(spilled[0].key)
        assert entry is not None and entry.is_cached
        assert clock.now() > t0
        assert cache.stats.get("cache/disk_restores") == 1

    def test_cheap_entry_dropped_not_spilled(self):
        cache, _ = make_cache()
        cache.put(key("a"), value(), BACKEND_CP, 900, 1.0)  # trivial cost
        cache.put(key("b"), value(), BACKEND_CP, 900, 1.0)
        cache.put(key("c"), value(), BACKEND_CP, 900, 1.0)
        assert cache.stats.get("cache/disk_spills") == 0
        assert cache.stats.get("cache/evictions") >= 1

    def test_spill_disabled_by_config(self):
        cache, _ = make_cache(spill=False)
        cache.put(key("a"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("b"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("c"), value(), BACKEND_CP, 900, 1e12)
        assert cache.stats.get("cache/disk_spills") == 0

    def test_disk_budget_respected(self):
        cache, _ = make_cache(disk_budget=1000)
        for i in range(5):
            cache.put(key(str(i)), value(), BACKEND_CP, 900, 1e12)
        assert cache.disk_bytes <= 1000

    def test_spill_accounting(self):
        cache, _ = make_cache()
        cache.put(key("a"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("b"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("c"), value(), BACKEND_CP, 900, 1e12)
        assert cache.cp_bytes <= 2000
        assert cache.disk_bytes > 0
        total_disk = sum(
            e.size for e in cache.entries()
            if BACKEND_DISK in e.payloads
        )
        assert cache.disk_bytes == total_disk

    def test_restore_value_identical(self):
        cache, _ = make_cache()
        original = value()
        cache.put(key("a"), original, BACKEND_CP, 900, 1e12)
        cache.put(key("b"), value(), BACKEND_CP, 900, 1e12)
        cache.put(key("c"), value(), BACKEND_CP, 900, 1e12)
        spilled = [e for e in cache.entries()
                   if e.status is EntryStatus.SPILLED]
        entry = cache.probe(spilled[0].key)
        assert entry.get_payload(BACKEND_CP) is not None


class TestSpillEndToEnd:
    def test_session_spills_under_pressure_and_reuses(self):
        cfg = MemphisConfig.memphis()
        cfg.cache.driver_cache_bytes = 100_000  # tiny driver cache
        cfg.cpu.operation_memory_bytes = 64 * 1024 * 1024  # keep ops local
        sess = Session(cfg)
        rng = np.random.default_rng(4)
        # tall input: t(X) %*% X is expensive to recompute relative to
        # its (small) output, making it a spill candidate
        X = sess.read(rng.random((20_000, 50)), "X")
        # eight *distinct* expensive gram matrices overflow the cache
        for i in range(8):
            Xi = X + float(i)
            (Xi.t() @ Xi).sum().compute()
        # repeated runs reuse results, some via disk restore
        for i in range(8):
            Xi = X + float(i)
            (Xi.t() @ Xi).sum().compute()
        assert sess.stats.get("cache/disk_spills") > 0
        assert sess.stats.get("cache/disk_restores") > 0
        assert sess.stats.get("cache/hits") > 0
