"""Tests for operator placement and interpreter exchange paths."""

import numpy as np
import pytest

from repro import MemphisConfig, Session
from repro.compiler.ir import op_hop
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP
from repro.runtime.placement import (
    assign_placements,
    matmul_pattern,
    spark_supported,
)

RNG = np.random.default_rng(17)


def big_session():
    """Session where a modest matrix already exceeds operation memory."""
    cfg = MemphisConfig.memphis()
    cfg.cpu.operation_memory_bytes = 64 * 1024
    return Session(cfg)


class TestPlacementRules:
    def test_small_ops_stay_local(self):
        sess = Session(MemphisConfig.memphis())
        X = sess.read(RNG.random((10, 4)), "X")
        out = X.t() @ X
        assign_placements([out.hop], sess.config)
        assert out.hop.placement == BACKEND_CP

    def test_large_ops_go_to_spark(self):
        sess = big_session()
        X = sess.read(RNG.random((2000, 16)), "X")  # 256 KB > 64 KB
        out = X * 2.0
        assign_placements([out.hop], sess.config)
        assert out.hop.placement == BACKEND_SP

    def test_small_result_of_distributed_input_is_local(self):
        """A tiny weight update after a distributed op runs locally,
        bounding the lazy lineage of iterative algorithms."""
        sess = big_session()
        X = sess.read(RNG.random((2000, 8)), "X")
        w = sess.read(RNG.random((8, 1)), "w")
        grad = (X.t() @ (X @ w))  # distributed
        update = sess.read(RNG.random((8, 1)), "w2") - 0.1
        small = grad.sum()  # scalar of distributed input -> Spark action
        assign_placements([small.hop, update.hop], sess.config)
        assert small.hop.placement == BACKEND_SP  # aggregate action
        assert update.hop.placement == BACKEND_CP

    def test_scalar_arithmetic_always_local(self):
        sess = big_session()
        X = sess.read(RNG.random((2000, 8)), "X")
        ratio = X.sum() / X.mean()
        assign_placements([ratio.hop], sess.config)
        assert ratio.hop.placement == BACKEND_CP

    def test_gpu_placement_when_enabled(self):
        cfg = MemphisConfig.memphis()
        cfg.gpu_enabled = True
        cfg.spark_enabled = False
        sess = Session(cfg)
        X = sess.read(RNG.random((64, 64)), "X")
        out = X @ X
        assign_placements([out.hop], sess.config)
        assert out.hop.placement == BACKEND_GPU

    def test_tiny_matrices_not_worth_gpu(self):
        cfg = MemphisConfig.memphis()
        cfg.gpu_enabled = True
        cfg.spark_enabled = False
        sess = Session(cfg)
        X = sess.read(RNG.random((4, 4)), "X")
        out = X @ X
        assign_placements([out.hop], sess.config)
        assert out.hop.placement == BACKEND_CP


class TestMatmulPatterns:
    def _hops(self, sess, left_shape, right_shape, transpose_left=False):
        left = sess.read(RNG.random(left_shape), "L")
        right = sess.read(RNG.random(right_shape), "R")
        lhop = left.hop
        if transpose_left:
            lhop = op_hop("r'", [lhop])
        return op_hop("ba+*", [lhop, right.hop]), left, right

    def test_tsmm_pattern(self):
        sess = big_session()
        X = sess.read(RNG.random((5000, 8)), "X")
        hop = op_hop("ba+*", [op_hop("r'", [X.hop]), X.hop])
        assert matmul_pattern(hop, sess.config) == "tsmm"

    def test_mapmm_pattern(self):
        sess = big_session()
        hop, *_ = self._hops(sess, (5000, 64), (64, 4))
        assert matmul_pattern(hop, sess.config) == "mapmm"

    def test_bcmm_pattern(self):
        sess = big_session()
        hop, *_ = self._hops(sess, (1, 5000), (5000, 64))
        assert matmul_pattern(hop, sess.config) == "bcmm"

    def test_cpmm_pattern(self):
        sess = big_session()
        cfg = sess.config
        # both sides bigger than the broadcast limit
        big = cfg.spark.driver_memory // 4 // 8 + 1024
        hop, *_ = self._hops(sess, (big, 4), (big, 4), transpose_left=True)
        assert matmul_pattern(hop, cfg) == "cpmm"

    def test_spark_supported_gates_on_pattern(self):
        sess = big_session()
        hop, *_ = self._hops(sess, (5000, 64), (64, 4))
        assert spark_supported(hop, sess.config)


class TestExchangePaths:
    def test_spark_to_gpu_roundtrip(self):
        cfg = MemphisConfig.memphis()
        cfg.gpu_enabled = True
        cfg.cpu.operation_memory_bytes = 64 * 1024
        sess = Session(cfg)
        data = RNG.random((2000, 16))
        X = sess.read(data, "X")
        # distributed elementwise, then a small local matmul that may
        # run on the GPU: exercises SP -> CP -> GPU conversion
        scaled = (X * 2.0).evaluate()
        assert BACKEND_SP in scaled.payloads
        small = scaled[0:32, :]
        out = (small @ small.t()).compute()
        assert np.allclose(out, (2 * data[:32]) @ (2 * data[:32]).T)

    def test_collected_copy_cached_for_action_reuse(self):
        sess = big_session()
        X = sess.read(RNG.random((2000, 16)), "X")
        scaled = (X * 3.0)
        first = scaled.compute()  # collect (a job)
        jobs = sess.stats.get("spark/jobs")
        again = (X * 3.0).compute()  # same lineage: no new job
        assert sess.stats.get("spark/jobs") == jobs
        assert np.allclose(first, again)

    def test_gpu_stale_pointer_falls_back_to_host_copy(self):
        cfg = MemphisConfig.memphis()
        cfg.gpu_enabled = True
        cfg.spark_enabled = False
        sess = Session(cfg)
        X = sess.read(RNG.random((64, 64)), "X")
        out = (X @ X).evaluate()
        gpu_payload = out.payloads.get(BACKEND_GPU)
        assert gpu_payload is not None
        # forcibly invalidate the pointer (simulates recycling)
        sess.gpu.memory.release(gpu_payload.ptr)
        sess.gpu.memory.empty_cache(1.0)
        assert gpu_payload.ptr.freed
        # consuming the handle re-uploads from the host shadow
        total = (out + 0.0).sum().item()
        assert np.isfinite(total)

    def test_broadcast_reused_not_recreated(self):
        sess = big_session()
        X = sess.read(RNG.random((4000, 16)), "X")
        B = sess.read(RNG.random((16, 2)), "B")
        (X @ B).compute()
        bcasts = sess.stats.get("spark/broadcasts")
        (X @ B).compute()  # reuse: no second broadcast of B
        assert sess.stats.get("spark/broadcasts") == bcasts


class TestFusedTranspose:
    def test_tsmm_does_not_execute_standalone_transpose(self):
        sess = big_session()
        data = RNG.random((3000, 8))
        X = sess.read(data, "X")
        out = (X.t() @ X).compute()
        assert np.allclose(out, data.T @ data)
        # no full 8x3000 transpose was materialized as its own RDD
        names = [r.name for r in sess.spark_context._rdds.values()]
        assert "tsmm" in names
        assert "r'" not in names
