"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to ``setup.py develop`` when a setup.py
is present, which avoids the bdist_wheel requirement; all metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
