"""Example: enumerated data-cleaning pipelines with shared prefixes.

Reproduces the CLEAN scenario (paper Fig. 14(a)): 12 cleaning pipelines
composed from imputation, outlier handling, scaling, rebalancing, and
PCA primitives feed a downstream L2SVM.  The pipelines share long
prefixes, which MEMPHIS reuses across the enumeration.

Run:
    python examples/cleaning_pipelines.py
"""

from repro.workloads.clean import PIPELINES, run_clean


def main() -> None:
    print(f"enumerating {len(PIPELINES)} cleaning pipelines "
          f"(primitives: mean/mode imputation, IQR outliers, scaling,")
    print("min-max normalization, under-sampling, PCA) + L2SVM scoring\n")

    for system in ("Base", "Base-P", "LIMA", "MPH"):
        result = run_clean(system, scale_factor=24)
        print(f"{system:7s} time={result.elapsed * 1000:8.2f} ms  "
              f"best-accuracy={result.metric:.3f}  "
              f"hits={result.counter('cache/hits'):5d}  "
              f"evictions={result.counter('cache/evictions'):4d}")
    print()
    print("MPH reuses repeated primitives (e.g. imputeByMean + outlierByIQR")
    print("prefixes) across pipelines; Base-P only parallelizes features.")


if __name__ == "__main__":
    main()
