"""Example: lazy-evaluation blowup and compiler checkpoint placement.

Reproduces the phenomenon of paper Fig. 9(c)/13(b) on Poisson
non-negative matrix factorization: without checkpoints, every iteration's
Spark jobs lazily re-execute all previous iterations (super-linear
slowdown); MEMPHIS's loop-checkpoint rewrite persists the updated factor
each iteration, keeping per-iteration cost constant.

Run:
    python examples/pnmf_checkpointing.py
"""

from repro.workloads.pnmf_wl import run_pnmf


def main() -> None:
    print(f"{'iterations':>10s}  {'Base [ms]':>10s}  {'MPH [ms]':>10s}  "
          f"{'speedup':>8s}  {'checkpoints':>11s}")
    for iterations in (5, 15, 25, 35):
        base = run_pnmf("Base", iterations)
        mph = run_pnmf("MPH", iterations)
        print(f"{iterations:>10d}  {base.elapsed * 1000:>10.1f}  "
              f"{mph.elapsed * 1000:>10.1f}  "
              f"{base.elapsed / mph.elapsed:>8.2f}  "
              f"{mph.counter('compiler/checkpoints_placed'):>11d}")
    print()
    print("Base grows super-linearly (lazy re-execution of all previous")
    print("iterations); MPH stays linear thanks to per-iteration persist.")


if __name__ == "__main__":
    main()
