"""Example: multi-level reuse in Hyperband-style model search (HBAND).

Successive halving trains L2SVM and multinomial logistic regression over
a grid of (regularization, intercept) configurations, halving the
candidate list and doubling the iteration budget per bracket; a weighted
ensemble then combines the two best models.  MEMPHIS exploits three
redundancy levels at once (paper §3.3):

* function-level — scoring calls with identical inputs are skipped;
* operator-level — training prefixes repeat when survivors are
  retrained with doubled budgets, and intercept options 1/2 compile to
  identical plans;
* Spark-level — RDDs and actions of the distributed ``X %*% w`` chains.

Run:
    python examples/hyperband_model_search.py
"""

from repro.workloads.hband import run_hband


def main() -> None:
    print(f"{'system':>7s}  {'time [ms]':>10s}  {'speedup':>7s}  "
          f"{'func hits':>9s}  {'RDD reuse':>9s}  {'accuracy':>8s}")
    baseline = None
    for system in ("Base", "HELIX", "LIMA", "MPH"):
        result = run_hband(system, paper_gb=5.0)
        if baseline is None:
            baseline = result.elapsed
        print(f"{system:>7s}  {result.elapsed * 1000:>10.2f}  "
              f"{baseline / result.elapsed:>6.1f}x  "
              f"{result.counter('cache/function_hits'):>9d}  "
              f"{result.counter('spark/rdds_reused'):>9d}  "
              f"{result.metric:>8.3f}")
    print()
    print("identical accuracies across systems: reuse never changes")
    print("results — it only skips recomputation.")


if __name__ == "__main__":
    main()
