"""Example: GPU pointer recycling and prediction reuse in inference.

Reproduces the EN2DE scenario (paper Fig. 14(c)): a pre-trained MLP
scores a Zipf-distributed word stream on the GPU.  Natural language
repeats words, so MEMPHIS's multi-level reuse serves repeated words from
the host cache — eliminating their GPU computation entirely — while the
unified memory manager recycles exact-size pointers for the rest.

Run:
    python examples/gpu_inference_caching.py
"""

from repro.workloads.en2de import run_en2de


def main() -> None:
    print(f"{'system':>10s}  {'time [ms]':>10s}  {'GPU reused':>10s}  "
          f"{'recycled':>8s}  {'pred. hits':>10s}")
    baseline = None
    for system in ("Base-G", "MPH-F", "PyTorch", "MPH"):
        result = run_en2de(system)
        if baseline is None:
            baseline = result.elapsed
        print(f"{system:>10s}  {result.elapsed * 1000:>10.2f}  "
              f"{result.counter('gpu/pointers_reused'):>10d}  "
              f"{result.counter('gpu/pointers_recycled'):>8d}  "
              f"{result.counter('cache/function_hits'):>10d}"
              f"   ({baseline / result.elapsed:.1f}x)")
    print()
    print("MPH reuses whole predictions at the host (function-level");
    print("lineage items); MPH-F reuses only GPU pointers; PyTorch")
    print("recycles memory but recomputes every repeated word.")


if __name__ == "__main__":
    main()
