"""Example: multi-tenant reuse on federated workers (paper §5.4).

For hierarchically-structured backends — federated workers holding raw
data shards — local lineage-based reuse applies directly at every site.
Two tenants (e.g. two data scientists of the same consortium) issue the
same federated queries; the second tenant's requests hit the *worker-
local* lineage caches populated by the first, without the raw data ever
leaving the sites.

Run:
    python examples/federated_reuse.py
"""

import numpy as np

from repro.backends.federated import (
    FederatedConfig,
    FederatedCoordinator,
    FederatedWorker,
)
from repro.common.simclock import SimClock


def main() -> None:
    # modest edge hardware at the sites makes worker compute visible
    # next to the WAN latency floor
    cfg = FederatedConfig(num_workers=4, flops_per_s=20e9)
    fleet = [FederatedWorker(i, cfg) for i in range(cfg.num_workers)]
    clock = SimClock()  # tenants sharing a fleet share one time base
    rng = np.random.default_rng(3)
    data = rng.random((40_000, 256))

    print(f"fleet: {cfg.num_workers} workers, "
          f"{cfg.request_latency_s * 1000:.0f} ms RTT, "
          f"{cfg.bandwidth_bytes_per_s / 1e6:.0f} MB/s links\n")

    for tenant_id in (1, 2):
        coord = FederatedCoordinator(fleet, cfg, clock=clock)
        X = coord.federate("hospital_records", data)
        t0 = coord.clock.now()
        gram = coord.tsmm(X)              # federated t(X) %*% X
        sums = coord.column_sums(X)       # federated colSums
        beta = np.linalg.solve(gram + np.eye(256), sums.T)
        scores = coord.matvec(X, beta)    # federated X %*% beta
        elapsed = coord.clock.now() - t0
        print(f"tenant {tenant_id}: {elapsed * 1000:8.2f} ms simulated, "
              f"{coord.stats.get('federated/requests'):2d} requests, "
              f"{coord.stats.get('federated/worker_reuses'):2d} "
              f"worker-cache reuses")
        assert np.isfinite(scores).all()

    print("\ntenant 2 pays only the WAN latency floor: every request hit")
    print("the worker-local lineage caches populated by tenant 1, so no")
    print("worker compute re-runs and no raw data ever leaves the sites.")


if __name__ == "__main__":
    main()
