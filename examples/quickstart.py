"""Quickstart: lineage-based reuse in a grid-search loop.

Demonstrates the MEMPHIS session API on the paper's running example
(Example 4.1): grid-search hyper-parameter tuning over a direct-solve
linear regression.  The core operations ``t(X) %*% X`` and ``t(X) %*% y``
are independent of the regularization parameter, so MEMPHIS reuses them
across the whole grid — including the Spark-placed variants when the
input is large.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --trace trace.json   # Perfetto timeline
"""

import argparse

import numpy as np

from repro import MemphisConfig, Session
from repro.ml import lin_reg_ds, lin_reg_predict, r2_score


def grid_search(session: Session, X_data: np.ndarray,
                y_data: np.ndarray, regs: list[float]) -> tuple[float, float]:
    """Find the best ridge parameter by training on the full grid."""
    X = session.read(X_data, "X")
    y = session.read(y_data, "y")
    best_reg, best_r2 = regs[0], float("-inf")
    for reg in regs:
        beta = lin_reg_ds(session, X, y, reg)
        score = r2_score(session, y, lin_reg_predict(session, X, beta))
        r2 = score.item()
        if r2 > best_r2:
            best_reg, best_r2 = reg, r2
    return best_reg, best_r2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome/Perfetto trace of both runs")
    args = parser.parse_args()

    collector = None
    if args.trace is not None:
        from repro.obs import TraceCollector, enable_tracing

        collector = TraceCollector()
        enable_tracing(collector)

    rng = np.random.default_rng(42)
    X_data = rng.random((60_000, 32))
    beta_true = rng.standard_normal((32, 1))
    y_data = X_data @ beta_true + 0.1 * rng.standard_normal((60_000, 1))
    regs = [10.0 ** (i / 2 - 3) for i in range(10)]

    for label, config in [
        ("Base (no reuse)", MemphisConfig.base()),
        ("MEMPHIS", MemphisConfig.memphis()),
    ]:
        session = Session(config)
        best_reg, best_r2 = grid_search(session, X_data, y_data, regs)
        stats = session.stats
        print(f"{label:18s} best reg={best_reg:<8g} R^2={best_r2:.4f}")
        print(f"{'':18s} simulated time  : {session.elapsed() * 1000:9.2f} ms")
        print(f"{'':18s} spark jobs      : {stats.get('spark/jobs')}")
        print(f"{'':18s} cache hits      : {stats.get('cache/hits')}")
        print(f"{'':18s} RDDs reused     : {stats.get('spark/rdds_reused')}")
        print(f"{'':18s} actions reused  : {stats.get('spark/actions_reused')}")
        print()

    if collector is not None:
        from repro.obs import disable_tracing, export_chrome_trace, format_summary

        disable_tracing()
        events = collector.events()
        export_chrome_trace(events, args.trace, collector.session_labels)
        print(f"[trace: {len(events)} events -> {args.trace}]")
        print()
        print(format_summary(events))


if __name__ == "__main__":
    main()
