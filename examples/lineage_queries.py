"""Example: query processing over lineage traces (paper §8 future work).

Beyond reuse, lineage traces support model-debugging queries: provenance
("does this model depend on dataset X?"), diffing two pipeline runs to
locate the changed hyper-parameter, and exposing the common sub-traces
that explain *why* MEMPHIS reused what it reused.

Run:
    python examples/lineage_queries.py
"""

import numpy as np

from repro import MemphisConfig, Session
from repro.lineage import (
    common_subtraces,
    data_sources,
    depends_on,
    diff_traces,
    trace_stats,
)
from repro.ml import lin_reg_ds


def main() -> None:
    sess = Session(MemphisConfig.memphis())
    rng = np.random.default_rng(11)
    X = sess.read(rng.random((500, 16)), "train_features")
    y = sess.read(rng.random((500, 1)), "train_labels")

    beta_a = lin_reg_ds(sess, X, y, reg=0.1)
    beta_b = lin_reg_ds(sess, X, y, reg=10.0)
    trace_a = sess.lineage_of(beta_a)
    trace_b = sess.lineage_of(beta_b)

    stats = trace_stats(trace_a)
    print("trace of linRegDS(reg=0.1):")
    print(f"  nodes={stats.num_nodes} height={stats.height} "
          f"operators={stats.num_operators}")
    print(f"  opcode histogram: {stats.opcode_histogram}")

    print("\nprovenance:")
    print(f"  data sources        : {data_sources(trace_a)}")
    print(f"  depends on labels?  : "
          f"{depends_on(trace_a, 'train_labels')}")
    print(f"  depends on 'other'? : {depends_on(trace_a, 'other')}")

    diff = diff_traces(trace_a, trace_b)
    left, right = diff.divergence
    print("\ndiff of the two runs (changed hyper-parameter):")
    print(f"  equal: {diff.equal}")
    print(f"  divergence at: {left.opcode}{left.data} vs "
          f"{right.opcode}{right.data}")

    shared = common_subtraces(trace_a, trace_b)
    print("\nreuse frontier (maximal common sub-traces):")
    for item in shared:
        print(f"  {item.opcode:8s} height={item.height} "
              f"(reused when run B follows run A)")


if __name__ == "__main__":
    main()
