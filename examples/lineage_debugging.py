"""Example: lineage serialization and exact recomputation (paper §3.2).

MEMPHIS's lineage traces uniquely identify every intermediate.  Beyond
reuse, this enables debugging workflows: serialize the trace of any
result, share the log, and recompute the *exact same* value later — in a
different session, with different configurations, even on different
backends (the full compilation chain re-runs).

Run:
    python examples/lineage_debugging.py
"""

import numpy as np

from repro import MemphisConfig, Session


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.random((500, 12))

    # --- session A computes something non-trivial -----------------------
    sess_a = Session(MemphisConfig.memphis())
    X = sess_a.read(data, "X")
    result = ((X.t() @ X) * 0.5 + sess_a.eye(12)).exp().sum()
    value_a = result.item()
    log = sess_a.serialize_lineage(result)
    print("value in session A :", value_a)
    print("lineage log        :", len(log.splitlines()), "lines")
    print("first lines        :")
    for line in log.splitlines()[:4]:
        print("   ", line)

    # --- session B replays the trace (different config: no Spark) -------
    cfg_b = MemphisConfig.base()
    cfg_b.spark_enabled = False
    sess_b = Session(cfg_b)
    value_b = float(sess_b.recompute(log, inputs={"X": data})[0, 0])
    print("recomputed in B    :", value_b)
    assert np.isclose(value_a, value_b), "recomputation must be exact"
    print("exact match        : True")

    # --- deterministic randomness: seeds are part of lineage ------------
    sess_c = Session(MemphisConfig.memphis())
    noise = sess_c.rand(64, 64, seed=123)
    total = (noise @ noise.t()).sum()
    expected = total.item()
    log2 = sess_c.serialize_lineage(total)
    replayed = float(Session().recompute(log2)[0, 0])
    print("seeded rand replay :", np.isclose(expected, replayed))


if __name__ == "__main__":
    main()
