"""MEMPHIS reproduction: holistic lineage-based reuse and memory
management for multi-backend ML systems (Phani & Boehm, EDBT 2025).

Public entry points:

* :class:`Session` — the execution context (compiler, backends, cache).
* :class:`MemphisConfig` — configuration presets for the paper's
  baselines (``Base``, ``Base-A``, ``LIMA``, ``HELIX``, ``MPH-NA``,
  ``MPH-F``, ``MPH``).
* :mod:`repro.ml` — the algorithm library (linRegDS, L2SVM, PNMF, ...).
* :mod:`repro.workloads` — the end-to-end pipelines of the evaluation.
"""

from repro.common.config import (
    EvictionPolicyName,
    MemphisConfig,
    ReuseMode,
    StorageLevel,
)
from repro.core.session import Session
from repro.runtime.handles import MatrixHandle

__version__ = "1.0.0"

__all__ = [
    "Session",
    "MemphisConfig",
    "ReuseMode",
    "EvictionPolicyName",
    "StorageLevel",
    "MatrixHandle",
    "__version__",
]
