"""Structured tracing & profiling for the MEMPHIS reproduction.

``repro.obs`` turns the simulator's internal mechanics — reuse probes,
evictions, spills, prefetch overlap, Spark jobs/stages, GPU copies and
pointer recycling, federated round-trips — into a typed event stream
over the simulated clock, with three sinks: a bounded in-memory ring
buffer, a JSONL writer, and a Chrome-trace/Perfetto exporter that
renders a whole run as a timeline with one lane per backend.

Enable per session (``MemphisConfig(trace_enabled=True)``), ambiently
(``with obs.tracing() as tc: ...``), or from the CLI
(``python -m repro.harness fig11a --trace out.json``).  See
``docs/OBSERVABILITY.md`` for the event taxonomy and a worked example.
"""

from repro.obs.chrome import (
    chrome_trace_dict,
    export_chrome_trace,
    load_chrome_trace,
)
from repro.obs.events import (
    EV_BROADCAST,
    EV_CACHE_DELAY,
    EV_CACHE_EVICT,
    EV_CACHE_PUT,
    EV_CACHE_RESTORE,
    EV_CACHE_SPILL,
    EV_FED_REQUEST,
    EV_GPU_D2H,
    EV_GPU_DEFRAG,
    EV_GPU_EVICT_D2H,
    EV_GPU_FREE,
    EV_GPU_H2D,
    EV_GPU_KERNEL,
    EV_GPU_MALLOC,
    EV_GPU_RECYCLE,
    EV_GPU_REUSE,
    EV_INSTR,
    EV_IR_DIAG,
    EV_PREFETCH,
    EV_PREFETCH_DONE,
    EV_PROBE,
    EV_SPARK_JOB,
    EV_SPARK_PART_EVICT,
    EV_SPARK_PART_SPILL,
    EV_SPARK_SHUFFLE_REUSE,
    EV_SPARK_STAGE,
    Event,
    LANE_CP,
    LANE_FED,
    LANE_GPU,
    LANE_SP,
    LANES,
    PHASE_INSTANT,
    PHASE_SPAN,
)
from repro.obs.schema import (
    TRACE_SCHEMA,
    assert_valid_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.sinks import JsonlSink, RingBufferSink, read_jsonl, write_jsonl
from repro.obs.summary import TraceSummary, format_summary, summarize
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceCollector,
    Tracer,
    current_collector,
    disable_tracing,
    enable_tracing,
    tracing,
)

__all__ = [
    "EV_BROADCAST",
    "EV_CACHE_DELAY",
    "EV_CACHE_EVICT",
    "EV_CACHE_PUT",
    "EV_CACHE_RESTORE",
    "EV_CACHE_SPILL",
    "EV_FED_REQUEST",
    "EV_GPU_D2H",
    "EV_GPU_DEFRAG",
    "EV_GPU_EVICT_D2H",
    "EV_GPU_FREE",
    "EV_GPU_H2D",
    "EV_GPU_KERNEL",
    "EV_GPU_MALLOC",
    "EV_GPU_RECYCLE",
    "EV_GPU_REUSE",
    "EV_INSTR",
    "EV_IR_DIAG",
    "EV_PREFETCH",
    "EV_PREFETCH_DONE",
    "EV_PROBE",
    "EV_SPARK_JOB",
    "EV_SPARK_PART_EVICT",
    "EV_SPARK_PART_SPILL",
    "EV_SPARK_SHUFFLE_REUSE",
    "EV_SPARK_STAGE",
    "Event",
    "JsonlSink",
    "LANE_CP",
    "LANE_FED",
    "LANE_GPU",
    "LANE_SP",
    "LANES",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_INSTANT",
    "PHASE_SPAN",
    "RingBufferSink",
    "Span",
    "TRACE_SCHEMA",
    "TraceCollector",
    "TraceSummary",
    "Tracer",
    "assert_valid_chrome_trace",
    "chrome_trace_dict",
    "current_collector",
    "disable_tracing",
    "enable_tracing",
    "export_chrome_trace",
    "format_summary",
    "load_chrome_trace",
    "read_jsonl",
    "summarize",
    "tracing",
    "validate_chrome_trace",
    "write_jsonl",
]
