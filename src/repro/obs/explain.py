"""Plan-level EXPLAIN: render compiled HOP DAGs and instruction streams.

SystemDS pairs its ``-stats`` output with ``-explain`` plan dumps; this
module is the reproduction's counterpart.  A plan is captured *after*
rewrites (CSE, placement, transpose fusion, checkpoint/prefetch/
broadcast placement) and *after* linearization, so what it shows is
exactly what the interpreter will run: the post-rewrite HOP DAG, the
operator placement decisions, the linearized instruction stream with
reuse/prefetch/checkpoint/broadcast annotations, and per-hop cost
estimates (output bytes, operation memory, FLOPs).

Hop ids in the dump are the same ids ``repro.analysis`` diagnostics
(``Diagnostic.hop``) and trace spans (``args["hop"]``) carry, making the
plan the shared reference artifact: a lint finding ``at hop#12`` and a
timeline span ``ba+*#12`` both point at one line of the EXPLAIN output.

Plans are captured as plain-data snapshots (:class:`HopSnapshot`), never
as live :class:`~repro.compiler.ir.Hop` references — retaining hops
would retain their payload bundles and change memory behaviour, which
would break the zero-overhead-when-disabled guarantee.

The generic DOT renderer at the bottom (:func:`render_dot`) is the
single plan-printing code path shared with ``repro.lineage.query``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.compiler.ir import KIND_OP, Hop

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.diagnostics import DiagnosticReport
    from repro.common.config import MemphisConfig

#: explain levels (SystemDS-style).
LEVEL_HOPS = "hops"          #: post-rewrite HOP DAG only.
LEVEL_RUNTIME = "runtime"    #: linearized instruction stream only.
LEVEL_FULL = "full"          #: DAG + stream + cost totals.

LEVELS = (LEVEL_HOPS, LEVEL_RUNTIME, LEVEL_FULL)


@dataclass
class HopSnapshot:
    """Immutable record of one hop at compile time."""

    id: int
    kind: str
    opcode: str
    shape: tuple[int, int]
    placement: Optional[str]
    input_ids: tuple[int, ...]
    output_bytes: int
    memory_estimate: int
    flops: float
    prefetch: bool = False
    broadcast: bool = False
    checkpoint: bool = False
    fused: bool = False
    probe: bool = False
    #: number of cell-wise steps merged into this hop by the fusion
    #: rewrite (0 for ordinary hops; prologue matmul counts as one).
    fused_steps: int = 0

    @property
    def annotations(self) -> list[str]:
        """Rewrite/runtime annotations shown in the instruction stream."""
        out = []
        if self.probe:
            out.append("reuse")
        if self.prefetch:
            out.append("prefetch")
        if self.broadcast:
            out.append("broadcast")
        if self.checkpoint:
            out.append("checkpoint")
        if self.fused:
            out.append("fused-skip")
        if self.fused_steps:
            out.append(f"fused({self.fused_steps})")
        return out


@dataclass
class ExplainPlan:
    """One compiled basic block: snapshots in execution order."""

    root_ids: tuple[int, ...]
    order: list[HopSnapshot]
    #: times an identically-shaped block was compiled (dedup counter).
    executions: int = 1
    #: evict instructions issued between this block and the next one.
    evicts: list[str] = field(default_factory=list)

    @property
    def signature(self) -> tuple:
        """Structural identity used to dedupe repeated loop bodies."""
        return tuple(
            (s.opcode, s.kind, s.shape, s.placement, s.prefetch,
             s.broadcast, s.checkpoint, s.fused, s.probe, s.fused_steps,
             tuple(self._local(i) for i in s.input_ids))
            for s in self.order
        )

    def _local(self, hop_id: int) -> int:
        for pos, snap in enumerate(self.order):
            if snap.id == hop_id:
                return pos
        return -1

    def by_id(self) -> dict[int, HopSnapshot]:
        return {s.id: s for s in self.order}

    @property
    def total_flops(self) -> float:
        return sum(s.flops for s in self.order if s.kind == KIND_OP)

    @property
    def peak_memory_estimate(self) -> int:
        return max(
            (s.memory_estimate for s in self.order if s.kind == KIND_OP),
            default=0,
        )


def snapshot_plan(root_hops: Sequence[Hop], order: Sequence[Hop],
                  config: "MemphisConfig") -> ExplainPlan:
    """Snapshot a compiled block right before execution."""
    probing = _probing_enabled(config)
    snaps = []
    for hop in order:
        snaps.append(HopSnapshot(
            id=hop.id,
            kind=hop.kind,
            opcode=hop.opcode,
            shape=hop.shape,
            placement=hop.placement,
            input_ids=tuple(h.id for h in hop.inputs),
            output_bytes=hop.output_bytes,
            memory_estimate=hop.memory_estimate,
            flops=hop.flops,
            prefetch=bool(hop.prefetch),
            broadcast=bool(hop.async_broadcast),
            checkpoint=bool(hop.checkpoint),
            fused=bool(hop.fused),
            probe=(probing and hop.kind == KIND_OP and not hop.fused
                   and hop.opcode != "fused"),
            fused_steps=(
                len(getattr(hop, "steps", ()))
                + (1 if getattr(hop, "prologue", None) is not None else 0)
            ),
        ))
    return ExplainPlan(tuple(h.id for h in root_hops), snaps)


def _probing_enabled(config: "MemphisConfig") -> bool:
    """Whether the interpreter will issue reuse probes for this config."""
    from repro.common.config import ReuseMode

    return config.reuse_mode in (
        ReuseMode.PROBE_ONLY, ReuseMode.FULL,
        ReuseMode.LOCAL_ONLY, ReuseMode.OPERATOR_ONLY,
    )


# -- rendering ---------------------------------------------------------------

def _size(nbytes: float) -> str:
    for suffix, factor in (("GB", 1024**3), ("MB", 1024**2), ("KB", 1024)):
        if abs(nbytes) >= factor:
            return f"{nbytes / factor:.1f}{suffix}"
    return f"{nbytes:.0f}B"


def _flops(flops: float) -> str:
    for suffix, factor in (("GFLOP", 1e9), ("MFLOP", 1e6), ("KFLOP", 1e3)):
        if abs(flops) >= factor:
            return f"{flops / factor:.1f}{suffix}"
    return f"{flops:.0f}FLOP"


def render_plan(plan: ExplainPlan, level: str = LEVEL_FULL,
                diagnostics: Optional["DiagnosticReport"] = None,
                block_index: int = 1) -> str:
    """Render one captured plan at the requested explain level."""
    if level not in LEVELS:
        raise ValueError(f"unknown explain level {level!r} "
                         f"(expected one of {LEVELS})")
    diags = _diags_by_hop(diagnostics)
    header = (
        f"block {block_index}"
        + (f" (x{plan.executions} executions)" if plan.executions > 1 else "")
        + f": {len(plan.order)} hops, roots "
        + ", ".join(f"#{i}" for i in plan.root_ids)
        + f", est peak {_size(plan.peak_memory_estimate)}"
        + f", {_flops(plan.total_flops)}"
    )
    lines = [header]
    if level in (LEVEL_HOPS, LEVEL_FULL):
        lines.append("-- HOP DAG (post-rewrite) --")
        lines.extend(_render_dag(plan, diags))
    if level in (LEVEL_RUNTIME, LEVEL_FULL):
        lines.append("-- instruction stream (linearized) --")
        lines.extend(_render_stream(plan, diags))
    for evict in plan.evicts:
        lines.append(f"  [evict] {evict}")
    return "\n".join(lines)


def _diags_by_hop(diagnostics) -> dict[int, list]:
    out: dict[int, list] = {}
    if diagnostics is None:
        return out
    for diag in diagnostics.diagnostics:
        if diag.hop is not None:
            out.setdefault(diag.hop, []).append(diag)
    return out


def _hop_line(snap: HopSnapshot) -> str:
    shape = f"[{snap.shape[0]}x{snap.shape[1]}]"
    place = snap.placement or ("-" if snap.kind != KIND_OP else "CP")
    flags = ",".join(snap.annotations)
    cost = (f"{_size(snap.output_bytes)} out, "
            f"{_size(snap.memory_estimate)} op-mem, {_flops(snap.flops)}")
    line = f"#{snap.id:<5d} {snap.opcode:<10s} {shape:<14s} {place:<4s} {cost}"
    if flags:
        line += f"  {{{flags}}}"
    return line


def _render_dag(plan: ExplainPlan, diags: dict[int, list]) -> list[str]:
    """Indented DAG tree from the roots; shared sub-DAGs referenced once."""
    by_id = plan.by_id()
    lines: list[str] = []
    expanded: set[int] = set()

    def visit(hop_id: int, depth: int) -> None:
        snap = by_id.get(hop_id)
        indent = "  " * (depth + 1)
        if snap is None:
            lines.append(f"{indent}#{hop_id} (outside block)")
            return
        if hop_id in expanded:
            lines.append(f"{indent}#{hop_id} {snap.opcode} (shared, see above)")
            return
        expanded.add(hop_id)
        lines.append(indent + _hop_line(snap))
        for diag in diags.get(hop_id, ()):
            lines.append(f"{indent}  ! {diag.severity.name.lower()} "
                         f"[{diag.rule}] {diag.message}")
        for input_id in snap.input_ids:
            visit(input_id, depth + 1)

    for root_id in plan.root_ids:
        visit(root_id, 0)
    return lines


def _render_stream(plan: ExplainPlan, diags: dict[int, list]) -> list[str]:
    lines = []
    for pos, snap in enumerate(plan.order, start=1):
        lines.append(f"  {pos:>4d}: " + _hop_line(snap))
        for diag in diags.get(snap.id, ()):
            lines.append(f"        ! {diag.severity.name.lower()} "
                         f"[{diag.rule}] {diag.message}")
    return lines


# -- ambient collector -------------------------------------------------------

class ExplainCollector:
    """Accumulates compiled-block plans across sessions (harness --explain).

    Structurally identical blocks (repeated loop bodies) are deduped
    into one plan with an execution counter, so a 100-iteration workload
    explains as a handful of distinct plans instead of 100 copies.
    """

    def __init__(self) -> None:
        self.plans: list[ExplainPlan] = []
        self._signatures: dict[tuple, ExplainPlan] = {}
        self.blocks_captured = 0

    def capture(self, root_hops: Sequence[Hop], order: Sequence[Hop],
                config: "MemphisConfig") -> ExplainPlan:
        """Snapshot one compiled block; dedupes repeated shapes."""
        plan = snapshot_plan(root_hops, order, config)
        self.blocks_captured += 1
        existing = self._signatures.get(plan.signature)
        if existing is not None:
            existing.executions += 1
            return existing
        self._signatures[plan.signature] = plan
        self.plans.append(plan)
        return plan

    def note_evict(self, description: str) -> None:
        """Record an evict instruction issued between blocks (§5.2)."""
        if self.plans:
            self.plans[-1].evicts.append(description)

    def render(self, level: str = LEVEL_FULL,
               diagnostics: Optional["DiagnosticReport"] = None,
               max_plans: Optional[int] = None) -> str:
        """Render every captured plan (optionally capped)."""
        lines = [f"=== explain (level={level}, {self.blocks_captured} "
                 f"block(s) compiled, {len(self.plans)} distinct) ==="]
        shown = self.plans if max_plans is None else self.plans[:max_plans]
        for i, plan in enumerate(shown, start=1):
            lines.append(render_plan(plan, level, diagnostics, block_index=i))
        if max_plans is not None and len(self.plans) > max_plans:
            lines.append(f"... ({len(self.plans) - max_plans} more plans)")
        return "\n".join(lines)


_active_explain: Optional[ExplainCollector] = None


def install_explain(collector: Optional[ExplainCollector] = None) -> ExplainCollector:
    """Install an ambient explain collector (harness ``--explain``)."""
    global _active_explain
    _active_explain = collector or ExplainCollector()
    return _active_explain


def uninstall_explain() -> Optional[ExplainCollector]:
    """Clear the ambient explain collector; returns it for rendering."""
    global _active_explain
    collector, _active_explain = _active_explain, None
    return collector


def current_explain() -> Optional[ExplainCollector]:
    """The ambient explain collector, or ``None``."""
    return _active_explain


@contextlib.contextmanager
def explaining(collector: Optional[ExplainCollector] = None) -> Iterator[ExplainCollector]:
    """Scoped ambient explain capture: ``with explaining() as ec: ...``."""
    ec = install_explain(collector)
    try:
        yield ec
    finally:
        uninstall_explain()


# -- generic DOT rendering (shared with repro.lineage.query) -----------------

def render_dot(nodes: Sequence[tuple[int, str, str]],
               edges: Sequence[tuple[int, int]],
               graph_name: str = "plan", rankdir: str = "BT",
               truncated: bool = False) -> str:
    """The one GraphViz-emitting code path of the repository.

    ``nodes`` are ``(id, label, shape)`` tuples; ``edges`` are
    ``(src_id, dst_id)`` pairs.  Both lineage-trace dumps
    (:func:`repro.lineage.query.to_dot`) and explain plans
    (:func:`plan_to_dot`) build their node/edge lists and delegate here.
    """
    lines = [f"digraph {graph_name} {{", f"  rankdir={rankdir};"]
    for node_id, label, shape in nodes:
        lines.append(f'  n{node_id} [label="{label}", shape={shape}];')
    if truncated:
        lines.append('  truncated [label="...", shape=plaintext];')
    for src, dst in edges:
        lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(plan: ExplainPlan) -> str:
    """GraphViz rendering of a captured plan (hop ids as node ids)."""
    nodes = []
    ids = {s.id for s in plan.order}
    for snap in plan.order:
        label = f"#{snap.id} {snap.opcode}"
        if snap.placement:
            label += f"\\n{snap.placement} [{snap.shape[0]}x{snap.shape[1]}]"
        shape = "box" if snap.kind == KIND_OP else "ellipse"
        nodes.append((snap.id, label, shape))
    edges = [
        (input_id, snap.id)
        for snap in plan.order
        for input_id in snap.input_ids
        if input_id in ids
    ]
    return render_dot(nodes, edges, graph_name="plan")
