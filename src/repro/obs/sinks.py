"""Event sinks: bounded in-memory ring buffer and streaming JSONL writer.

Sinks receive every :class:`~repro.obs.events.Event` a tracer emits.
The ring buffer is the default (always-on-cheap: O(1) append, bounded
memory); the JSONL sink streams events to disk for workloads whose
traces exceed the ring capacity or that need post-mortem inspection.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, Optional, Union

from repro.obs.events import Event


class RingBufferSink:
    """Bounded FIFO of the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 1 << 18) -> None:
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._total = 0

    def emit(self, event: Event) -> None:
        self._events.append(event)
        self._total += 1

    def events(self) -> list[Event]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._events)

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including ones the ring has dropped."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow (oldest-first)."""
        return max(0, self._total - len(self._events))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._total = 0


class JsonlSink:
    """Writes one JSON object per line; usable as a context manager."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_json(), sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


def write_jsonl(events: Iterable[Event], path: str) -> int:
    """Dump ``events`` to a JSONL file; returns the number written."""
    count = 0
    with JsonlSink(path) as sink:
        for event in events:
            sink.emit(event)
            count += 1
    return count


def read_jsonl(path: str) -> list[Event]:
    """Load events back from a JSONL file (round-trip of the sink)."""
    out: list[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Event.from_json(json.loads(line)))
    return out
