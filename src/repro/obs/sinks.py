"""Event sinks: bounded in-memory ring buffer and streaming JSONL writer.

Sinks receive every :class:`~repro.obs.events.Event` a tracer emits.
The ring buffer is the default (always-on-cheap: O(1) append, bounded
memory); the JSONL sink streams events to disk for workloads whose
traces exceed the ring capacity or that need post-mortem inspection.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import IO, Iterable, Optional, Union

from repro.obs.events import Event


class RingBufferSink:
    """Bounded FIFO of the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 1 << 18) -> None:
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._total = 0

    def emit(self, event: Event) -> None:
        self._events.append(event)
        self._total += 1

    def events(self) -> list[Event]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._events)

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including ones the ring has dropped."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow (oldest-first)."""
        return max(0, self._total - len(self._events))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._total = 0


class JsonlSink:
    """Writes one JSON object per line; usable as a context manager."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_json(), sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


class RotatingJsonlSink:
    """JSONL sink with size-based rotation (long-running workloads).

    Writes to ``path``; once the active file exceeds ``max_bytes`` the
    existing backups shift up (``path.1`` -> ``path.2`` ...), the active
    file becomes ``path.1``, and writing restarts on a fresh ``path`` —
    the semantics of ``logging.handlers.RotatingFileHandler``.  At most
    ``backup_count`` backups are kept; the oldest is deleted on
    overflow.  Rotation happens on line boundaries, so every file is
    independently loadable with :func:`read_jsonl`.
    """

    def __init__(self, path: str, max_bytes: int = 1 << 20,
                 backup_count: int = 3) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backup_count < 1:
            raise ValueError("backup_count must be at least 1")
        self.path = path
        self.max_bytes = max_bytes
        self.backup_count = backup_count
        self.rotations = 0
        self._bytes_written = 0
        self._file: IO[str] = open(path, "w", encoding="utf-8")

    def emit(self, event: Event) -> None:
        line = json.dumps(event.to_json(), sort_keys=True) + "\n"
        if self._bytes_written and \
                self._bytes_written + len(line) > self.max_bytes:
            self._rotate()
        self._file.write(line)
        self._bytes_written += len(line)

    def _rotate(self) -> None:
        self._file.close()
        oldest = f"{self.path}.{self.backup_count}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.backup_count - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "w", encoding="utf-8")
        self._bytes_written = 0
        self.rotations += 1

    def files(self) -> list[str]:
        """All existing files of the set, oldest first."""
        out = [
            f"{self.path}.{i}"
            for i in range(self.backup_count, 0, -1)
            if os.path.exists(f"{self.path}.{i}")
        ]
        out.append(self.path)
        return out

    def close(self) -> None:
        self._file.flush()
        self._file.close()

    def __enter__(self) -> "RotatingJsonlSink":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


def write_jsonl(events: Iterable[Event], path: str) -> int:
    """Dump ``events`` to a JSONL file; returns the number written."""
    count = 0
    with JsonlSink(path) as sink:
        for event in events:
            sink.emit(event)
            count += 1
    return count


def read_jsonl(path: str) -> list[Event]:
    """Load events back from a JSONL file (round-trip of the sink)."""
    out: list[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Event.from_json(json.loads(line)))
    return out
