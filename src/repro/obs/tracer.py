"""The tracer: nested spans and typed events over the simulated clock.

A :class:`Tracer` is bound to one session's :class:`SimClock` and stamps
every event with the simulated time of the backend lane it belongs to
(``CP`` -> host timeline, ``SP`` -> cluster, ``GPU`` -> device).  Spans
nest: while an instruction span is open, every event emitted by the
cache, the Spark simulator, or the GPU memory manager is automatically
attributed to that instruction (``args["instr"]``), which is what lets a
timeline viewer answer *which instruction caused this eviction*.

Tracing is opt-in and designed to cost ~zero when off: the module-level
:data:`NULL_TRACER` singleton has ``enabled = False`` and no-op methods,
and every hot-path call site guards on ``tracer.enabled`` before
building argument dictionaries.

A :class:`TraceCollector` aggregates events (and statistics registries)
across *multiple* sessions — the benchmark harness traces whole
experiment grids into one timeline, one Perfetto process per session.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.common.simclock import CLUSTER, DEVICE, HOST, SimClock
from repro.common.stats import Stats
from repro.obs.events import (
    EV_INSTR,
    Event,
    LANE_CP,
    LANE_FED,
    LANE_GPU,
    LANE_SP,
    PHASE_INSTANT,
    PHASE_SPAN,
)
from repro.obs.sinks import RingBufferSink

#: lane -> sim-clock timeline whose "now" stamps the lane's events.
LANE_TIMELINES = {
    LANE_CP: HOST,
    LANE_SP: CLUSTER,
    LANE_GPU: DEVICE,
    LANE_FED: HOST,
}


class Span:
    """Context manager recording one complete (``X``) event on exit."""

    __slots__ = ("tracer", "name", "lane", "args", "start", "label")

    def __init__(self, tracer: "Tracer", name: str, lane: str,
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.lane = lane
        self.args = args
        self.start = 0.0
        #: attribution label for nested events (opcode#hop when present).
        if args and "opcode" in args:
            self.label = f"{args['opcode']}#{args.get('hop', '?')}"
        else:
            self.label = name

    def __enter__(self) -> "Span":
        self.start = self.tracer.now(self.lane)
        self.tracer._stack.append(self)
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        end = self.tracer.now(self.lane)
        self.tracer.emit(Event(
            self.name, PHASE_SPAN, self.start, self.lane,
            max(0.0, end - self.start), self.tracer.session_id, self.args,
        ))
        return None


class Tracer:
    """Per-session event producer; all emissions go to shared sinks."""

    enabled = True

    def __init__(self, clock: SimClock, session_id: int = 0,
                 sinks: Optional[list] = None) -> None:
        self.clock = clock
        self.session_id = session_id
        self.sinks = sinks if sinks is not None else [RingBufferSink()]
        self._stack: list[Span] = []
        #: bound request context (``repro.obs.request``): while set,
        #: every emitted event inherits ``request_id``/``tenant`` args.
        self.request = None

    # -- request binding -----------------------------------------------------

    def bind_request(self, ctx) -> None:
        """Bind (or clear, with ``None``) the active request context.

        The server scheduler binds the advancing request's
        :class:`~repro.obs.request.RequestContext` here on every
        scheduling quantum, so the whole stack below ``Session.evaluate``
        — dispatch, arbiter, cache, substrate — emits request-stamped
        events without per-call-site plumbing.
        """
        self.request = ctx

    # -- time ---------------------------------------------------------------

    def now(self, lane: str = LANE_CP) -> float:
        """Simulated time of ``lane``'s backing timeline."""
        return self.clock.now(LANE_TIMELINES[lane])

    # -- emission -----------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Dispatch one finished event to every sink.

        Request stamping happens here — the single choke point every
        span/instant/complete passes through — so bound
        ``request_id``/``tenant`` fields reach events emitted by *any*
        layer, including :class:`Span` exits that construct their event
        directly.  Explicit per-event args win over the binding.
        """
        request = self.request
        if request is not None:
            args = event.args
            if args is None:
                event.args = dict(request.as_args())
            else:
                args.setdefault("request_id", request.request_id)
                args.setdefault("tenant", request.tenant)
        for sink in self.sinks:
            sink.emit(event)

    def instant(self, name: str, lane: str = LANE_CP,
                ts: Optional[float] = None, **args) -> None:
        """Record a point-in-time event (``ph: i``)."""
        self.emit(Event(
            name, PHASE_INSTANT,
            self.now(lane) if ts is None else ts,
            lane, 0.0, self.session_id, self._attributed(args),
        ))

    def span(self, name: str, lane: str = LANE_CP, **args) -> Span:
        """Open a nested span; the event is emitted when the span exits."""
        return Span(self, name, lane, args or None)

    def complete(self, name: str, lane: str, start: float, end: float,
                 **args) -> None:
        """Record a span whose interval is already known (async work)."""
        self.emit(Event(
            name, PHASE_SPAN, start, lane, max(0.0, end - start),
            self.session_id, self._attributed(args),
        ))

    # -- attribution --------------------------------------------------------

    @property
    def current_instruction(self) -> Optional[str]:
        """Label of the innermost open instruction span, if any."""
        for span in reversed(self._stack):
            if span.name == EV_INSTR:
                return span.label
        return None

    def _attributed(self, args: dict) -> Optional[dict]:
        if self._stack and "instr" not in args:
            instr = self.current_instruction
            if instr is not None:
                args["instr"] = instr
        return args or None

    # -- convenience --------------------------------------------------------

    def events(self) -> list[Event]:
        """Events of the first ring-buffer sink (empty if none attached)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events()
        return []


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Hot paths check :attr:`enabled` (a plain attribute load) before
    constructing event arguments, so a session without tracing pays no
    measurable cost per instruction — and when metrics and fault
    injection are also off, the interpreter drops the checks entirely
    by selecting the fast dispatch loop (``repro.runtime.dispatch``).
    See docs/ARCHITECTURE.md "Zero overhead when disabled".
    """

    enabled = False
    session_id = -1
    request = None

    def now(self, lane: str = LANE_CP) -> float:
        return 0.0

    def bind_request(self, ctx) -> None:
        # no-op: the singleton must stay stateless — the scheduler binds
        # unconditionally, traced or not.
        pass

    def emit(self, event: Event) -> None:
        pass

    def instant(self, name: str, lane: str = LANE_CP,
                ts: Optional[float] = None, **args) -> None:
        pass

    def span(self, name: str, lane: str = LANE_CP, **args) -> "_NullSpan":
        return _NULL_SPAN

    def complete(self, name: str, lane: str, start: float, end: float,
                 **args) -> None:
        pass

    @property
    def current_instruction(self) -> Optional[str]:
        return None

    def events(self) -> list[Event]:
        return []


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: process-wide disabled tracer shared by every untraced session.
NULL_TRACER = NullTracer()


class TraceCollector:
    """Shared event store for one traced run (possibly many sessions).

    Sessions created while a collector is active (see
    :func:`enable_tracing`) register here: each gets a fresh
    :class:`Tracer` with a distinct session id writing into the
    collector's sinks, and contributes its :class:`Stats` registry to
    the aggregate the harness summary reports.
    """

    def __init__(self, capacity: int = 1 << 18) -> None:
        self.ring = RingBufferSink(capacity)
        self.sinks: list = [self.ring]
        self.session_labels: dict[int, str] = {}
        self._stats: list[Stats] = []
        self._next_session = 0

    def add_sink(self, sink) -> None:
        """Attach an additional sink (e.g. a streaming JSONL writer)."""
        self.sinks.append(sink)

    def tracer(self, clock: SimClock, label: str = "",
               stats: Optional[Stats] = None) -> Tracer:
        """Create the tracer for one session; registers its stats."""
        session_id = self._next_session
        self._next_session += 1
        self.session_labels[session_id] = label or f"session-{session_id}"
        if stats is not None:
            self._stats.append(stats)
        return Tracer(clock, session_id, self.sinks)

    def events(self) -> list[Event]:
        """All buffered events across sessions."""
        return self.ring.events()

    def aggregate_stats(self) -> Stats:
        """Merge every registered session's counters into one registry."""
        total = Stats()
        for stats in self._stats:
            total.merge(stats)
        return total

    @property
    def num_sessions(self) -> int:
        return self._next_session


# -- ambient (process-wide) tracing state -----------------------------------

_active_collector: Optional[TraceCollector] = None


def enable_tracing(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Install ``collector`` (or a fresh one) as the ambient collector.

    Every :class:`~repro.core.session.Session` constructed while a
    collector is active traces into it, regardless of its config flag —
    this is how ``python -m repro.harness --trace`` captures sessions
    created deep inside workload drivers.
    """
    global _active_collector
    _active_collector = collector or TraceCollector()
    return _active_collector


def disable_tracing() -> Optional[TraceCollector]:
    """Clear the ambient collector; returns it for export."""
    global _active_collector
    collector, _active_collector = _active_collector, None
    return collector


def current_collector() -> Optional[TraceCollector]:
    """The ambient collector, or ``None`` when tracing is off."""
    return _active_collector


@contextlib.contextmanager
def tracing(collector: Optional[TraceCollector] = None) -> Iterator[TraceCollector]:
    """Scoped ambient tracing: ``with tracing() as tc: ...``."""
    tc = enable_tracing(collector)
    try:
        yield tc
    finally:
        disable_tracing()
