"""Request-scoped observability for the multi-tenant reuse server.

Per-session traces answer *what did this session do*; a shared
substrate raises operator questions they cannot: which request was
slow, which tenant tripped admission control, whose cached entry
another tenant is hitting, what was in flight when an
:class:`~repro.common.errors.AdmissionError` fired.  This module is
the request-scoped layer that answers them:

* :class:`RequestContext` — the trace context the
  :class:`~repro.server.scheduler.Scheduler` mints per request and
  binds onto the tracers of the request's session and of the shared
  substrate.  While bound, every span, instant, and diagnostic the
  session/substrate emit carries ``request_id``/``tenant`` args (see
  :meth:`repro.obs.tracer.Tracer.bind_request`), so a Chrome-trace
  export can group lanes per tenant and a timeline viewer can answer
  *which request caused this eviction*.
* :class:`FlightRecorder` — an always-on bounded ring of recent
  request-level events (scheduler steps, backpressure, retries,
  completions; plus full spans whenever ambient tracing is active).
  It reuses the :class:`~repro.obs.sinks.RingBufferSink` and costs one
  deque append per scheduler quantum — cheap enough to stay on even
  when tracing is off, which is the point: when an
  ``AdmissionError``/``VerificationError`` escapes or an injected
  fault recovers, the scheduler dumps the window automatically and the
  post-mortem context is *already there*.

Zero-overhead contract: nothing in this module touches the
per-instruction hot path.  The recorder only sees scheduler-quantum
events, tracer binding is a no-op on :data:`~repro.obs.tracer.NULL_TRACER`,
and with observability off the interpreter still selects the fast
dispatch loop (``tests/test_dispatch_equivalence.py`` pins this).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import Event, LANE_CP, PHASE_INSTANT
from repro.obs.sinks import RingBufferSink


class RequestContext:
    """Trace context of one server request (id, tenant, interleave seed).

    Minted by the scheduler — one per submitted request, with a
    deterministic id derived from the submission index — and carried
    through ``Session.evaluate`` into every layer that emits events:
    the dispatch loops, the memory arbiter, the lineage cache, and the
    shared substrate all trace through tracers this context is bound
    to, so their events inherit ``request_id``/``tenant`` without any
    per-call-site plumbing.
    """

    __slots__ = ("request_id", "tenant", "seed", "name")

    def __init__(self, request_id: str, tenant: str, seed: int = 0,
                 name: str = "") -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.seed = seed
        self.name = name or request_id

    def as_args(self) -> dict:
        """The args every event under this request carries."""
        return {"request_id": self.request_id, "tenant": self.tenant}

    def __repr__(self) -> str:
        return (f"RequestContext({self.request_id!r}, "
                f"tenant={self.tenant!r}, seed={self.seed})")


class FlightRecorder:
    """Always-on bounded window of recent server events, dumped on faults.

    The scheduler records one instant per scheduling quantum (and, when
    ambient tracing is active, receives every traced event as an extra
    collector sink).  :meth:`dump` snapshots the window with a reason —
    ``admission_error``, the escaping exception type, or
    ``fault_recovery`` — giving a post-mortem view without full tracing
    enabled.  Dumps are plain JSON-friendly dicts, deterministic on the
    sim clock, and accumulate on :attr:`dumps` for the server report.
    """

    #: sink-protocol flag: recorders may be attached as collector sinks.
    enabled = True

    def __init__(self, capacity: int = 256) -> None:
        self.ring = RingBufferSink(capacity)
        #: post-mortem snapshots, in dump order.
        self.dumps: list[dict] = []

    # -- sink protocol (collector attachment) --------------------------------

    def emit(self, event: Event) -> None:
        """Receive one event (sink protocol, used via ``add_sink``)."""
        self.ring.emit(event)

    # -- direct recording (no tracer required) -------------------------------

    def record(self, name: str, ts: float, session: int = -1,
               ctx: Optional[RequestContext] = None, **args) -> None:
        """Record one request-level instant straight into the ring."""
        if ctx is not None:
            args.setdefault("request_id", ctx.request_id)
            args.setdefault("tenant", ctx.tenant)
        self.ring.emit(Event(name, PHASE_INSTANT, ts, LANE_CP, 0.0,
                             session, args or None))

    # -- post-mortem ---------------------------------------------------------

    def dump(self, reason: str, ts: float = 0.0,
             ctx: Optional[RequestContext] = None, **detail) -> dict:
        """Snapshot the current window under ``reason``; returns the dump."""
        record = {
            "reason": reason,
            "ts": ts,
            "request_id": ctx.request_id if ctx is not None else None,
            "tenant": ctx.tenant if ctx is not None else None,
            "dropped": self.ring.dropped,
            "events": [e.to_json() for e in self.ring.events()],
        }
        if detail:
            record["detail"] = detail
        self.dumps.append(record)
        return record

    def events(self) -> list[Event]:
        """The current window, oldest first."""
        return self.ring.events()

    def __len__(self) -> int:
        return len(self.ring)
