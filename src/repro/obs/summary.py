"""Post-run trace analysis: the harness's ``--trace`` summary report.

Distills an event stream into the three answers the paper's evaluation
keeps asking (§6): where did the time go (top-k slowest instructions),
did reuse work (hit rate per reuse site, i.e. per opcode that was
probed), and who paid for memory pressure (eviction counts per cache
region).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import (
    EV_CACHE_EVICT,
    EV_CACHE_SPILL,
    EV_GPU_EVICT_D2H,
    EV_GPU_RECYCLE,
    EV_INSTR,
    EV_PROBE,
    EV_SPARK_PART_EVICT,
    EV_SPARK_PART_SPILL,
    Event,
)

#: eviction-flavoured event name -> reported cache region.
_EVICTION_REGIONS = {
    EV_CACHE_EVICT: "driver-cache",
    EV_CACHE_SPILL: "driver-disk-spill",
    EV_SPARK_PART_EVICT: "spark-storage",
    EV_SPARK_PART_SPILL: "spark-disk-spill",
    EV_GPU_RECYCLE: "gpu-recycled",
    EV_GPU_EVICT_D2H: "gpu-evict-to-host",
}


@dataclass
class ReuseSite:
    """Probe outcomes for one reuse site (opcode)."""

    opcode: str
    hits: int = 0
    misses: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


@dataclass
class TraceSummary:
    """Aggregates computed by :func:`summarize`."""

    num_events: int = 0
    num_sessions: int = 0
    #: slowest individual instruction spans, descending duration.
    slowest: list[Event] = field(default_factory=list)
    #: opcode -> (count, total seconds) over all instruction spans.
    by_opcode: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: opcode -> probe hit/miss tallies.
    reuse_sites: dict[str, ReuseSite] = field(default_factory=dict)
    #: cache region -> eviction count.
    evictions: dict[str, int] = field(default_factory=dict)


def summarize(events: Iterable[Event], top_k: int = 10) -> TraceSummary:
    """Single pass over ``events`` building a :class:`TraceSummary`."""
    summary = TraceSummary()
    sessions: set[int] = set()
    spans: list[Event] = []
    totals: dict[str, list] = defaultdict(lambda: [0, 0.0])
    for event in events:
        summary.num_events += 1
        sessions.add(event.session)
        if event.name == EV_INSTR:
            spans.append(event)
            opcode = (event.args or {}).get("opcode", "?")
            totals[opcode][0] += 1
            totals[opcode][1] += event.dur
        elif event.name == EV_PROBE:
            args = event.args or {}
            opcode = args.get("opcode", "?")
            site = summary.reuse_sites.setdefault(opcode, ReuseSite(opcode))
            if args.get("hit"):
                site.hits += 1
            else:
                site.misses += 1
        elif event.name in _EVICTION_REGIONS:
            region = _EVICTION_REGIONS[event.name]
            summary.evictions[region] = summary.evictions.get(region, 0) + 1
    spans.sort(key=lambda e: e.dur, reverse=True)
    summary.slowest = spans[:top_k]
    summary.by_opcode = {op: (c, t) for op, (c, t) in totals.items()}
    summary.num_sessions = len(sessions)
    return summary


def format_summary(events: Iterable[Event], top_k: int = 10) -> str:
    """Human-readable report over one traced run."""
    s = summarize(events, top_k)
    lines = ["=== trace summary ==="]
    lines.append(f"events: {s.num_events}   sessions: {s.num_sessions}")

    if s.slowest:
        lines.append("")
        lines.append(f"-- top {len(s.slowest)} slowest instructions --")
        for event in s.slowest:
            args = event.args or {}
            label = f"{args.get('opcode', '?')}#{args.get('hop', '?')}"
            backend = args.get("backend", "?")
            lines.append(
                f"{label:<24s} {backend:<4s} {event.dur * 1e3:10.3f} ms"
                f"  @ {event.ts * 1e3:.3f} ms  [s{event.session}]"
            )

    if s.by_opcode:
        lines.append("")
        lines.append("-- time by opcode --")
        ranked = sorted(
            s.by_opcode.items(), key=lambda kv: kv[1][1], reverse=True
        )
        for opcode, (count, total) in ranked[:top_k]:
            lines.append(
                f"{opcode:<24s} {count:>6d} x {total * 1e3:10.3f} ms total"
            )

    if s.reuse_sites:
        lines.append("")
        lines.append("-- reuse hit rate per site --")
        ranked_sites = sorted(
            s.reuse_sites.values(), key=lambda r: r.probes, reverse=True
        )
        for site in ranked_sites[:top_k]:
            lines.append(
                f"{site.opcode:<24s} {site.hits:>6d}/{site.probes:<6d}"
                f" hits ({site.hit_rate:6.1%})"
            )

    if s.evictions:
        lines.append("")
        lines.append("-- evictions per region --")
        for region in sorted(s.evictions):
            lines.append(f"{region:<24s} {s.evictions[region]:>8d}")

    return "\n".join(lines)
