"""A small JSON schema for exported Chrome traces, plus a validator.

The schema pins down exactly what the smoke job (``scripts/
trace_smoke.py``) and the round-trip tests rely on; the validator is
hand-rolled so the repository needs no ``jsonschema`` dependency.
"""

from __future__ import annotations

from typing import Optional

#: JSON-Schema (draft-07 subset) describing an exported trace document.
TRACE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs Chrome trace",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "ph": {"enum": ["X", "i", "M", "C"]},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "cat": {"type": "string"},
                    "s": {"enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


def validate_chrome_trace(doc: object) -> list[str]:
    """Validate ``doc`` against :data:`TRACE_SCHEMA` semantics.

    Returns a list of human-readable problems; an empty list means the
    document is a loadable Chrome/Perfetto trace as this repo emits it.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top-level document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, ev in enumerate(events):
        prefix = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{prefix}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{prefix}: missing/empty 'name'")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "C"):
            problems.append(f"{prefix}: bad phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or ev.get(key, 0) < 0:
                problems.append(f"{prefix}: bad {key!r}")
        if ph in ("X", "i", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{prefix}: bad 'ts' {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{prefix}: bad 'dur' {dur!r}")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{prefix}: 'args' is not an object")
        if ph == "C" and not isinstance(args, dict):
            problems.append(f"{prefix}: counter event without 'args'")
        if len(problems) > 50:
            problems.append("... (truncated)")
            break
    return problems


def assert_valid_chrome_trace(doc: object,
                              context: Optional[str] = None) -> None:
    """Raise ``ValueError`` with all problems if ``doc`` is invalid."""
    problems = validate_chrome_trace(doc)
    if problems:
        where = f" ({context})" if context else ""
        raise ValueError(
            f"invalid Chrome trace{where}:\n  " + "\n  ".join(problems)
        )
