"""Chrome-trace export: render a traced run as a multi-lane timeline.

Converts :class:`~repro.obs.events.Event` streams to the Chrome Trace
Event Format (the JSON dialect understood by ``chrome://tracing`` and
https://ui.perfetto.dev), so a whole workload run renders as a timeline:
one *process* per traced session, one *thread lane* per backend (CP, SP,
GPU, FED).  Sim-clock seconds become microseconds; instants become
thread-scoped ``i`` events; spans become complete ``X`` events whose
nesting Perfetto reconstructs per lane.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.obs.events import (
    Event,
    LANES,
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
)

#: stable thread id per lane (also the top-to-bottom display order).
LANE_TIDS = {lane: i + 1 for i, lane in enumerate(LANES)}

#: tid offset between successive per-tenant lane groups: events carrying
#: a ``tenant`` arg (request-scoped tracing, ``repro.obs.request``) get
#: their own ``<lane> [<tenant>]`` thread row so a multi-tenant server
#: trace renders one lane group per tenant under each session process.
TENANT_LANE_STRIDE = 16

_S_TO_US = 1e6

#: counter-track rows: ``(session_id, series_name, [(t_seconds, value)])``
#: as produced by :func:`repro.obs.metrics.counter_tracks`.
CounterTracks = Iterable[tuple[int, str, list[tuple[float, float]]]]


def chrome_trace_dict(events: Iterable[Event],
                      session_labels: Optional[dict[int, str]] = None,
                      counters: Optional[CounterTracks] = None) -> dict:
    """Build the Chrome Trace Event Format document for ``events``.

    ``counters`` (optional) adds metric time-series as Perfetto counter
    tracks: one ``ph: "C"`` record per sample, one track per
    ``(session, series)`` pair.
    """
    labels = session_labels or {}
    trace_events: list[dict] = []
    seen: set[tuple[int, str]] = set()
    #: tenant -> lane-group index, in first-seen (deterministic) order.
    tenant_groups: dict[str, int] = {}

    for event in events:
        pid = event.session if event.session >= 0 else 0
        tid = LANE_TIDS.get(event.lane, len(LANE_TIDS) + 1)
        lane_label = event.lane
        tenant = event.args.get("tenant") if event.args else None
        if tenant is not None:
            group = tenant_groups.setdefault(tenant, len(tenant_groups))
            tid += (group + 1) * TENANT_LANE_STRIDE
            lane_label = f"{event.lane} [{tenant}]"
        if (pid, lane_label) not in seen:
            seen.add((pid, lane_label))
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": labels.get(pid, f"session-{pid}")},
            })
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": lane_label},
            })
            trace_events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "args": {"sort_index": tid},
            })
        record: dict = {
            "name": event.name,
            "cat": event.name.split("/", 1)[0],
            "ph": event.ph,
            "pid": pid,
            "tid": tid,
            "ts": event.ts * _S_TO_US,
        }
        if event.ph == PHASE_SPAN:
            record["dur"] = event.dur * _S_TO_US
        elif event.ph == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = event.args
        trace_events.append(record)

    for session_id, series_name, samples in counters or ():
        pid = session_id if session_id >= 0 else 0
        if (pid, "__counters__") not in seen:
            seen.add((pid, "__counters__"))
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": labels.get(pid, f"session-{pid}")},
            })
        for t, value in samples:
            trace_events.append({
                "name": series_name,
                "cat": series_name.split("/", 1)[0],
                "ph": PHASE_COUNTER,
                "pid": pid,
                "tid": 0,
                "ts": t * _S_TO_US,
                "args": {"value": value},
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs (MEMPHIS reproduction)"},
    }


def export_chrome_trace(events: Iterable[Event], path: str,
                        session_labels: Optional[dict[int, str]] = None,
                        counters: Optional[CounterTracks] = None) -> dict:
    """Write the Chrome-trace JSON for ``events`` to ``path``."""
    doc = chrome_trace_dict(events, session_labels, counters=counters)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def load_chrome_trace(path: str) -> dict:
    """Read an exported trace document back (for validation/tests)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
