"""Typed trace events: the observability vocabulary of the system.

Every runtime mechanism the paper evaluates (reuse probes, evictions,
prefetch overlap, Spark stage barriers, GPU pointer recycling, federated
round-trips) emits one of the event types below, carrying sim-clock
timestamps, a backend *lane*, and — where applicable — the lineage-item
id and hop opcode that make the event attributable to a specific
instruction.  The taxonomy is deliberately flat and string-keyed so that
sinks (ring buffer, JSONL, Chrome trace) need no per-type code.

Phases follow the Chrome Trace Event Format: ``X`` is a *complete* event
(``ts`` + ``dur``), ``i`` an *instant* event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# --------------------------------------------------------------------- lanes

#: driver / local CPU instruction stream (sim timeline ``host``).
LANE_CP = "CP"
#: Spark cluster (sim timeline ``cluster``).
LANE_SP = "SP"
#: GPU device stream (sim timeline ``device``).
LANE_GPU = "GPU"
#: federated worker fleet (timestamps on the coordinator's host clock).
LANE_FED = "FED"

LANES = (LANE_CP, LANE_SP, LANE_GPU, LANE_FED)

# -------------------------------------------------------------------- phases

PHASE_SPAN = "X"
PHASE_INSTANT = "i"
#: counter event — Perfetto renders a counter track per (pid, name);
#: emitted by the metrics exporter (``repro.obs.metrics``), not by the
#: tracer itself.
PHASE_COUNTER = "C"

# ------------------------------------------------------------ event taxonomy

#: span — one instruction of the Fig. 4 main loop (args: opcode, hop,
#: backend, lineage).
EV_INSTR = "instr"

#: instant — lineage probe against the multi-backend cache
#: (args: hit, opcode, key).
EV_PROBE = "cache/probe"
#: instant — a result was stored under its lineage key.
EV_CACHE_PUT = "cache/put"
#: instant — delayed caching skipped a put (placeholder bump, §5.2).
EV_CACHE_DELAY = "cache/delay"
#: instant — a payload was evicted from a cache region (args: region).
EV_CACHE_EVICT = "cache/evict"
#: instant — a driver entry was spilled to local disk (§3.3).
EV_CACHE_SPILL = "cache/spill"
#: instant — a spilled entry was restored into the driver cache.
EV_CACHE_RESTORE = "cache/restore"

#: instant — an asynchronous prefetch/broadcast was issued (§5.1).
EV_PREFETCH = "async/prefetch"
#: instant — a prefetch future was waited on and resolved.
EV_PREFETCH_DONE = "async/prefetch_done"
EV_BROADCAST = "async/broadcast"

#: span — one Spark job on the cluster lane (args: rdd, stages, tasks).
EV_SPARK_JOB = "spark/job"
#: span — one stage inside a job (args: kind, tasks, stage).
EV_SPARK_STAGE = "spark/stage"
#: instant — shuffle files of a dependency were reused (§4.1).
EV_SPARK_SHUFFLE_REUSE = "spark/shuffle_reuse"
#: instant — a cached partition was dropped from storage memory.
EV_SPARK_PART_EVICT = "spark/partition_evicted"
#: instant — a cached partition moved to executor-local disk.
EV_SPARK_PART_SPILL = "spark/partition_spilled"

#: span — host-to-device copy on the GPU lane.
EV_GPU_H2D = "gpu/h2d"
#: span — device-to-host copy (synchronization barrier).
EV_GPU_D2H = "gpu/d2h"
#: span — one kernel on the device timeline.
EV_GPU_KERNEL = "gpu/kernel"
EV_GPU_MALLOC = "gpu/malloc"
EV_GPU_FREE = "gpu/free"
#: instant — a Free-list pointer was recycled in place (Algorithm 1).
EV_GPU_RECYCLE = "gpu/recycle"
#: instant — a lineage-cache hit moved a pointer Free -> Live (Fig. 8(c)).
EV_GPU_REUSE = "gpu/reuse"
#: instant — a free pointer was evicted device-to-host.
EV_GPU_EVICT_D2H = "gpu/evict_to_host"
EV_GPU_DEFRAG = "gpu/defrag"

#: instant — a region reservation failed (``repro.memory``; args:
#: region, nbytes, ok).
EV_MEM_RESERVE = "memory/reserve"
#: instant — the arbiter drove one eviction in a region (args: region,
#: nbytes, plus backend-specific detail).
EV_MEM_EVICT = "memory/evict"
#: instant — a payload moved to a slower tier under arbiter control.
EV_MEM_SPILL = "memory/spill"
#: instant — a payload was restored from a slower tier.
EV_MEM_RESTORE = "memory/restore"
#: instant — cross-region pressure callbacks fired for a region.
EV_MEM_PRESSURE = "memory/pressure"
#: instant — a static plan's footprint was bulk-reserved (args:
#: regions, nbytes, ok; see ``MemoryArbiter.reserve_plan``).
EV_MEM_PLAN_RESERVE = "memory/plan_reserve"
#: instant — the interpreter executed a pre-scheduled spill the static
#: memory planner computed at compile time (args: region, hop, nbytes).
EV_MEMPLAN_SPILL = "memplan/spill"

#: instant — a probe served by another session's cached entry on a
#: shared substrate (args: owner, key, nbytes; ``repro.server``).
EV_SERVER_CROSS_HIT = "server/cross_hit"
#: instant — a block was refused admission by the shared substrate
#: (args: tenant, region, nbytes; surfaced to schedulers as backpressure).
EV_SERVER_BACKPRESSURE = "server/backpressure"
#: instant — the scheduler dispatched one step of a request (args:
#: tenant, request, step).
EV_SERVER_STEP = "server/step"
#: instant — a cross-session hit attributed to its producer (args:
#: producer, consumer, request_id, producer_request, key, nbytes,
#: cost_avoided; the per-tenant-pair benefit matrix aggregates these).
EV_SERVER_ATTRIBUTION = "server/attribution"
#: instant — one request finished (args: request_id, tenant, ok,
#: latency_s, steps, retries).
EV_SERVER_REQUEST = "server/request"
#: instant — the flight recorder dumped its window (args: reason,
#: request_id, tenant, events).
EV_FLIGHT_DUMP = "server/flight_dump"

#: span — one federated request round-trip (submit -> last response).
EV_FED_REQUEST = "fed/request"

#: instant — one finding of the static IR verifier (``repro.analysis``;
#: args: rule, severity, hop, opcode, message).
EV_IR_DIAG = "analysis/diagnostic"

#: instant — an injected fault fired (``repro.faults``; args: kind + site
#: details such as task/round/worker ids).
EV_FAULT_INJECT = "fault/inject"
#: instant — a recovery path completed after one or more injected faults
#: (args: kind, attempts, and what was recomputed/retried).
EV_FAULT_RECOVER = "fault/recover"


@dataclass
class Event:
    """One structured trace event.

    ``ts``/``dur`` are simulated seconds; the Chrome exporter converts
    to microseconds.  ``session`` distinguishes concurrently traced
    :class:`~repro.core.session.Session` objects (one Perfetto process
    group each).
    """

    name: str
    ph: str
    ts: float
    lane: str = LANE_CP
    dur: float = 0.0
    session: int = 0
    args: Optional[dict] = None

    def to_json(self) -> dict:
        """Plain-dict form used by the JSONL sink (lossless round-trip)."""
        out = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts,
            "lane": self.lane,
            "session": self.session,
        }
        if self.ph == PHASE_SPAN:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Event":
        """Inverse of :meth:`to_json`."""
        return cls(
            name=data["name"],
            ph=data["ph"],
            ts=float(data["ts"]),
            lane=data.get("lane", LANE_CP),
            dur=float(data.get("dur", 0.0)),
            session=int(data.get("session", 0)),
            args=data.get("args"),
        )

    @property
    def end(self) -> float:
        """End time of a span (== ``ts`` for instants)."""
        return self.ts + self.dur
