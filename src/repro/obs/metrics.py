"""Metrics time-series: typed gauges/histograms sampled on the sim clock.

Where the tracer (``repro.obs.tracer``) records *events* — discrete
spans and instants — this module records *trajectories*: how the memory
regions fill up, how the lineage-cache hit-rate evolves over a sliding
window of probes, what fraction of Spark's unified memory is holding
cached storage, how GPU residency and pointer recycling develop, and how
fast the interpreter is retiring instructions.  These are exactly the
curves the paper plots (cache occupancy vs. budget, reuse hit-rates over
iterations, GPU residency under eviction) and that end-of-run counter
totals cannot show.

The design mirrors the tracer's zero-overhead-when-disabled pattern:
the module-level :data:`NULL_METRICS` singleton has ``enabled = False``
and the interpreter's only per-instruction cost without metrics is one
attribute check.  When enabled, a :class:`MetricsRegistry` samples every
source once per ``interval`` executed instructions (plus once at the end
of every evaluated block), stamping samples with the host sim-clock.

Three renderings are supported:

* **JSONL** (:func:`write_metrics_jsonl` / :func:`read_metrics_jsonl`)
  — one line per series, arrays of ``t``/``v``; the benchmark telemetry
  pipeline digests these;
* **text sparklines** (:func:`format_metrics`) — a terminal summary;
* **Chrome counter tracks** (:func:`counter_tracks`) — ``ph: "C"``
  events the Chrome exporter merges into Perfetto timelines, so series
  render under the same process groups as the span lanes.
"""

from __future__ import annotations

import contextlib
import json
from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.common.simclock import HOST, SimClock
from repro.common.stats import (
    CACHE_HITS,
    GPU_MALLOCS,
    GPU_RECYCLED,
    INSTRUCTIONS_EXECUTED,
    LINEAGE_PROBES,
    Stats,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session

#: default sampling period, in executed instructions.
DEFAULT_INTERVAL = 8
#: default sliding-window length for rate gauges, in samples.
DEFAULT_WINDOW = 8

#: counters whose inter-sample deltas feed the rate gauges.
_RATE_COUNTERS = (
    CACHE_HITS, LINEAGE_PROBES, GPU_RECYCLED, GPU_MALLOCS,
    INSTRUCTIONS_EXECUTED,
)

#: default bucket edges (sim seconds) of per-tenant request-latency
#: histograms (``server/tenant/<t>/request_latency_s``).
SLO_LATENCY_BOUNDS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Exact (no interpolation, no bucketing) and deterministic — the
    server SLO report uses it on raw per-request sim latencies, where
    histogram approximation would hide small regressions.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


class MetricSeries:
    """One gauge time-series: ``(sim-time, value)`` samples."""

    __slots__ = ("name", "unit", "samples")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.samples: list[tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def values(self) -> list[float]:
        return [v for _, v in self.samples]

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    def digest(self) -> dict:
        """Summary statistics (the benchmark report's series digest)."""
        values = self.values
        if not values:
            return {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0}
        return {
            "n": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "last": values[-1],
        }


class Histogram:
    """Fixed-bucket histogram (bounds are upper edges; +inf implied)."""

    __slots__ = ("name", "unit", "bounds", "counts", "count", "total",
                 "vmin", "vmax")

    def __init__(self, name: str, bounds: tuple[float, ...],
                 unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        i = 0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            i = len(self.bounds)
        self.counts[i] += 1
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def digest(self) -> dict:
        return {
            "n": self.count,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            "last": self.mean,  # histograms have no "last"; mean stands in
        }


class MetricsRegistry:
    """Per-session typed metric registry sampled on the sim clock.

    ``interval`` is the sampling period in executed instructions;
    ``window`` the sliding-window length (in samples) of the rate gauges
    (lineage-cache hit-rate, GPU recycle rate).
    """

    enabled = True

    def __init__(self, clock: SimClock, session_id: int = 0,
                 label: str = "", interval: int = DEFAULT_INTERVAL,
                 window: int = DEFAULT_WINDOW) -> None:
        self.clock = clock
        self.session_id = session_id
        self.label = label
        self.interval = max(1, int(interval))
        self.window = max(1, int(window))
        self._series: dict[str, MetricSeries] = {}
        self._histograms: dict[str, Histogram] = {}
        self._ticks = 0
        self._last_counters: dict[str, int] = {}
        self._last_t: Optional[float] = None
        self._deltas: deque[dict[str, int]] = deque(maxlen=self.window)

    # -- typed registration -------------------------------------------------

    def gauge(self, name: str, unit: str = "") -> MetricSeries:
        """The gauge series ``name``, created on first use."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = MetricSeries(name, unit)
        return series

    def histogram(self, name: str, bounds: tuple[float, ...],
                  unit: str = "") -> Histogram:
        """The histogram ``name``, created on first use."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds, unit)
        return hist

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = SLO_LATENCY_BOUNDS,
                unit: str = "") -> None:
        """Record one observation into the labeled histogram ``name``.

        The label is part of the series name (e.g.
        ``server/tenant/alpha/request_latency_s``), following the
        ``subsystem/.../metric`` convention everywhere else — this is
        how the server scheduler feeds per-tenant SLO series without
        the registry knowing about tenants.
        """
        self.histogram(name, bounds, unit).observe(value)

    def series(self) -> dict[str, MetricSeries]:
        return dict(self._series)

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def subsystems(self) -> set[str]:
        """Subsystem prefixes with at least one non-empty series."""
        return {
            name.split("/", 1)[0]
            for name, series in self._series.items() if series.samples
        }

    def num_samples(self) -> int:
        """Total samples recorded across all gauge series."""
        return sum(len(series) for series in self._series.values())

    # -- sampling -----------------------------------------------------------

    def tick(self, session: "Session") -> None:
        """Per-instruction hook: samples every ``interval`` instructions."""
        self._ticks += 1
        if self._ticks % self.interval == 0:
            self.sample(session)

    def sample(self, session: "Session") -> None:
        """Take one sample of every metric source, stamped at host now."""
        t = self.clock.now(HOST)
        # per-region occupancy/pinned/reserved (repro.memory ledgers)
        for region in session.arbiter.regions():
            base = f"memory/{region.name}"
            self.gauge(base + "/used", "B").record(t, region.used)
            self.gauge(base + "/pinned", "B").record(t, region.pinned)
            self.gauge(base + "/reserved", "B").record(t, region.reserved)
            if not region.unlimited and region.capacity > 0:
                self.gauge(base + "/occupancy").record(t, region.occupancy)
        # manager-specific gauges (each manager knows its own curve)
        for source in (session.cache, session.spark_context.block_manager,
                       session.spark_mgr, session.gpu.memory):
            for name, value in source.metrics_gauges().items():
                self.gauge(name).record(t, value)
        # multi-tenant occupancy (shared substrate only): per-tenant CP
        # usage plus the attached-session count, under server/
        if session.substrate.shared:
            for name, value in session.substrate.metrics_gauges().items():
                self.gauge(name, "B" if name.endswith("cp_used")
                           else "").record(t, value)
        self._sample_rates(t, session.stats)

    def _sample_rates(self, t: float, stats: Stats) -> None:
        """Sliding-window rate gauges from stats-counter deltas."""
        current = {name: stats.get(name) for name in _RATE_COUNTERS}
        delta = {
            name: current[name] - self._last_counters.get(name, 0)
            for name in _RATE_COUNTERS
        }
        dt = t - self._last_t if self._last_t is not None else 0.0
        self._deltas.append(delta)
        hits = sum(d[CACHE_HITS] for d in self._deltas)
        probes = sum(d[LINEAGE_PROBES] for d in self._deltas)
        if probes > 0:
            self.gauge("cache/hit_rate").record(t, hits / probes)
        recycled = sum(d[GPU_RECYCLED] for d in self._deltas)
        mallocs = sum(d[GPU_MALLOCS] for d in self._deltas)
        if recycled + mallocs > 0:
            self.gauge("gpu/recycle_rate").record(
                t, recycled / (recycled + mallocs)
            )
        if dt > 0 and delta[INSTRUCTIONS_EXECUTED] > 0:
            self.gauge("runtime/instr_per_s").record(
                t, delta[INSTRUCTIONS_EXECUTED] / dt
            )
            self.histogram(
                "runtime/instr_latency_s",
                (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1), "s",
            ).observe(dt / delta[INSTRUCTIONS_EXECUTED])
        self._last_counters = current
        self._last_t = t


class NullMetrics:
    """Disabled registry: the per-instruction cost is one attribute load.

    One of the three null singletons of the zero-overhead pattern
    (docs/ARCHITECTURE.md "Zero overhead when disabled"); with all
    three installed the interpreter selects the fast dispatch loop.
    """

    enabled = False
    session_id = -1
    label = ""

    def gauge(self, name: str, unit: str = "") -> MetricSeries:
        return MetricSeries(name, unit)  # detached throwaway

    def histogram(self, name: str, bounds: tuple[float, ...],
                  unit: str = "") -> Histogram:
        return Histogram(name, bounds, unit)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = SLO_LATENCY_BOUNDS,
                unit: str = "") -> None:
        pass

    def tick(self, session: "Session") -> None:
        pass

    def sample(self, session: "Session") -> None:
        pass

    def series(self) -> dict[str, MetricSeries]:
        return {}

    def histograms(self) -> dict[str, Histogram]:
        return {}

    def subsystems(self) -> set[str]:
        return set()

    def num_samples(self) -> int:
        return 0


#: process-wide disabled registry shared by every unmetered session.
NULL_METRICS = NullMetrics()


class MetricsCollector:
    """Shared metric store for one metered run (possibly many sessions).

    Mirrors :class:`~repro.obs.tracer.TraceCollector`: sessions created
    while a collector is ambient (see :func:`enable_metrics`) register a
    fresh :class:`MetricsRegistry` here, and contribute their ``Stats``
    for aggregate reporting.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 window: int = DEFAULT_WINDOW) -> None:
        self.interval = interval
        self.window = window
        self.registries: list[MetricsRegistry] = []
        self.session_labels: dict[int, str] = {}
        self._stats: list[Stats] = []
        self._next_session = 0

    def registry(self, clock: SimClock, label: str = "",
                 stats: Optional[Stats] = None,
                 interval: Optional[int] = None) -> MetricsRegistry:
        """Create the registry for one session; registers its stats."""
        session_id = self._next_session
        self._next_session += 1
        self.session_labels[session_id] = label or f"session-{session_id}"
        registry = MetricsRegistry(
            clock, session_id, self.session_labels[session_id],
            interval=interval if interval is not None else self.interval,
            window=self.window,
        )
        self.registries.append(registry)
        if stats is not None:
            self._stats.append(stats)
        return registry

    def aggregate_stats(self) -> Stats:
        """Merge every registered session's counters into one registry."""
        total = Stats()
        for stats in self._stats:
            total.merge(stats)
        return total

    @property
    def num_sessions(self) -> int:
        return self._next_session

    def num_samples(self) -> int:
        return sum(
            len(series)
            for registry in self.registries
            for series in registry.series().values()
        )

    def subsystems(self) -> set[str]:
        out: set[str] = set()
        for registry in self.registries:
            out |= registry.subsystems()
        return out

    def merged_digests(self) -> dict[str, dict]:
        """Per-series digests with same-named series merged across sessions."""
        merged: dict[str, MetricSeries] = {}
        for registry in self.registries:
            for name, series in registry.series().items():
                target = merged.setdefault(name, MetricSeries(name, series.unit))
                target.samples.extend(series.samples)
        digests = {name: s.digest() for name, s in sorted(merged.items())}
        for registry in self.registries:
            for name, hist in registry.histograms().items():
                digests.setdefault(name, hist.digest())
        return digests


# -- ambient (process-wide) metrics state ------------------------------------

_active_metrics: Optional[MetricsCollector] = None


def enable_metrics(collector: Optional[MetricsCollector] = None) -> MetricsCollector:
    """Install ``collector`` (or a fresh one) as the ambient collector.

    Sessions constructed while a collector is active sample into it
    regardless of their config flag — how ``python -m repro.harness
    --metrics`` meters sessions created deep inside workload drivers.
    """
    global _active_metrics
    _active_metrics = collector or MetricsCollector()
    return _active_metrics


def disable_metrics() -> Optional[MetricsCollector]:
    """Clear the ambient collector; returns it for export."""
    global _active_metrics
    collector, _active_metrics = _active_metrics, None
    return collector


def current_metrics() -> Optional[MetricsCollector]:
    """The ambient collector, or ``None`` when metrics are off."""
    return _active_metrics


@contextlib.contextmanager
def metering(collector: Optional[MetricsCollector] = None) -> Iterator[MetricsCollector]:
    """Scoped ambient metrics: ``with metering() as mc: ...``."""
    mc = enable_metrics(collector)
    try:
        yield mc
    finally:
        disable_metrics()


# -- renderings --------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 32) -> str:
    """Unicode sparkline of ``values`` downsampled to ``width`` chars."""
    if not values:
        return ""
    if len(values) > width:
        # mean-pool into `width` buckets
        bucketed = []
        n = len(values)
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    vmin, vmax = min(values), max(values)
    span = vmax - vmin
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int(round((v - vmin) / span * top))] for v in values
    )


def _format_value(value: float, unit: str) -> str:
    if unit == "B":
        for suffix, factor in (("GB", 1024**3), ("MB", 1024**2),
                               ("KB", 1024)):
            if abs(value) >= factor:
                return f"{value / factor:.1f}{suffix}"
        return f"{value:.0f}B"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.4g}"


def format_metrics(registry: MetricsRegistry,
                   max_series: Optional[int] = None) -> str:
    """Text sparkline summary of one registry, grouped by subsystem."""
    lines = [f"=== metrics (session {registry.session_id}"
             f"{': ' + registry.label if registry.label else ''}) ==="]
    shown = 0
    last_subsystem = None
    for name in sorted(registry.series()):
        series = registry.series()[name]
        if not series.samples:
            continue
        if max_series is not None and shown >= max_series:
            lines.append(f"... ({len(registry.series()) - shown} more series)")
            break
        subsystem = name.split("/", 1)[0]
        if subsystem != last_subsystem:
            lines.append(f"-- {subsystem} --")
            last_subsystem = subsystem
        digest = series.digest()
        lines.append(
            f"{name:<34s} {sparkline(series.values):<32s} "
            f"n={digest['n']:<5d} "
            f"min={_format_value(digest['min'], series.unit):<9s} "
            f"mean={_format_value(digest['mean'], series.unit):<9s} "
            f"last={_format_value(digest['last'], series.unit)}"
        )
        shown += 1
    for name in sorted(registry.histograms()):
        hist = registry.histograms()[name]
        if not hist.count:
            continue
        lines.append(
            f"{name:<34s} {sparkline([float(c) for c in hist.counts]):<32s} "
            f"n={hist.count:<5d} "
            f"min={_format_value(hist.vmin, hist.unit):<9s} "
            f"mean={_format_value(hist.mean, hist.unit):<9s} "
            f"max={_format_value(hist.vmax, hist.unit)}"
        )
    return "\n".join(lines)


def write_metrics_jsonl(collector: MetricsCollector, path: str) -> int:
    """Dump every series (one JSON line each) to ``path``; returns count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for registry in collector.registries:
            for name in sorted(registry.series()):
                series = registry.series()[name]
                if not series.samples:
                    continue
                fh.write(json.dumps({
                    "kind": "gauge",
                    "session": registry.session_id,
                    "label": registry.label,
                    "series": name,
                    "unit": series.unit,
                    "t": [t for t, _ in series.samples],
                    "v": [v for _, v in series.samples],
                }, sort_keys=True))
                fh.write("\n")
                count += 1
            for name in sorted(registry.histograms()):
                hist = registry.histograms()[name]
                if not hist.count:
                    continue
                fh.write(json.dumps({
                    "kind": "histogram",
                    "session": registry.session_id,
                    "label": registry.label,
                    "series": name,
                    "unit": hist.unit,
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "n": hist.count,
                    "mean": hist.mean,
                }, sort_keys=True))
                fh.write("\n")
                count += 1
    return count


def read_metrics_jsonl(path: str) -> list[dict]:
    """Load metric records back from a JSONL file."""
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def counter_tracks(collector: MetricsCollector) -> list[tuple[int, str, list]]:
    """Chrome counter-track tuples ``(pid, series, [(t, v), ...])``.

    Fed to :func:`repro.obs.chrome.chrome_trace_dict` so metric series
    render as Perfetto counter tracks inside each session's process
    group, aligned with the span lanes.
    """
    tracks: list[tuple[int, str, list]] = []
    for registry in collector.registries:
        for name in sorted(registry.series()):
            series = registry.series()[name]
            if series.samples:
                tracks.append(
                    (registry.session_id, name, list(series.samples))
                )
    return tracks
