"""Runtime: values, handles, placement, interpreter."""

from repro.runtime.handles import MatrixHandle
from repro.runtime.values import MatrixValue, ScalarValue, Value, make_value

__all__ = ["MatrixHandle", "MatrixValue", "ScalarValue", "Value", "make_value"]
