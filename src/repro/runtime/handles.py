"""User-facing matrix/scalar handles building lazy HOP DAGs.

A :class:`MatrixHandle` either wraps an unevaluated :class:`Hop` or an
evaluated multi-backend payload set.  Arithmetic operators build new
hops; evaluation points (``compute()``, ``item()``, or consumption by a
function-reuse boundary) trigger DAG compilation and execution through
the session.  After evaluation a handle keeps its *lineage item*, so
using it in later DAGs preserves lineage identity across program blocks
— the property enabling cross-iteration reuse.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING, Union

import numpy as np

from repro.compiler.ir import Hop, data_hop, literal_hop, op_hop
from repro.lineage.item import LineageItem

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session

Operand = Union["MatrixHandle", float, int]


def _as_hop(session: "Session", operand: Operand) -> Hop:
    if isinstance(operand, MatrixHandle):
        return operand.hop
    if isinstance(operand, (int, float, bool, np.floating, np.integer)):
        return literal_hop(float(operand))
    raise TypeError(f"unsupported operand type {type(operand)!r}")


class MatrixHandle:
    """A lazily-evaluated matrix (or scalar) in the session."""

    def __init__(self, session: "Session", hop: Hop,
                 name: Optional[str] = None) -> None:
        self.session = session
        self.hop = hop
        self.name = name
        #: lineage of the value this handle denotes (set on evaluation,
        #: or immediately for input data).
        self.lineage: Optional[LineageItem] = None
        #: backend tag -> runtime payload (set on evaluation).
        self.payloads: dict[str, object] = {}
        if hop.handle is None:
            hop.handle = self

    # -- metadata -----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.hop.shape

    @property
    def nrow(self) -> int:
        return self.hop.shape[0]

    @property
    def ncol(self) -> int:
        return self.hop.shape[1]

    @property
    def is_evaluated(self) -> bool:
        return bool(self.payloads)

    # -- evaluation ------------------------------------------------------------

    def compute(self) -> np.ndarray:
        """Force evaluation and fetch the result to the driver."""
        return self.session.compute(self)

    def item(self) -> float:
        """Evaluate a 1x1 result to a python float."""
        out = self.compute()
        return float(np.asarray(out).reshape(-1)[0])

    def evaluate(self) -> "MatrixHandle":
        """Force evaluation without transferring to the driver.

        Distributed results stay as (possibly lazy) RDDs; GPU results
        stay on the device.
        """
        self.session.evaluate([self])
        return self

    # -- operator sugar -----------------------------------------------------------

    def _binary(self, opcode: str, other: Operand,
                reverse: bool = False) -> "MatrixHandle":
        other_hop = _as_hop(self.session, other)
        inputs = [other_hop, self.hop] if reverse else [self.hop, other_hop]
        return MatrixHandle(self.session, op_hop(opcode, inputs))

    def __add__(self, other: Operand) -> "MatrixHandle":
        return self._binary("+", other)

    def __radd__(self, other: Operand) -> "MatrixHandle":
        return self._binary("+", other, reverse=True)

    def __sub__(self, other: Operand) -> "MatrixHandle":
        return self._binary("-", other)

    def __rsub__(self, other: Operand) -> "MatrixHandle":
        return self._binary("-", other, reverse=True)

    def __mul__(self, other: Operand) -> "MatrixHandle":
        return self._binary("*", other)

    def __rmul__(self, other: Operand) -> "MatrixHandle":
        return self._binary("*", other, reverse=True)

    def __truediv__(self, other: Operand) -> "MatrixHandle":
        return self._binary("/", other)

    def __rtruediv__(self, other: Operand) -> "MatrixHandle":
        return self._binary("/", other, reverse=True)

    def __pow__(self, other: Operand) -> "MatrixHandle":
        return self._binary("^", other)

    def __xor__(self, other: Operand) -> "MatrixHandle":
        """``^`` is exponentiation, matching DML syntax."""
        return self._binary("^", other)

    def __matmul__(self, other: "MatrixHandle") -> "MatrixHandle":
        return self._binary("ba+*", other)

    def __gt__(self, other: Operand) -> "MatrixHandle":
        return self._binary(">", other)

    def __lt__(self, other: Operand) -> "MatrixHandle":
        return self._binary("<", other)

    def __ge__(self, other: Operand) -> "MatrixHandle":
        return self._binary(">=", other)

    def __le__(self, other: Operand) -> "MatrixHandle":
        return self._binary("<=", other)

    def __neg__(self) -> "MatrixHandle":
        return self._binary("*", -1.0)

    def eq(self, other: Operand) -> "MatrixHandle":
        """Element-wise equality (named method; ``__eq__`` stays identity)."""
        return self._binary("==", other)

    def minimum(self, other: Operand) -> "MatrixHandle":
        return self._binary("min", other)

    def maximum(self, other: Operand) -> "MatrixHandle":
        return self._binary("max", other)

    # -- unary / reorg -------------------------------------------------------------

    def _unary(self, opcode: str, attrs: Optional[dict] = None) -> "MatrixHandle":
        return MatrixHandle(self.session, op_hop(opcode, [self.hop], attrs))

    def t(self) -> "MatrixHandle":
        """Transpose."""
        return self._unary("r'")

    def exp(self) -> "MatrixHandle":
        return self._unary("exp")

    def log(self) -> "MatrixHandle":
        return self._unary("log")

    def sqrt(self) -> "MatrixHandle":
        return self._unary("sqrt")

    def abs(self) -> "MatrixHandle":
        return self._unary("abs")

    def sign(self) -> "MatrixHandle":
        return self._unary("sign")

    def round(self) -> "MatrixHandle":
        return self._unary("round")

    def relu(self) -> "MatrixHandle":
        return self._unary("relu")

    def sigmoid(self) -> "MatrixHandle":
        return self._unary("sigmoid")

    def tanh(self) -> "MatrixHandle":
        return self._unary("tanh")

    def softmax(self) -> "MatrixHandle":
        return self._unary("softmax")

    def dropout(self, rate: float, seed: int) -> "MatrixHandle":
        return self._unary("dropout", {"rate": rate, "seed": seed})

    def replace(self, pattern: float, replacement: float) -> "MatrixHandle":
        return self._unary(
            "replace", {"pattern": pattern, "replacement": replacement}
        )

    # -- aggregates -------------------------------------------------------------------

    def sum(self) -> "MatrixHandle":
        return self._unary("uak+")

    def mean(self) -> "MatrixHandle":
        return self._unary("uamean")

    def max(self) -> "MatrixHandle":
        return self._unary("uamax")

    def min(self) -> "MatrixHandle":
        return self._unary("uamin")

    def row_sums(self) -> "MatrixHandle":
        return self._unary("uark+")

    def col_sums(self) -> "MatrixHandle":
        return self._unary("uack+")

    def col_means(self) -> "MatrixHandle":
        return self._unary("uacmean")

    def col_maxs(self) -> "MatrixHandle":
        return self._unary("uacmax")

    def col_mins(self) -> "MatrixHandle":
        return self._unary("uacmin")

    def row_means(self) -> "MatrixHandle":
        return self._unary("uarmean")

    def row_maxs(self) -> "MatrixHandle":
        return self._unary("uarmax")

    def row_argmax(self) -> "MatrixHandle":
        return self._unary("uarimax")

    # -- indexing ---------------------------------------------------------------------

    def __getitem__(self, key) -> "MatrixHandle":
        rows, cols = key if isinstance(key, tuple) else (key, slice(None))

        def bounds(sl, extent: int) -> tuple[int, int]:
            if isinstance(sl, slice):
                start = 0 if sl.start is None else int(sl.start)
                stop = extent if sl.stop is None else int(sl.stop)
                return start + 1, stop
            idx = int(sl)
            return idx + 1, idx + 1

        rl, ru = bounds(rows, self.nrow)
        cl, cu = bounds(cols, self.ncol)
        return self._unary(
            "rightIndex", {"rl": rl, "ru": ru, "cl": cl, "cu": cu}
        )

    def __repr__(self) -> str:
        tag = self.name or f"hop#{self.hop.id}"
        state = "evaluated" if self.is_evaluated else "lazy"
        return f"MatrixHandle({tag}, {self.nrow}x{self.ncol}, {state})"

    # -- internal -----------------------------------------------------------------------

    def bind(self, lineage: LineageItem, payloads: dict[str, object]) -> None:
        """Rebind this handle to an evaluated value (fresh data leaf).

        The payload dict is shared between the handle and the new data
        hop's bundle: consumers that captured the hop in a DAG keep the
        payloads alive even if the handle itself is dropped, without any
        handle <-> hop reference cycle.
        """
        self.lineage = lineage
        self.payloads = dict(payloads)
        fresh = data_hop(self, self.hop.shape)
        fresh.bundle = (lineage, self.payloads)
        self.hop = fresh
