"""Specialized instruction-dispatch loops for the interpreter hot path.

The interpreter's main loop (paper Fig. 4) is wrapped in three
observability layers — tracer spans, metrics sampling, fault-injection
draws — each guarded by an ``enabled`` attribute check *per
instruction*.  All three flags are fixed when the session is
constructed (``NULL_TRACER`` / ``NULL_METRICS`` / ``NULL_INJECTOR`` are
installed once, see docs/ARCHITECTURE.md "Zero overhead when
disabled"), so the checks are loop-invariant.  This module hoists the
branch to loop-selection time:

* :func:`run_instrumented` — the fully-guarded loop, chosen whenever
  any of tracing, metrics, or fault injection is live.  Byte-identical
  to the historical per-instruction path.
* :func:`run_fast` — chosen when all three are disabled.  The dead
  guard branches are simply absent; TRACE is inlined with the
  session's lineage interner; and, when reuse probes/puts are also off
  (``ReuseMode.NONE``), maximal runs of cell-wise instructions with no
  intervening control flow are batch-dispatched through the vectorized
  ufunc-chain layer (``repro.backends.cpu.vectorized``).

Both loops produce bit-identical results, stats counters, and simulated
clock readings — ``tests/test_dispatch_equivalence.py`` asserts this on
the quickstart and fig12 workloads.  The fast path changes only *real*
wall-clock cost, which the ``BENCH_wallclock`` telemetry track measures
(docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.backends.cpu.vectorized import CompiledStep, compile_step
from repro.common.config import ReuseMode
from repro.compiler.rewrites.fusion import FUSED_OPCODE
from repro.common.simclock import HOST, SimFuture
from repro.common.stats import CHECKPOINTS_PLACED, LINEAGE_TRACED
from repro.compiler.ir import KIND_DATA, KIND_LITERAL, Hop
from repro.core.entry import BACKEND_CP, BACKEND_SP
from repro.lineage.item import LineageItem, literal
from repro.runtime.values import ScalarValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.spark.broadcast import Broadcast
    from repro.runtime.interpreter import Interpreter


class Slot:
    """Runtime binding of one hop: lineage + multi-backend payloads."""

    __slots__ = ("lineage", "payloads", "future", "broadcast", "fused_from")

    def __init__(self, lineage: LineageItem) -> None:
        self.lineage = lineage
        self.payloads: dict[str, object] = {}
        #: pending asynchronous fetch (prefetch rewrite).
        self.future: Optional[SimFuture] = None
        #: broadcast variable created for this value (if any).
        self.broadcast: Optional["Broadcast"] = None
        #: for fused transposes: the slot of the underlying input.
        self.fused_from: Optional["Slot"] = None


def _attr_data(attrs: dict) -> tuple:
    """Flatten attributes into a deterministic lineage data tuple.

    NaN floats are encoded as a sentinel string: Python hashes NaN by
    object identity and ``nan != nan``, which would make structurally
    identical lineage items unequal (breaking all reuse of e.g.
    ``replace(NaN, v)``).
    """
    if not attrs:
        return ()
    out: list = []
    for key in sorted(attrs):
        out.append(key)
        value = attrs[key]
        if isinstance(value, float) and value != value:
            out.append("__nan__")
        elif isinstance(value, (int, float, bool, str)):
            out.append(value)
        else:
            out.append(str(value))
    return tuple(out)


# --------------------------------------------------------------- loop selection

def select_loop(interp: "Interpreter"):
    """Pick the dispatch loop for one run: instrumented iff any layer is live.

    The three flags are class attributes of the null/real tracer,
    metrics registry, and fault injector, fixed at session
    construction, so the selection is stable across a session's
    lifetime; re-checking per run (three attribute loads) keeps the
    choice robust for tests that hand-wire sessions.
    """
    if interp.tracer.enabled or interp.metrics.enabled \
            or interp.faults.enabled:
        return run_instrumented
    return run_fast


def run_instrumented(interp: "Interpreter", order: list[Hop],
                     env: dict[int, Slot], acquired: list) -> None:
    """Fully-guarded loop: per-instruction tracing/metrics/fault hooks."""
    metrics = interp.metrics
    session = interp.session
    execute_one = interp._execute_one
    tick = metrics.enabled
    for hop in order:
        env[hop.id] = execute_one(hop, env, acquired)
        if tick:
            # time-series sampling hook (repro.obs.metrics): reads
            # region ledgers and counters every N instructions; never
            # advances the sim clock, so metered runs stay identical
            metrics.tick(session)


def run_fast(interp: "Interpreter", order: list[Hop],
             env: dict[int, Slot], acquired: list) -> None:
    """Specialized loop for sessions with obs + faults disabled.

    Semantics are those of :func:`run_instrumented` with every
    ``enabled`` branch constant-folded to ``False``: same TRACE clock
    charge and counter, same probe/execute/put sequence, same payloads.
    Loop-invariant lookups (config, clock, interner) are hoisted out of
    the instruction loop, and eligible cell-wise runs are batched
    through :func:`_run_chain`.
    """
    config = interp.config
    mode = config.reuse_mode
    trace_on = mode is not ReuseMode.NONE
    clock = interp.clock
    stats = interp.stats
    intern = interp.interner.intern
    data_slot = interp._data_slot
    trace_overhead = config.cpu.trace_overhead_s

    # REUSE/EXECUTE/PUT enablement is a pure function of the (fixed)
    # reuse mode, so the per-instruction ``_probe_enabled``/
    # ``_put_enabled`` calls of ``Interpreter._reuse_or_execute`` are
    # hoisted here and the stage sequence is inlined below — same
    # probes, same clock charges, same admission calls, minus three
    # method frames per instruction.
    probe_on = interp._probe_enabled(mode)
    put_on = interp._put_enabled(mode)
    local_only = mode is ReuseMode.LOCAL_ONLY
    probe_overhead = config.cpu.probe_overhead_s
    cache_probe = interp.cache.probe
    apply_reuse = interp._apply_reuse
    exec_cpu = interp._exec_cpu
    exec_spark = interp._exec_spark
    exec_gpu = interp._exec_gpu
    put = interp._put
    enable_async = config.enable_async_ops

    # batch dispatch requires probe *and* put disabled: a chain's
    # interior values are never probed for or admitted to the cache,
    # which is exactly the ReuseMode.NONE contract.
    chains = plan_chains(order) if mode is ReuseMode.NONE else None

    i = 0
    n = len(order)
    while i < n:
        hop = order[i]
        if chains is not None:
            chain = chains.get(hop.id)
            if chain is not None:
                _run_chain(interp, chain, env, intern)
                i += len(chain.steps)
                continue
        kind = hop.kind
        if kind == KIND_LITERAL:
            slot = Slot(literal(hop.value))
            slot.payloads[BACKEND_CP] = ScalarValue(hop.value)
        elif kind == KIND_DATA:
            slot = data_slot(hop)
        elif hop.opcode == FUSED_OPCODE:
            # fused cell-wise chain (compile-time fusion rewrite):
            # TRACE + single-instruction EXECUTE, never probed or put
            slot = interp._exec_fused(hop, env)
        else:
            # TRACE (Fig. 4): intern the lineage item for this hop
            in_slots = [env[h.id] for h in hop.inputs]
            attrs = hop.attrs
            item = intern(
                hop.opcode,
                _attr_data(attrs) if attrs else (),
                tuple(s.lineage for s in in_slots),
            )
            if trace_on:
                clock.advance(trace_overhead, HOST)
                stats.inc(LINEAGE_TRACED)
            slot = Slot(item)
            if hop.fused:
                # transpose fused into tsmm/cpmm: pass through the input
                slot.fused_from = in_slots[0]
            else:
                # REUSE probe (LIMA traces/reuses only local CPU
                # instructions in LOCAL_ONLY mode)
                placement = hop.placement
                if probe_on and (not local_only
                                 or placement == BACKEND_CP):
                    clock.advance(probe_overhead, HOST)
                    entry = cache_probe(item)
                    if entry is not None:
                        apply_reuse(hop, slot, entry)
                        env[hop.id] = slot
                        i += 1
                        continue
                # EXECUTE
                backend = placement or BACKEND_CP
                if backend == BACKEND_CP:
                    exec_cpu(hop, slot, in_slots)
                elif backend == BACKEND_SP:
                    exec_spark(hop, slot, in_slots)
                else:
                    exec_gpu(hop, slot, in_slots, acquired)
                # compiler-placed RDD checkpoint (§5.2)
                if hop.checkpoint and BACKEND_SP in slot.payloads:
                    dm = slot.payloads[BACKEND_SP]
                    if not dm.rdd.is_persisted:
                        dm.rdd.persist(
                            interp.session.spark_mgr.storage_level)
                        stats.inc(CHECKPOINTS_PLACED)
                # asynchronous prefetch / broadcast (§5.1)
                if hop.prefetch and enable_async:
                    interp._issue_prefetch(hop, slot)
                if hop.async_broadcast and BACKEND_CP in slot.payloads:
                    interp._issue_broadcast(slot)
                # PUT
                if put_on:
                    put(hop, slot)
        env[hop.id] = slot
        i += 1


# ------------------------------------------------------------- batch dispatch

class Chain:
    """A maximal run of chainable cell-wise hops with one matrix spine."""

    __slots__ = ("source_id", "steps")

    def __init__(self, source_id: int, steps: list[CompiledStep]) -> None:
        #: hop id of the matrix value feeding the first step.
        self.source_id = source_id
        self.steps = steps


def plan_chains(order: list[Hop]) -> dict[int, Chain]:
    """Segment a linearized order into batch-dispatchable cell-wise runs.

    A chain is a maximal *consecutive* subsequence of the order where
    each hop is a compilable cell-wise step
    (:func:`~repro.backends.cpu.vectorized.compile_step`) whose matrix
    operand is the immediately preceding hop — i.e. a straight-line run
    with no intervening control flow or consumers in between.  Runs
    shorter than two instructions are not worth the bookkeeping and
    stay on the per-instruction path.

    Returns a map from the first step's hop id to its :class:`Chain`.
    """
    plan: dict[int, Chain] = {}
    n = len(order)
    i = 0
    while i < n:
        first = compile_step(order[i])
        if first is None:
            i += 1
            continue
        source = order[i].inputs[first.matrix_index]
        if source.shape[0] * source.shape[1] <= 1:
            i += 1
            continue
        steps = [first]
        j = i + 1
        while j < n:
            step = compile_step(order[j])
            if step is None \
                    or order[j].inputs[step.matrix_index] is not order[j - 1]:
                break
            steps.append(step)
            j += 1
        if len(steps) >= 2:
            plan[order[i].id] = Chain(source.id, steps)
            i = j
        else:
            i += 1
    return plan


def _run_chain(interp: "Interpreter", chain: Chain,
               env: dict[int, Slot], intern) -> None:
    """Execute one precompiled chain; bind a slot per interior hop.

    Every step still gets its own interned lineage item, CP payload,
    and environment slot, so out-of-chain consumers, handle rebinding,
    and lineage serialization observe exactly what the per-instruction
    path produces.
    """
    src_slot = env[chain.source_id]
    value = interp._to_cp(src_slot)
    outs = interp.session.cpu.execute_chain(chain.steps, value)
    prev = src_slot
    for step, out in zip(chain.steps, outs):
        hop = step.hop
        if step.scalar_index is None:
            inputs = (prev.lineage,)
        elif step.scalar_index == 0:
            inputs = (env[hop.inputs[0].id].lineage, prev.lineage)
        else:
            inputs = (prev.lineage, env[hop.inputs[1].id].lineage)
        slot = Slot(intern(hop.opcode, (), inputs))
        slot.payloads[BACKEND_CP] = out
        env[hop.id] = slot
        prev = slot
