"""Runtime value types: matrices and scalars.

The host system is a linear-algebra ML system (SystemDS-style): every
intermediate is a dense double-precision matrix or a scalar.  Frames
(categorical data) are encoded as matrices after recoding, matching how
the paper's pipelines integer-encode categorical features.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.common.costs import DOUBLE_BYTES


class MatrixValue:
    """A dense 2-D double matrix with cached metadata."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"matrices must be 2-D, got shape {arr.shape}")
        self.data = arr

    @property
    def nrow(self) -> int:
        return self.data.shape[0]

    @property
    def ncol(self) -> int:
        return self.data.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        """Worst-case dense size (used as ``s(o)`` by eviction policies)."""
        shape = self.data.shape
        return shape[0] * shape[1] * DOUBLE_BYTES

    def copy(self) -> "MatrixValue":
        return MatrixValue(self.data.copy())

    def __repr__(self) -> str:
        return f"MatrixValue({self.nrow}x{self.ncol})"


class ScalarValue:
    """A scalar (float, int, bool, or string) runtime value."""

    __slots__ = ("value",)

    def __init__(self, value: Union[float, int, bool, str]) -> None:
        self.value = value

    @property
    def nbytes(self) -> int:
        return 8 if not isinstance(self.value, str) else len(self.value)

    @property
    def shape(self) -> tuple[int, int]:
        return (1, 1)

    def as_float(self) -> float:
        return float(self.value)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"ScalarValue({self.value!r})"


Value = Union[MatrixValue, ScalarValue]


def as_matrix(value: Value) -> np.ndarray:
    """Numpy view of a value (scalars become 1x1 matrices)."""
    if isinstance(value, MatrixValue):
        return value.data
    return np.full((1, 1), value.as_float())


def make_value(raw: object) -> Value:
    """Wrap a numpy array or python scalar into a runtime value."""
    if isinstance(raw, (MatrixValue, ScalarValue)):
        return raw
    if isinstance(raw, np.ndarray):
        return MatrixValue(raw)
    if isinstance(raw, (float, int, bool, np.floating, np.integer, str)):
        if isinstance(raw, (np.floating,)):
            return ScalarValue(float(raw))
        if isinstance(raw, (np.integer,)):
            return ScalarValue(int(raw))
        return ScalarValue(raw)
    raise TypeError(f"cannot convert {type(raw)!r} to a runtime value")


def value_bytes(value: Value) -> int:
    """Size estimate of any runtime value."""
    return value.nbytes
