"""Instruction interpreter with lineage tracing and multi-backend reuse.

Executes a linearized hop stream following the paper's main loop
(Fig. 4)::

    for inst in instructions:
        TRACE(inst)
        if not REUSE(inst):
            execute(inst)
            PUT(inst)

and handles all inter-backend data exchange (collect, broadcast,
parallelize, H2D/D2H), asynchronous prefetch futures, checkpoint
persisting, and GPU pointer lifetimes.

Stage map (MEMPHIS paper section -> code):

* **TRACE** (§3.2, fine-grained lineage): :meth:`Interpreter._trace` —
  interned lineage-item construction plus the per-instruction tracing
  overhead charge the paper measures in Fig. 2(c).
* **REUSE** (§4.1, probe + multi-backend hit application):
  :meth:`Interpreter._probe` / :meth:`Interpreter._apply_reuse`.
* **EXECUTE** (Table 2 operator set): ``_exec_cpu`` / ``_exec_gpu`` /
  ``_exec_spark`` plus the exchange helpers (``_to_cp`` et al.)
  implementing the paper's collect/broadcast/H2D/D2H edges.
* **PUT** (§4.2, admission with delayed caching):
  :meth:`Interpreter._put`.
* Async rewrites (§5.1): ``_issue_prefetch`` / ``_issue_broadcast``;
  checkpoints (§5.2) persist inside :meth:`_reuse_or_execute`.

The per-instruction loop itself lives in ``repro.runtime.dispatch``,
which specializes it at run start: a fully-guarded instrumented loop
when tracing/metrics/faults are live, and a fast loop — with the
disabled-layer guards constant-folded away and cell-wise runs batched
through the vectorized CPU layer — when they are not.  Both loops call
back into the stage methods above; docs/PERFORMANCE.md covers the
architecture and the wall-clock benchmarks gating it.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.backends.gpu.backend import GpuData
from repro.backends.spark.backend import DistributedMatrix
from repro.backends.spark.broadcast import Broadcast
from repro.common.config import ReuseMode
from repro.common.errors import PlacementError
from repro.common.simclock import HOST, SimFuture
from repro.common.stats import (
    CHECKPOINTS_PLACED,
    FAULT_LINEAGE_RECOMPUTES,
    INSTRUCTIONS_SKIPPED,
    LINEAGE_TRACED,
    MEMPLAN_SPILLS_EXECUTED,
    PREFETCH_ISSUED,
    BROADCAST_ISSUED,
    SPARK_ACTION_REUSE,
)
from repro.faults.plan import KIND_CACHE_LOST
from repro.compiler.ir import KIND_DATA, KIND_LITERAL, KIND_OP, Hop
from repro.compiler.rewrites.fusion import FUSED_OPCODE
from repro.core.entry import (
    BACKEND_CP,
    BACKEND_GPU,
    BACKEND_SP,
    CacheEntry,
)
from repro.lineage.item import LineageItem, dataset, literal
from repro.obs.events import (
    EV_BROADCAST,
    EV_INSTR,
    EV_MEMPLAN_SPILL,
    EV_PREFETCH,
    EV_PREFETCH_DONE,
    LANE_CP,
    LANE_GPU,
)
from repro.runtime.dispatch import Slot, _attr_data, select_loop
from repro.runtime.placement import (
    SPARK_AGG_ACTION,
    SPARK_AGG_MAP,
    SPARK_ELEMENTWISE,
    SPARK_UNARY,
    matmul_pattern,
)
from repro.runtime.values import MatrixValue, ScalarValue, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session

__all__ = ["Interpreter", "Slot"]


class Interpreter:
    """Executes compiled hop streams inside a session."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.config = session.config
        self.stats = session.stats
        self.clock = session.clock
        self.cache = session.cache
        #: the substrate's hash-consing table (shared across sessions on
        #: a shared substrate, so identical traces intern to one object).
        self.interner = session.lineage_interner
        self.tracer = session.tracer
        self.faults = session.faults
        self.metrics = session.metrics
        #: one acquired-pointer list per active run: recovery can re-enter
        #: :meth:`run` (recompute-from-lineage) while an outer run is live,
        #: and each nesting level must release exactly its own references.
        self._acquired_stack: list[list[GpuData]] = []

    # ------------------------------------------------------------------ top level

    def run(self, order: list[Hop],
            planned_spills: Optional[dict[int, list]] = None
            ) -> dict[int, Slot]:
        """Execute a linearized instruction stream; returns hop id -> slot.

        GPU pointers acquired during the run (allocations, uploads, and
        cache-hit reuses) each hold one reference; the session binds
        surviving handles (adding their own references) and then calls
        :meth:`release_acquired` to drop the execution references, moving
        unreferenced pointers to the Free list (Fig. 8(b)).

        ``planned_spills`` maps stream positions to the compile-time
        spill points the static memory planner scheduled for this block
        (``repro.analysis.memplan``); each is executed *before* the
        instruction at its position, freeing device memory a block that
        over-peaks the GPU budget needs to stay feasible.  ``None`` (the
        overwhelmingly common case — any block whose plan fits its
        budgets) keeps the specialized dispatch loops untouched.
        """
        env: dict[int, Slot] = {}
        acquired: list[GpuData] = []
        self._acquired_stack.append(acquired)
        if planned_spills:
            self._run_with_spills(order, env, acquired, planned_spills)
            return env
        # dispatch specialization: pick the fast or instrumented loop
        # once per run instead of re-checking tracer/metrics/faults
        # guards on every instruction (see repro.runtime.dispatch)
        loop = select_loop(self)
        loop(self, order, env, acquired)
        return env

    def _run_with_spills(self, order: list[Hop], env: dict[int, Slot],
                         acquired: list[GpuData],
                         planned_spills: dict[int, list]) -> None:
        """Instrumented-equivalent loop honouring pre-scheduled spills."""
        tick = self.metrics.enabled
        for pos, hop in enumerate(order):
            for spill in planned_spills.get(pos, ()):
                self._planned_spill(spill, env, acquired)
            env[hop.id] = self._execute_one(hop, env, acquired)
            if tick:
                self.metrics.tick(self.session)

    def _planned_spill(self, spill, env: dict[int, Slot],
                       acquired: list[GpuData]) -> None:
        """Execute one compile-time spill point (device-to-host).

        Saves a driver-side copy of the victim's value (free when one
        already exists), drops the slot's device payload so later
        consumers re-upload from the host, and returns the execution
        reference to the free lists, where the allocation cascade
        (Fig. 8(b)) reclaims the memory.
        """
        slot = env.get(spill.victim.id)
        if slot is None:
            return
        data = slot.payloads.get(BACKEND_GPU)
        if data is None or data.ptr.freed:
            return
        self._to_cp(slot)
        slot.payloads.pop(BACKEND_GPU, None)
        try:
            acquired.remove(data)
        except ValueError:
            # acquired in an outer run (data-leaf payload): the outer
            # frame's release will find the pointer already freed
            pass
        self.session.gpu.memory.release(data.ptr)
        self.stats.inc(MEMPLAN_SPILLS_EXECUTED)
        if self.tracer.enabled:
            self.tracer.instant(
                EV_MEMPLAN_SPILL, LANE_GPU, hop=spill.victim.id,
                opcode=spill.victim.opcode, nbytes=spill.nbytes,
            )

    def release_acquired(self) -> None:
        """Drop the execution references on all GPU pointers of this run."""
        if not self._acquired_stack:
            return
        for data in self._acquired_stack.pop():
            if not data.ptr.freed:
                self.session.gpu.memory.release(data.ptr)

    # --------------------------------------------------------------- per instruction

    def _execute_one(self, hop: Hop, env: dict[int, Slot],
                     gpu_created: list[GpuData]) -> Slot:
        """One Fig. 4 iteration on the instrumented path.

        Stages, in order: leaf binding (literals / data hops), TRACE
        (§3.2), the fault-injection draw point, and — under the
        instruction's tracer span — REUSE / EXECUTE / PUT via
        :meth:`_reuse_or_execute`.  The fast dispatch loop
        (``repro.runtime.dispatch.run_fast``) inlines the same stages
        with the disabled observability branches removed.
        """
        mode = self.config.reuse_mode

        if hop.kind == KIND_LITERAL:
            slot = Slot(literal(hop.value))
            slot.payloads[BACKEND_CP] = ScalarValue(hop.value)
            return slot

        if hop.kind == KIND_DATA:
            return self._data_slot(hop)

        if hop.opcode == FUSED_OPCODE:
            # fused cell-wise chain (repro.compiler.rewrites.fusion):
            # TRACE + EXECUTE happen inside _exec_fused; fused chains
            # never probe or put (fusion only fires in modes without
            # retention, enforced by the FUS analysis rules)
            if self.faults.enabled:
                self.faults.lost_cache_entries(self.session)
            if self.tracer.enabled:
                with self.tracer.span(
                    EV_INSTR, LANE_CP,
                    opcode=hop.opcode, hop=hop.id, backend=BACKEND_CP,
                ):
                    return self._exec_fused(hop, env)
            return self._exec_fused(hop, env)

        # TRACE
        in_slots = [env[h.id] for h in hop.inputs]
        item = self._trace(hop, in_slots)
        slot = Slot(item)

        if hop.fused:
            # transpose fused into tsmm/cpmm: pass through the input slot
            slot.fused_from = in_slots[0]
            return slot

        # fault-injection draw point: each op instruction may lose cached
        # intermediates, exercising recompute-from-lineage downstream
        if self.faults.enabled:
            self.faults.lost_cache_entries(self.session)

        # the instruction span covers REUSE + EXECUTE + PUT on the driver
        # lane, so every cache/backend event emitted underneath carries
        # this instruction's label (opcode#hop) for attribution
        if self.tracer.enabled:
            with self.tracer.span(
                EV_INSTR, LANE_CP,
                opcode=hop.opcode, hop=hop.id,
                backend=hop.placement or BACKEND_CP, lineage=item.id,
            ):
                self._reuse_or_execute(hop, slot, in_slots, gpu_created, mode)
        else:
            self._reuse_or_execute(hop, slot, in_slots, gpu_created, mode)
        return slot

    def _reuse_or_execute(self, hop: Hop, slot: Slot, in_slots: list[Slot],
                          gpu_created: list[GpuData],
                          mode: ReuseMode) -> None:
        """REUSE probe, backend execution, async rewrites, and PUT."""
        # REUSE (LIMA traces and reuses only local CPU instructions)
        local_only_skip = (
            mode is ReuseMode.LOCAL_ONLY and hop.placement != BACKEND_CP
        )
        if self._probe_enabled(mode) and not local_only_skip:
            entry = self._probe(hop, slot.lineage)
            if entry is not None:
                self._apply_reuse(hop, slot, entry)
                return

        # EXECUTE
        backend = hop.placement or BACKEND_CP
        if backend == BACKEND_SP:
            self._exec_spark(hop, slot, in_slots)
        elif backend == BACKEND_GPU:
            self._exec_gpu(hop, slot, in_slots, gpu_created)
        else:
            self._exec_cpu(hop, slot, in_slots)

        # compiler-placed RDD checkpoint (§5.2)
        if hop.checkpoint and BACKEND_SP in slot.payloads:
            dm: DistributedMatrix = slot.payloads[BACKEND_SP]
            if not dm.rdd.is_persisted:
                dm.rdd.persist(self.session.spark_mgr.storage_level)
                self.stats.inc(CHECKPOINTS_PLACED)

        # asynchronous prefetch of remote results (§5.1)
        if hop.prefetch and self.config.enable_async_ops:
            self._issue_prefetch(hop, slot)

        # asynchronous broadcast of local results (§5.1)
        if hop.async_broadcast and BACKEND_CP in slot.payloads:
            self._issue_broadcast(slot)

        # PUT
        if self._put_enabled(mode):
            self._put(hop, slot)

    def _exec_fused(self, hop: Hop, env: dict[int, Slot]) -> Slot:
        """TRACE + EXECUTE one fused chain as a single instruction.

        The absorbed hops' lineage items are re-interned step by step
        (exactly the items the unfused stream would have built), so the
        fused instruction's output carries the *same* lineage key as the
        unfused tail — downstream blocks and recompute-from-lineage see
        no difference.  Tracing is charged once for the whole chain (one
        instruction was dispatched) while ``lineage/items_traced`` still
        counts every interned item; no probe or put runs, because fusion
        is only planned in reuse modes with no retention.
        """
        intern = self.interner.intern
        traced = 0
        if hop.prologue is not None:
            pro = hop.prologue
            pro_inputs = tuple(env[h.id].lineage for h in pro.inputs)
            prev_item = intern(
                pro.opcode, _attr_data(pro.attrs) if pro.attrs else (),
                pro_inputs,
            )
            traced += 1
            values = [self._to_cp(env[h.id]) for h in hop.inputs[:2]]
        else:
            src_slot = env[hop.inputs[0].id]
            prev_item = src_slot.lineage
            values = [self._to_cp(src_slot)]
        for step in hop.steps:
            shop = step.hop
            if step.scalar_index is None:
                inputs = (prev_item,)
            elif step.scalar_index == 0:
                inputs = (env[shop.inputs[0].id].lineage, prev_item)
            else:
                inputs = (prev_item, env[shop.inputs[1].id].lineage)
            prev_item = intern(shop.opcode, (), inputs)
            traced += 1
        if self.config.reuse_mode is not ReuseMode.NONE:
            self.clock.advance(self.config.cpu.trace_overhead_s, HOST)
            self.stats.inc(LINEAGE_TRACED, traced)
        out = self.session.cpu.execute_fused(hop, values)
        slot = Slot(prev_item)
        slot.payloads[BACKEND_CP] = out
        return slot

    # ----------------------------------------------------------------- trace / reuse

    def _trace(self, hop: Hop, in_slots: list[Slot]) -> LineageItem:
        """TRACE stage (paper §3.2): build the instruction's lineage item.

        Items are *interned* through the session's hash-consing table,
        so re-traced instructions (every iteration of a loop re-traces
        the same expression) return the canonical object and later
        cache probes compare by identity.  When lineage is active
        (every mode but NONE) the paper's per-instruction tracing
        overhead is charged to the host timeline — the cost Fig. 2(c)
        bounds at ~5% end-to-end.
        """
        mode = self.config.reuse_mode
        inputs = tuple(s.lineage for s in in_slots)
        attrs = hop.attrs
        item = self.interner.intern(
            hop.opcode, _attr_data(attrs) if attrs else (), inputs
        )
        if mode is not ReuseMode.NONE:
            self.clock.advance(self.config.cpu.trace_overhead_s, HOST)
            self.stats.inc(LINEAGE_TRACED)
        return item

    def _probe_enabled(self, mode: ReuseMode) -> bool:
        """Whether REUSE probes run in ``mode`` (ablation axis, §6.2)."""
        return mode in (
            ReuseMode.PROBE_ONLY, ReuseMode.FULL,
            ReuseMode.LOCAL_ONLY, ReuseMode.OPERATOR_ONLY,
        )

    def _put_enabled(self, mode: ReuseMode) -> bool:
        """Whether PUT admission runs in ``mode`` (ablation axis, §6.2)."""
        return mode in (
            ReuseMode.FULL, ReuseMode.LOCAL_ONLY, ReuseMode.OPERATOR_ONLY,
        )

    def _probe(self, hop: Hop, item: LineageItem) -> Optional[CacheEntry]:
        """REUSE probe (§4.1): look the lineage key up in the cache.

        Charges the constant probe overhead to the host timeline;
        interned keys make the dictionary lookup an identity comparison
        for re-traced instructions.
        """
        self.clock.advance(self.config.cpu.probe_overhead_s, HOST)
        return self.cache.probe(item)

    def _apply_reuse(self, hop: Hop, slot: Slot, entry: CacheEntry) -> None:
        """Bind a cache hit: skip the instruction entirely."""
        slot.payloads = dict(entry.payloads)
        gpu_payload = slot.payloads.get(BACKEND_GPU)
        if gpu_payload is not None:
            data: GpuData = gpu_payload
            if data.ptr.freed:
                # pointer was recycled between invalidation and probe
                slot.payloads.pop(BACKEND_GPU, None)
            else:
                self.session.gpu.memory.reuse_from_free(data.ptr)
                self._acquired_stack[-1].append(data)
        if BACKEND_SP in slot.payloads:
            self.session.spark_mgr.reuse_rdd(entry)
        if hop.placement == BACKEND_SP and BACKEND_CP in slot.payloads:
            # reused a previously collected action result: consumers read
            # the driver-side copy instead of triggering a Spark job
            self.stats.inc(SPARK_ACTION_REUSE)
        self.stats.inc(INSTRUCTIONS_SKIPPED)

    def _put(self, hop: Hop, slot: Slot) -> None:
        """PUT stage (§4.2): offer every backend payload to the cache.

        Admission is the cache's call (delayed caching / compensation
        weights); LOCAL_ONLY mode (the LIMA baseline) stores only
        driver-local values and skips the multi-backend entries.
        """
        mode = self.config.reuse_mode
        if mode is ReuseMode.LOCAL_ONLY and hop.placement != BACKEND_CP:
            return
        item = slot.lineage
        delay = self.session.delay_factor
        cost = hop.flops
        if BACKEND_CP in slot.payloads:
            value: Value = slot.payloads[BACKEND_CP]
            self.cache.put(item, value, BACKEND_CP, value.nbytes, cost,
                           delay_factor=1 if mode is ReuseMode.LOCAL_ONLY
                           else delay)
        if mode is ReuseMode.LOCAL_ONLY:
            return
        if BACKEND_SP in slot.payloads:
            dm: DistributedMatrix = slot.payloads[BACKEND_SP]
            entry = self.cache.put(item, dm, BACKEND_SP, dm.nbytes, cost,
                                   delay_factor=delay)
            if entry is not None:
                self.session.spark_mgr.cache_rdd(entry, dm)
        if BACKEND_GPU in slot.payloads:
            data: GpuData = slot.payloads[BACKEND_GPU]
            self.cache.put(item, data, BACKEND_GPU, data.nbytes, cost,
                           delay_factor=delay)

    # ------------------------------------------------------------------- data leaves

    def _data_slot(self, hop: Hop) -> Slot:
        """Bind a data leaf: reuse the handle's lineage + payloads.

        Keeping the lineage item stable across program blocks is what
        makes cross-block reuse work (§3.2: leaves anchor DAG
        equality); payload dictionaries are shared so later blocks see
        exchanges (collect, H2D) performed by earlier ones.
        """
        if hop.bundle is not None:
            lineage, payloads = hop.bundle
        else:
            handle = hop.handle
            if handle is None:
                raise PlacementError(f"data hop {hop} has no handle")
            if handle.lineage is None:
                handle.lineage = dataset(handle.name or f"data_{hop.id}")
            lineage, payloads = handle.lineage, handle.payloads
        slot = Slot(lineage)
        slot.payloads = dict(payloads)
        # drop stale GPU payloads whose pointer was recycled; the host
        # shadow of the value recovers the data when no other copy exists
        gpu_payload = slot.payloads.get(BACKEND_GPU)
        if gpu_payload is not None and gpu_payload.ptr.freed:
            slot.payloads.pop(BACKEND_GPU)
            payloads.pop(BACKEND_GPU, None)
            if BACKEND_CP not in slot.payloads:
                slot.payloads[BACKEND_CP] = gpu_payload.value
                payloads[BACKEND_CP] = gpu_payload.value
        return slot

    # --------------------------------------------------------------------- exchange

    def _to_cp(self, slot: Slot, jobs_entry: bool = True) -> Value:
        """Materialize a slot on the driver (collect / D2H / future wait)."""
        if slot.fused_from is not None:
            return self._to_cp(slot.fused_from)
        if BACKEND_CP in slot.payloads:
            return slot.payloads[BACKEND_CP]
        if slot.future is not None:
            label = slot.future.label
            raw = slot.future.wait()
            if self.tracer.enabled:
                self.tracer.instant(EV_PREFETCH_DONE, LANE_CP, label=label)
            value = raw if isinstance(raw, (MatrixValue, ScalarValue)) \
                else MatrixValue(raw)
            slot.payloads[BACKEND_CP] = value
            slot.future = None
            self._cache_exchange(slot, value)
            return value
        if BACKEND_SP in slot.payloads:
            dm: DistributedMatrix = slot.payloads[BACKEND_SP]
            value = self.session.spark.collect(dm)
            slot.payloads[BACKEND_CP] = value
            self._cache_exchange(slot, value, count_job=jobs_entry)
            return value
        if BACKEND_GPU in slot.payloads:
            data: GpuData = slot.payloads[BACKEND_GPU]
            value = self.session.gpu.to_host(data)
            slot.payloads[BACKEND_CP] = value
            self._cache_exchange(slot, value)
            return value
        if self.faults.enabled and slot.lineage is not None:
            # every payload copy was lost to injected faults: rebuild the
            # value by replaying its lineage (the paper's core recovery
            # argument — lineage makes intermediates cheap to reconstruct)
            value = self.session.recompute_from_lineage(slot.lineage)
            slot.payloads[BACKEND_CP] = value
            self.stats.inc(FAULT_LINEAGE_RECOMPUTES)
            self.faults.recovered(KIND_CACHE_LOST, LANE_CP,
                                  key=slot.lineage.id,
                                  opcode=slot.lineage.opcode)
            return value
        raise PlacementError("slot has no payload to materialize")

    def _cache_exchange(self, slot: Slot, value: Value,
                        count_job: bool = False) -> None:
        """Cache a collected/fetched CP copy under the same lineage key.

        This is what makes Spark *action reuse* work: the next time the
        same lineage is probed, the driver-side copy short-circuits the
        job (paper Fig. 6, top entry).  LIMA has no Spark awareness, so
        collected results of distributed operations are not cached there.
        """
        mode = self.config.reuse_mode
        if not self._put_enabled(mode) or mode is ReuseMode.LOCAL_ONLY:
            return
        entry = self.cache.get_entry(slot.lineage)
        if entry is not None and entry.is_cached:
            entry.put_payload(BACKEND_CP, value, value.nbytes,
                              entry.compute_cost)
            if count_job:
                entry.jobs += 1
            return
        self.cache.put(slot.lineage, value, BACKEND_CP, value.nbytes,
                       1.0, delay_factor=1)

    def _to_dm(self, slot: Slot, name: str = "in") -> DistributedMatrix:
        """Materialize a slot on the cluster (parallelize if CP-only)."""
        if slot.fused_from is not None:
            return self._to_dm(slot.fused_from, name)
        if BACKEND_SP in slot.payloads:
            return slot.payloads[BACKEND_SP]
        value = self._to_cp(slot)
        dm = self.session.spark.distribute(value, name)
        slot.payloads[BACKEND_SP] = dm
        return dm

    def _to_bc(self, slot: Slot) -> Broadcast:
        """Broadcast a slot's value to all executors (§5.1 operand path)."""
        if slot.broadcast is not None and not slot.broadcast.destroyed:
            return slot.broadcast
        value = self._to_cp(slot)
        # serialization/partitioning cost on the driver
        self.clock.advance(
            value.nbytes / self.config.cpu.mem_bandwidth_bytes_per_s, HOST
        )
        slot.broadcast = self.session.spark.broadcast(
            value if isinstance(value, MatrixValue)
            else MatrixValue(np.full((1, 1), value.as_float()))
        )
        return slot.broadcast

    def _to_gpu(self, slot: Slot, gpu_created: list[GpuData]) -> GpuData:
        """Materialize a slot on the device (H2D through the pool, §4.3)."""
        payload = slot.payloads.get(BACKEND_GPU)
        if payload is not None and not payload.ptr.freed:
            return payload
        value = self._to_cp(slot)
        if isinstance(value, ScalarValue):
            value = MatrixValue(np.full((1, 1), value.as_float()))
        data = self.session.gpu.to_device(value)
        slot.payloads[BACKEND_GPU] = data
        gpu_created.append(data)
        return data

    # -------------------------------------------------------------------- CPU / GPU

    def _exec_cpu(self, hop: Hop, slot: Slot, in_slots: list[Slot]) -> None:
        """EXECUTE on the driver (Table 2, CP operators).

        Inputs are materialized driver-side first (collect / D2H /
        future wait), so a CP instruction doubles as the paper's
        synchronization point for asynchronous Spark/GPU producers.
        """
        values = []
        append = values.append
        for s in in_slots:
            # inline _to_cp's already-local fast path (the overwhelmingly
            # common case for CP-placed chains)
            if s.fused_from is None:
                v = s.payloads.get(BACKEND_CP)
                if v is not None:
                    append(v)
                    continue
            append(self._to_cp(s))
        out = self.session.cpu.execute(hop.opcode, values, hop.attrs)
        slot.payloads[BACKEND_CP] = out

    def _exec_gpu(self, hop: Hop, slot: Slot, in_slots: list[Slot],
                  gpu_created: list[GpuData]) -> None:
        """EXECUTE on the device (§4.3): H2D uploads + kernel launch.

        Scalars stay host-side (kernel launch parameters); matrix
        inputs are uploaded through the memory manager, and every
        acquired pointer is recorded for end-of-run release (Fig. 8(b)
        reference workflow).
        """
        gpu_inputs: list[object] = []
        for s in in_slots:
            cp = s.payloads.get(BACKEND_CP)
            if isinstance(cp, ScalarValue):
                gpu_inputs.append(cp)
            else:
                gpu_inputs.append(self._to_gpu(s, gpu_created))
        out = self.session.gpu.execute(
            hop.opcode, gpu_inputs, hop.attrs,
            lineage_height=slot.lineage.height,
        )
        if isinstance(out, GpuData):
            slot.payloads[BACKEND_GPU] = out
            gpu_created.append(out)
        else:
            slot.payloads[BACKEND_CP] = out

    # ------------------------------------------------------------------------ Spark

    def _exec_spark(self, hop: Hop, slot: Slot, in_slots: list[Slot]) -> None:
        """EXECUTE on the cluster (§4.2/§5): pick the physical operator.

        Mirrors SystemDS's Spark instruction set: element-wise ops
        choose zip / broadcast / scalar variants by operand shape,
        aggregates run as (possibly asynchronous) actions, and matmuls
        go through :meth:`_exec_spark_matmul`'s pattern selection.
        """
        sb = self.session.spark
        op = hop.opcode

        if op == "ba+*":
            self._exec_spark_matmul(hop, slot, in_slots)
            return

        if op in SPARK_ELEMENTWISE:
            left, right = hop.inputs
            ls, rs = in_slots
            if right.shape == (1, 1):
                scalar = self._scalar_of(rs)
                slot.payloads[BACKEND_SP] = sb.elementwise_scalar(
                    op, self._to_dm(ls), scalar
                )
            elif left.shape == (1, 1):
                scalar = self._scalar_of(ls)
                slot.payloads[BACKEND_SP] = sb.elementwise_scalar(
                    op, self._to_dm(rs), scalar, scalar_left=True
                )
            elif left.shape[0] == right.shape[0] and right.shape[0] > 1:
                # equal row counts: partition-aligned zip (covers both
                # matrix-matrix and matrix-column-vector operands)
                slot.payloads[BACKEND_SP] = sb.elementwise_zip(
                    op, self._to_dm(ls), self._to_dm(rs)
                )
            elif right.shape[0] == 1:
                # row vector: broadcast against every row block
                bc = self._to_bc(rs)
                slot.payloads[BACKEND_SP] = sb.elementwise_broadcast(
                    op, self._to_dm(ls), bc, right.shape[1]
                )
            elif left.shape[0] == 1:
                bc = self._to_bc(ls)
                slot.payloads[BACKEND_SP] = sb.elementwise_broadcast(
                    op, self._to_dm(rs), bc, left.shape[1], bc_left=True
                )
            else:
                slot.payloads[BACKEND_SP] = sb.elementwise_zip(
                    op, self._to_dm(ls), self._to_dm(rs)
                )
            return

        if op in SPARK_UNARY:
            if op == "replace":
                pattern = float(hop.attrs.get("pattern", np.nan))
                repl = float(hop.attrs.get("replacement", 0.0))

                def fn(b, pattern=pattern, repl=repl):
                    out = b.copy()
                    if np.isnan(pattern):
                        out[np.isnan(out)] = repl
                    else:
                        out[out == pattern] = repl
                    return out

                dm = self._to_dm(in_slots[0])
                rdd = dm.rdd.map_blocks(fn, "replace")
                slot.payloads[BACKEND_SP] = DistributedMatrix(
                    rdd, dm.nrow, dm.ncol
                )
            else:
                slot.payloads[BACKEND_SP] = sb.unary(
                    op, self._to_dm(in_slots[0])
                )
            return

        if op in SPARK_AGG_ACTION:
            self._exec_spark_aggregate(hop, slot, in_slots)
            return

        if op in SPARK_AGG_MAP:
            dm = self._to_dm(in_slots[0])
            if op == "uark+":
                slot.payloads[BACKEND_SP] = sb.row_sums(dm)
            elif op == "uarmean":
                rs = sb.row_sums(dm)
                slot.payloads[BACKEND_SP] = sb.elementwise_scalar(
                    "/", rs, float(dm.ncol)
                )
            else:  # uarmax
                rdd = dm.rdd.map_blocks(
                    lambda b: b.max(axis=1, keepdims=True), "uarmax"
                )
                slot.payloads[BACKEND_SP] = DistributedMatrix(
                    rdd, dm.nrow, 1
                )
            return

        if op == "r'":
            slot.payloads[BACKEND_SP] = sb.transpose(self._to_dm(in_slots[0]))
            return

        if op == "rbind":
            slot.payloads[BACKEND_SP] = sb.rbind(
                self._to_dm(in_slots[0]), self._to_dm(in_slots[1])
            )
            return

        if op == "rightIndex":
            in_shape = hop.inputs[0].shape
            rl = int(hop.attrs.get("rl", 1)) - 1
            ru = int(hop.attrs.get("ru", in_shape[0]))
            cl = int(hop.attrs.get("cl", 1)) - 1
            cu = int(hop.attrs.get("cu", in_shape[1]))
            dm = self._to_dm(in_slots[0])
            if cl != 0 or cu != in_shape[1]:
                rdd = dm.rdd.map_blocks(
                    lambda b, cl=cl, cu=cu: b[:, cl:cu].copy(), "rightIndex"
                )
                dm = DistributedMatrix(rdd, dm.nrow, cu - cl)
            if rl != 0 or ru != in_shape[0]:
                dm = sb.slice_rows(dm, rl, ru)
            slot.payloads[BACKEND_SP] = dm
            return

        raise PlacementError(f"no Spark physical operator for {op!r}")

    def _exec_spark_aggregate(self, hop: Hop, slot: Slot,
                              in_slots: list[Slot]) -> None:
        """Single-block aggregates execute as Spark actions.

        When the prefetch rewrite flagged the action, the job runs
        asynchronously and consumers wait on the returned future (§5.1:
        "this rewrite flags all other Spark actions for asynchronous
        execution").
        """
        op = hop.opcode
        dm = self._to_dm(in_slots[0])
        cells = float(dm.nrow * dm.ncol)
        nrow = float(dm.nrow)

        if op in ("uak+", "uamean"):
            partial = dm.rdd.map_blocks(
                lambda b: np.array([[b.sum()]]), "uak+_partial"
            )
            combine = lambda a, b: a + b
            if op == "uak+":
                finish = lambda out: ScalarValue(float(out[0, 0]))
            else:
                finish = lambda out: ScalarValue(float(out[0, 0]) / cells)
        elif op in ("uack+", "uacmean"):
            partial = dm.rdd.map_blocks(
                lambda b: b.sum(axis=0, keepdims=True), "uack+_partial"
            )
            combine = lambda a, b: a + b
            if op == "uack+":
                finish = lambda out: MatrixValue(out)
            else:
                finish = lambda out: MatrixValue(out / nrow)
        elif op in ("uamax", "uamin"):
            agg = np.max if op == "uamax" else np.min
            reducer = np.maximum if op == "uamax" else np.minimum
            partial = dm.rdd.map_blocks(
                lambda b, f=agg: np.array([[f(b)]]), op + "_partial"
            )
            combine = lambda a, b, r=reducer: r(a, b)
            finish = lambda out: ScalarValue(float(out[0, 0]))
        else:  # pragma: no cover - guarded by SPARK_AGG_ACTION
            raise PlacementError(f"unhandled Spark aggregate {op}")

        sc = self.session.spark.sc
        if hop.prefetch and self.config.enable_async_ops:
            raw = sc.reduce_async(partial, combine)
            slot.future = SimFuture(
                self.clock, raw.ready_time, finish(raw.value),
                label=f"agg:{op}",
            )
            self.stats.inc(PREFETCH_ISSUED)
            if self.tracer.enabled:
                self.tracer.instant(EV_PREFETCH, LANE_CP,
                                    label=f"agg:{op}",
                                    ready=raw.ready_time)
        else:
            slot.payloads[BACKEND_CP] = finish(sc.reduce(partial, combine))

    def _exec_spark_matmul(self, hop: Hop, slot: Slot,
                           in_slots: list[Slot]) -> None:
        """Distributed matmul via SystemDS's physical patterns.

        ``tsmm`` (transpose-self, fused), ``cpmm`` (cross-product),
        ``mapmm``/``bcmm`` (broadcast-side) — selection logic lives in
        :func:`repro.runtime.placement.matmul_pattern`.
        """
        sb = self.session.spark
        pattern = matmul_pattern(hop, self.config)
        left, right = hop.inputs
        ls, rs = in_slots
        if pattern == "tsmm":
            dm = self._to_dm(ls.fused_from or ls)
            slot.payloads[BACKEND_SP] = sb.tsmm(dm)
        elif pattern == "cpmm":
            a = self._to_dm(ls.fused_from or ls)
            b = self._to_dm(rs)
            slot.payloads[BACKEND_SP] = sb.cpmm(a, b)
        elif pattern == "mapmm":
            bc = self._to_bc(rs)
            slot.payloads[BACKEND_SP] = sb.mapmm(
                self._to_dm(ls), bc, right.shape[1]
            )
        elif pattern == "bcmm":
            bc = self._to_bc(ls)
            slot.payloads[BACKEND_SP] = sb.bcmm_left(
                bc, left.shape[0], self._to_dm(rs)
            )
        else:
            raise PlacementError(
                f"no Spark matmul pattern for shapes "
                f"{left.shape} x {right.shape}"
            )

    def _scalar_of(self, slot: Slot) -> float:
        """Driver-side python float of a 1x1 value (scalar operands)."""
        value = self._to_cp(slot)
        if isinstance(value, ScalarValue):
            return value.as_float()
        return float(value.data.reshape(-1)[0])

    # --------------------------------------------------------------------- async ops

    def _issue_prefetch(self, hop: Hop, slot: Slot) -> None:
        """Trigger the remote job now and return a future (§5.1)."""
        if BACKEND_CP in slot.payloads or slot.future is not None:
            return
        if BACKEND_SP in slot.payloads:
            dm: DistributedMatrix = slot.payloads[BACKEND_SP]
            slot.future = self.session.spark.sc.collect_async(dm.rdd)
            self.stats.inc(PREFETCH_ISSUED)
            if self.tracer.enabled:
                self.tracer.instant(EV_PREFETCH, LANE_CP,
                                    label=slot.future.label,
                                    ready=slot.future.ready_time)
        elif BACKEND_GPU in slot.payloads:
            data: GpuData = slot.payloads[BACKEND_GPU]
            ready = self.session.gpu.to_host_async(data)
            slot.future = SimFuture(self.clock, ready, data.value,
                                    label="gpu_prefetch")
            self.stats.inc(PREFETCH_ISSUED)
            if self.tracer.enabled:
                self.tracer.instant(EV_PREFETCH, LANE_CP,
                                    label="gpu_prefetch", ready=ready)

    def _issue_broadcast(self, slot: Slot) -> None:
        """Asynchronously partition + register a broadcast variable."""
        if slot.broadcast is not None:
            return
        value = slot.payloads.get(BACKEND_CP)
        if not isinstance(value, MatrixValue):
            return
        # asynchronous: the partitioning overlaps with host execution,
        # so only the registration latency is charged
        slot.broadcast = self.session.spark.broadcast(value)
        self.stats.inc(BROADCAST_ISSUED)
        if self.tracer.enabled:
            self.tracer.instant(EV_BROADCAST, LANE_CP, nbytes=value.nbytes)

