"""Operator placement: assign each hop to CP, Spark, or GPU.

Follows SystemDS's heuristics (paper §2.1): operations whose worst-case
memory estimate exceeds the driver's operation memory are compiled to
Spark instructions; compute-intensive dense operations are placed on the
GPU when enabled; everything else runs on the local CPU — all in a
data-locality-aware manner (inputs already resident on a backend pull
their consumers toward it).

Placement runs first in the compile pipeline
(:meth:`repro.core.session.Session._compile`): the backend tag decides
which EXECUTE stage the dispatch loop takes per instruction (paper
Fig. 4), which probes the REUSE step may issue in ``LOCAL_ONLY`` mode
(§4.1 — LIMA probes only CP instructions), and which rewrites apply
downstream (prefetch/broadcast §5.1 and checkpoints §5.2 only concern
Spark-placed subgraphs).  The whole pass is a single walk over the
shared post-order node list — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from repro.backends.gpu.backend import GPU_OPCODES
from repro.common.config import MemphisConfig
from repro.compiler.ir import KIND_DATA, KIND_LITERAL, Hop
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP

#: opcodes with a Spark physical operator (element-wise, matmul patterns,
#: reorg, aggregates); ``ba+*`` is pattern-checked separately.
SPARK_ELEMENTWISE = {
    "+", "-", "*", "/", "^", "min", "max",
    ">", "<", ">=", "<=", "==", "!=",
}
SPARK_UNARY = {"exp", "log", "sqrt", "abs", "sign", "round", "relu",
               "sigmoid", "tanh", "replace"}
SPARK_AGG_ACTION = {"uak+", "uack+", "uamean", "uacmean", "uamax", "uamin"}
SPARK_AGG_MAP = {"uark+", "uarmean", "uarmax"}
SPARK_REORG = {"r'", "rbind", "rightIndex"}


def spark_supported(hop: Hop, config: MemphisConfig) -> bool:
    """Whether a Spark physical operator exists for this hop."""
    op = hop.opcode
    if op in SPARK_ELEMENTWISE or op in SPARK_UNARY:
        return True
    if op in SPARK_AGG_ACTION or op in SPARK_AGG_MAP:
        return True
    if op == "rightIndex":
        # column slicing is a narrow map; row slicing is a shuffle; a
        # combined row+column slice is executed in two steps by dispatch
        return True
    if op in ("r'", "rbind"):
        return True
    if op == "ba+*":
        return _matmul_pattern(hop, config) is not None
    return False


def _matmul_pattern(hop: Hop, config: MemphisConfig) -> str | None:
    """Classify a distributed matrix multiply (mirrors SystemDS).

    Returns one of ``tsmm``/``cpmm``/``mapmm``/``bcmm`` or ``None``.
    "Distributed" sides are those above the operation-memory budget;
    broadcastable sides must additionally fit the driver's broadcast
    limit.
    """
    left, right = hop.inputs
    op_mem = config.cpu.operation_memory_bytes
    bc_limit = config.spark.driver_memory // 4
    if left.opcode == "r'":
        base = left.inputs[0]
        if base is right or (
            base.kind == KIND_DATA and right.kind == KIND_DATA
            and base.handle is right.handle
        ):
            return "tsmm"
        if base.output_bytes > op_mem and right.output_bytes > op_mem:
            return "cpmm"
    if right.output_bytes <= bc_limit and left.output_bytes > op_mem:
        return "mapmm"
    if left.output_bytes <= bc_limit and right.output_bytes > op_mem:
        return "bcmm"
    return None


def matmul_pattern(hop: Hop, config: MemphisConfig) -> str | None:
    """Public pattern classifier used by the Spark dispatch at runtime."""
    return _matmul_pattern(hop, config)


def assign_placements(roots: list[Hop], config: MemphisConfig,
                      nodes: list[Hop] | None = None) -> None:
    """Annotate every hop reachable from ``roots`` with a backend tag.

    ``nodes`` optionally supplies a precomputed post-order traversal
    (inputs before consumers — placement is locality-aware, so inputs
    must be tagged first) so the compile pipeline walks the DAG once.
    """
    op_mem = config.cpu.operation_memory_bytes
    if nodes is None:
        nodes = [hop for root in roots for hop in root.iter_dag()]
    for hop in nodes:
        if hop.placement is not None:
            continue
        if hop.kind == KIND_LITERAL:
            hop.placement = BACKEND_CP
            continue
        if hop.kind == KIND_DATA:
            hop.placement = _data_location(hop)
            continue
        hop.placement = _place_op(hop, config, op_mem)


def gpu_working_set(hop: Hop, alignment: int) -> int:
    """Device bytes one GPU instruction needs live at once.

    Output allocation plus one upload per non-literal input, each
    rounded up to the allocator's granularity — the same arithmetic the
    static memory planner charges (``repro.analysis.memplan`` MEM001).
    """
    def aligned(nbytes: int) -> int:
        if nbytes < alignment:
            nbytes = alignment
        rem = nbytes % alignment
        return nbytes if rem == 0 else nbytes + (alignment - rem)

    total = aligned(hop.output_bytes)
    for inp in hop.inputs:
        if inp.kind != KIND_LITERAL:
            total += aligned(inp.output_bytes)
    return total


def _data_location(hop: Hop) -> str:
    """Where a data hop's payload already lives (locality, §2.1).

    Iteratively updated variables carry materialized payloads from the
    previous ``compute()``; preferring their resident backend (Spark
    over GPU over CP) is what pulls a steady-state training loop onto
    one backend instead of bouncing transfers every iteration.
    """
    handle = hop.handle
    if handle is not None and handle.payloads:
        for backend in (BACKEND_SP, BACKEND_GPU, BACKEND_CP):
            if backend in handle.payloads:
                return backend
    return BACKEND_CP


def _place_op(hop: Hop, config: MemphisConfig, op_mem: int) -> str:
    """SystemDS-style backend choice for one operation hop (§2.1).

    Precedence: scalars stay on the driver; Spark wins when the memory
    estimate exceeds the operation budget or distributed inputs make
    collecting more expensive than staying out; the GPU takes dense
    compute-heavy ops above ``gpu.min_cells``; CP is the default.  The
    caller guarantees inputs are already tagged (post-order).
    """
    if hop.shape == (1, 1) and all(h.shape == (1, 1) for h in hop.inputs):
        # pure scalar arithmetic always runs on the driver
        return BACKEND_CP
    sp_ok = config.spark_enabled and spark_supported(hop, config)
    inputs_on_sp = any(h.placement == BACKEND_SP for h in hop.inputs)
    if sp_ok and (hop.memory_estimate > op_mem
                  or (inputs_on_sp and hop.output_bytes > op_mem // 8)):
        return BACKEND_SP
    if sp_ok and inputs_on_sp:
        # aggregates of distributed inputs run as Spark actions even when
        # the (small) output fits in the driver
        if hop.opcode in SPARK_AGG_ACTION or hop.opcode in SPARK_AGG_MAP:
            return BACKEND_SP
        # everything else follows the memory estimate: small results of
        # distributed inputs (e.g. a weight update after a cpmm) are
        # collected and computed locally, exactly like SystemDS — this
        # also bounds the lazy lineage of iteratively updated variables
    if (
        config.gpu_enabled
        and hop.opcode in GPU_OPCODES
        and hop.shape[0] * hop.shape[1] >= config.gpu.min_cells
        and hop.memory_estimate <= op_mem
        and not inputs_on_sp
        # feasibility, not just legality: an instruction whose working
        # set cannot fit on the device at any schedule (memplan MEM001)
        # must not be placed there — it falls back to the driver, which
        # has no fixed execution budget in this runtime.  Never binds at
        # the default configuration (operation memory << device memory);
        # matters when experiments shrink gpu.device_memory.
        and gpu_working_set(hop, config.gpu.alignment)
        <= config.gpu.device_memory
    ):
        return BACKEND_GPU
    return BACKEND_CP
