"""Federated workers with worker-local lineage caches (paper §5.4).

The paper notes that for hierarchically-structured backends, "local
lineage-based reuse directly applies" and that prior work added
lineage-based reuse to *multi-tenant federated workers* [19].  This
module provides that substrate: each worker owns a shard of the data, a
local execution engine, and a **worker-local lineage cache** shared by
all tenants (coordinator sessions) that contact it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.cpu import kernels
from repro.common.config import CacheConfig
from repro.common.costs import op_flops
from repro.common.stats import Stats
from repro.core.cache import LineageCache
from repro.core.entry import BACKEND_CP
from repro.lineage.item import LineageItem
from repro.runtime.values import MatrixValue, ScalarValue, Value


@dataclass
class FederatedConfig:
    """Cost model for coordinator <-> worker interaction."""

    num_workers: int = 4
    #: WAN round-trip latency per federated request (s).
    request_latency_s: float = 25e-3
    #: coordinator <-> worker bandwidth (federated sites are remote).
    bandwidth_bytes_per_s: float = 125e6  # ~1 Gb/s
    #: worker compute throughput.
    flops_per_s: float = 0.5e12
    #: worker-local lineage cache budget.
    worker_cache_bytes: int = 64 * 1024 * 1024


class FederatedWorker:
    """One federated site: a data shard + local engine + lineage cache.

    The cache is *worker-local and multi-tenant*: any coordinator that
    sends a structurally identical request (same lineage) gets the
    cached result, regardless of which tenant computed it first [19].
    """

    def __init__(self, worker_id: int, config: FederatedConfig) -> None:
        self.worker_id = worker_id
        self.config = config
        self.stats = Stats()
        self.cache = LineageCache(
            CacheConfig(driver_cache_bytes=config.worker_cache_bytes,
                        spill_to_disk=False),
            self.stats,
        )
        #: named data shards held at this site.
        self._shards: dict[str, np.ndarray] = {}
        #: busy-until time of this worker (workers execute in parallel).
        self.busy_until = 0.0

    def put_shard(self, name: str, shard: np.ndarray) -> None:
        """Register (or replace) a local data shard."""
        self._shards[name] = np.asarray(shard, dtype=np.float64)

    def get_shard(self, name: str) -> np.ndarray:
        return self._shards[name]

    def execute(self, opcode: str, lineage: LineageItem,
                inputs: list[object], attrs: dict,
                start_time: float, reuse: bool = True,
                slow_factor: float = 1.0) -> tuple[Value, float]:
        """Execute one federated request at this site.

        ``inputs`` name shards (str) or carry coordinator-shipped values.
        Returns ``(result, completion_time)``; the worker reuses its
        local lineage cache when ``reuse`` is enabled.  ``slow_factor``
        stretches the modeled compute time (slow-site fault injection) —
        it never changes the result.
        """
        begin = max(start_time, self.busy_until)
        if reuse:
            entry = self.cache.probe(lineage)
            if entry is not None:
                payload = entry.get_payload(BACKEND_CP)
                if payload is not None:
                    self.busy_until = begin  # free immediately
                    return payload, begin
        values: list[Value] = []
        for item in inputs:
            if isinstance(item, str):
                values.append(MatrixValue(self._shards[item]))
            elif isinstance(item, np.ndarray):
                values.append(MatrixValue(item))
            elif isinstance(item, (int, float)):
                values.append(ScalarValue(float(item)))
            else:
                values.append(item)
        out = kernels.execute(opcode, values, attrs)
        in_shapes = [v.shape for v in values] or [(1, 1)]
        duration = op_flops(opcode, in_shapes, out.shape) \
            / self.config.flops_per_s * slow_factor
        end = begin + duration
        self.busy_until = end
        if reuse:
            self.cache.put(lineage, out, BACKEND_CP, out.nbytes, duration)
        return out, end

    def restart(self) -> None:
        """Simulate a worker process restart (fault injection).

        The in-memory lineage cache and execution queue die with the
        process; data shards survive (site-local durable storage), so
        every request remains answerable — just without reuse history.
        """
        self.cache.clear()
        self.busy_until = 0.0
