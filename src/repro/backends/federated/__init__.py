"""Federated backend extension: deeper hierarchies (paper §5.4).

Federated workers hold raw data shards, execute shipped instructions,
and reuse results through *worker-local, multi-tenant* lineage caches
(ExDRa-style, [18, 19] in the paper).
"""

from repro.backends.federated.coordinator import (
    FED_REQUESTS,
    FED_REUSED,
    FederatedCoordinator,
    FederatedMatrix,
)
from repro.backends.federated.worker import FederatedConfig, FederatedWorker

__all__ = [
    "FederatedConfig",
    "FederatedWorker",
    "FederatedCoordinator",
    "FederatedMatrix",
    "FED_REQUESTS",
    "FED_REUSED",
]
