"""Federated coordinator: row-partitioned matrices over remote workers.

A :class:`FederatedCoordinator` is one tenant's entry point to a shared
worker fleet.  Federated matrices are row-partitioned across sites;
operations ship instructions (not data) to the workers, which execute in
parallel, reuse their local lineage caches, and return only small
partial results to the coordinator — the ExDRa-style federated backend
the paper lists under "Deeper Hierarchies" (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.federated.worker import FederatedConfig, FederatedWorker
from repro.common.errors import FaultInjectionError
from repro.common.simclock import HOST, SimClock
from repro.common.stats import (
    FAULT_FED_RETRIES,
    FAULT_QUORUM_DEGRADED,
    Stats,
)
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import KIND_FED_TIMEOUT, FaultPlan
from repro.lineage.item import LineageItem, dataset, literal
from repro.obs.events import EV_FED_REQUEST, LANE_FED
from repro.obs.tracer import NULL_TRACER, current_collector
from repro.runtime.values import MatrixValue, ScalarValue

FED_REQUESTS = "federated/requests"
FED_REUSED = "federated/worker_reuses"


@dataclass
class FederatedMatrix:
    """A matrix row-partitioned across the worker fleet."""

    name: str
    nrow: int
    ncol: int
    #: worker id -> (shard name, row count) at that site.
    placement: list[tuple[int, str, int]]
    #: lineage item per shard, tracked coordinator-side.
    lineages: list[LineageItem]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrow, self.ncol)


class FederatedCoordinator:
    """One tenant session against a (possibly shared) worker fleet.

    Tenants sharing a fleet must share one :class:`SimClock` so worker
    ``busy_until`` times are comparable across coordinators.
    """

    def __init__(self, workers: list[FederatedWorker],
                 config: FederatedConfig | None = None,
                 clock: SimClock | None = None,
                 reuse: bool = True,
                 tracer=None,
                 faults: FaultPlan | None = None) -> None:
        self.workers = workers
        self.config = config or (
            workers[0].config if workers else FederatedConfig()
        )
        self.clock = clock or SimClock()
        self.stats = Stats()
        self.reuse = reuse
        if tracer is None:
            collector = current_collector()
            tracer = (
                collector.tracer(self.clock, label="federated",
                                 stats=self.stats)
                if collector is not None else NULL_TRACER
            )
        self.tracer = tracer
        self.faults = (
            FaultInjector(faults, self.clock, self.stats, tracer=self.tracer)
            if faults is not None else NULL_INJECTOR
        )
        self._fed_counter = 0

    # -- data placement ---------------------------------------------------------

    def federate(self, name: str, matrix: np.ndarray) -> FederatedMatrix:
        """Partition ``matrix`` row-wise across the fleet.

        Models reading *federated raw data*: the shards conceptually
        already live at the sites, so no transfer is charged.
        """
        rows = matrix.shape[0]
        per = max(rows // len(self.workers), 1)
        placement = []
        lineages = []
        offset = 0
        for i, worker in enumerate(self.workers):
            stop = rows if i == len(self.workers) - 1 else offset + per
            shard_name = f"{name}@w{worker.worker_id}"
            worker.put_shard(shard_name, matrix[offset:stop])
            placement.append((worker.worker_id, shard_name, stop - offset))
            lineages.append(dataset(shard_name))
            offset = stop
            if offset >= rows:
                break
        return FederatedMatrix(name, rows, matrix.shape[1],
                               placement, lineages)

    # -- federated operations -----------------------------------------------------

    def map_elementwise(self, opcode: str, fm: FederatedMatrix,
                        scalar: float) -> FederatedMatrix:
        """Element-wise op with a scalar, executed at every site."""
        out_lineages = []
        results = self._round(
            fm,
            lambda shard, lin: (opcode, lin, [shard, scalar], {}),
            ship_bytes=0,
            out_lineages=out_lineages,
            store=True,
        )
        new_name = f"{fm.name}_{opcode}{self._next_id()}"
        placement = []
        for (wid, _, rows), value in zip(fm.placement, results):
            shard_name = f"{new_name}@w{wid}"
            self._worker(wid).put_shard(shard_name, value.data)
            placement.append((wid, shard_name, rows))
        return FederatedMatrix(new_name, fm.nrow, fm.ncol,
                               placement, out_lineages)

    def matvec(self, fm: FederatedMatrix, vector: np.ndarray) -> np.ndarray:
        """``X %*% v`` with coordinator-shipped ``v``; partials return."""
        v_lineage = literal(_digest(vector))
        parts = self._round(
            fm,
            lambda shard, lin: (
                "ba+*", LineageItem("ba+*", (), (lin, v_lineage)),
                [shard, vector], {},
            ),
            ship_bytes=vector.nbytes,
        )
        return np.vstack([p.data for p in parts])

    def tsmm(self, fm: FederatedMatrix) -> np.ndarray:
        """``t(X) %*% X`` via per-site partials summed at the coordinator."""
        parts = self._round(
            fm,
            lambda shard, lin: (
                "fed_tsmm", LineageItem("fed_tsmm", (), (lin,)),
                [shard], {},
            ),
        )
        return np.add.reduce([p.data for p in parts])

    def column_sums(self, fm: FederatedMatrix) -> np.ndarray:
        """colSums via per-site partials."""
        parts = self._round(
            fm,
            lambda shard, lin: (
                "uack+", LineageItem("uack+", (), (lin,)), [shard], {},
            ),
        )
        return np.add.reduce([p.data for p in parts])

    def total_reuses(self) -> int:
        """Worker-local cache hits observed by this coordinator's fleet."""
        return sum(w.stats.get("cache/hits") for w in self.workers)

    # -- internals ------------------------------------------------------------------

    def _round(self, fm: FederatedMatrix, request_fn, ship_bytes: int = 0,
               out_lineages=None, store: bool = False):
        """One federated round: parallel requests to all placed sites.

        Injected faults are absorbed here: a *slow* site merely
        stretches its modeled compute time; a *timeout* triggers
        retry-with-exponential-backoff up to ``max_fed_retries``
        attempts (retries hit the worker-local lineage cache, so the
        repeated request costs latency, not recomputation).  When the
        budget is exhausted and the remaining sites satisfy
        ``quorum_fraction``, the round degrades: the coordinator stops
        waiting inside the round's critical path and merges the
        straggler's partial as a late arrival — numerics are identical
        either way, only timing differs.
        """
        submit = self.clock.now(HOST) + self.config.request_latency_s \
            + ship_bytes / self.config.bandwidth_bytes_per_s
        results = []
        completion = submit
        return_bytes = 0
        round_idx = self.faults.fed_round() if self.faults.enabled else -1
        for (wid, shard_name, _), lineage in zip(fm.placement, fm.lineages):
            worker = self._worker(wid)
            opcode, out_lineage, inputs, attrs = request_fn(
                shard_name, lineage
            )
            hits_before = worker.stats.get("cache/hits")
            if self.faults.enabled:
                value, end = self._execute_faulted(
                    worker, opcode, out_lineage, inputs, attrs, submit,
                    round_idx, len(fm.placement),
                )
            else:
                value, end = worker.execute(
                    opcode, out_lineage, inputs, attrs, submit, self.reuse
                )
            reused = worker.stats.get("cache/hits") > hits_before
            if reused:
                self.stats.inc(FED_REUSED)
            self.stats.inc(FED_REQUESTS)
            if self.tracer.enabled:
                self.tracer.complete(
                    EV_FED_REQUEST, LANE_FED, submit, end,
                    worker=wid, opcode=opcode, reused=reused,
                )
            results.append(value)
            completion = max(completion, end)
            if not store:
                return_bytes += value.nbytes
            if out_lineages is not None:
                out_lineages.append(out_lineage)
        # workers run in parallel; the coordinator waits for the slowest,
        # then receives the (partial) results
        self.clock.advance_to(
            completion + self.config.request_latency_s
            + return_bytes / self.config.bandwidth_bytes_per_s,
            HOST,
        )
        return results

    def _execute_faulted(self, worker: FederatedWorker, opcode: str,
                         out_lineage: LineageItem, inputs: list,
                         attrs: dict, submit: float, round_idx: int,
                         num_placed: int) -> tuple:
        """One worker request under fault injection (see :meth:`_round`)."""
        plan = self.faults.plan
        wid = worker.worker_id
        slow = self.faults.fed_slow(round_idx, wid)
        fault = self.faults.fed_timeout(round_idx, wid)
        submit_w = submit
        delay = plan.fed_backoff_base_s
        attempt = 0
        degraded = False
        while True:
            value, end = worker.execute(
                opcode, out_lineage, inputs, attrs, submit_w, self.reuse,
                slow_factor=slow if slow is not None else 1.0,
            )
            if fault is None or not fault.take():
                break
            attempt += 1
            self.stats.inc(FAULT_FED_RETRIES)
            self.faults.injected(KIND_FED_TIMEOUT, LANE_FED,
                                 round=round_idx, worker=wid,
                                 attempt=attempt)
            if attempt > plan.max_fed_retries:
                # the round may proceed without this site if the others
                # meet quorum; its partial merges as a late arrival
                if (num_placed > 1
                        and (num_placed - 1) / num_placed
                        >= plan.quorum_fraction):
                    self.stats.inc(FAULT_QUORUM_DEGRADED)
                    end = max(end, submit_w + plan.fed_timeout_s)
                    degraded = True
                    break
                raise FaultInjectionError(
                    f"federated worker {wid} timed out {attempt} times in "
                    f"round {round_idx} (budget {plan.max_fed_retries}, "
                    f"quorum {plan.quorum_fraction})"
                )
            # wait out the timeout, back off, resubmit (hits the
            # worker-local lineage cache)
            submit_w = max(end, submit_w + plan.fed_timeout_s) + delay
            delay *= 2
        if attempt and not degraded:
            self.faults.recovered(KIND_FED_TIMEOUT, LANE_FED,
                                  round=round_idx, worker=wid,
                                  attempts=attempt + 1)
        return value, end

    def _worker(self, worker_id: int) -> FederatedWorker:
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        raise KeyError(f"unknown federated worker {worker_id}")

    def _next_id(self) -> int:
        self._fed_counter += 1
        return self._fed_counter


def _digest(array: np.ndarray) -> str:
    """Stable content digest used as a lineage literal for shipped data."""
    return f"sha:{hash(array.tobytes()) & 0xFFFFFFFFFFFF:x}"
