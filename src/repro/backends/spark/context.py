"""SparkContext: driver-side entry point of the cluster simulator.

Owns the BlockManager, DAGScheduler, and broadcast registry; exposes
transformations (via :class:`RDD`), actions (``collect``, ``count``,
``reduce``), and asynchronous job submission used by MEMPHIS's
``prefetch`` operator.  Also tracks driver memory retained by dangling
broadcast chunks and collected results (Fig. 2(b)).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.backends.spark.blockmanager import BlockManager
from repro.backends.spark.broadcast import Broadcast
from repro.backends.spark.rdd import RDD, ParallelizedRDD, ShuffleDependency
from repro.backends.spark.scheduler import DAGScheduler, JobResult
from repro.common.config import SparkConfig
from repro.common.simclock import CLUSTER, HOST, SimClock, SimFuture
from repro.common.stats import (
    FAULT_EXECUTORS_LOST,
    FAULT_SHUFFLE_INVALIDATED,
    SPARK_PART_RECOMPUTED,
    Stats,
)
from repro.faults.injector import NULL_INJECTOR
from repro.faults.plan import KIND_EXECUTOR_LOSS
from repro.obs.events import EV_SPARK_JOB, EV_SPARK_STAGE, LANE_SP
from repro.obs.tracer import NULL_TRACER


class SparkContext:
    """Driver process handle to the simulated cluster.

    The driver-side entry point of the Spark backend (paper §2.2):
    owns storage and scheduling state, and exposes the synchronous and
    asynchronous actions MEMPHIS's ``prefetch`` rewrite relies on
    (§5.1, Fig. 2(b)).
    """

    def __init__(self, config: SparkConfig, clock: SimClock, stats: Stats,
                 tracer=None, faults=None, arbiter=None) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.block_manager = BlockManager(config, stats, tracer=self.tracer,
                                          faults=self.faults, arbiter=arbiter)
        self.scheduler = DAGScheduler(self)
        self.driver_retained_bytes = 0
        self.shuffle_store_bytes = 0
        #: job-scoped partition memo set by the DAGScheduler: within one
        #: job, each (rdd, partition) is computed at most once.
        self.job_memo = None
        self._rdds: dict[int, RDD] = {}
        #: parallel job lanes: concurrently submitted jobs overlap on the
        #: cluster up to this degree (Spark runs independent jobs
        #: concurrently when slots allow) — the source of the paper's
        #: Base-A speedup from asynchronous operators (§5.1).
        self._job_lanes = [0.0] * max(2, config.num_executors // 2)

    # -- registry -------------------------------------------------------------

    def register_rdd(self, rdd: RDD) -> None:
        """Track an RDD for storage info queries and GC bookkeeping."""
        self._rdds[rdd.id] = rdd

    def get_rdd(self, rdd_id: int) -> Optional[RDD]:
        return self._rdds.get(rdd_id)

    def note_partition_recomputed(self) -> None:
        self.stats.inc(SPARK_PART_RECOMPUTED)

    # -- data distribution ------------------------------------------------------

    def parallelize(self, matrix: np.ndarray, name: str = "parallelize") -> RDD:
        """Distribute a local matrix as a row-block partitioned RDD."""
        return ParallelizedRDD(self, matrix, self.config.block_size_rows, name)

    def broadcast(self, value: np.ndarray) -> Broadcast:
        """Create a torrent broadcast of a local matrix."""
        return Broadcast(self, value)

    # -- job execution ----------------------------------------------------------

    def run_job(self, rdd: RDD) -> tuple[JobResult, float]:
        """Execute a job; returns the result and its cluster end time.

        The job starts when the host has submitted it and a job lane is
        free; concurrently submitted jobs overlap up to the lane count.
        The *host* timeline is NOT advanced here — callers decide whether
        the action is synchronous or asynchronous.
        """
        if self.faults.enabled:
            for executor_id in self.faults.executor_losses(
                    self.config.num_executors):
                self.lose_executor(executor_id)
        result = self.scheduler.execute(rdd)
        lane = min(range(len(self._job_lanes)),
                   key=lambda i: self._job_lanes[i])
        start = max(self.clock.now(HOST), self._job_lanes[lane])
        end = start + result.duration
        self._job_lanes[lane] = end
        self.clock.advance_to(end, CLUSTER)
        if self.tracer.enabled:
            self.tracer.complete(
                EV_SPARK_JOB, LANE_SP, start, end,
                rdd=rdd.name, stages=result.num_stages,
                tasks=result.num_tasks,
            )
            # stage spans laid out back-to-back after the job overhead
            offset = start + self.config.job_overhead_s
            for kind, tasks, dur in result.stages:
                self.tracer.complete(
                    EV_SPARK_STAGE, LANE_SP, offset, offset + dur,
                    kind=kind, tasks=tasks, rdd=rdd.name,
                )
                offset += dur
        return result, end

    # -- fault injection ---------------------------------------------------------

    def lose_executor(self, executor_id: int) -> None:
        """Model the death of one executor (fault injection).

        Partitions are striped across executors by index
        (``index % num_executors``), so the loss invalidates that
        stripe's shuffle map outputs (``None`` holes — the next job's
        map stage recomputes exactly those from RDD lineage) and drops
        its cached partitions from the BlockManager (recomputed on
        demand through ``RDD.get_partition``).
        """
        n = self.config.num_executors
        invalidated = 0
        for rdd in self._rdds.values():
            for dep in rdd.deps:
                if not isinstance(dep, ShuffleDependency):
                    continue
                files = dep.shuffle_files
                if files is None:
                    continue
                for idx, out in enumerate(files):
                    if out is None or idx % n != executor_id:
                        continue
                    nbytes = sum(b.nbytes for b in out.values())
                    self.shuffle_store_bytes -= nbytes
                    dep.shuffle_bytes -= nbytes
                    files[idx] = None
                    invalidated += 1
        dropped = self.block_manager.drop_executor(executor_id, n)
        self.stats.inc(FAULT_EXECUTORS_LOST)
        if invalidated:
            self.stats.inc(FAULT_SHUFFLE_INVALIDATED, invalidated)
        self.faults.injected(
            KIND_EXECUTOR_LOSS, LANE_SP, executor=executor_id,
            shuffle_files=invalidated, cached_partitions=dropped,
        )

    # -- actions ------------------------------------------------------------------

    def collect(self, rdd: RDD) -> np.ndarray:
        """Synchronous collect: blocks the host until result transfer ends."""
        result, end = self.run_job(rdd)
        transfer = result.result_bytes / self.config.bandwidth_bytes_per_s
        self.clock.advance_to(end, HOST)
        self.clock.advance(transfer, HOST)
        return np.vstack(result.partitions)

    def collect_async(self, rdd: RDD) -> SimFuture:
        """Asynchronous collect used by ``prefetch`` (§5.1)."""
        result, end = self.run_job(rdd)
        transfer = result.result_bytes / self.config.bandwidth_bytes_per_s
        return SimFuture(
            self.clock, end + transfer, np.vstack(result.partitions),
            label=f"prefetch:{rdd.name}",
        )

    def count(self, rdd: RDD) -> int:
        """Synchronous count (used to force materialization)."""
        result, end = self.run_job(rdd)
        self.clock.advance_to(end, HOST)
        return sum(p.shape[0] for p in result.partitions)

    def count_async(self, rdd: RDD) -> SimFuture:
        """Asynchronous count — MEMPHIS's lazy materialization trigger."""
        result, end = self.run_job(rdd)
        value = sum(p.shape[0] for p in result.partitions)
        return SimFuture(self.clock, end, value, label=f"count:{rdd.name}")

    def reduce(self, rdd: RDD,
               fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> np.ndarray:
        """Synchronous reduce of all partitions to the driver."""
        result, end = self.run_job(rdd)
        out = result.partitions[0]
        for block in result.partitions[1:]:
            out = fn(out, block)
        transfer = out.nbytes / self.config.bandwidth_bytes_per_s
        self.clock.advance_to(end, HOST)
        self.clock.advance(transfer, HOST)
        return out

    def reduce_async(self, rdd: RDD,
                     fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> SimFuture:
        """Asynchronous reduce: the job runs without blocking the host.

        Used when the prefetch rewrite flags a single-block aggregate
        action for asynchronous execution (§5.1).
        """
        result, end = self.run_job(rdd)
        out = result.partitions[0]
        for block in result.partitions[1:]:
            out = fn(out, block)
        transfer = out.nbytes / self.config.bandwidth_bytes_per_s
        return SimFuture(self.clock, end + transfer, out,
                         label=f"reduce:{rdd.name}")
