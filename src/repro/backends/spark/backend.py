"""Distributed linear algebra over row-block RDDs.

Implements the Spark physical operators the host compiler emits (paper
Fig. 2(b), Fig. 7): broadcast-based matrix multiplies (``mapmm``),
shuffle-based transpose-self multiply (``tsmm``), element-wise maps/zips,
aggregations, and transpose.  Each operator returns a new (lazy)
:class:`DistributedMatrix`; only actions materialize results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.spark.broadcast import Broadcast
from repro.backends.spark.context import SparkContext
from repro.backends.spark.rdd import RDD
from repro.common.errors import SparkError
from repro.runtime.values import MatrixValue


@dataclass
class DistributedMatrix:
    """A matrix partitioned into row blocks across the cluster.

    The SP payload format of the hierarchical lineage cache (paper
    Table 1, §4.1): a lazy RDD handle plus logical dimensions, cached
    without forcing materialization.
    """

    rdd: RDD
    nrow: int
    ncol: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrow, self.ncol)

    @property
    def nbytes(self) -> int:
        return self.nrow * self.ncol * 8


_ELEMENTWISE = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
    "^": np.power, "min": np.minimum, "max": np.maximum,
    ">": np.greater, "<": np.less, ">=": np.greater_equal,
    "<=": np.less_equal, "==": np.equal, "!=": np.not_equal,
}

_UNARY = {
    "exp": np.exp, "log": np.log, "sqrt": np.sqrt, "abs": np.abs,
    "sign": np.sign, "round": np.round,
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
}


class SparkBackend:
    """Spark physical operators on :class:`DistributedMatrix` handles.

    The distributed execution backend of Table 2 (row 3): implements the
    operator set the placement pass routes to the cluster (Fig. 7),
    including the broadcast ``mapmm`` and shuffle ``tsmm`` multiplies of
    the paper's running example (§2.2, Fig. 2(b)).
    """

    name = "SP"

    def __init__(self, context: SparkContext) -> None:
        self.sc = context

    # -- data exchange -----------------------------------------------------

    def distribute(self, value: MatrixValue, name: str = "in") -> DistributedMatrix:
        """Driver matrix -> distributed row blocks (lazy parallelize)."""
        rdd = self.sc.parallelize(value.data, name)
        return DistributedMatrix(rdd, value.nrow, value.ncol)

    def broadcast(self, value: MatrixValue) -> Broadcast:
        """Driver matrix -> torrent broadcast variable."""
        return self.sc.broadcast(value.data)

    def collect(self, dm: DistributedMatrix) -> MatrixValue:
        """Synchronous action: gather all blocks to the driver."""
        return MatrixValue(self.sc.collect(dm.rdd))

    # -- element-wise -------------------------------------------------------

    def elementwise_scalar(self, opcode: str, dm: DistributedMatrix,
                           scalar: float,
                           scalar_left: bool = False) -> DistributedMatrix:
        """Element-wise op between a distributed matrix and a scalar."""
        op = _ELEMENTWISE.get(opcode)
        if op is None:
            raise SparkError(f"unsupported Spark element-wise op {opcode!r}")
        if scalar_left:
            fn = lambda b: np.asarray(op(scalar, b), dtype=np.float64)
        else:
            fn = lambda b: np.asarray(op(b, scalar), dtype=np.float64)
        rdd = dm.rdd.map_blocks(fn, f"{opcode}s")
        return DistributedMatrix(rdd, dm.nrow, dm.ncol)

    def elementwise_zip(self, opcode: str, a: DistributedMatrix,
                        b: DistributedMatrix) -> DistributedMatrix:
        """Element-wise op between two aligned distributed matrices."""
        op = _ELEMENTWISE.get(opcode)
        if op is None:
            raise SparkError(f"unsupported Spark element-wise op {opcode!r}")
        fn = lambda x, y: np.asarray(op(x, y), dtype=np.float64)
        rdd = a.rdd.zip_blocks(b.rdd, fn, opcode)
        return DistributedMatrix(rdd, a.nrow, a.ncol)

    def elementwise_broadcast(self, opcode: str, dm: DistributedMatrix,
                              bc: Broadcast, ncol: int,
                              bc_left: bool = False) -> DistributedMatrix:
        """Element-wise op against a broadcast row vector / small matrix."""
        op = _ELEMENTWISE.get(opcode)
        if op is None:
            raise SparkError(f"unsupported Spark element-wise op {opcode!r}")
        if bc_left:
            fn = lambda blk, v: np.asarray(op(v, blk), dtype=np.float64)
        else:
            fn = lambda blk, v: np.asarray(op(blk, v), dtype=np.float64)
        rdd = dm.rdd.map_with_broadcast(bc, fn, f"{opcode}bc")
        return DistributedMatrix(rdd, dm.nrow, max(dm.ncol, ncol))

    def unary(self, opcode: str, dm: DistributedMatrix) -> DistributedMatrix:
        """Element-wise unary op."""
        op = _UNARY.get(opcode)
        if op is None:
            raise SparkError(f"unsupported Spark unary op {opcode!r}")
        flops = 20.0 if opcode in ("exp", "log", "sigmoid", "tanh") else 1.0
        rdd = dm.rdd.map_blocks(lambda b: op(b), opcode, flops)
        return DistributedMatrix(rdd, dm.nrow, dm.ncol)

    # -- matrix multiplies ---------------------------------------------------

    def mapmm(self, dm: DistributedMatrix, bc: Broadcast,
              bc_ncol: int) -> DistributedMatrix:
        """Broadcast-based multiply ``X %*% B`` with small broadcast B."""
        rdd = dm.rdd.map_with_broadcast(
            bc, lambda blk, B: blk @ B, "mapmm",
            flops_per_cell=2.0 * dm.ncol,
        )
        return DistributedMatrix(rdd, dm.nrow, bc_ncol)

    def bcmm_left(self, bc: Broadcast, bc_nrow: int,
                  dm: DistributedMatrix) -> DistributedMatrix:
        """Broadcast-left multiply ``v %*% X`` (e.g. ``y^T X``, Fig. 2(b)).

        Each block needs the matching column slice of the broadcast
        vector; partial products are summed in a single-partition shuffle.
        """
        block_rows = self.sc.config.block_size_rows

        def map_side(idx: int, blk: np.ndarray) -> dict[int, np.ndarray]:
            lo = idx * block_rows
            v = bc._value  # noqa: SLF001 - simulator-internal access
            if not bc.transferred:
                bc.transferred = True
            return {0: np.asarray(v[:, lo:lo + blk.shape[0]] @ blk)}

        rdd = dm.rdd.shuffle(
            map_side,
            lambda blocks: np.add.reduce(blocks),
            1, "bcmm",
        )
        rdd.flops_per_cell = 2.0 * dm.nrow / max(dm.rdd.num_partitions, 1)
        rdd.broadcast_refs.append(bc)
        return DistributedMatrix(rdd, bc_nrow, dm.ncol)

    def tsmm(self, dm: DistributedMatrix) -> DistributedMatrix:
        """Shuffle-based transpose-self multiply ``t(X) %*% X`` (Fig. 7)."""
        rdd = dm.rdd.aggregate_to_single(
            lambda blk: blk.T @ blk,
            lambda a, b: a + b,
            "tsmm",
            flops_per_cell=2.0 * dm.nrow / max(dm.rdd.num_partitions, 1),
        )
        return DistributedMatrix(rdd, dm.ncol, dm.ncol)

    def cpmm(self, a: DistributedMatrix, b: DistributedMatrix) -> DistributedMatrix:
        """Shuffle-based multiply of two aligned distributed matrices:
        ``t(A) %*% B`` with A, B row-block aligned (cross-product pattern)."""
        zipped = a.rdd.zip_blocks(
            b.rdd, lambda x, y: x.T @ y, "cpmm_partial",
            flops_per_cell=2.0 * min(a.nrow, b.nrow) / max(a.rdd.num_partitions, 1),
        )
        rdd = zipped.aggregate_to_single(
            lambda blk: blk, lambda x, y: x + y, "cpmm",
        )
        return DistributedMatrix(rdd, a.ncol, b.ncol)

    # -- reorg / aggregates ---------------------------------------------------

    def transpose(self, dm: DistributedMatrix) -> DistributedMatrix:
        """Shuffle-based transpose (row blocks -> row blocks of X^T)."""
        block_rows = self.sc.config.block_size_rows
        out_parts = max(1, -(-dm.ncol // block_rows))

        def map_side(idx: int, blk: np.ndarray) -> dict[int, np.ndarray]:
            out: dict[int, np.ndarray] = {}
            t = blk.T  # (ncol x block_rows)
            for o in range(out_parts):
                lo = o * block_rows
                piece = t[lo:lo + block_rows]
                if piece.size:
                    out[o] = piece
            return out

        def reduce_side(blocks: list[np.ndarray]) -> np.ndarray:
            return np.hstack(blocks)

        rdd = dm.rdd.shuffle(map_side, reduce_side, out_parts, "r'")
        return DistributedMatrix(rdd, dm.ncol, dm.nrow)

    def slice_rows(self, dm: DistributedMatrix, rl0: int,
                   ru0: int) -> DistributedMatrix:
        """Row range ``[rl0, ru0)`` (0-based) via a repartitioning shuffle."""
        bs = self.sc.config.block_size_rows
        out_rows = ru0 - rl0
        out_parts = max(1, -(-out_rows // bs))

        def map_side(idx: int, blk: np.ndarray,
                     bs=bs, rl0=rl0, ru0=ru0) -> dict[int, np.ndarray]:
            lo = idx * bs
            s = max(lo, rl0)
            e = min(lo + blk.shape[0], ru0)
            out: dict[int, np.ndarray] = {}
            while s < e:
                o = (s - rl0) // bs
                chunk_end = min(e, rl0 + (o + 1) * bs)
                out.setdefault(o, blk[s - lo:chunk_end - lo])
                s = chunk_end
            return out

        def reduce_side(blocks: list[np.ndarray]) -> np.ndarray:
            return np.vstack(blocks) if len(blocks) > 1 else blocks[0]

        rdd = dm.rdd.shuffle(map_side, reduce_side, out_parts, "sliceRows")
        return DistributedMatrix(rdd, out_rows, dm.ncol)

    def row_sums(self, dm: DistributedMatrix) -> DistributedMatrix:
        rdd = dm.rdd.map_blocks(
            lambda b: b.sum(axis=1, keepdims=True), "uark+"
        )
        return DistributedMatrix(rdd, dm.nrow, 1)

    def col_sums_action(self, dm: DistributedMatrix) -> MatrixValue:
        """colSums as an action (single-block aggregate via ``reduce``)."""
        partial = dm.rdd.map_blocks(
            lambda b: b.sum(axis=0, keepdims=True), "uack+_partial"
        )
        return MatrixValue(self.sc.reduce(partial, lambda a, b: a + b))

    def sum_action(self, dm: DistributedMatrix) -> float:
        """Full-matrix sum as an action."""
        partial = dm.rdd.map_blocks(
            lambda b: np.array([[b.sum()]]), "uak+_partial"
        )
        return float(self.sc.reduce(partial, lambda a, b: a + b)[0, 0])

    def rbind(self, a: DistributedMatrix, b: DistributedMatrix) -> DistributedMatrix:
        """Row append with re-blocking into uniform row partitions.

        Every operator that maps partition index to global row offsets
        (broadcast-left multiplies, row slicing) relies on the invariant
        that partition *i* holds rows ``[i*bs, (i+1)*bs)``; a plain union
        would break it, so the append shuffles rows back into uniform
        blocks — matching SystemDS's reblock after rbind.
        """
        bs = self.sc.config.block_size_rows
        union = _UnionRDD(a.rdd, b.rdd)
        pa = a.rdd.num_partitions
        a_rows = a.nrow
        total = a.nrow + b.nrow
        out_parts = max(1, -(-total // bs))

        def map_side(idx: int, blk: np.ndarray,
                     bs=bs, pa=pa, a_rows=a_rows) -> dict[int, np.ndarray]:
            start = idx * bs if idx < pa else a_rows + (idx - pa) * bs
            out: dict[int, np.ndarray] = {}
            s = 0
            while s < blk.shape[0]:
                g = start + s
                o = g // bs
                take = min(blk.shape[0] - s, (o + 1) * bs - g)
                out[o] = blk[s:s + take]
                s += take
            return out

        def reduce_side(blocks: list[np.ndarray]) -> np.ndarray:
            return np.vstack(blocks) if len(blocks) > 1 else blocks[0]

        rdd = union.shuffle(map_side, reduce_side, out_parts, "rbind")
        return DistributedMatrix(rdd, total, a.ncol)


from repro.backends.spark.rdd import NarrowDependency  # noqa: E402


class _UnionRDD(RDD):
    """Concatenation of two RDDs' partition lists (Spark ``union``)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.context,
            [NarrowDependency(left), NarrowDependency(right)],
            left.num_partitions + right.num_partitions,
            "union",
        )

    def compute(self, index: int, metrics) -> np.ndarray:
        left = self.deps[0].rdd
        if index < left.num_partitions:
            return left.get_partition(index, metrics)
        return self.deps[1].rdd.get_partition(index - left.num_partitions, metrics)
