"""Cluster-wide BlockManager: storage memory, partition eviction, spilling.

Models the aggregate storage region of all executors (paper §2.2): cached
RDD partitions live here under a byte budget.  When the region overflows,
LRU partitions of *other* RDDs are evicted — dropped for ``MEMORY_ONLY``
or spilled to executor-local disk for ``MEMORY_AND_DISK``.  Dropped
partitions of persisted RDDs are transparently recomputed from lineage on
the next access, exactly like Spark.

Storage-memory accounting and victim selection route through the shared
:class:`~repro.memory.arbiter.MemoryArbiter` (the ``SP_BLOCKS`` region);
Spark's native LRU order is the region's default eviction policy over
per-partition access stamps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.common.config import SparkConfig, StorageLevel
from repro.common.stats import (
    FAULT_PARTITIONS_DROPPED,
    SPARK_PART_EVICTED,
    SPARK_PART_SPILLED,
    Stats,
)
from repro.backends.spark.rdd import TaskMetrics
from repro.memory import REGION_SPARK_STORAGE, MemoryArbiter
from repro.obs.events import (
    EV_SPARK_PART_EVICT,
    EV_SPARK_PART_SPILL,
    LANE_SP,
)
from repro.obs.tracer import NULL_TRACER


@dataclass
class _CachedPartition:
    block: np.ndarray
    nbytes: int
    level: StorageLevel
    on_disk: bool = False
    key: tuple[int, int] = field(default=(0, 0))
    # policy-visible metadata (Evictable protocol): LRU reads
    # ``last_access``; cost_size/lrc/mrd read the reference counters.
    size: int = 0
    compute_cost: float = 0.0
    last_access: int = 0
    hits: int = 0
    misses: int = 0
    jobs: int = 0


class BlockManager:
    """Unified storage region shared by all executors of the cluster.

    Models Spark's aggregate storage memory (paper §2.2): cached RDD
    partitions under a byte budget with LRU eviction and disk spilling —
    the memory pressure MEMPHIS's Spark cache manager negotiates with
    when deciding storage levels (§5.2).
    """

    def __init__(self, config: SparkConfig, stats: Stats,
                 tracer=None, faults=None, arbiter=None) -> None:
        self._config = config
        self._stats = stats
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if arbiter is None:
            arbiter = MemoryArbiter(stats, tracer=self._tracer, faults=faults)
        self.arbiter: MemoryArbiter = arbiter
        self._faults = faults if faults is not None else arbiter.faults
        self._region = arbiter.add_region(
            REGION_SPARK_STORAGE,
            config.storage_memory * config.num_executors,
            policy_name=config.policy,
        )
        self._partitions: OrderedDict[tuple[int, int], _CachedPartition] = OrderedDict()
        self._tick = 0
        #: RDD id currently being materialized (its partitions are exempt
        #: from eviction, mirroring Spark's unroll-memory protection).
        self._computing_rdd: Optional[int] = None

    @property
    def capacity(self) -> int:
        """Total storage memory across executors."""
        return self._config.storage_memory * self._config.num_executors

    @property
    def memory_used(self) -> int:
        return self._region.used

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (``repro.obs.metrics``).

        ``spark/storage_vs_exec_frac`` is the share of the *unified*
        region (storage + execution) currently holding cached storage —
        the curve that shows storage squeezing execution memory.
        """
        config = self._config
        unified = (
            (config.storage_memory + config.execution_memory)
            * config.num_executors
        )
        capacity = self.capacity
        used = self.memory_used
        return {
            "spark/storage_used_frac": used / capacity if capacity else 0.0,
            "spark/storage_vs_exec_frac": used / unified if unified else 0.0,
            "spark/partitions_cached": float(len(self._partitions)),
        }

    def set_computing(self, rdd_id: Optional[int]) -> None:
        """Protect ``rdd_id``'s partitions from eviction while it runs."""
        self._computing_rdd = rdd_id

    def _touch(self, part: _CachedPartition) -> None:
        self._tick += 1
        part.last_access = self._tick

    # -- cache operations ---------------------------------------------------

    def put_partition(self, rdd_id: int, index: int, block: np.ndarray,
                      level: StorageLevel) -> bool:
        """Cache one partition; returns False if it could not be stored."""
        key = (rdd_id, index)
        existing = self._partitions.get(key)
        if existing is not None:
            self._touch(existing)
            self._partitions.move_to_end(key)
            return True
        nbytes = int(block.nbytes)
        if level is StorageLevel.DISK_ONLY:
            if self._spill_failed(key, nbytes):
                return False
            self._store(key, block, nbytes, level, on_disk=True)
            self._stats.inc(SPARK_PART_SPILLED)
            self._trace(EV_SPARK_PART_SPILL, key, nbytes)
            return True
        if not self._evict_until_fits(nbytes, protect_rdd=rdd_id):
            if level is StorageLevel.MEMORY_AND_DISK:
                if self._spill_failed(key, nbytes):
                    return False
                self._store(key, block, nbytes, level, on_disk=True)
                self._stats.inc(SPARK_PART_SPILLED)
                self._trace(EV_SPARK_PART_SPILL, key, nbytes)
                return True
            return False
        self._store(key, block, nbytes, level, on_disk=False)
        self.arbiter.acquire(REGION_SPARK_STORAGE, nbytes)
        return True

    def _store(self, key: tuple[int, int], block: np.ndarray, nbytes: int,
               level: StorageLevel, on_disk: bool) -> None:
        part = _CachedPartition(block, nbytes, level, on_disk=on_disk,
                                key=key, size=nbytes)
        self._touch(part)
        self._partitions[key] = part

    def get_partition(self, rdd_id: int, index: int,
                      metrics: TaskMetrics) -> Optional[np.ndarray]:
        """Fetch a cached partition (disk reads are charged to the task)."""
        part = self._partitions.get((rdd_id, index))
        if part is None:
            return None
        if part.on_disk:
            metrics.bytes_spilled += part.nbytes
        part.hits += 1
        self._touch(part)
        self._partitions.move_to_end((rdd_id, index))
        return part.block

    def drop_rdd(self, rdd_id: int) -> int:
        """Remove every partition of ``rdd_id`` (unpersist); returns bytes freed."""
        freed = 0
        for key in [k for k in self._partitions if k[0] == rdd_id]:
            part = self._partitions.pop(key)
            if not part.on_disk:
                self.arbiter.release(REGION_SPARK_STORAGE, part.nbytes)
                freed += part.nbytes
        return freed

    def rdd_storage_info(self, rdd_id: int, num_partitions: int) -> dict:
        """Spark's ``getRDDStorageInfo``: materialization status and sizes."""
        cached = [k for k in self._partitions if k[0] == rdd_id]
        mem_bytes = sum(
            self._partitions[k].nbytes for k in cached
            if not self._partitions[k].on_disk
        )
        disk_bytes = sum(
            self._partitions[k].nbytes for k in cached
            if self._partitions[k].on_disk
        )
        return {
            "num_cached_partitions": len(cached),
            "num_partitions": num_partitions,
            "fully_cached": len(cached) >= num_partitions > 0,
            "memory_bytes": mem_bytes,
            "disk_bytes": disk_bytes,
        }

    def cached_rdd_ids(self) -> set[int]:
        """Ids of all RDDs with at least one cached partition."""
        return {k[0] for k in self._partitions}

    # -- eviction ------------------------------------------------------------

    def _candidates(self, protect_rdd: int) -> list[_CachedPartition]:
        return [
            part for k, part in self._partitions.items()
            if not part.on_disk
            and k[0] != protect_rdd
            and k[0] != self._computing_rdd
        ]

    def _evict(self, victim: _CachedPartition) -> None:
        """Drop or spill one victim partition (the region's physics)."""
        victim_key = victim.key
        self.arbiter.release(REGION_SPARK_STORAGE, victim.nbytes)
        self.arbiter.record_evict(REGION_SPARK_STORAGE, victim.nbytes,
                                  rdd=victim_key[0])
        if (victim.level is StorageLevel.MEMORY_AND_DISK
                and not self._spill_failed(victim_key, victim.nbytes)):
            victim.on_disk = True
            self._stats.inc(SPARK_PART_SPILLED)
            self.arbiter.record_spill(REGION_SPARK_STORAGE, victim.nbytes,
                                      rdd=victim_key[0])
            self._trace(EV_SPARK_PART_SPILL, victim_key, victim.nbytes)
        else:
            del self._partitions[victim_key]
            self._stats.inc(SPARK_PART_EVICTED)
            self._trace(EV_SPARK_PART_EVICT, victim_key, victim.nbytes)

    def _evict_until_fits(self, nbytes: int, protect_rdd: int) -> bool:
        """Evict partitions of other RDDs until ``nbytes`` fit."""
        return self.arbiter.ensure_space(
            REGION_SPARK_STORAGE, nbytes,
            candidates=lambda: self._candidates(protect_rdd),
            evict=self._evict, now=self._tick,
        )

    # -- fault injection -----------------------------------------------------

    def _spill_failed(self, key: tuple[int, int], nbytes: int) -> bool:
        """Draw a spill I/O fault; a failed spill loses the partition.

        The partition is simply not stored (or dropped, for an eviction
        spill) — persisted RDDs recompute it from lineage on the next
        access, so the fault costs recomputation, never correctness.
        """
        return self.arbiter.spill_fault(LANE_SP, rdd=key[0],
                                        partition=key[1], nbytes=nbytes)

    def drop_executor(self, executor_id: int, num_executors: int) -> int:
        """Drop every partition striped onto a lost executor.

        Partition ``index`` lives on executor ``index % num_executors``;
        both memory- and disk-resident copies die with the executor
        (executor-local disk).  Returns the number of partitions lost.
        """
        lost = [
            key for key in self._partitions
            if key[1] % num_executors == executor_id
        ]
        for key in lost:
            part = self._partitions.pop(key)
            if not part.on_disk:
                self.arbiter.release(REGION_SPARK_STORAGE, part.nbytes)
            self._trace(EV_SPARK_PART_EVICT, key, part.nbytes)
        if lost:
            self._stats.inc(FAULT_PARTITIONS_DROPPED, len(lost))
        return len(lost)

    def _trace(self, name: str, key: tuple[int, int], nbytes: int) -> None:
        """Emit a storage event on the cluster lane (no-op when off)."""
        if self._tracer.enabled:
            self._tracer.instant(name, LANE_SP, rdd=key[0],
                                 partition=key[1], nbytes=nbytes)
