"""TorrentBroadcast simulation (paper §2.2).

``broadcast(value)`` serializes the value into 4 MB chunks held in the
*driver's* BlockManager; chunks are transferred lazily to executors when a
job first uses the variable.  Until ``destroy()`` the serialized data
occupies driver memory — the "dangling reference" problem that MEMPHIS's
lazy garbage collection addresses (§4.1, Fig. 2(b)).
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.spark.rdd import TaskMetrics
from repro.common.stats import SPARK_BROADCASTS, Stats

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.spark.context import SparkContext

_bc_ids = itertools.count(1)


class Broadcast:
    """A broadcast variable with torrent-style lazy chunk transfer.

    Spark's TorrentBroadcast (paper §2.2): serialized chunks retain
    driver memory until ``destroy()`` — the dangling-reference leak of
    Fig. 2(b) that MEMPHIS's lazy broadcast GC reclaims (§4.1).
    """

    def __init__(self, context: "SparkContext", value: np.ndarray) -> None:
        self.id = next(_bc_ids)
        self.context = context
        self._value = value
        self.nbytes = int(value.nbytes)
        self.num_chunks = max(
            1, math.ceil(self.nbytes / context.config.broadcast_chunk_bytes)
        )
        self.transferred = False
        self.destroyed = False
        context.driver_retained_bytes += self.nbytes
        context.stats.inc(SPARK_BROADCASTS)

    def value_on_executor(self, metrics: TaskMetrics) -> np.ndarray:
        """Executor-side access; first use charges the torrent transfer."""
        if self.destroyed:
            raise RuntimeError(f"broadcast {self.id} used after destroy()")
        if not self.transferred:
            # the torrent protocol parallelizes re-distribution among
            # executors, so only the driver->first-executor leg is charged.
            metrics.bytes_read += self.nbytes
            self.transferred = True
        return self._value

    def destroy(self) -> None:
        """Release driver memory held by the serialized chunks."""
        if not self.destroyed:
            self.destroyed = True
            self.context.driver_retained_bytes -= self.nbytes
