"""Spark backend simulator: lazy RDDs, DAG scheduling, memory management."""

from repro.backends.spark.backend import DistributedMatrix, SparkBackend
from repro.backends.spark.blockmanager import BlockManager
from repro.backends.spark.broadcast import Broadcast
from repro.backends.spark.context import SparkContext
from repro.backends.spark.rdd import (
    RDD,
    MappedRDD,
    NarrowDependency,
    ParallelizedRDD,
    ShuffleDependency,
    ShuffledRDD,
    TaskMetrics,
    ZippedRDD,
)
from repro.backends.spark.scheduler import DAGScheduler, JobResult

__all__ = [
    "SparkBackend",
    "DistributedMatrix",
    "BlockManager",
    "Broadcast",
    "SparkContext",
    "RDD",
    "MappedRDD",
    "NarrowDependency",
    "ParallelizedRDD",
    "ShuffleDependency",
    "ShuffledRDD",
    "TaskMetrics",
    "ZippedRDD",
    "DAGScheduler",
    "JobResult",
]
