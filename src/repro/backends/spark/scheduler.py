"""DAGScheduler: stage splitting at shuffle boundaries and job execution.

An action triggers :meth:`DAGScheduler.execute`, which walks the RDD
lineage, finds every unmaterialized :class:`ShuffleDependency`, runs map
stages in dependency order (writing shuffle files), then runs the result
stage.  The simulated job duration follows the standard cluster model::

    stage_time = task_overhead + max(longest_task, total_work / slots)
    job_time   = job_overhead + sum(stage_times)

Shuffle files persist across jobs (implicit Spark caching), so repeated
jobs over a shared dependency skip the map side — the shuffle-file reuse
MEMPHIS relies on for unmaterialized cached RDDs (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.spark.rdd import RDD, ShuffleDependency, TaskMetrics
from repro.common.stats import (
    SPARK_JOBS,
    SPARK_SHUFFLE_REUSE,
    SPARK_TASKS,
)
from repro.obs.events import EV_SPARK_SHUFFLE_REUSE, LANE_SP

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.spark.context import SparkContext


@dataclass
class JobResult:
    """Outcome of one Spark job (stage/task counts per §2.2's model)."""

    partitions: list[np.ndarray]
    duration: float
    num_stages: int
    num_tasks: int
    #: per-stage (kind, num_tasks, duration) records, in execution
    #: order; consumed by the tracer to render stage spans inside the
    #: job span on the cluster lane.
    stages: list[tuple[str, int, float]] = field(default_factory=list)
    result_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.result_bytes = int(sum(p.nbytes for p in self.partitions))


class DAGScheduler:
    """Builds and runs the stage DAG of one job.

    Splits the RDD lineage at shuffle boundaries into map and result
    stages (paper §2.2) and skips map stages whose shuffle files
    already exist — the reuse path of §4.1.
    """

    def __init__(self, context: "SparkContext") -> None:
        self.context = context

    def execute(self, rdd: RDD) -> JobResult:
        """Run a job whose result stage materializes all of ``rdd``."""
        cfg = self.context.config
        stats = self.context.stats
        stats.inc(SPARK_JOBS)
        outer_memo = self.context.job_memo
        self.context.job_memo = {}

        pending = self._pending_shuffles(rdd)
        stage_times: list[float] = []
        stages: list[tuple[str, int, float]] = []
        total_tasks = 0

        for dep in pending:
            stage_times.append(self._run_map_stage(dep))
            stages.append(
                ("shuffle_map", dep.rdd.num_partitions, stage_times[-1])
            )
            total_tasks += dep.rdd.num_partitions

        # result stage
        task_times: list[float] = []
        partitions: list[np.ndarray] = []
        self.context.block_manager.set_computing(rdd.id)
        try:
            for idx in range(rdd.num_partitions):
                metrics = TaskMetrics()
                partitions.append(rdd.get_partition(idx, metrics))
                task_times.append(self._task_time(metrics))
        finally:
            self.context.block_manager.set_computing(None)
        stage_times.append(self._stage_time(task_times))
        stages.append(("result", rdd.num_partitions, stage_times[-1]))
        total_tasks += rdd.num_partitions
        stats.inc(SPARK_TASKS, total_tasks)
        self.context.job_memo = outer_memo

        duration = cfg.job_overhead_s + sum(stage_times)
        return JobResult(partitions, duration, len(stage_times), total_tasks,
                         stages)

    # -- internals -----------------------------------------------------------

    def _pending_shuffles(self, rdd: RDD) -> list[ShuffleDependency]:
        """Unmaterialized shuffle dependencies, parents before children."""
        order: list[ShuffleDependency] = []
        seen: set[int] = set()

        def visit(node: RDD) -> None:
            if node.id in seen:
                return
            seen.add(node.id)
            # a fully cached persisted RDD needs no upstream computation
            if node.is_persisted:
                info = self.context.block_manager.rdd_storage_info(
                    node.id, node.num_partitions
                )
                if info["fully_cached"]:
                    return
            for dep in node.deps:
                visit(dep.rdd)
                if isinstance(dep, ShuffleDependency):
                    if dep.shuffle_files is None:
                        order.append(dep)
                    else:
                        self.context.stats.inc(SPARK_SHUFFLE_REUSE)
                        tracer = self.context.tracer
                        if tracer.enabled:
                            tracer.instant(
                                EV_SPARK_SHUFFLE_REUSE, LANE_SP,
                                rdd=node.name,
                                nbytes=dep.shuffle_bytes,
                            )

        visit(rdd)
        return order

    def _run_map_stage(self, dep: ShuffleDependency) -> float:
        """Execute the map side of one shuffle and retain its files."""
        parent = dep.rdd
        files: list[dict[int, np.ndarray]] = []
        task_times: list[float] = []
        self.context.block_manager.set_computing(parent.id)
        try:
            for idx in range(parent.num_partitions):
                metrics = TaskMetrics()
                block = parent.get_partition(idx, metrics)
                out = dep.map_side(idx, block)
                write_bytes = sum(b.nbytes for b in out.values())
                metrics.bytes_shuffled += write_bytes
                metrics.flops += block.size  # map-side combine work
                files.append(out)
                task_times.append(self._task_time(metrics))
        finally:
            self.context.block_manager.set_computing(None)
        dep.shuffle_files = files
        dep.shuffle_bytes = sum(
            b.nbytes for out in files for b in out.values()
        )
        self.context.shuffle_store_bytes += dep.shuffle_bytes
        return self._stage_time(task_times)

    def _task_time(self, metrics: TaskMetrics) -> float:
        cfg = self.context.config
        return (
            cfg.task_overhead_s
            + metrics.flops / cfg.executor_flops_per_s
            + metrics.bytes_read / cfg.bandwidth_bytes_per_s
            + metrics.bytes_shuffled / cfg.shuffle_bytes_per_s
            + metrics.bytes_spilled / cfg.disk_bytes_per_s
        )

    def _stage_time(self, task_times: list[float]) -> float:
        if not task_times:
            return 0.0
        cfg = self.context.config
        slots = cfg.num_executors * cfg.cores_per_executor
        return max(max(task_times), sum(task_times) / slots)
