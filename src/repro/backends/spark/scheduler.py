"""DAGScheduler: stage splitting at shuffle boundaries and job execution.

An action triggers :meth:`DAGScheduler.execute`, which walks the RDD
lineage, finds every unmaterialized :class:`ShuffleDependency`, runs map
stages in dependency order (writing shuffle files), then runs the result
stage.  The simulated job duration follows the standard cluster model::

    stage_time = task_overhead + max(longest_task, total_work / slots)
    job_time   = job_overhead + sum(stage_times)

Shuffle files persist across jobs (implicit Spark caching), so repeated
jobs over a shared dependency skip the map side — the shuffle-file reuse
MEMPHIS relies on for unmaterialized cached RDDs (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.spark.rdd import RDD, ShuffleDependency, TaskMetrics
from repro.common.errors import FaultInjectionError
from repro.common.stats import (
    FAULT_SPARK_TASK_RETRIES,
    SPARK_JOBS,
    SPARK_SHUFFLE_REUSE,
    SPARK_TASKS,
)
from repro.faults.plan import KIND_SPARK_TASK
from repro.obs.events import EV_SPARK_SHUFFLE_REUSE, LANE_SP

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.spark.context import SparkContext


@dataclass
class JobResult:
    """Outcome of one Spark job (stage/task counts per §2.2's model)."""

    partitions: list[np.ndarray]
    duration: float
    num_stages: int
    num_tasks: int
    #: per-stage (kind, num_tasks, duration) records, in execution
    #: order; consumed by the tracer to render stage spans inside the
    #: job span on the cluster lane.
    stages: list[tuple[str, int, float]] = field(default_factory=list)
    result_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.result_bytes = int(sum(p.nbytes for p in self.partitions))


class DAGScheduler:
    """Builds and runs the stage DAG of one job.

    Splits the RDD lineage at shuffle boundaries into map and result
    stages (paper §2.2) and skips map stages whose shuffle files
    already exist — the reuse path of §4.1.
    """

    def __init__(self, context: "SparkContext") -> None:
        self.context = context

    def execute(self, rdd: RDD) -> JobResult:
        """Run a job whose result stage materializes all of ``rdd``."""
        cfg = self.context.config
        stats = self.context.stats
        stats.inc(SPARK_JOBS)
        outer_memo = self.context.job_memo
        self.context.job_memo = {}

        pending = self._pending_shuffles(rdd)
        stage_times: list[float] = []
        stages: list[tuple[str, int, float]] = []
        total_tasks = 0

        for dep in pending:
            stage_time, tasks_run = self._run_map_stage(dep)
            stage_times.append(stage_time)
            stages.append(("shuffle_map", tasks_run, stage_times[-1]))
            total_tasks += tasks_run

        # result stage
        task_times: list[float] = []
        partitions: list[np.ndarray] = []
        self.context.block_manager.set_computing(rdd.id)
        try:
            for idx in range(rdd.num_partitions):
                partitions.append(self._run_task(
                    rdd, idx, task_times,
                    lambda metrics, i=idx: rdd.get_partition(i, metrics),
                ))
        finally:
            self.context.block_manager.set_computing(None)
        stage_times.append(self._stage_time(task_times))
        stages.append(("result", rdd.num_partitions, stage_times[-1]))
        total_tasks += rdd.num_partitions
        stats.inc(SPARK_TASKS, total_tasks)
        self.context.job_memo = outer_memo

        duration = cfg.job_overhead_s + sum(stage_times)
        return JobResult(partitions, duration, len(stage_times), total_tasks,
                         stages)

    # -- internals -----------------------------------------------------------

    def _pending_shuffles(self, rdd: RDD) -> list[ShuffleDependency]:
        """Unmaterialized shuffle dependencies, parents before children."""
        order: list[ShuffleDependency] = []
        seen: set[int] = set()

        def visit(node: RDD) -> None:
            if node.id in seen:
                return
            seen.add(node.id)
            # a fully cached persisted RDD needs no upstream computation
            if node.is_persisted:
                info = self.context.block_manager.rdd_storage_info(
                    node.id, node.num_partitions
                )
                if info["fully_cached"]:
                    return
            for dep in node.deps:
                visit(dep.rdd)
                if isinstance(dep, ShuffleDependency):
                    if dep.shuffle_files is None or any(
                        f is None for f in dep.shuffle_files
                    ):
                        # never written, or holes punched by executor
                        # loss: (re)run the map stage for missing files
                        order.append(dep)
                    else:
                        self.context.stats.inc(SPARK_SHUFFLE_REUSE)
                        tracer = self.context.tracer
                        if tracer.enabled:
                            tracer.instant(
                                EV_SPARK_SHUFFLE_REUSE, LANE_SP,
                                rdd=node.name,
                                nbytes=dep.shuffle_bytes,
                            )

        visit(rdd)
        return order

    def _run_map_stage(self, dep: ShuffleDependency) -> tuple[float, int]:
        """Execute the map side of one shuffle and retain its files.

        Map tasks run only for missing per-partition files, so after an
        executor loss punches ``None`` holes into ``shuffle_files`` the
        stage recomputes exactly the lost map outputs from RDD lineage
        (Spark's partial stage resubmission).  Returns the stage time and
        the number of map tasks actually run.
        """
        parent = dep.rdd
        files: list = (
            list(dep.shuffle_files) if dep.shuffle_files is not None
            else [None] * parent.num_partitions
        )
        task_times: list[float] = []
        tasks_run = 0
        written = 0
        self.context.block_manager.set_computing(parent.id)
        try:
            for idx in range(parent.num_partitions):
                if files[idx] is not None:
                    continue

                def map_task(metrics: TaskMetrics, i: int = idx):
                    block = parent.get_partition(i, metrics)
                    out = dep.map_side(i, block)
                    metrics.bytes_shuffled += sum(
                        b.nbytes for b in out.values()
                    )
                    metrics.flops += block.size  # map-side combine work
                    return out

                out = self._run_task(parent, idx, task_times, map_task)
                files[idx] = out
                written += sum(b.nbytes for b in out.values())
                tasks_run += 1
        finally:
            self.context.block_manager.set_computing(None)
        dep.shuffle_files = files
        dep.shuffle_bytes = sum(
            b.nbytes for out in files for b in out.values()
        )
        self.context.shuffle_store_bytes += written
        return self._stage_time(task_times), tasks_run

    def _run_task(self, rdd: RDD, idx: int, task_times: list[float],
                  body) -> object:
        """Run one task, absorbing injected failures by retrying.

        Each attempt charges its own task time (the stage model treats a
        retry as an extra task competing for the same slots).  A failed
        attempt's partial result is discarded — the per-job memo entry is
        dropped so the retry recomputes the partition from RDD lineage.
        """
        faults = self.context.faults
        fault = faults.spark_task() if faults.enabled else None
        attempt = 0
        while True:
            metrics = TaskMetrics()
            value = body(metrics)
            task_times.append(self._task_time(metrics))
            if fault is None or not fault.take():
                break
            attempt += 1
            self.context.stats.inc(FAULT_SPARK_TASK_RETRIES)
            faults.injected(KIND_SPARK_TASK, LANE_SP, rdd=rdd.name,
                            partition=idx, attempt=attempt)
            if attempt > faults.plan.max_task_retries:
                raise FaultInjectionError(
                    f"spark task for partition {idx} of {rdd.name!r} "
                    f"failed {attempt} times "
                    f"(budget {faults.plan.max_task_retries})"
                )
            self.context.job_memo.pop((rdd.id, idx), None)
        if attempt:
            faults.recovered(KIND_SPARK_TASK, LANE_SP, rdd=rdd.name,
                             partition=idx, attempts=attempt + 1)
        return value

    def _task_time(self, metrics: TaskMetrics) -> float:
        cfg = self.context.config
        return (
            cfg.task_overhead_s
            + metrics.flops / cfg.executor_flops_per_s
            + metrics.bytes_read / cfg.bandwidth_bytes_per_s
            + metrics.bytes_shuffled / cfg.shuffle_bytes_per_s
            + metrics.bytes_spilled / cfg.disk_bytes_per_s
        )

    def _stage_time(self, task_times: list[float]) -> float:
        if not task_times:
            return 0.0
        cfg = self.context.config
        slots = cfg.num_executors * cfg.cores_per_executor
        return max(max(task_times), sum(task_times) / slots)
