"""RDD abstraction: lazy, partitioned, immutable distributed collections.

Distributed matrices are row-block partitioned: partition *i* holds rows
``[i*bs, (i+1)*bs)`` as a dense numpy block, mirroring SystemDS's binary
block matrices on Spark.  Transformations are lazy — they only build RDD
lineage — and actions trigger the :class:`~repro.backends.spark.scheduler.
DAGScheduler` to run a job (paper §2.2).

Two dependency types drive stage splitting:

* :class:`NarrowDependency` — each output partition depends on one parent
  partition (map, zip, broadcast-side operations);
* :class:`ShuffleDependency` — all-to-all; the map side writes shuffle
  files which Spark implicitly caches until destroyed, enabling the
  shuffle-file reuse the paper exploits for unmaterialized cached RDDs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.common.config import StorageLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.spark.broadcast import Broadcast
    from repro.backends.spark.context import SparkContext

_rdd_ids = itertools.count(1)


class TaskMetrics:
    """Per-task cost accumulator used by the scheduler's time model.

    Feeds the stage-time formula of §2.2 (flops, input reads, shuffle
    writes, disk spills) that the DAGScheduler turns into simulated
    cluster time.
    """

    __slots__ = ("flops", "bytes_read", "bytes_shuffled", "bytes_spilled")

    def __init__(self) -> None:
        self.flops = 0.0
        self.bytes_read = 0
        self.bytes_shuffled = 0
        self.bytes_spilled = 0


class NarrowDependency:
    """1:1 partition dependency (no stage boundary, paper §2.2)."""

    __slots__ = ("rdd",)

    def __init__(self, rdd: "RDD") -> None:
        self.rdd = rdd


class ShuffleDependency:
    """All-to-all dependency with map-side shuffle-file caching.

    ``map_side`` maps ``(partition_index, block) -> {out_partition: block}``;
    ``reduce_side`` folds the collected blocks of one output partition.
    After the map stage runs once, ``shuffle_files`` retains the map
    outputs; subsequent jobs over the same dependency skip the map side —
    the implicit shuffle-file caching MEMPHIS exploits to reuse
    unmaterialized cached RDDs (paper §4.1).
    """

    __slots__ = ("rdd", "map_side", "reduce_side", "num_out_partitions",
                 "shuffle_files", "shuffle_bytes")

    def __init__(self, rdd: "RDD",
                 map_side: Callable[[int, np.ndarray], dict[int, np.ndarray]],
                 reduce_side: Callable[[list[np.ndarray]], np.ndarray],
                 num_out_partitions: int) -> None:
        self.rdd = rdd
        self.map_side = map_side
        self.reduce_side = reduce_side
        self.num_out_partitions = num_out_partitions
        self.shuffle_files: Optional[list[dict[int, np.ndarray]]] = None
        self.shuffle_bytes = 0


class RDD:
    """Base class of all RDD flavours.

    Lazy, immutable, lineage-tracked distributed collection (paper
    §2.2); the SP-backend payload unit of the hierarchical lineage
    cache (Table 1).
    """

    def __init__(self, context: "SparkContext", deps: list,
                 num_partitions: int, name: str) -> None:
        self.id = next(_rdd_ids)
        self.context = context
        self.deps = deps
        self.num_partitions = num_partitions
        self.name = name
        self.storage_level: Optional[StorageLevel] = None
        self._materialized_once: set[int] = set()
        #: broadcast variables referenced by this RDD's closures (tracked
        #: explicitly so MEMPHIS's lazy GC can destroy them, §4.1).
        self.broadcast_refs: list["Broadcast"] = []
        context.register_rdd(self)

    # -- persistence -------------------------------------------------------

    def persist(self, level: StorageLevel = StorageLevel.MEMORY_AND_DISK) -> "RDD":
        """Mark this RDD for caching; materialization is lazy (§2.2)."""
        self.storage_level = level
        return self

    def unpersist(self) -> "RDD":
        """Asynchronously drop cached partitions of this RDD."""
        self.storage_level = None
        self.context.block_manager.drop_rdd(self.id)
        return self

    @property
    def is_persisted(self) -> bool:
        return self.storage_level is not None

    # -- lineage -----------------------------------------------------------

    def parents(self) -> list["RDD"]:
        """Parent RDDs over both dependency kinds."""
        return [d.rdd for d in self.deps]

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        """Compute partition ``index`` (narrow chain, consults the cache)."""
        raise NotImplementedError

    def get_partition(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        """Cached-or-computed partition access (Spark's ``iterator()``).

        Within one job, each partition is computed at most once even when
        referenced along several dependency paths — mirroring how real
        plans bound recomputation at shuffle/exchange boundaries.
        """
        bm = self.context.block_manager
        if self.is_persisted:
            cached = bm.get_partition(self.id, index, metrics)
            if cached is not None:
                return cached
            if index in self._materialized_once:
                self.context.note_partition_recomputed()
        memo = self.context.job_memo
        key = (self.id, index)
        if memo is not None and key in memo:
            return memo[key]
        block = self.compute(index, metrics)
        if memo is not None:
            memo[key] = block
        if self.is_persisted:
            self._materialized_once.add(index)
            bm.put_partition(self.id, index, block, self.storage_level)
        return block

    # -- transformations (lazy) --------------------------------------------

    def map_blocks(self, fn: Callable[[np.ndarray], np.ndarray],
                   name: str, flops_per_cell: float = 1.0) -> "MappedRDD":
        """Element-wise / per-block narrow transformation."""
        return MappedRDD(self, fn, name, flops_per_cell)

    def zip_blocks(self, other: "RDD",
                   fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                   name: str, flops_per_cell: float = 1.0) -> "ZippedRDD":
        """Partition-aligned binary narrow transformation."""
        return ZippedRDD(self, other, fn, name, flops_per_cell)

    def map_with_broadcast(self, bc: "Broadcast",
                           fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                           name: str, flops_per_cell: float = 1.0) -> "BroadcastMapRDD":
        """Narrow transformation against a broadcast variable (map-side join)."""
        return BroadcastMapRDD(self, bc, fn, name, flops_per_cell)

    def shuffle(self, map_side, reduce_side, num_out_partitions: int,
                name: str) -> "ShuffledRDD":
        """Generic wide transformation."""
        return ShuffledRDD(self, map_side, reduce_side, num_out_partitions, name)

    def aggregate_to_single(self, block_fn, comb_fn, name: str,
                            flops_per_cell: float = 1.0) -> "ShuffledRDD":
        """Map each block to a partial result and tree-combine to one
        partition — the shuffle-based pattern of ``t(X)%*%X`` (Fig. 6/7)."""

        def map_side(idx: int, block: np.ndarray) -> dict[int, np.ndarray]:
            return {0: block_fn(block)}

        def reduce_side(blocks: list[np.ndarray]) -> np.ndarray:
            out = blocks[0]
            for other in blocks[1:]:
                out = comb_fn(out, other)
            return out

        rdd = ShuffledRDD(self, map_side, reduce_side, 1, name)
        rdd.flops_per_cell = flops_per_cell
        return rdd

    def __repr__(self) -> str:
        return f"{type(self).__name__}#{self.id}({self.name}, p={self.num_partitions})"


class ParallelizedRDD(RDD):
    """Leaf RDD over a local matrix split into row blocks (§2.2)."""

    def __init__(self, context: "SparkContext", matrix: np.ndarray,
                 block_rows: int, name: str = "parallelize") -> None:
        self._blocks = [
            matrix[i:i + block_rows]
            for i in range(0, max(matrix.shape[0], 1), block_rows)
        ] or [matrix]
        super().__init__(context, [], len(self._blocks), name)

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        block = self._blocks[index]
        metrics.bytes_read += block.nbytes
        return block


class MappedRDD(RDD):
    """Narrow per-block map (element-wise Spark operators, Fig. 7)."""

    def __init__(self, parent: RDD, fn, name: str, flops_per_cell: float) -> None:
        super().__init__(parent.context, [NarrowDependency(parent)],
                         parent.num_partitions, name)
        self._fn = fn
        self._flops_per_cell = flops_per_cell

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        block = self.deps[0].rdd.get_partition(index, metrics)
        out = self._fn(block)
        metrics.flops += self._flops_per_cell * out.size
        return out


class ZippedRDD(RDD):
    """Narrow partition-aligned binary op (element-wise zips, Fig. 7)."""

    def __init__(self, left: RDD, right: RDD, fn, name: str,
                 flops_per_cell: float) -> None:
        if left.num_partitions != right.num_partitions:
            raise ValueError(
                f"zip requires aligned partitioning "
                f"({left.num_partitions} vs {right.num_partitions})"
            )
        super().__init__(left.context,
                         [NarrowDependency(left), NarrowDependency(right)],
                         left.num_partitions, name)
        self._fn = fn
        self._flops_per_cell = flops_per_cell

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        a = self.deps[0].rdd.get_partition(index, metrics)
        b = self.deps[1].rdd.get_partition(index, metrics)
        out = self._fn(a, b)
        metrics.flops += self._flops_per_cell * out.size
        return out


class BroadcastMapRDD(RDD):
    """Narrow map against a broadcast variable (e.g. ``y^T X``, Fig. 2(b))."""

    def __init__(self, parent: RDD, bc: "Broadcast", fn, name: str,
                 flops_per_cell: float) -> None:
        super().__init__(parent.context, [NarrowDependency(parent)],
                         parent.num_partitions, name)
        self.broadcast_var = bc
        self.broadcast_refs.append(bc)
        self._fn = fn
        self._flops_per_cell = flops_per_cell

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        block = self.deps[0].rdd.get_partition(index, metrics)
        value = self.broadcast_var.value_on_executor(metrics)
        out = self._fn(block, value)
        # flops_per_cell encodes the per-output-cell work (e.g. 2 * inner
        # dimension for a broadcast matrix multiply)
        metrics.flops += self._flops_per_cell * out.size
        return out


class ShuffledRDD(RDD):
    """Wide transformation; computing it requires its shuffle files.

    The shuffle side of stage splitting (paper §2.2); backs the
    ``tsmm``/``cpmm`` physical multiplies of Fig. 7.
    """

    def __init__(self, parent: RDD, map_side, reduce_side,
                 num_out_partitions: int, name: str) -> None:
        self.shuffle_dep = ShuffleDependency(
            parent, map_side, reduce_side, num_out_partitions
        )
        super().__init__(parent.context, [self.shuffle_dep],
                         num_out_partitions, name)
        self.flops_per_cell = 1.0

    def compute(self, index: int, metrics: TaskMetrics) -> np.ndarray:
        files = self.shuffle_dep.shuffle_files
        if files is None:
            raise RuntimeError(
                f"shuffle files of {self} not materialized; "
                "the DAGScheduler must run the map stage first"
            )
        blocks = [
            out[index] for out in files if index in out
        ]
        shuffle_bytes = sum(b.nbytes for b in blocks)
        metrics.bytes_shuffled += shuffle_bytes
        out = self.shuffle_dep.reduce_side(blocks)
        metrics.flops += self.flops_per_cell * out.size * max(len(blocks), 1)
        return out
