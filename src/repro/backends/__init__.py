"""Execution backends: local CPU, Spark cluster simulator, GPU simulator."""
