"""CPU buffer pool with byte budget and simulated disk spilling.

Models SystemDS's buffer pool: in-memory matrix blocks are pinned while in
use; unpinned blocks may be evicted to local disk under memory pressure
and restored on next access.  Because this is a simulator, evicted arrays
are retained in a shadow store and the pool charges simulated disk I/O
time instead of actually serializing them.

Byte accounting and victim selection route through the shared
:class:`~repro.memory.arbiter.MemoryArbiter` (the ``CPU_BP`` region);
the pool's native order is LRU, expressed as the region's eviction
policy over per-block access stamps rather than pool-local logic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.config import CpuConfig
from repro.common.errors import BufferPoolError
from repro.common.simclock import HOST, SimClock
from repro.common.stats import BUFFERPOOL_EVICTIONS, Stats
from repro.memory import REGION_BUFFERPOOL, MemoryArbiter
from repro.runtime.values import Value


@dataclass
class _Block:
    value: Value
    nbytes: int
    pinned: int = 0
    on_disk: bool = False
    # policy-visible metadata (Evictable protocol): LRU reads
    # ``last_access``; cost_size/lrc/mrd read the reference counters.
    size: int = 0
    compute_cost: float = 0.0
    last_access: int = 0
    hits: int = 0
    misses: int = 0
    jobs: int = 0


class BufferPool:
    """LRU buffer pool over named matrix blocks."""

    def __init__(self, config: CpuConfig, clock: SimClock, stats: Stats,
                 arbiter: MemoryArbiter | None = None) -> None:
        self._config = config
        self._clock = clock
        self._stats = stats
        if arbiter is None:
            arbiter = MemoryArbiter(stats)
        self.arbiter = arbiter
        self._region = arbiter.add_region(
            REGION_BUFFERPOOL, config.buffer_pool_bytes,
            policy_name=config.policy,
        )
        self._blocks: OrderedDict[int, _Block] = OrderedDict()
        self._tick = 0

    @property
    def in_memory_bytes(self) -> int:
        """Bytes currently resident in memory."""
        return self._region.used

    @property
    def capacity(self) -> int:
        return self._config.buffer_pool_bytes

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (``repro.obs.metrics``)."""
        capacity = self.capacity
        used = self.in_memory_bytes
        return {
            "bufferpool/resident_bytes": float(used),
            "bufferpool/occupancy": used / capacity if capacity else 0.0,
            "bufferpool/blocks": float(len(self._blocks)),
        }

    def _touch(self, block: _Block) -> None:
        self._tick += 1
        block.last_access = self._tick

    def put(self, block_id: int, value: Value) -> None:
        """Register a new block, evicting LRU blocks if over budget."""
        nbytes = value.nbytes
        if block_id in self._blocks:
            self.touch(block_id)
            return
        self._make_space(nbytes)
        block = _Block(value, nbytes, size=nbytes)
        self._touch(block)
        self._blocks[block_id] = block
        self.arbiter.acquire(REGION_BUFFERPOOL, nbytes)

    def get(self, block_id: int) -> Value:
        """Fetch a block, restoring it from disk if evicted."""
        block = self._blocks.get(block_id)
        if block is None:
            raise BufferPoolError(f"unknown buffer pool block {block_id}")
        if block.on_disk:
            # charge a disk read and bring the block back in
            self._make_space(block.nbytes)
            self._clock.advance(
                block.nbytes / self._config.disk_bytes_per_s, HOST
            )
            block.on_disk = False
            self.arbiter.acquire(REGION_BUFFERPOOL, block.nbytes)
            self.arbiter.record_restore(REGION_BUFFERPOOL, block.nbytes,
                                        block=block_id)
        block.hits += 1
        self._touch(block)
        self._blocks.move_to_end(block_id)
        return block.value

    def touch(self, block_id: int) -> None:
        """Mark a block most-recently-used."""
        block = self._blocks.get(block_id)
        if block is not None:
            self._touch(block)
            self._blocks.move_to_end(block_id)

    def pin(self, block_id: int) -> None:
        """Pin a block in memory (in use by a running operator)."""
        block = self._blocks.get(block_id)
        if block is not None:
            if block.on_disk:
                self.get(block_id)
            block.pinned += 1
            if block.pinned == 1:
                self.arbiter.pin(REGION_BUFFERPOOL, block.nbytes)

    def unpin(self, block_id: int) -> None:
        """Release a pin."""
        block = self._blocks.get(block_id)
        if block is not None and block.pinned > 0:
            block.pinned -= 1
            if block.pinned == 0:
                self.arbiter.unpin(REGION_BUFFERPOOL, block.nbytes)

    def remove(self, block_id: int) -> None:
        """Drop a block entirely (variable went out of scope)."""
        block = self._blocks.pop(block_id, None)
        if block is not None:
            if block.pinned:
                self.arbiter.unpin(REGION_BUFFERPOOL, block.nbytes)
            if not block.on_disk:
                self.arbiter.release(REGION_BUFFERPOOL, block.nbytes)

    def contains(self, block_id: int) -> bool:
        return block_id in self._blocks

    def _candidates(self) -> list[_Block]:
        return [
            blk for blk in self._blocks.values()
            if not blk.pinned and not blk.on_disk
        ]

    def _evict(self, victim: _Block) -> None:
        """Spill one unpinned block to simulated local disk."""
        self._clock.advance(
            victim.nbytes / self._config.disk_bytes_per_s, HOST
        )
        victim.on_disk = True
        self.arbiter.release(REGION_BUFFERPOOL, victim.nbytes)
        self._stats.inc(BUFFERPOOL_EVICTIONS)
        self.arbiter.record_evict(REGION_BUFFERPOOL, victim.nbytes)
        self.arbiter.record_spill(REGION_BUFFERPOOL, victim.nbytes)

    def _make_space(self, nbytes: int) -> None:
        """Evict LRU unpinned blocks to disk until ``nbytes`` fit."""
        if nbytes > self.capacity:
            raise BufferPoolError(
                f"block of {nbytes} bytes exceeds buffer pool capacity "
                f"{self.capacity}"
            )
        if not self.arbiter.ensure_space(
            REGION_BUFFERPOOL, nbytes, candidates=self._candidates,
            evict=self._evict, now=self._tick,
        ):
            raise BufferPoolError(
                "buffer pool exhausted: all blocks pinned"
            )
