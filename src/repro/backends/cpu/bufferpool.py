"""CPU buffer pool with byte budget and simulated disk spilling.

Models SystemDS's buffer pool: in-memory matrix blocks are pinned while in
use; unpinned blocks may be evicted to local disk under memory pressure
and restored on next access.  Because this is a simulator, evicted arrays
are retained in a shadow store and the pool charges simulated disk I/O
time instead of actually serializing them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.config import CpuConfig
from repro.common.errors import BufferPoolError
from repro.common.simclock import HOST, SimClock
from repro.common.stats import BUFFERPOOL_EVICTIONS, Stats
from repro.runtime.values import Value


@dataclass
class _Block:
    value: Value
    nbytes: int
    pinned: int = 0
    on_disk: bool = False


class BufferPool:
    """LRU buffer pool over named matrix blocks."""

    def __init__(self, config: CpuConfig, clock: SimClock, stats: Stats) -> None:
        self._config = config
        self._clock = clock
        self._stats = stats
        self._blocks: OrderedDict[int, _Block] = OrderedDict()
        self._in_memory_bytes = 0

    @property
    def in_memory_bytes(self) -> int:
        """Bytes currently resident in memory."""
        return self._in_memory_bytes

    @property
    def capacity(self) -> int:
        return self._config.buffer_pool_bytes

    def put(self, block_id: int, value: Value) -> None:
        """Register a new block, evicting LRU blocks if over budget."""
        nbytes = value.nbytes
        if block_id in self._blocks:
            self.touch(block_id)
            return
        self._make_space(nbytes)
        self._blocks[block_id] = _Block(value, nbytes)
        self._in_memory_bytes += nbytes

    def get(self, block_id: int) -> Value:
        """Fetch a block, restoring it from disk if evicted."""
        block = self._blocks.get(block_id)
        if block is None:
            raise BufferPoolError(f"unknown buffer pool block {block_id}")
        if block.on_disk:
            # charge a disk read and bring the block back in
            self._make_space(block.nbytes)
            self._clock.advance(
                block.nbytes / self._config.disk_bytes_per_s, HOST
            )
            block.on_disk = False
            self._in_memory_bytes += block.nbytes
        self._blocks.move_to_end(block_id)
        return block.value

    def touch(self, block_id: int) -> None:
        """Mark a block most-recently-used."""
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)

    def pin(self, block_id: int) -> None:
        """Pin a block in memory (in use by a running operator)."""
        block = self._blocks.get(block_id)
        if block is not None:
            if block.on_disk:
                self.get(block_id)
            block.pinned += 1

    def unpin(self, block_id: int) -> None:
        """Release a pin."""
        block = self._blocks.get(block_id)
        if block is not None and block.pinned > 0:
            block.pinned -= 1

    def remove(self, block_id: int) -> None:
        """Drop a block entirely (variable went out of scope)."""
        block = self._blocks.pop(block_id, None)
        if block is not None and not block.on_disk:
            self._in_memory_bytes -= block.nbytes

    def contains(self, block_id: int) -> bool:
        return block_id in self._blocks

    def _make_space(self, nbytes: int) -> None:
        """Evict LRU unpinned blocks to disk until ``nbytes`` fit."""
        if nbytes > self.capacity:
            raise BufferPoolError(
                f"block of {nbytes} bytes exceeds buffer pool capacity "
                f"{self.capacity}"
            )
        while self._in_memory_bytes + nbytes > self.capacity:
            victim_id = next(
                (bid for bid, blk in self._blocks.items()
                 if not blk.pinned and not blk.on_disk),
                None,
            )
            if victim_id is None:
                raise BufferPoolError(
                    "buffer pool exhausted: all blocks pinned"
                )
            victim = self._blocks[victim_id]
            self._clock.advance(
                victim.nbytes / self._config.disk_bytes_per_s, HOST
            )
            victim.on_disk = True
            self._in_memory_bytes -= victim.nbytes
            self._stats.inc(BUFFERPOOL_EVICTIONS)
