"""Local CPU backend: eager numpy execution with simulated cost charging."""

from __future__ import annotations

from repro.backends.cpu import kernels
from repro.common.config import CpuConfig
from repro.common.costs import op_flops
from repro.common.simclock import HOST, SimClock
from repro.common.stats import INSTRUCTIONS_EXECUTED, Stats
from repro.runtime.values import Value


class CpuBackend:
    """Eager, synchronous execution of instructions on the host (Table 2)."""

    name = "CP"

    def __init__(self, config: CpuConfig, clock: SimClock, stats: Stats) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats

    def execute(self, opcode: str, inputs: list[Value], attrs: dict) -> Value:
        """Run one instruction; returns its value and charges host time."""
        out = kernels.execute(opcode, inputs, attrs)
        in_shapes = [v.shape for v in inputs] or [(1, 1)]
        flops = op_flops(opcode, in_shapes, out.shape)
        nbytes = out.nbytes + sum(v.nbytes for v in inputs)
        t_compute = flops / self.config.flops_per_s
        t_memory = nbytes / self.config.mem_bandwidth_bytes_per_s
        self.clock.advance(
            self.config.instruction_overhead_s + max(t_compute, t_memory),
            HOST,
        )
        self.stats.inc(INSTRUCTIONS_EXECUTED)
        return out

    def supports(self, opcode: str) -> bool:
        """Whether this backend has a kernel for ``opcode``."""
        return opcode in kernels.supported_opcodes()
