"""Local CPU backend: eager numpy execution with simulated cost charging."""

from __future__ import annotations

import numpy as np

from repro.backends.cpu import kernels
from repro.backends.cpu.vectorized import CompiledStep
from repro.common.config import CpuConfig
from repro.common.costs import op_flops
from repro.common.simclock import HOST, SimClock
from repro.common.stats import (
    CPU_BYTES_ALLOCATED,
    FUSION_INSTRUCTIONS,
    INSTRUCTIONS_EXECUTED,
    Stats,
)
from repro.runtime.values import MatrixValue, Value


class CpuBackend:
    """Eager, synchronous execution of instructions on the host (Table 2)."""

    name = "CP"

    def __init__(self, config: CpuConfig, clock: SimClock, stats: Stats) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats

    def charge(self, opcode: str, in_shapes: list[tuple[int, int]],
               in_nbytes: int, out: Value) -> None:
        """Charge simulated host time + count one executed instruction.

        Shared by the generic :meth:`execute` path and the vectorized
        chain path so both advance the clock with the identical
        ``overhead + max(compute, memory)`` roofline term per
        instruction — a precondition for dispatch-path byte equality.
        Every charge also accounts the output allocation
        (``cpu/bytes_allocated``), which is what fused chains reduce.
        """
        cfg = self.config
        flops = op_flops(opcode, in_shapes, out.shape)
        nbytes = out.nbytes + in_nbytes
        t_compute = flops / cfg.flops_per_s
        t_memory = nbytes / cfg.mem_bandwidth_bytes_per_s
        self.clock.advance(
            cfg.instruction_overhead_s
            + (t_compute if t_compute > t_memory else t_memory),
            HOST,
        )
        self.stats.inc(INSTRUCTIONS_EXECUTED)
        self.stats.inc(CPU_BYTES_ALLOCATED, out.nbytes)

    def execute(self, opcode: str, inputs: list[Value], attrs: dict) -> Value:
        """Run one instruction; returns its value and charges host time."""
        out = kernels.execute(opcode, inputs, attrs)
        in_shapes = []
        in_nbytes = 0
        for v in inputs:
            in_shapes.append(v.shape)
            in_nbytes += v.nbytes
        if not in_shapes:
            in_shapes = [(1, 1)]
        self.charge(opcode, in_shapes, in_nbytes, out)
        return out

    def execute_chain(self, steps: list[CompiledStep],
                      value: MatrixValue) -> list[MatrixValue]:
        """Run a precompiled cell-wise ufunc chain on ``value``.

        Returns one :class:`MatrixValue` per step, in order.  Each step
        is applied to the *normalized* output array of its predecessor
        and charged through :meth:`charge` individually, so results,
        counters, and clock advances match ``len(steps)`` successive
        :meth:`execute` calls bit for bit — only the per-instruction
        dispatch overhead (registry lookup, operand unpacking) is gone.
        """
        outs: list[MatrixValue] = []
        arr = value.data
        in_nbytes = value.nbytes
        for step in steps:
            out = MatrixValue(step.apply(arr))
            self.charge(step.hop.opcode, step.in_shapes(arr.shape),
                        in_nbytes + step.extra_in_nbytes, out)
            outs.append(out)
            arr = out.data
            in_nbytes = out.nbytes
        return outs

    def execute_fused(self, hop, inputs: list[Value]) -> MatrixValue:
        """Run one fused chain (``repro.compiler.rewrites.fusion``).

        ``inputs`` are the materialized values of ``hop.inputs`` — the
        matrix source (or the matmul prologue's two operands) followed by
        the chain's scalar literals (already baked into the step
        closures, present only for lineage/cost bookkeeping).

        Unlike :meth:`execute_chain`, interior step outputs are *not*
        wrapped in :class:`MatrixValue`; each step output feeds the next
        directly after the same float64 normalization ``MatrixValue``
        would apply (comparison ufuncs emit bool arrays), so the final
        value is byte-identical to the unfused chain's tail.  The whole
        chain is charged as ONE instruction: one interpretation
        overhead, the summed FLOPs against the roofline, and only the
        external input plus final output bytes of memory traffic — the
        fused instruction never materializes interiors.
        """
        if hop.prologue is not None:
            value = kernels.execute(hop.prologue.opcode, inputs[:2],
                                    hop.prologue.attrs)
            in_nbytes = inputs[0].nbytes + inputs[1].nbytes
        else:
            value = inputs[0]
            in_nbytes = inputs[0].nbytes
        arr = value.data
        for step in hop.steps:
            arr = step.apply(arr)
            if arr.dtype != np.float64:
                arr = arr.astype(np.float64)
            in_nbytes += step.extra_in_nbytes
        out = MatrixValue(arr)
        cfg = self.config
        t_compute = hop.flops / cfg.flops_per_s
        t_memory = (out.nbytes + in_nbytes) / cfg.mem_bandwidth_bytes_per_s
        self.clock.advance(
            cfg.instruction_overhead_s
            + (t_compute if t_compute > t_memory else t_memory),
            HOST,
        )
        self.stats.inc(INSTRUCTIONS_EXECUTED)
        self.stats.inc(CPU_BYTES_ALLOCATED, out.nbytes)
        self.stats.inc(FUSION_INSTRUCTIONS)
        return out

    def supports(self, opcode: str) -> bool:
        """Whether this backend has a kernel for ``opcode``."""
        return opcode in kernels.supported_opcodes()
