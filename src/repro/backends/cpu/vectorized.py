"""Vectorized CPU kernel layer: precompiled cell-wise ufunc chains.

The generic dispatch path pays per instruction for a kernel-registry
lookup, operand unpacking, and value re-wrapping.  For *runs* of
cell-wise operations (``relu(X * 2.0 + 1.0)``-style pipelines) all of
that is loop-invariant: the ufunc, the scalar operand, and the operand
layout are known at plan time.  This module compiles one hop into a
:class:`CompiledStep` — a closure from input ndarray to output ndarray —
so the fast dispatch loop (``repro.runtime.dispatch``) can execute a
whole run as successive ufunc applications on raw arrays.

Byte-equality contract: every step closure applies the *same* numpy
callable the generic kernel registry uses (the tables are shared via
:data:`~repro.backends.cpu.kernels.UNARY_UFUNCS` /
:data:`~repro.backends.cpu.kernels.BINARY_UFUNCS`), and results are
re-wrapped in :class:`~repro.runtime.values.MatrixValue`, which performs
the identical float64 normalization.  Chains therefore produce bit-for-
bit the results of the one-instruction-at-a-time path; the dispatch
equivalence tests assert this.

Eligibility is deliberately narrow — a hop compiles only when:

* its opcode is a cell-wise ufunc (or ``sigmoid``/``relu``), with no
  attributes;
* its matrix operand is a real matrix (statically ``> 1`` cells, so the
  runtime value is guaranteed to be a ``MatrixValue``);
* any second operand is a scalar *literal* hop, matching the generic
  path's python-float broadcasting.

Everything else falls back to the generic per-instruction kernels.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.backends.cpu.kernels import BINARY_UFUNCS, UNARY_UFUNCS
from repro.compiler.ir import KIND_LITERAL, KIND_OP, Hop
from repro.core.entry import BACKEND_CP

__all__ = ["CompiledStep", "compile_step"]


def _sigmoid_arr(x: np.ndarray) -> np.ndarray:
    # mirrors kernels._sigmoid exactly
    return 1.0 / (1.0 + np.exp(-x))


def _relu_arr(x: np.ndarray) -> np.ndarray:
    # mirrors kernels._relu exactly
    return np.maximum(x, 0.0)


#: chainable unary opcodes -> ndarray -> ndarray callables.
UNARY_CHAIN_OPS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    **UNARY_UFUNCS,
    "sigmoid": _sigmoid_arr,
    "relu": _relu_arr,
}

#: every opcode that can appear in a chain — used as the first, cheapest
#: rejection test so chain planning costs one set probe per non-cell-wise
#: instruction.
CHAINABLE_OPCODES: frozenset = frozenset(UNARY_CHAIN_OPS) | frozenset(BINARY_UFUNCS)


class CompiledStep:
    """One hop of a cell-wise chain, precompiled to an ndarray closure.

    Attributes
    ----------
    hop:
        The source hop (the dispatch loop needs its id, inputs, and
        opcode for lineage tracing and environment binding).
    apply:
        ``ndarray -> ndarray`` closure with operands baked in.
    matrix_index:
        Index of the matrix operand in ``hop.inputs`` — the chained
        predecessor feeds this position.
    scalar_index:
        Index of the scalar-literal operand in ``hop.inputs`` (``None``
        for unary steps).  Used for cost accounting (the literal adds 8
        input bytes, exactly like a ``ScalarValue`` operand does on the
        generic path) and for lineage input ordering.
    """

    __slots__ = ("hop", "apply", "matrix_index", "scalar_index")

    def __init__(self, hop: Hop, apply: Callable[[np.ndarray], np.ndarray],
                 matrix_index: int, scalar_index: Optional[int]) -> None:
        self.hop = hop
        self.apply = apply
        self.matrix_index = matrix_index
        self.scalar_index = scalar_index

    def in_shapes(self, shape: tuple[int, int]) -> list[tuple[int, int]]:
        """Input-shape list for cost accounting, in hop operand order."""
        if self.scalar_index is None:
            return [shape]
        if self.scalar_index == 0:
            return [(1, 1), shape]
        return [shape, (1, 1)]

    @property
    def extra_in_nbytes(self) -> int:
        """Input bytes beyond the matrix operand (the scalar literal)."""
        return 0 if self.scalar_index is None else 8

    def __repr__(self) -> str:
        return f"CompiledStep({self.hop.opcode}, hop#{self.hop.id})"


def _cellwise_eligible(hop: Hop) -> bool:
    """Structural preconditions every chain step shares."""
    return (
        hop.kind == KIND_OP
        and (hop.placement is None or hop.placement == BACKEND_CP)
        and not hop.attrs
        and not hop.fused
        and not hop.checkpoint
        and not hop.prefetch
        and not hop.async_broadcast
        and hop.shape[0] * hop.shape[1] > 1
    )


def compile_step(hop: Hop) -> Optional[CompiledStep]:
    """Compile ``hop`` into a chain step, or ``None`` if ineligible."""
    if hop.opcode not in CHAINABLE_OPCODES:
        return None
    if not _cellwise_eligible(hop):
        return None

    if len(hop.inputs) == 1:
        fn = UNARY_CHAIN_OPS.get(hop.opcode)
        if fn is None:
            return None
        return CompiledStep(hop, fn, 0, None)

    if len(hop.inputs) == 2:
        ufunc = BINARY_UFUNCS.get(hop.opcode)
        if ufunc is None:
            return None
        left, right = hop.inputs
        if right.kind == KIND_LITERAL and left.kind != KIND_LITERAL:
            c = float(right.value)

            def fn(a: np.ndarray, _uf=ufunc, _c=c) -> np.ndarray:
                return _uf(a, _c)

            return CompiledStep(hop, fn, 0, 1)
        if left.kind == KIND_LITERAL and right.kind != KIND_LITERAL:
            c = float(left.value)

            def fn(a: np.ndarray, _uf=ufunc, _c=c) -> np.ndarray:
                return _uf(_c, a)

            return CompiledStep(hop, fn, 1, 0)

    return None
