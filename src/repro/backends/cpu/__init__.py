"""Local CPU backend: numpy kernels and a buffer pool."""

from repro.backends.cpu.backend import CpuBackend
from repro.backends.cpu.bufferpool import BufferPool

__all__ = ["CpuBackend", "BufferPool"]
