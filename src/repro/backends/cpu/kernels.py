"""Numpy kernel library: the operator set of the host ML system.

Every opcode is a pure function of its inputs and attributes; randomized
kernels take an explicit seed attribute, so results are deterministic
given the lineage (the property that makes lineage-keyed reuse safe).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import BackendError
from repro.runtime.values import MatrixValue, ScalarValue, Value, as_matrix, make_value

_KERNELS: dict[str, Callable[..., Value]] = {}


def kernel(opcode: str):
    """Register ``fn`` as the implementation of ``opcode``."""

    def deco(fn):
        _KERNELS[opcode] = fn
        return fn

    return deco


def supported_opcodes() -> set[str]:
    """All opcodes with a registered CPU kernel."""
    return set(_KERNELS)


def execute(opcode: str, inputs: list[Value], attrs: dict) -> Value:
    """Execute ``opcode`` on ``inputs`` with ``attrs`` and return the value."""
    fn = _KERNELS.get(opcode)
    if fn is None:
        raise BackendError(f"no CPU kernel for opcode {opcode!r}")
    return fn(inputs, attrs)


def _binary_args(inputs: list[Value]) -> tuple[np.ndarray | float, np.ndarray | float, bool]:
    """Unpack binary operands; scalars stay python floats for broadcasting."""
    v0, v1 = inputs
    s0 = isinstance(v0, ScalarValue)
    s1 = isinstance(v1, ScalarValue)
    a = v0.as_float() if s0 else v0.data
    b = v1.as_float() if s1 else v1.data
    return a, b, s0 and s1


def _broadcastable(a, b):
    """Align SystemDS-style row/column vector broadcasting with numpy."""
    return a, b


def _make_binary(op):
    def fn(inputs: list[Value], attrs: dict) -> Value:
        a, b, both_scalar = _binary_args(inputs)
        out = op(a, b)
        if both_scalar:
            return ScalarValue(float(out))
        return MatrixValue(np.asarray(out, dtype=np.float64))

    return fn


#: cell-wise binary opcodes -> numpy ufuncs.  Shared with the vectorized
#: chain layer (``repro.backends.cpu.vectorized``) so both dispatch paths
#: execute the exact same ufunc object.
BINARY_UFUNCS: dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "^": np.power,
    "min": np.minimum,
    "max": np.maximum,
    ">": np.greater,
    "<": np.less,
    ">=": np.greater_equal,
    "<=": np.less_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

for _code, _op in BINARY_UFUNCS.items():
    _KERNELS[_code] = _make_binary(_op)


def _make_unary(op, scalar_ok=True):
    def fn(inputs: list[Value], attrs: dict) -> Value:
        v = inputs[0]
        if isinstance(v, ScalarValue):
            return ScalarValue(float(op(v.as_float())))
        return MatrixValue(op(v.data))

    return fn


#: cell-wise unary opcodes -> numpy ufuncs (see :data:`BINARY_UFUNCS`).
UNARY_UFUNCS: dict[str, Callable] = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "sign": np.sign,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "tanh": np.tanh,
}

for _code, _op in UNARY_UFUNCS.items():
    _KERNELS[_code] = _make_unary(_op)


@kernel("sigmoid")
def _sigmoid(inputs, attrs):
    x = as_matrix(inputs[0])
    return MatrixValue(1.0 / (1.0 + np.exp(-x)))


@kernel("relu")
def _relu(inputs, attrs):
    return MatrixValue(np.maximum(as_matrix(inputs[0]), 0.0))


@kernel("softmax")
def _softmax(inputs, attrs):
    x = as_matrix(inputs[0])
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return MatrixValue(e / e.sum(axis=1, keepdims=True))


@kernel("dropout")
def _dropout(inputs, attrs):
    x = as_matrix(inputs[0])
    rate = float(attrs.get("rate", 0.5))
    rng = np.random.default_rng(int(attrs.get("seed", 0)))
    mask = (rng.random(x.shape) >= rate) / max(1.0 - rate, 1e-12)
    return MatrixValue(x * mask)


@kernel("ba+*")
def _matmul(inputs, attrs):
    a, b = as_matrix(inputs[0]), as_matrix(inputs[1])
    return MatrixValue(a @ b)


@kernel("r'")
def _transpose(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).T.copy())


@kernel("solve")
def _solve(inputs, attrs):
    a, b = as_matrix(inputs[0]), as_matrix(inputs[1])
    # least-squares fall-back keeps singular systems well-defined,
    # matching SystemDS's regularized direct solvers.
    try:
        out = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        out = np.linalg.lstsq(a, b, rcond=None)[0]
    return MatrixValue(out)


@kernel("inv")
def _inv(inputs, attrs):
    return MatrixValue(np.linalg.pinv(as_matrix(inputs[0])))


# ---------------------------------------------------------------- aggregates

@kernel("uak+")
def _sum(inputs, attrs):
    return ScalarValue(float(as_matrix(inputs[0]).sum()))


@kernel("uark+")
def _rowsums(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).sum(axis=1, keepdims=True))


@kernel("uack+")
def _colsums(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).sum(axis=0, keepdims=True))


@kernel("uamean")
def _mean(inputs, attrs):
    return ScalarValue(float(as_matrix(inputs[0]).mean()))


@kernel("uarmean")
def _rowmeans(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).mean(axis=1, keepdims=True))


@kernel("uacmean")
def _colmeans(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).mean(axis=0, keepdims=True))


@kernel("uamax")
def _amax(inputs, attrs):
    return ScalarValue(float(as_matrix(inputs[0]).max()))


@kernel("uamin")
def _amin(inputs, attrs):
    return ScalarValue(float(as_matrix(inputs[0]).min()))


@kernel("uacmax")
def _colmax(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).max(axis=0, keepdims=True))


@kernel("uacmin")
def _colmin(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).min(axis=0, keepdims=True))


@kernel("uarmax")
def _rowmax(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0]).max(axis=1, keepdims=True))


@kernel("uarimax")
def _rowargmax(inputs, attrs):
    x = as_matrix(inputs[0])
    return MatrixValue((np.argmax(x, axis=1) + 1.0).reshape(-1, 1))


@kernel("nrow")
def _nrow(inputs, attrs):
    return ScalarValue(int(as_matrix(inputs[0]).shape[0]))


@kernel("ncol")
def _ncol(inputs, attrs):
    return ScalarValue(int(as_matrix(inputs[0]).shape[1]))


# --------------------------------------------------------- data generation

@kernel("rand")
def _rand(inputs, attrs):
    rows = int(attrs["rows"])
    cols = int(attrs["cols"])
    lo = float(attrs.get("min", 0.0))
    hi = float(attrs.get("max", 1.0))
    sparsity = float(attrs.get("sparsity", 1.0))
    seed = int(attrs.get("seed", 0))
    pdf = attrs.get("pdf", "uniform")
    rng = np.random.default_rng(seed)
    if pdf == "normal":
        out = rng.standard_normal((rows, cols))
    else:
        out = rng.random((rows, cols)) * (hi - lo) + lo
    if sparsity < 1.0:
        mask = rng.random((rows, cols)) < sparsity
        out = out * mask
    return MatrixValue(out)


@kernel("seq")
def _seq(inputs, attrs):
    start = float(attrs["from"])
    stop = float(attrs["to"])
    step = float(attrs.get("incr", 1.0))
    n = int(np.floor((stop - start) / step)) + 1
    return MatrixValue((start + step * np.arange(max(n, 0))).reshape(-1, 1))


# ------------------------------------------------------------ reorg / index

@kernel("rightIndex")
def _right_index(inputs, attrs):
    x = as_matrix(inputs[0])
    rl = int(attrs.get("rl", 1)) - 1
    ru = int(attrs.get("ru", x.shape[0]))
    cl = int(attrs.get("cl", 1)) - 1
    cu = int(attrs.get("cu", x.shape[1]))
    return MatrixValue(x[rl:ru, cl:cu].copy())


@kernel("leftIndex")
def _left_index(inputs, attrs):
    x = as_matrix(inputs[0]).copy()
    y = as_matrix(inputs[1])
    rl = int(attrs.get("rl", 1)) - 1
    cl = int(attrs.get("cl", 1)) - 1
    x[rl:rl + y.shape[0], cl:cl + y.shape[1]] = y
    return MatrixValue(x)


@kernel("cbind")
def _cbind(inputs, attrs):
    return MatrixValue(np.hstack([as_matrix(v) for v in inputs]))


@kernel("rbind")
def _rbind(inputs, attrs):
    return MatrixValue(np.vstack([as_matrix(v) for v in inputs]))


@kernel("diag")
def _diag(inputs, attrs):
    x = as_matrix(inputs[0])
    if x.shape[1] == 1:
        return MatrixValue(np.diagflat(x))
    return MatrixValue(np.diag(x).reshape(-1, 1))


@kernel("reshape")
def _reshape(inputs, attrs):
    x = as_matrix(inputs[0])
    return MatrixValue(x.reshape(int(attrs["rows"]), int(attrs["cols"])))


@kernel("rev")
def _rev(inputs, attrs):
    return MatrixValue(as_matrix(inputs[0])[::-1].copy())


@kernel("replace")
def _replace(inputs, attrs):
    x = as_matrix(inputs[0]).copy()
    pattern = float(attrs.get("pattern", np.nan))
    replacement = float(attrs.get("replacement", 0.0))
    if np.isnan(pattern):
        x[np.isnan(x)] = replacement
    else:
        x[x == pattern] = replacement
    return MatrixValue(x)


@kernel("order")
def _order(inputs, attrs):
    x = as_matrix(inputs[0])
    by = int(attrs.get("by", 1)) - 1
    decreasing = bool(attrs.get("decreasing", False))
    idx = np.argsort(x[:, by], kind="stable")
    if decreasing:
        idx = idx[::-1]
    return MatrixValue(x[idx].copy())


@kernel("table")
def _table(inputs, attrs):
    """Contingency table / one-hot: table(seq, codes) -> indicator matrix."""
    rows = as_matrix(inputs[0]).ravel().astype(np.int64)
    cols = as_matrix(inputs[1]).ravel().astype(np.int64)
    nrow = int(attrs.get("rows", rows.max() if rows.size else 1))
    ncol = int(attrs.get("cols", cols.max() if cols.size else 1))
    out = np.zeros((nrow, ncol))
    np.add.at(out, (rows - 1, cols - 1), 1.0)
    return MatrixValue(out)


# -------------------------------------------------------------------- DNN

def _conv_shapes(attrs):
    n = int(attrs["N"]); c = int(attrs["C"]); h = int(attrs["H"]); w = int(attrs["W"])
    k = int(attrs["K"]); r = int(attrs["R"]); s = int(attrs["S"])
    stride = int(attrs.get("stride", 1))
    pad = int(attrs.get("pad", 0))
    hout = (h + 2 * pad - r) // stride + 1
    wout = (w + 2 * pad - s) // stride + 1
    return n, c, h, w, k, r, s, stride, pad, hout, wout


@kernel("conv2d")
def _conv2d(inputs, attrs):
    """2-D convolution on linearized NCHW matrices (SystemDS layout).

    ``inputs[0]``: N x (C*H*W) image matrix; ``inputs[1]``: K x (C*R*S)
    filter matrix.  Output: N x (K*Hout*Wout).
    """
    n, c, h, w, k, r, s, stride, pad, hout, wout = _conv_shapes(attrs)
    x = as_matrix(inputs[0]).reshape(n, c, h, w)
    f = as_matrix(inputs[1]).reshape(k, c * r * s)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # im2col via stride tricks
    shape = (n, c, hout, wout, r, s)
    strides = (
        x.strides[0], x.strides[1],
        x.strides[2] * stride, x.strides[3] * stride,
        x.strides[2], x.strides[3],
    )
    cols = np.lib.stride_tricks.as_strided(x, shape, strides)
    cols = cols.transpose(0, 2, 3, 1, 4, 5).reshape(n * hout * wout, c * r * s)
    out = cols @ f.T  # (N*Hout*Wout) x K
    out = out.reshape(n, hout, wout, k).transpose(0, 3, 1, 2)
    return MatrixValue(out.reshape(n, k * hout * wout))


@kernel("maxpool")
def _maxpool(inputs, attrs):
    """2x2 (or RxS) max pooling on linearized NCHW matrices."""
    n, c, h, w, _, r, s, stride, pad, hout, wout = _conv_shapes(
        {**attrs, "K": attrs.get("K", attrs["C"])}
    )
    x = as_matrix(inputs[0]).reshape(n, c, h, w)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                   constant_values=-np.inf)
    shape = (n, c, hout, wout, r, s)
    strides = (
        x.strides[0], x.strides[1],
        x.strides[2] * stride, x.strides[3] * stride,
        x.strides[2], x.strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape, strides)
    out = windows.max(axis=(4, 5))
    return MatrixValue(out.reshape(n, c * hout * wout))


@kernel("fed_tsmm")
def _fed_tsmm(inputs, attrs):
    """Per-site partial of a federated transpose-self multiply."""
    x = as_matrix(inputs[0])
    return MatrixValue(x.T @ x)


@kernel("recode")
def _recode(inputs, attrs):
    """Dictionary-encode each column: values map to dense 1-based codes.

    Codes are assigned in sorted value order, so the encoding is a pure
    function of the input (deterministic, lineage-reusable).
    """
    x = as_matrix(inputs[0])
    out = np.empty_like(x)
    for j in range(x.shape[1]):
        uniq, codes = np.unique(x[:, j], return_inverse=True)
        out[:, j] = codes + 1.0
    return MatrixValue(out)


@kernel("bin")
def _bin(inputs, attrs):
    """Equi-width binning into ``num_bins`` 1-based bin ids per column."""
    x = as_matrix(inputs[0])
    num_bins = int(attrs.get("num_bins", 10))
    lo = x.min(axis=0, keepdims=True)
    hi = x.max(axis=0, keepdims=True)
    width = np.where(hi > lo, (hi - lo) / num_bins, 1.0)
    ids = np.floor((x - lo) / width) + 1.0
    return MatrixValue(np.clip(ids, 1, num_bins))


@kernel("quantile")
def _quantile(inputs, attrs):
    """Column-wise quantile at probability ``p`` (linear interpolation)."""
    x = as_matrix(inputs[0])
    p = float(attrs.get("p", 0.5))
    return MatrixValue(np.quantile(x, p, axis=0, keepdims=True))


@kernel("bias_add")
def _bias_add(inputs, attrs):
    x = as_matrix(inputs[0])
    b = as_matrix(inputs[1]).ravel()
    k = b.shape[0]
    per = x.shape[1] // k
    return MatrixValue(x + np.repeat(b, per)[None, :])
