"""GPU backend: kernel execution over managed device pointers.

Executes the same operator set as the CPU backend (the simulator computes
exact numpy results host-side) while charging the *device* timeline with
roofline kernel costs and routing every allocation through the unified
:class:`~repro.backends.gpu.memmanager.GpuMemoryManager`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.cpu import kernels
from repro.backends.gpu.device import GpuDevice
from repro.backends.gpu.memmanager import GpuMemoryManager, MODE_MEMPHIS
from repro.backends.gpu.pointers import GpuPointer
from repro.backends.gpu.stream import GpuStream
from repro.common.config import GpuConfig
from repro.common.costs import op_flops
from repro.common.simclock import SimClock
from repro.common.stats import Stats
from repro.runtime.values import MatrixValue, ScalarValue, Value

#: opcodes with efficient GPU kernels (dense, regular access).
GPU_OPCODES = {
    "+", "-", "*", "/", "^", "min", "max", ">", "<", ">=", "<=", "==", "!=",
    "exp", "log", "sqrt", "abs", "sign", "relu", "sigmoid", "tanh",
    "softmax", "dropout", "ba+*", "r'", "uak+", "uark+", "uack+",
    "uamean", "uarmax", "uarimax", "conv2d", "maxpool", "bias_add",
    "uamax", "uamin", "solve",
}


@dataclass
class GpuData:
    """A matrix resident on the device: pointer + shadow value.

    The GPU payload format of the hierarchical lineage cache (paper
    Table 1, §4.2): a managed device pointer whose lifetime the
    memory manager controls, plus the host-side shadow result.
    """

    ptr: GpuPointer
    value: MatrixValue

    @property
    def nbytes(self) -> int:
        return self.ptr.size

    @property
    def shape(self) -> tuple[int, int]:
        return self.value.shape


class GpuBackend:
    """Asynchronous GPU execution (Table 2 row 2)."""

    name = "GPU"

    def __init__(self, config: GpuConfig, clock: SimClock, stats: Stats,
                 mode: str = MODE_MEMPHIS, tracer=None, faults=None,
                 arbiter=None) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.device = GpuDevice(config)
        self.stream = GpuStream(config, clock, stats, tracer=tracer)
        self.memory = GpuMemoryManager(
            self.device, self.stream, clock, stats, mode, tracer=tracer,
            faults=faults, arbiter=arbiter,
        )

    def supports(self, opcode: str) -> bool:
        """Whether ``opcode`` has a GPU kernel."""
        return opcode in GPU_OPCODES

    # -- data transfer ------------------------------------------------------

    def to_device(self, value: MatrixValue) -> GpuData:
        """Host matrix -> device allocation + H2D copy."""
        ptr = self.memory.allocate(value.nbytes, value.shape)
        self.stream.copy_h2d(value.nbytes)
        ptr.data = value.data
        return GpuData(ptr, value)

    def to_host(self, data: GpuData) -> MatrixValue:
        """Device matrix -> host (synchronization barrier + D2H copy)."""
        self.stream.copy_d2h(data.nbytes)
        return data.value

    def to_host_async(self, data: GpuData) -> float:
        """Asynchronous D2H used by ``prefetch``; returns the ready time."""
        return self.stream.copy_d2h_async(data.nbytes)

    # -- execution -----------------------------------------------------------

    def execute(self, opcode: str, inputs: list[object], attrs: dict,
                lineage_height: int = 1) -> object:
        """Run one instruction on the device.

        ``inputs`` may mix :class:`GpuData` and host scalars; the result is
        a :class:`GpuData` (or a :class:`ScalarValue` for full aggregates,
        which implies a device-to-host transfer of the scalar).
        """
        host_inputs: list[Value] = []
        touched = 0
        for item in inputs:
            if isinstance(item, GpuData):
                host_inputs.append(item.value)
                touched += item.nbytes
                self.memory.touch(item.ptr)
            else:
                host_inputs.append(item)
        out = kernels.execute(opcode, host_inputs, attrs)
        in_shapes = [v.shape for v in host_inputs] or [(1, 1)]
        flops = op_flops(opcode, in_shapes, out.shape)

        if isinstance(out, ScalarValue):
            # scalar aggregate: kernel + implicit tiny D2H (sync barrier)
            self.stream.launch(flops, touched)
            self.stream.copy_d2h(8)
            return out

        ptr = self.memory.allocate(out.nbytes, out.shape)
        ptr.data = out.data
        ptr.lineage_height = lineage_height
        ptr.compute_cost = flops
        self.stream.launch(flops, touched + out.nbytes)
        return GpuData(ptr, out)

    def release(self, data: GpuData) -> None:
        """Variable went out of scope: drop one reference."""
        self.memory.release(data.ptr)
