"""GPU execution stream: asynchronous kernels, synchronization barriers.

CUDA kernel execution is eager and sequential within a stream but
asynchronous for the calling host thread (paper §2.3).  We model this
with two timelines: kernel launches cost the host only the launch
latency, while the *device* timeline accumulates kernel durations.
``cudaFree`` and device-to-host copies are synchronization barriers that
join the host to the device timeline — the key overhead Fig. 2(d)
quantifies and MEMPHIS's recycling avoids.
"""

from __future__ import annotations

from repro.common.config import GpuConfig
from repro.common.costs import compute_time
from repro.common.simclock import DEVICE, HOST, SimClock
from repro.common.stats import (
    GPU_D2H,
    GPU_H2D,
    GPU_KERNELS,
    GPU_SYNCS,
    Stats,
)
from repro.obs.events import EV_GPU_D2H, EV_GPU_H2D, EV_GPU_KERNEL, LANE_GPU
from repro.obs.tracer import NULL_TRACER


class GpuStream:
    """The single CUDA stream of the simulated device.

    Models asynchronous kernel launches and the synchronization
    barriers (``cudaFree``, D2H copies) whose cost Fig. 2(d)
    quantifies and §4.2's recycling avoids.
    """

    def __init__(self, config: GpuConfig, clock: SimClock, stats: Stats,
                 tracer=None) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def launch(self, flops: float, bytes_touched: int) -> None:
        """Enqueue a kernel: host pays launch latency, device the runtime."""
        self.clock.advance(self.config.kernel_launch_s, HOST)
        # the kernel cannot start before the host has launched it
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        duration = compute_time(
            flops,
            self.config.flops_per_s,
            bytes_touched,
            self.config.mem_bandwidth_bytes_per_s,
        )
        start = self.clock.now(DEVICE)
        self.clock.advance(duration, DEVICE)
        self.stats.inc(GPU_KERNELS)
        if self.tracer.enabled:
            self.tracer.complete(EV_GPU_KERNEL, LANE_GPU, start,
                                 start + duration, flops=flops,
                                 nbytes=bytes_touched)

    def synchronize(self) -> None:
        """Host waits for all pending device work (barrier)."""
        self.clock.sync(DEVICE, HOST)
        self.stats.inc(GPU_SYNCS)

    def copy_h2d(self, nbytes: int) -> None:
        """Pageable host-to-device copy: blocks the host for the transfer."""
        transfer = nbytes / self.config.h2d_bandwidth_bytes_per_s
        start = self.clock.now(HOST)
        self.clock.advance(transfer, HOST)
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        self.stats.inc(GPU_H2D)
        if self.tracer.enabled:
            self.tracer.complete(EV_GPU_H2D, LANE_GPU, start,
                                 start + transfer, nbytes=nbytes)

    def copy_d2h(self, nbytes: int) -> None:
        """Device-to-host copy: synchronizes, then transfers."""
        self.synchronize()
        transfer = nbytes / self.config.d2h_bandwidth_bytes_per_s
        start = self.clock.now(HOST)
        self.clock.advance(transfer, HOST)
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        self.stats.inc(GPU_D2H)
        if self.tracer.enabled:
            self.tracer.complete(EV_GPU_D2H, LANE_GPU, start,
                                 start + transfer, nbytes=nbytes)

    def copy_d2h_async(self, nbytes: int) -> float:
        """Asynchronous D2H (prefetch path): returns the ready time."""
        transfer = nbytes / self.config.d2h_bandwidth_bytes_per_s
        start = self.clock.now(DEVICE)
        ready = start + transfer
        self.clock.advance_to(ready, DEVICE)
        self.stats.inc(GPU_D2H)
        if self.tracer.enabled:
            self.tracer.complete(EV_GPU_D2H, LANE_GPU, start, ready,
                                 nbytes=nbytes, mode="async")
        return ready
