"""GPU execution stream: asynchronous kernels, synchronization barriers.

CUDA kernel execution is eager and sequential within a stream but
asynchronous for the calling host thread (paper §2.3).  We model this
with two timelines: kernel launches cost the host only the launch
latency, while the *device* timeline accumulates kernel durations.
``cudaFree`` and device-to-host copies are synchronization barriers that
join the host to the device timeline — the key overhead Fig. 2(d)
quantifies and MEMPHIS's recycling avoids.
"""

from __future__ import annotations

from repro.common.config import GpuConfig
from repro.common.costs import compute_time
from repro.common.simclock import DEVICE, HOST, SimClock
from repro.common.stats import (
    GPU_D2H,
    GPU_H2D,
    GPU_KERNELS,
    GPU_SYNCS,
    Stats,
)


class GpuStream:
    """The single CUDA stream of the simulated device."""

    def __init__(self, config: GpuConfig, clock: SimClock, stats: Stats) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats

    def launch(self, flops: float, bytes_touched: int) -> None:
        """Enqueue a kernel: host pays launch latency, device the runtime."""
        self.clock.advance(self.config.kernel_launch_s, HOST)
        # the kernel cannot start before the host has launched it
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        duration = compute_time(
            flops,
            self.config.flops_per_s,
            bytes_touched,
            self.config.mem_bandwidth_bytes_per_s,
        )
        self.clock.advance(duration, DEVICE)
        self.stats.inc(GPU_KERNELS)

    def synchronize(self) -> None:
        """Host waits for all pending device work (barrier)."""
        self.clock.sync(DEVICE, HOST)
        self.stats.inc(GPU_SYNCS)

    def copy_h2d(self, nbytes: int) -> None:
        """Pageable host-to-device copy: blocks the host for the transfer."""
        transfer = nbytes / self.config.h2d_bandwidth_bytes_per_s
        self.clock.advance(transfer, HOST)
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        self.stats.inc(GPU_H2D)

    def copy_d2h(self, nbytes: int) -> None:
        """Device-to-host copy: synchronizes, then transfers."""
        self.synchronize()
        transfer = nbytes / self.config.d2h_bandwidth_bytes_per_s
        self.clock.advance(transfer, HOST)
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        self.stats.inc(GPU_D2H)

    def copy_d2h_async(self, nbytes: int) -> float:
        """Asynchronous D2H (prefetch path): returns the ready time."""
        transfer = nbytes / self.config.d2h_bandwidth_bytes_per_s
        ready = self.clock.now(DEVICE) + transfer
        self.clock.advance_to(ready, DEVICE)
        self.stats.inc(GPU_D2H)
        return ready
