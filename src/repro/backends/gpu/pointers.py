"""GPU pointer objects: reference-counted handles to device allocations.

A :class:`GpuPointer` carries the device offset/size, a host-side shadow
of the device contents (the simulator computes real values), and the
metadata the eviction policy (Eq. 2) needs: last access time, the height
of the producing lineage trace, and the analytical compute cost.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

_ptr_ids = itertools.count(1)


class GpuPointer:
    """A device allocation with simulator-side shadow data.

    Carries the reference count and the Eq. 2 scoring metadata
    (last access, lineage height, compute cost) the memory manager
    uses on the Free list (paper §4.2, Fig. 8).
    """

    __slots__ = (
        "id", "offset", "size", "shape", "data", "ref_count",
        "last_access", "lineage_height", "compute_cost", "freed",
        "cached",
    )

    def __init__(self, offset: int, size: int,
                 shape: tuple[int, int] = (0, 0)) -> None:
        self.id = next(_ptr_ids)
        self.offset = offset
        self.size = size
        self.shape = shape
        self.data: Optional[np.ndarray] = None
        self.ref_count = 0
        self.last_access = 0.0
        self.lineage_height = 1
        self.compute_cost = 0.0
        self.freed = False
        #: whether a lineage-cache entry references this pointer; cached
        #: pointers are recycled only under memory pressure (§4.2).
        self.cached = False

    def retain(self) -> "GpuPointer":
        """Increment the live-variable reference count."""
        self.ref_count += 1
        return self

    def release(self) -> int:
        """Decrement the reference count; returns the remaining count."""
        if self.ref_count > 0:
            self.ref_count -= 1
        return self.ref_count

    def __repr__(self) -> str:
        state = "freed" if self.freed else f"rc={self.ref_count}"
        return f"GpuPointer#{self.id}(off={self.offset}, {self.size}B, {state})"
