"""Unified GPU memory manager: Live/Free lists, recycling, eviction.

Implements the paper's §4.2 design (Fig. 8, Algorithm 1):

* every pointer from allocation to deallocation is managed here;
* the *Live* list holds pointers referenced by live variables
  (reference-counted); after the last release a pointer moves to the
  *Free* list — a hash map from size to a score-ordered queue;
* an allocation request first *recycles* an exact-size free pointer
  (no ``cudaMalloc``, no synchronization); otherwise it walks
  Algorithm 1: malloc → free a just-larger pointer → repeatedly free →
  flush all free pointers → device-to-host eviction → defragmentation;
* the eviction score (Eq. 2) ``T_a(o) + 1/h(o) + c(o)`` orders each
  queue so recently-reused, short-lineage, expensive pointers survive;
  the scoring itself lives in ``core/policies.py`` (``score_pointer``)
  and victims are chosen through the shared
  :class:`~repro.memory.arbiter.MemoryArbiter`, whose ``GPU`` region
  mirrors the device allocator's byte ledger.

The manager supports three modes so baselines share one implementation:
``malloc`` (cudaMalloc/cudaFree every time — Base), ``pool`` (exact-size
recycling only — PyTorch's caching allocator), and ``memphis`` (full
Algorithm 1 integrated with the lineage cache via the invalidation
callback).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.backends.gpu.device import GpuDevice, _align
from repro.backends.gpu.pointers import GpuPointer
from repro.backends.gpu.stream import GpuStream
from repro.common.config import GpuConfig
from repro.common.errors import GpuOutOfMemoryError
from repro.common.simclock import DEVICE, HOST, SimClock
from repro.common.stats import (
    FAULT_GPU_ALLOC_RETRIES,
    GPU_DEFRAGS,
    GPU_EVICT_D2H,
    GPU_FREES,
    GPU_MALLOCS,
    GPU_RECYCLED,
    GPU_REUSED,
    MEM_D2H_AVOIDED,
    Stats,
)
from repro.core.policies import make_policy
from repro.faults.plan import KIND_GPU_ALLOC
from repro.memory import REGION_GPU, MemoryArbiter
from repro.obs.events import (
    EV_GPU_DEFRAG,
    EV_GPU_EVICT_D2H,
    EV_GPU_FREE,
    EV_GPU_MALLOC,
    EV_GPU_RECYCLE,
    EV_GPU_REUSE,
    LANE_GPU,
)
from repro.obs.tracer import NULL_TRACER

MODE_MALLOC = "malloc"
MODE_POOL = "pool"
MODE_MEMPHIS = "memphis"


class GpuMemoryManager:
    """Reference-counted pointer manager with recycling and eviction.

    The unified GPU memory manager of paper §4.2 (Fig. 8): Live/Free
    pointer lists, exact-size recycling, and the allocation cascade of
    Algorithm 1 scored by the eviction function of Eq. 2.
    """

    def __init__(self, device: GpuDevice, stream: GpuStream, clock: SimClock,
                 stats: Stats, mode: str = MODE_MEMPHIS,
                 on_invalidate: Optional[Callable[[GpuPointer], None]] = None,
                 tracer=None, faults=None, arbiter=None) -> None:
        self.device = device
        self.stream = stream
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if arbiter is None:
            arbiter = MemoryArbiter(stats, tracer=self.tracer, faults=faults)
        self.arbiter: MemoryArbiter = arbiter
        self.faults = faults if faults is not None else arbiter.faults
        self.policy = make_policy(device.config.policy)
        self._region = arbiter.add_region(
            REGION_GPU, device.capacity, policy=self.policy,
        )
        self.mode = mode
        #: called before a free pointer's contents are destroyed, so the
        #: lineage cache can drop or host-save the entry backed by it.
        self.on_invalidate = on_invalidate or (lambda ptr: None)
        self.live: dict[int, GpuPointer] = {}
        self.free_lists: dict[int, list[GpuPointer]] = {}
        self.free_bytes_pooled = 0
        self._allocs_since_gc = 0

    # -- configuration helpers ------------------------------------------------

    @property
    def config(self) -> GpuConfig:
        return self.device.config

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (``repro.obs.metrics``)."""
        capacity = self.device.capacity
        return {
            "gpu/residency": self._region.used / capacity if capacity else 0.0,
            "gpu/free_pooled_bytes": float(self.free_bytes_pooled),
            "gpu/live_pointers": float(len(self.live)),
        }

    # -- public allocation API ---------------------------------------------------

    def allocate(self, size: int, shape: tuple[int, int] = (0, 0)) -> GpuPointer:
        """Serve an allocation request (Algorithm 1), absorbing faults.

        An injected allocation fault (transient driver error / OOM) is
        recovered by evict-and-retry: flush the pooled free pointers —
        invalidating the lineage-cache entries they back — and re-enter
        the cascade, up to ``max_alloc_retries`` attempts.  The fault
        draw point lives behind the arbiter so every region shares one
        deterministic draw sequence.
        """
        fault = self.arbiter.alloc_fault()
        if fault is not None:
            return self._allocate_faulted(size, shape, fault)
        return self._allocate(size, shape)

    def _allocate_faulted(self, size: int, shape: tuple[int, int],
                          fault) -> GpuPointer:
        attempt = 0
        while fault.take():
            attempt += 1
            # a failed cudaMalloc still synchronizes and costs driver latency
            self.stream.synchronize()
            self.clock.advance(self.config.malloc_latency_s, HOST)
            self.clock.advance_to(self.clock.now(HOST), DEVICE)
            self.stats.inc(FAULT_GPU_ALLOC_RETRIES)
            self.faults.injected(KIND_GPU_ALLOC, LANE_GPU, nbytes=size,
                                 attempt=attempt)
            if attempt > self.faults.plan.max_alloc_retries:
                raise GpuOutOfMemoryError(
                    size, self.device.free_bytes,
                    self.device.largest_free_block,
                )
            self.empty_cache(1.0)
        ptr = self._allocate(size, shape)
        if attempt:
            self.faults.recovered(KIND_GPU_ALLOC, LANE_GPU, nbytes=size,
                                  attempts=attempt + 1)
        return ptr

    def _allocate(self, size: int, shape: tuple[int, int]) -> GpuPointer:
        size = max(size, self.config.alignment)
        if self.mode in (MODE_POOL, MODE_MEMPHIS):
            recycled = self._recycle_exact(size, shape)
            if recycled is not None:
                return recycled
        offset = self._cuda_malloc(size)
        if offset is None and self.mode == MODE_MEMPHIS:
            offset = self._alloc_with_eviction(size)
        elif offset is None and self.mode == MODE_POOL:
            # PyTorch frees its cached blocks on allocation failure
            self._maybe_collect_garbage()
            self._flush_free_lists()
            offset = self._cuda_malloc(size)
        if offset is None:
            raise GpuOutOfMemoryError(
                size, self.device.free_bytes, self.device.largest_free_block
            )
        ptr = GpuPointer(offset, size, shape)
        ptr.retain()
        ptr.last_access = self.clock.now(DEVICE)
        self.live[ptr.id] = ptr
        return ptr

    def retain(self, ptr: GpuPointer) -> None:
        """A new live variable references ``ptr``."""
        ptr.retain()
        if ptr.id not in self.live:
            self.live[ptr.id] = ptr

    def release(self, ptr: GpuPointer) -> None:
        """Drop one reference; at zero the pointer moves to the Free list."""
        if ptr.freed:
            return
        if ptr.release() > 0:
            return
        self.live.pop(ptr.id, None)
        if self.mode == MODE_MALLOC:
            self._cuda_free(ptr)
            return
        self.free_lists.setdefault(ptr.size, []).append(ptr)
        self.free_bytes_pooled += ptr.size

    def reuse_from_free(self, ptr: GpuPointer) -> GpuPointer:
        """Lineage-cache hit on a pointer sitting in the Free list.

        Moves it back to Live (Fig. 8(c)) without touching the device.
        """
        queue = self.free_lists.get(ptr.size)
        if queue is not None and ptr in queue:
            queue.remove(ptr)
            self.free_bytes_pooled -= ptr.size
            if not queue:
                del self.free_lists[ptr.size]
        ptr.retain()
        ptr.last_access = self.clock.now(DEVICE)
        self.live[ptr.id] = ptr
        self.stats.inc(GPU_REUSED)
        if self.tracer.enabled:
            self.tracer.instant(EV_GPU_REUSE, LANE_GPU, nbytes=ptr.size)
        return ptr

    def touch(self, ptr: GpuPointer) -> None:
        """Update recency metadata on access (feeds Eq. 2)."""
        ptr.last_access = self.clock.now(DEVICE)

    def empty_cache(self, fraction: float = 1.0) -> int:
        """Free ``fraction`` of pooled bytes, lowest-score first (§5.2).

        This is the runtime implementation of the compiler's ``evict``
        instruction (eviction injection) and of PyTorch's
        ``empty_cache()``.  Returns the number of pointers freed.
        """
        target = self.free_bytes_pooled * min(max(fraction, 0.0), 1.0)
        freed_bytes = 0
        freed_count = 0
        while freed_bytes < target and self.free_bytes_pooled > 0:
            victim = self._global_victim()
            if victim is None:
                break
            freed_bytes += victim.size
            freed_count += 1
            self._destroy_free_pointer(victim)
        return freed_count

    def evict_to_host(self, ptr: GpuPointer) -> None:
        """Device-to-host eviction of a free pointer (keeps data on host).

        Holistic eviction: before paying the D2H transfer, the arbiter is
        consulted for residency in other regions — when the driver cache
        (or its disk tier) already holds the value, the transfer is
        skipped and the pointer is simply invalidated and freed.
        """
        if self.arbiter.resident_elsewhere(ptr, exclude=(REGION_GPU,)):
            self.stats.inc(MEM_D2H_AVOIDED)
            self._destroy_free_pointer(ptr, invalidate=True)
            return
        self.stream.copy_d2h(ptr.size)
        self.stats.inc(GPU_EVICT_D2H)
        if self.tracer.enabled:
            self.tracer.instant(EV_GPU_EVICT_D2H, LANE_GPU, nbytes=ptr.size)
        self._destroy_free_pointer(ptr, invalidate=False)

    # -- Algorithm 1 ----------------------------------------------------------

    def _recycle_exact(self, size: int, shape: tuple[int, int]) -> Optional[GpuPointer]:
        """Step 0: recycle a free pointer of the exact size (no malloc).

        Pointers backing lineage-cache entries are only recycled once the
        device is full (paper: "once the GPU memory is full, we start
        recycling the free pointers as a form of eviction"); uncached
        pool pointers recycle freely — the mini-batch fast path.
        """
        queue = self.free_lists.get(size)
        if not queue:
            return None
        uncached = [p for p in queue if not p.cached]
        if uncached:
            victim = self.arbiter.select_victim(
                REGION_GPU, uncached, score=self._pointer_score(uncached)
            )
            queue.remove(victim)
            if not queue:
                self.free_lists.pop(size, None)
            self.free_bytes_pooled -= victim.size
        else:
            if self.mode == MODE_MEMPHIS and self._device_has_room(size):
                return None  # prefer a fresh malloc; keep cached pointers
            victim = self._pop_victim(queue, size)
        self.on_invalidate(victim)
        # reuse the allocation in place: same offset, new identity
        ptr = GpuPointer(victim.offset, victim.size, shape)
        ptr.retain()
        ptr.last_access = self.clock.now(DEVICE)
        victim.freed = True
        self.live[ptr.id] = ptr
        self.stats.inc(GPU_RECYCLED)
        if self.tracer.enabled:
            self.tracer.instant(EV_GPU_RECYCLE, LANE_GPU, nbytes=size,
                                cached=victim.cached)
        return ptr

    def _device_has_room(self, size: int) -> bool:
        """Whether a fresh cudaMalloc of ``size`` would succeed now."""
        aligned = -(-size // self.config.alignment) * self.config.alignment
        return self.device.largest_free_block >= aligned

    def _alloc_with_eviction(self, size: int) -> Optional[int]:
        """Steps 2-6 of Algorithm 1 after a failed first malloc."""
        # under memory pressure, collect host garbage so pending pointer
        # releases reach the Free lists (SystemDS triggers JVM GC in the
        # same situation); rate-limited because full collections over a
        # large host heap are expensive
        if self._maybe_collect_garbage():
            offset = self._cuda_malloc(size)
            if offset is not None:
                return offset
        # step 2: free a pointer just larger than the required size
        larger_sizes = sorted(s for s in self.free_lists if s > size)
        if larger_sizes:
            queue = self.free_lists[larger_sizes[0]]
            victim = self._pop_victim(queue, larger_sizes[0])
            self._destroy_free_pointer(victim, already_popped=True)
            offset = self._cuda_malloc(size)
            if offset is not None:
                return offset
        # step 3: repeatedly free pointers until malloc succeeds
        while self.free_bytes_pooled > 0:
            victim = self._global_victim()
            if victim is None:
                break
            self._destroy_free_pointer(victim)
            offset = self._cuda_malloc(size)
            if offset is not None:
                return offset
        # step 4: clean up all free pointers
        self._flush_free_lists()
        offset = self._cuda_malloc(size)
        if offset is not None:
            return offset
        # step 5 (rare): full defragmentation of live allocations
        offset = self._defragment_and_malloc(size)
        return offset

    # -- internals ---------------------------------------------------------------

    def _maybe_collect_garbage(self) -> bool:
        """Run a host GC at most every 64 pressured allocations."""
        import gc

        self._allocs_since_gc += 1
        if self._allocs_since_gc >= 64 or self._allocs_since_gc == 1:
            gc.collect()
            self._allocs_since_gc = 1
            return True
        return False

    def _cuda_malloc(self, size: int) -> Optional[int]:
        offset = self.device.malloc(size)
        if offset is not None:
            # mirror the device allocator's ledger in the GPU region
            self.arbiter.acquire(
                REGION_GPU, _align(size, self.config.alignment)
            )
            # cudaMalloc synchronizes the device and costs driver latency
            self.stream.synchronize()
            self.clock.advance(self.config.malloc_latency_s, HOST)
            self.clock.advance_to(self.clock.now(HOST), DEVICE)
            self.stats.inc(GPU_MALLOCS)
            if self.tracer.enabled:
                self.tracer.instant(EV_GPU_MALLOC, LANE_GPU, nbytes=size)
        return offset

    def _cuda_free(self, ptr: GpuPointer) -> None:
        if ptr.freed:
            return
        self.stream.synchronize()
        self.clock.advance(self.config.free_latency_s, HOST)
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        freed = self.device.free(ptr.offset)
        self.arbiter.release(REGION_GPU, freed)
        ptr.freed = True
        self.stats.inc(GPU_FREES)
        if self.tracer.enabled:
            self.tracer.instant(EV_GPU_FREE, LANE_GPU, nbytes=ptr.size)

    def _destroy_free_pointer(self, ptr: GpuPointer,
                              already_popped: bool = False,
                              invalidate: bool = True) -> None:
        if not already_popped:
            queue = self.free_lists.get(ptr.size)
            if queue and ptr in queue:
                queue.remove(ptr)
                self.free_bytes_pooled -= ptr.size
                if not queue:
                    del self.free_lists[ptr.size]
        if invalidate:
            self.on_invalidate(ptr)
        self._cuda_free(ptr)

    def _flush_free_lists(self) -> None:
        for size in list(self.free_lists):
            for ptr in list(self.free_lists.get(size, ())):
                self._destroy_free_pointer(ptr)

    def _defragment_and_malloc(self, size: int) -> Optional[int]:
        moved = self.device.defragment()
        self.stream.synchronize()
        self.clock.advance(
            moved / self.config.mem_bandwidth_bytes_per_s, HOST
        )
        self.clock.advance_to(self.clock.now(HOST), DEVICE)
        self.stats.inc(GPU_DEFRAGS)
        if self.tracer.enabled:
            self.tracer.instant(EV_GPU_DEFRAG, LANE_GPU, moved=moved)
        relocation = getattr(self.device, "relocation_map", {})
        for ptr in self.live.values():
            if ptr.offset in relocation:
                ptr.offset = relocation[ptr.offset]
        offset = self.device.malloc(size)
        if offset is not None:
            self.arbiter.acquire(
                REGION_GPU, _align(size, self.config.alignment)
            )
        return offset

    def _pointer_score(self, candidates: list[GpuPointer]):
        """Eq. 2 score closure over one candidate set.

        The scoring math lives in ``core/policies.py``
        (``score_pointer``); this only fixes the context-dependent
        normalisation terms — the device clock and the candidate set's
        maximum compute cost.
        """
        now = self.clock.now(DEVICE)
        max_cost = max((p.compute_cost for p in candidates), default=1.0)
        return lambda p: self.policy.score_pointer(p, now, max_cost)

    def _pop_victim(self, queue: list[GpuPointer], size: int) -> GpuPointer:
        """Remove and return the minimum-score pointer of one queue."""
        victim = self.arbiter.select_victim(
            REGION_GPU, queue, score=self._pointer_score(queue)
        )
        queue.remove(victim)
        if not queue:
            self.free_lists.pop(size, None)
        self.free_bytes_pooled -= victim.size
        return victim

    def _global_victim(self) -> Optional[GpuPointer]:
        """Minimum-score pointer across all free queues (not yet popped)."""
        pool = [p for q in self.free_lists.values() for p in q]
        return self.arbiter.select_victim(
            REGION_GPU, pool, score=self._pointer_score(pool)
        )
