"""GPU device memory: a first-fit address-space allocator.

Models ``cudaMalloc``/``cudaFree`` over a contiguous address space so that
*fragmentation is real*: repeated allocation/deallocation of mixed sizes
produces holes, allocations fail when no contiguous block fits even
though total free memory suffices, and defragmentation (compaction) is an
explicit, expensive operation — the cost structure that motivates the
paper's recycling design (§2.3, §4.2).
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.common.config import GpuConfig
from repro.common.errors import GpuError


def _align(size: int, alignment: int) -> int:
    return -(-size // alignment) * alignment


class GpuDevice:
    """Contiguous device address space with first-fit allocation.

    Models the raw ``cudaMalloc``/``cudaFree`` address space beneath
    the unified memory manager (paper §4.2, Fig. 8), including the
    fragmentation that step 6 of Algorithm 1 defragments.
    """

    def __init__(self, config: GpuConfig) -> None:
        self.config = config
        self.capacity = config.device_memory
        #: sorted list of free (offset, size) holes.
        self._free: list[tuple[int, int]] = [(0, self.capacity)]
        #: offset -> size of live allocations.
        self._allocated: dict[int, int] = {}

    # -- queries -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_hole/free_bytes: 0 = contiguous, ->1 = shattered."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def num_allocations(self) -> int:
        return len(self._allocated)

    def allocation_report(self) -> dict:
        """Accounting snapshot for leak checks (chaos property tests).

        ``consistent`` asserts the device invariant directly: live
        allocations plus free holes tile the address space exactly.
        """
        hole_bytes = sum(size for _, size in self._free)
        return {
            "num_allocations": self.num_allocations(),
            "used_bytes": self.used_bytes,
            "hole_bytes": hole_bytes,
            "consistent": self.used_bytes + hole_bytes == self.capacity,
        }

    # -- allocation ----------------------------------------------------------

    def malloc(self, size: int) -> Optional[int]:
        """First-fit allocate; returns the offset or ``None`` on failure."""
        if size <= 0:
            raise GpuError(f"invalid allocation size {size}")
        size = _align(size, self.config.alignment)
        for i, (offset, hole) in enumerate(self._free):
            if hole >= size:
                if hole == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (offset + size, hole - size)
                self._allocated[offset] = size
                return offset
        return None

    def free(self, offset: int) -> int:
        """Release an allocation, coalescing adjacent holes; returns size."""
        size = self._allocated.pop(offset, None)
        if size is None:
            raise GpuError(f"double free or invalid offset {offset}")
        insort(self._free, (offset, size))
        self._coalesce()
        return size

    def defragment(self) -> int:
        """Compact all live allocations to the start of the address space.

        Returns the number of bytes moved (the caller charges copy time).
        Live offsets are remapped; callers must use the returned mapping.
        """
        moved = 0
        new_allocated: dict[int, int] = {}
        self.relocation_map: dict[int, int] = {}
        cursor = 0
        for offset in sorted(self._allocated):
            size = self._allocated[offset]
            if offset != cursor:
                moved += size
            self.relocation_map[offset] = cursor
            new_allocated[cursor] = size
            cursor += size
        self._allocated = new_allocated
        self._free = (
            [(cursor, self.capacity - cursor)] if cursor < self.capacity else []
        )
        return moved

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for offset, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                prev_off, prev_size = merged[-1]
                merged[-1] = (prev_off, prev_size + size)
            else:
                merged.append((offset, size))
        self._free = merged
