"""GPU backend simulator: device memory, async stream, unified manager."""

from repro.backends.gpu.backend import GPU_OPCODES, GpuBackend, GpuData
from repro.backends.gpu.device import GpuDevice
from repro.backends.gpu.memmanager import (
    MODE_MALLOC,
    MODE_MEMPHIS,
    MODE_POOL,
    GpuMemoryManager,
)
from repro.backends.gpu.pointers import GpuPointer
from repro.backends.gpu.stream import GpuStream

__all__ = [
    "GpuBackend",
    "GpuData",
    "GpuDevice",
    "GpuMemoryManager",
    "GpuPointer",
    "GpuStream",
    "GPU_OPCODES",
    "MODE_MALLOC",
    "MODE_POOL",
    "MODE_MEMPHIS",
]
