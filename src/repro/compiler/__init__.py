"""Mini ML-system compiler: HOP IR, rewrites, linearization."""

from repro.compiler.ir import Hop, data_hop, infer_shape, literal_hop, op_hop
from repro.compiler.linearize import depth_first, max_parallelize

__all__ = [
    "Hop",
    "data_hop",
    "literal_hop",
    "op_hop",
    "infer_shape",
    "depth_first",
    "max_parallelize",
]
