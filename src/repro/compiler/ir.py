"""HOP-style expression IR: lazy operator DAGs with shape inference.

Handles build :class:`Hop` DAGs lazily (SystemDS-style DAG compilation,
§2.1); each evaluation point compiles one DAG through rewrites,
placement, and linearization into an instruction stream.  Shapes and
worst-case memory estimates are inferred bottom-up and drive operator
placement (ops above the operation-memory budget go to Spark).
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro.common.costs import matrix_bytes, op_flops
from repro.common.errors import CompilationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.handles import MatrixHandle

_hop_ids = itertools.count(1)

KIND_OP = "op"
KIND_DATA = "data"
KIND_LITERAL = "literal"

#: opcodes producing scalars.
SCALAR_OPS = {"uak+", "uamean", "uamax", "uamin", "nrow", "ncol"}


def infer_shape(opcode: str, in_shapes: list[tuple[int, int]],
                attrs: dict) -> tuple[int, int]:
    """Bottom-up output shape inference for every supported opcode."""
    if opcode == "rand":
        return (int(attrs["rows"]), int(attrs["cols"]))
    if opcode == "fused":
        # fused chains record their tail shape in the attrs; the interior
        # hops they absorbed are no longer reachable for re-inference
        return (int(attrs["rows"]), int(attrs["cols"]))
    if opcode == "seq":
        start, stop = float(attrs["from"]), float(attrs["to"])
        step = float(attrs.get("incr", 1.0))
        return (max(int((stop - start) / step) + 1, 0), 1)
    if opcode == "ba+*":
        return (in_shapes[0][0], in_shapes[1][1])
    if opcode == "r'":
        return (in_shapes[0][1], in_shapes[0][0])
    if opcode == "solve":
        return (in_shapes[0][1], in_shapes[1][1])
    if opcode == "inv":
        return in_shapes[0]
    if opcode in SCALAR_OPS:
        return (1, 1)
    if opcode in ("uark+", "uarmean", "uarmax", "uarmin", "uarimax"):
        return (in_shapes[0][0], 1)
    if opcode in ("uack+", "uacmean", "uacmax", "uacmin"):
        return (1, in_shapes[0][1])
    if opcode == "rightIndex":
        rl = int(attrs.get("rl", 1))
        ru = int(attrs.get("ru", in_shapes[0][0]))
        cl = int(attrs.get("cl", 1))
        cu = int(attrs.get("cu", in_shapes[0][1]))
        return (ru - rl + 1, cu - cl + 1)
    if opcode == "leftIndex":
        return in_shapes[0]
    if opcode == "cbind":
        return (in_shapes[0][0], sum(s[1] for s in in_shapes))
    if opcode == "rbind":
        return (sum(s[0] for s in in_shapes), in_shapes[0][1])
    if opcode == "diag":
        rows, cols = in_shapes[0]
        return (rows, rows) if cols == 1 else (min(rows, cols), 1)
    if opcode == "reshape":
        return (int(attrs["rows"]), int(attrs["cols"]))
    if opcode == "table":
        return (int(attrs["rows"]), int(attrs["cols"]))
    if opcode == "conv2d":
        n = int(attrs["N"]); k = int(attrs["K"])
        h = int(attrs["H"]); w = int(attrs["W"])
        r = int(attrs["R"]); s = int(attrs["S"])
        stride = int(attrs.get("stride", 1)); pad = int(attrs.get("pad", 0))
        hout = (h + 2 * pad - r) // stride + 1
        wout = (w + 2 * pad - s) // stride + 1
        return (n, k * hout * wout)
    if opcode == "maxpool":
        n = int(attrs["N"]); c = int(attrs["C"])
        h = int(attrs["H"]); w = int(attrs["W"])
        r = int(attrs["R"]); s = int(attrs["S"])
        stride = int(attrs.get("stride", 1)); pad = int(attrs.get("pad", 0))
        hout = (h + 2 * pad - r) // stride + 1
        wout = (w + 2 * pad - s) // stride + 1
        return (n, c * hout * wout)
    if opcode in ("order", "rev", "replace", "relu", "sigmoid", "tanh",
                  "softmax", "dropout", "exp", "log", "sqrt", "abs", "sign",
                  "round", "floor", "ceil", "bias_add", "assign", "recode",
                  "bin"):
        return in_shapes[0]
    if opcode == "quantile":
        return (1, in_shapes[0][1])
    # element-wise binary with broadcasting
    if len(in_shapes) == 2:
        a, b = in_shapes
        return (max(a[0], b[0]), max(a[1], b[1]))
    if in_shapes:
        return in_shapes[0]
    raise CompilationError(f"cannot infer shape of {opcode!r}")


class Hop:
    """One node of the expression DAG."""

    __slots__ = (
        "id", "kind", "opcode", "inputs", "attrs", "shape",
        "_handle_ref", "value", "placement", "prefetch",
        "async_broadcast", "checkpoint", "fused", "bundle", "finalizer",
        "_obytes", "__weakref__",
    )

    def __init__(self, kind: str, opcode: str, inputs: list["Hop"],
                 attrs: Optional[dict] = None,
                 shape: Optional[tuple[int, int]] = None,
                 handle: Optional["MatrixHandle"] = None,
                 value: object = None) -> None:
        self.id = next(_hop_ids)
        self.kind = kind
        self.opcode = opcode
        self.inputs = inputs
        self.attrs = attrs or {}
        self._handle_ref = None
        if handle is not None:
            self.handle = handle
        self.value = value
        #: for data leaves: (lineage_item, payloads_dict) owned by the
        #: hop itself, so payload lifetime follows DAG reachability and
        #: never forms a handle <-> hop reference cycle.
        self.bundle: Optional[tuple] = None
        #: weakref finalizer releasing a GPU payload when this hop dies.
        self.finalizer = None
        if shape is not None:
            self.shape = shape
        elif kind == KIND_LITERAL:
            self.shape = (1, 1)
        else:
            self.shape = infer_shape(opcode, [h.shape for h in inputs], self.attrs)
        #: backend tag assigned by the placement pass ("CP"/"SP"/"GPU").
        self.placement: Optional[str] = None
        #: compiler flags set by the rewrites of §5.
        self.prefetch = False
        self.async_broadcast = False
        self.checkpoint = False
        #: transpose fused into a tsmm/cpmm physical operator (skipped).
        self.fused = False
        #: lazily-cached output_bytes (shape is immutable after init).
        self._obytes: Optional[int] = None

    # -- handle binding (weak, so expression temporaries can die) -------------

    @property
    def handle(self) -> Optional["MatrixHandle"]:
        """The live handle denoting this hop's value, if any.

        Stored weakly: handles for expression temporaries (e.g. the
        ``X.t()`` inside ``X.t() @ X``) are garbage-collected as soon as
        user code drops them, so only results the program actually keeps
        get rebound after evaluation.
        """
        if self._handle_ref is None:
            return None
        return self._handle_ref()

    @handle.setter
    def handle(self, handle: Optional["MatrixHandle"]) -> None:
        import weakref

        self._handle_ref = None if handle is None else weakref.ref(handle)

    # -- estimates ---------------------------------------------------------------

    @property
    def output_bytes(self) -> int:
        obytes = self._obytes
        if obytes is None:
            obytes = self._obytes = matrix_bytes(*self.shape)
        return obytes

    @property
    def memory_estimate(self) -> int:
        """Worst-case operation memory: inputs + output (dense)."""
        return self.output_bytes + sum(h.output_bytes for h in self.inputs)

    @property
    def flops(self) -> float:
        return op_flops(self.opcode, [h.shape for h in self.inputs], self.shape)

    @property
    def is_scalar(self) -> bool:
        return self.shape == (1, 1) and (
            self.opcode in SCALAR_OPS or self.kind == KIND_LITERAL
        )

    def iter_dag(self) -> list["Hop"]:
        """Every distinct node reachable from this hop, exactly once.

        The order is the **deterministic left-to-right post-order**:
        each node's inputs are fully visited before the node itself,
        first input's subtree first, and shared sub-DAGs are yielded at
        their first (leftmost) occurrence.  For a single root this is
        identical to :func:`repro.compiler.linearize.depth_first`;
        compiler passes rely on this order being stable so that rewrite
        decisions (e.g. ``max_parallelize`` tie-breaking) are
        reproducible across runs.

        Returns a list rather than a generator: every compiler pass
        walks the full traversal (several times per evaluated block),
        and generator frame resumption was the single largest cost in
        the evaluate hot path before the switch.
        """
        out: list[Hop] = []
        seen: set[int] = set()
        stack: list[tuple[Hop, bool]] = [(self, False)]
        push = stack.append
        pop = stack.pop
        while stack:
            node, expanded = pop()
            nid = node.id
            if expanded:
                if nid not in seen:
                    seen.add(nid)
                    out.append(node)
                continue
            if nid in seen:
                continue
            push((node, True))
            inputs = node.inputs
            if inputs:
                for inp in reversed(inputs):
                    push((inp, False))
        return out

    def validate(self, raise_on_error: bool = True):
        """Structurally verify the DAG rooted here (dag-verify pass).

        Convenience wrapper over :mod:`repro.analysis`: runs the
        ``dag-verify`` pass (cycles, dangling data leaves, shape
        consistency with :func:`infer_shape`, kind legality) and returns
        the resulting
        :class:`~repro.analysis.diagnostics.DiagnosticReport`.  With
        ``raise_on_error`` (default), error-severity findings raise
        :class:`~repro.common.errors.VerificationError` instead.
        """
        from repro.analysis import analyze
        from repro.common.errors import VerificationError

        report = analyze([self], passes=("dag-verify",))
        errors = report.errors()
        if raise_on_error and errors:
            raise VerificationError(
                f"invalid HOP DAG ({len(errors)} error(s)):\n"
                + "\n".join(d.format() for d in errors),
                report=report,
            )
        return report

    def __repr__(self) -> str:
        return (
            f"Hop#{self.id}({self.opcode}, {self.shape}, "
            f"{self.placement or 'unplaced'})"
        )


def data_hop(handle: "MatrixHandle", shape: tuple[int, int]) -> Hop:
    """Leaf hop bound to an already-evaluated handle."""
    return Hop(KIND_DATA, "data", [], shape=shape, handle=handle)


def literal_hop(value: object) -> Hop:
    """Leaf hop for a scalar literal."""
    return Hop(KIND_LITERAL, "lit", [], value=value)


def op_hop(opcode: str, inputs: list[Hop], attrs: Optional[dict] = None) -> Hop:
    """Operator hop with inferred shape."""
    return Hop(KIND_OP, opcode, inputs, attrs=attrs)
