"""Operator linearization: depth-first and MAXPARALLELIZE (Algorithm 2).

SystemDS linearizes operator DAGs depth-first.  MEMPHIS's
``max_parallelize`` instead identifies the roots of remote operator
chains (Spark actions / prefetch ops / GPU-to-host copies), counts the
remote operators in each chain, and linearizes the *longest chains
first* — longer chains allow more concurrent execution once their
asynchronous jobs are in flight, and tight packing shortens the lifetime
of dangling RDD references (§5.3).
"""

from __future__ import annotations

from repro.common.errors import CompilationError
from repro.compiler.ir import KIND_OP, Hop
from repro.core.entry import BACKEND_GPU, BACKEND_SP


def depth_first(roots: list[Hop],
                visited: set[int] | None = None) -> list[Hop]:
    """Classic post-order (inputs before consumers) linearization.

    Nodes are marked ``seen`` exactly when they are appended to the
    order — never earlier.  A node discovered twice before its first
    emission (shared sub-DAG, a node that is both an inner node and a
    later root, a duplicated root, or the same hop appearing twice in
    one ``inputs`` list) is therefore emitted exactly once, at its
    first post-order position, and every input still precedes all of
    its consumers.  The ``linearization-soundness`` analysis pass
    re-checks these invariants on every compiled block when
    ``config.verify_ir`` is enabled.

    ``visited`` shares emission state across successive calls (used by
    :func:`max_parallelize` to linearize remote chains first): ids
    already present are treated as emitted earlier and skipped.

    Raises :class:`~repro.common.errors.CompilationError` on a cyclic
    graph instead of looping forever.
    """
    order: list[Hop] = []
    seen = visited if visited is not None else set()
    on_path: set[int] = set()
    emit = order.append
    mark = seen.add
    enter = on_path.add
    leave = on_path.discard
    for root in roots:
        stack: list[tuple[Hop, bool]] = [(root, False)]
        push = stack.append
        pop = stack.pop
        while stack:
            node, expanded = pop()
            nid = node.id
            if expanded:
                leave(nid)
                if nid not in seen:
                    mark(nid)
                    emit(node)
                continue
            if nid in seen or nid in on_path:
                continue
            enter(nid)
            push((node, True))
            inputs = node.inputs
            if inputs:
                for inp in reversed(inputs):
                    if inp.id in on_path:
                        raise CompilationError(
                            f"cycle in HOP DAG: {inp!r} reachable from "
                            f"itself via {node!r}"
                        )
                    push((inp, False))
    return order


def _chain_roots(nodes: list[Hop]) -> tuple[list[Hop], list[Hop]]:
    """Collect Spark and GPU remote-chain roots (Algorithm 2 step 1)."""
    sp_roots: list[Hop] = []
    gpu_roots: list[Hop] = []
    for hop in nodes:
        if hop.kind != KIND_OP:
            continue
        if hop.prefetch and hop.placement == BACKEND_SP:
            sp_roots.append(hop)
        elif hop.prefetch and hop.placement == BACKEND_GPU:
            gpu_roots.append(hop)
    return sp_roots, gpu_roots


def _count_backend_ops(root: Hop, backend: str) -> int:
    """Number of ``backend`` operators in the chain rooted at ``root``."""
    return sum(
        1 for hop in root.iter_dag()
        if hop.kind == KIND_OP and hop.placement == backend
    )


def max_parallelize(roots: list[Hop],
                    nodes: list[Hop] | None = None) -> list[Hop]:
    """Algorithm 2: linearize remote chains first, longest chain first.

    ``nodes`` optionally supplies the depth-first linearization already
    computed by the caller; with no remote chains present it is returned
    as-is, so the all-local common case costs zero extra traversals.
    """
    if nodes is None:
        nodes = depth_first(roots)
    sp_roots, gpu_roots = _chain_roots(nodes)
    if not sp_roots and not gpu_roots:
        return nodes

    counted: list[tuple[int, Hop]] = []
    for hop in sp_roots:
        counted.append((_count_backend_ops(hop, BACKEND_SP), hop))
    for hop in gpu_roots:
        counted.append((_count_backend_ops(hop, BACKEND_GPU), hop))
    counted.sort(key=lambda pair: -pair[0])

    visited: set[int] = set()
    order: list[Hop] = []
    for _, chain_root in counted:
        order.extend(depth_first([chain_root], visited))
    order.extend(depth_first(roots, visited))
    return order
