"""Operator linearization: depth-first and MAXPARALLELIZE (Algorithm 2).

SystemDS linearizes operator DAGs depth-first.  MEMPHIS's
``max_parallelize`` instead identifies the roots of remote operator
chains (Spark actions / prefetch ops / GPU-to-host copies), counts the
remote operators in each chain, and linearizes the *longest chains
first* — longer chains allow more concurrent execution once their
asynchronous jobs are in flight, and tight packing shortens the lifetime
of dangling RDD references (§5.3).
"""

from __future__ import annotations

from repro.compiler.ir import KIND_OP, Hop
from repro.core.entry import BACKEND_GPU, BACKEND_SP


def depth_first(roots: list[Hop],
                visited: set[int] | None = None) -> list[Hop]:
    """Classic post-order (inputs before consumers) linearization."""
    order: list[Hop] = []
    seen = visited if visited is not None else set()
    for root in roots:
        stack: list[tuple[Hop, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                if node.id not in seen:
                    seen.add(node.id)
                    order.append(node)
                continue
            if node.id in seen:
                continue
            stack.append((node, True))
            for inp in reversed(node.inputs):
                stack.append((inp, False))
    return order


def _chain_roots(roots: list[Hop]) -> tuple[list[Hop], list[Hop]]:
    """Collect Spark and GPU remote-chain roots (Algorithm 2 step 1)."""
    sp_roots: list[Hop] = []
    gpu_roots: list[Hop] = []
    for root in roots:
        for hop in root.iter_dag():
            if hop.kind != KIND_OP:
                continue
            if hop.prefetch and hop.placement == BACKEND_SP:
                sp_roots.append(hop)
            elif hop.prefetch and hop.placement == BACKEND_GPU:
                gpu_roots.append(hop)
    return sp_roots, gpu_roots


def _count_backend_ops(root: Hop, backend: str) -> int:
    """Number of ``backend`` operators in the chain rooted at ``root``."""
    return sum(
        1 for hop in root.iter_dag()
        if hop.kind == KIND_OP and hop.placement == backend
    )


def max_parallelize(roots: list[Hop]) -> list[Hop]:
    """Algorithm 2: linearize remote chains first, longest chain first."""
    sp_roots, gpu_roots = _chain_roots(roots)
    if not sp_roots and not gpu_roots:
        return depth_first(roots)

    counted: list[tuple[int, Hop]] = []
    for hop in sp_roots:
        counted.append((_count_backend_ops(hop, BACKEND_SP), hop))
    for hop in gpu_roots:
        counted.append((_count_backend_ops(hop, BACKEND_GPU), hop))
    counted.sort(key=lambda pair: -pair[0])

    visited: set[int] = set()
    order: list[Hop] = []
    for _, chain_root in counted:
        order.extend(depth_first([chain_root], visited))
    order.extend(depth_first(roots, visited))
    return order
