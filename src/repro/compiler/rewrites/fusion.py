"""Reuse-aware operator fusion over the post-CSE HOP DAG.

Candidate-exploration fusion in the style of SystemML's fusion plans
(Boehm et al., PAPERS.md): chains of cell-wise/unary operators — and
matmul-epilogue patterns (a ``ba+*`` feeding such a chain) — are merged
into a single :class:`FusedHop` lowered to one fused instruction that
runs the chain's :class:`~repro.backends.cpu.vectorized.CompiledStep`
sequence without materializing interior intermediates.

Fusion is **reuse-aware**: a hop whose lineage key the cache policy may
want to retain (the Eq. 1 / Eq. 2 Cost&Size scoring in
``repro.core.policies`` assigns every deterministic operator output a
positive retention score while probing or caching is enabled) is never
absorbed into a chain, because a fused interior produces no lineage
cache entry and would silently forfeit the reuse opportunity.  In
practice this means fusion fires only under
:class:`~repro.common.config.ReuseMode` ``NONE`` and ``TRACE_ONLY`` —
exactly the settings where the paper's Fig. 11 instruction-count
overheads are measured.  Fusion also never crosses placement,
checkpoint, prefetch, or async-broadcast boundaries; the ``FUS`` rule
family in :mod:`repro.analysis.fusion_rules` re-checks every one of
these invariants statically.
"""

from __future__ import annotations

from repro.backends.cpu.vectorized import CompiledStep, compile_step
from repro.common.config import MemphisConfig, ReuseMode
from repro.common.costs import op_flops
from repro.common.stats import (
    FUSION_BYTES_SAVED,
    FUSION_CHAINS,
    FUSION_HOPS_ELIMINATED,
    Stats,
)
from repro.compiler.ir import KIND_OP, Hop
from repro.core.entry import BACKEND_CP

#: opcode of every fused instruction (one ``infer_shape`` case, one
#: interpreter dispatch branch, one PLC011 exemption).
FUSED_OPCODE = "fused"

#: reuse modes under which no lineage key is ever probed or cached, so
#: eliminating an interior intermediate cannot forfeit a reuse.
_NO_RETENTION_MODES = (ReuseMode.NONE, ReuseMode.TRACE_ONLY)

#: opcodes whose lineage keys are non-deterministic without an explicit
#: seed; the cache never retains them (DET001/DET002 territory), so they
#: are exempt from the retention check (kept in sync with
#: ``repro.analysis.dag_rules.LineageDeterminismPass.RANDOMIZED``).
_IMPURE_OPCODES = frozenset({"rand", "dropout"})


def retention_candidate(hop: Hop, config: MemphisConfig) -> bool:
    """Whether the lineage cache may want to retain ``hop``'s output.

    While the reuse mode probes or caches, the Cost&Size policy
    (Eq. 1 / Eq. 2, ``repro.core.policies``) scores every deterministic
    operator output as retainable — its compute cost is positive and a
    future probe could hit it — so fusing over it would destroy a
    potential cache entry.  Under ``NONE``/``TRACE_ONLY`` nothing is
    probed or cached and no hop is a retention candidate.  Operators
    with non-deterministic lineage keys (unseeded ``rand``/``dropout``,
    the DET-rule impurity set) are never retained in any mode.
    """
    if config.reuse_mode in _NO_RETENTION_MODES:
        return False
    if hop.opcode in _IMPURE_OPCODES and "seed" not in hop.attrs:
        return False
    return True


class FusedHop(Hop):
    """A fused cell-wise chain (optionally with a matmul prologue).

    ``inputs`` holds the chain's external data dependencies: the matrix
    source (or the matmul's two operands) followed by every scalar
    literal consumed by the chain's steps, in step order.  The original
    hops stay recorded on ``chain``/``prologue`` so execution can
    re-intern their exact per-step lineage items under ``TRACE_ONLY``.
    """

    __slots__ = ("prologue", "chain", "steps")

    def __init__(self, chain: list[Hop], steps: list[CompiledStep],
                 prologue: Hop | None = None) -> None:
        tail = chain[-1]
        source = prologue if prologue is not None else chain[0].inputs[
            steps[0].matrix_index]
        if prologue is not None:
            inputs: list[Hop] = list(prologue.inputs)
        else:
            inputs = [source]
        literals = [
            step.hop.inputs[step.scalar_index]
            for step in steps if step.scalar_index is not None
        ]
        inputs.extend(literals)
        spec = "|".join(
            step.hop.opcode
            + ("" if step.scalar_index is None
               else f"@{step.scalar_index}={step.hop.inputs[step.scalar_index].value!r}")
            for step in steps
        )
        if prologue is not None:
            spec = f"{prologue.opcode}>" + spec
        attrs = {"steps": spec, "rows": tail.shape[0], "cols": tail.shape[1]}
        super().__init__(KIND_OP, FUSED_OPCODE, inputs, attrs=attrs,
                         shape=tail.shape)
        self.prologue = prologue
        self.chain = chain
        self.steps = steps
        self.placement = BACKEND_CP

    @property
    def flops(self) -> float:
        """Sum of the absorbed hops' FLOPs (the work is unchanged —
        only the interior materializations disappear)."""
        total = sum(
            op_flops(h.opcode, [i.shape for i in h.inputs], h.shape)
            for h in self.chain
        )
        if self.prologue is not None:
            pro = self.prologue
            total += op_flops(pro.opcode, [i.shape for i in pro.inputs],
                              pro.shape)
        return total

    @property
    def saved_bytes(self) -> int:
        """Interior ``output_bytes`` no longer materialized (every
        absorbed hop except the tail, plus the prologue)."""
        saved = sum(h.output_bytes for h in self.chain[:-1])
        if self.prologue is not None:
            saved += self.prologue.output_bytes
        return saved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FusedHop#{self.id}({self.attrs['steps']}, {self.shape})"


def _cells(hop: Hop) -> int:
    return hop.shape[0] * hop.shape[1]


def _boundary_clean(hop: Hop) -> bool:
    """No checkpoint/prefetch/broadcast/transpose-fusion flag set and
    the hop is placed locally (placement boundaries block fusion)."""
    return (not hop.checkpoint and not hop.prefetch
            and not hop.async_broadcast and not hop.fused
            and hop.placement in (None, BACKEND_CP))


def _absorbable_matmul(hop: Hop, root_ids: set[int], protected: set[int],
                       consumers: dict[int, list[Hop]],
                       config: MemphisConfig) -> bool:
    """Whether ``hop`` is a ``ba+*`` that may become a chain prologue."""
    return (hop.kind == KIND_OP and hop.opcode == "ba+*"
            and not hop.attrs and _boundary_clean(hop)
            and hop.id not in root_ids and hop.id not in protected
            and hop.handle is None
            and len(consumers.get(hop.id, ())) == 1
            and _cells(hop) > 1
            and not retention_candidate(hop, config))


def plan_fusion(root_hops: list[Hop], nodes: list[Hop],
                consumers: dict[int, list[Hop]], config: MemphisConfig,
                protected: set[int] | None = None) -> list[FusedHop]:
    """Explore the DAG for fusable chains and build their FusedHops.

    A chain is a maximal run of cell-wise compilable hops linked through
    their matrix operand, where every hop except the tail is interior:
    single-consumer, unnamed (no live handle), not a block root, not in
    ``protected`` (ids with extra CSE handles), and not a retention
    candidate of the lineage cache.  The tail itself must also not be a
    retention candidate — its lineage item would otherwise have been a
    probe target with different inputs than the fused item.
    """
    protected = protected or set()
    root_ids = {h.id for h in root_hops}
    steps_by_id: dict[int, CompiledStep] = {}
    for hop in nodes:
        step = compile_step(hop)
        if step is not None:
            steps_by_id[hop.id] = step

    def interior(hop: Hop) -> bool:
        return (hop.id in steps_by_id
                and hop.id not in root_ids
                and hop.id not in protected
                and hop.handle is None
                and len(consumers.get(hop.id, ())) == 1
                and _cells(hop) > 1
                and not retention_candidate(hop, config))

    # mark hops absorbed as the *interior* of their single consumer's
    # chain, so only chain tails start an exploration
    absorbed: set[int] = set()
    for hop in nodes:
        step = steps_by_id.get(hop.id)
        if step is None:
            continue
        producer = hop.inputs[step.matrix_index]
        if interior(producer) and producer.id in steps_by_id:
            absorbed.add(producer.id)

    fused: list[FusedHop] = []
    for hop in nodes:
        if hop.id not in steps_by_id or hop.id in absorbed:
            continue
        if retention_candidate(hop, config):
            continue
        # walk the matrix spine backwards from the tail
        chain = [hop]
        cur = hop
        while True:
            producer = cur.inputs[steps_by_id[cur.id].matrix_index]
            if not interior(producer):
                break
            chain.append(producer)
            cur = producer
        chain.reverse()
        source = chain[0].inputs[steps_by_id[chain[0].id].matrix_index]
        prologue: Hop | None = None
        if _absorbable_matmul(source, root_ids, protected, consumers,
                              config):
            prologue = source
        if len(chain) < 2 and prologue is None:
            continue
        if _cells(source) <= 1:
            continue
        fused.append(FusedHop(chain, [steps_by_id[h.id] for h in chain],
                              prologue))
    return fused


def apply_fusion(root_hops: list[Hop], nodes: list[Hop],
                 consumers: dict[int, list[Hop]], config: MemphisConfig,
                 stats: Stats | None = None,
                 protected: set[int] | None = None,
                 ) -> tuple[list[Hop], list[FusedHop], dict[int, Hop]]:
    """Plan fusion and splice the FusedHops into the DAG.

    Every consumer edge pointing at a fused chain's tail is repointed at
    the FusedHop (across ``nodes`` and the root list), the tail's handle
    (if any) migrates to the FusedHop, and the interiors simply drop out
    of the reachable DAG.  Returns the (possibly rewritten) root list,
    the fused nodes, and a ``{old_tail_id: fused_hop}`` remap for the
    caller's auxiliary tables (CSE ``extra`` handles).
    """
    fused = plan_fusion(root_hops, nodes, consumers, config, protected)
    if not fused:
        return root_hops, [], {}
    replaced: dict[int, Hop] = {}
    for f in fused:
        tail = f.chain[-1]
        replaced[tail.id] = f
        handle = tail.handle
        if handle is not None:
            f.handle = handle
            handle.hop = f
    for node in nodes:
        if node.id in replaced:
            continue
        if any(inp.id in replaced for inp in node.inputs):
            node.inputs = [replaced.get(inp.id, inp) for inp in node.inputs]
    new_roots = [replaced.get(r.id, r) for r in root_hops]
    if stats is not None:
        stats.inc(FUSION_CHAINS, len(fused))
        eliminated = sum(
            len(f.chain) + (1 if f.prologue is not None else 0)
            for f in fused
        )
        stats.inc(FUSION_HOPS_ELIMINATED, eliminated - len(fused))
        stats.inc(FUSION_BYTES_SAVED, sum(f.saved_bytes for f in fused))
    return new_roots, fused, replaced


def fusion_spec(hop: Hop) -> str | None:
    """The fused chain's step spec, or ``None`` for ordinary hops."""
    if isinstance(hop, FusedHop):
        return str(hop.attrs.get("steps", ""))
    return None


__all__ = [
    "FUSED_OPCODE",
    "FusedHop",
    "apply_fusion",
    "fusion_spec",
    "plan_fusion",
    "retention_candidate",
]
