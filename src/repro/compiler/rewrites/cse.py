"""Common subexpression elimination on HOP DAGs.

Structurally identical hops (same opcode, attributes, and canonical
inputs) are merged into one node before execution.  CSE removes
*within-DAG* redundancy; cross-DAG redundancy (conditional control flow,
function calls) is what the lineage cache handles at runtime (§2.1).
"""

from __future__ import annotations

from repro.compiler.ir import KIND_DATA, KIND_LITERAL, KIND_OP, Hop


def _canonical_key(hop: Hop, canon: dict[int, Hop]):
    if hop.kind == KIND_LITERAL:
        return ("lit", hop.value)
    if hop.kind == KIND_DATA:
        handle = hop.handle
        return ("data", id(handle) if handle is not None else hop.id)
    inputs = tuple(canon[h.id].id for h in hop.inputs)
    attrs = tuple(sorted(hop.attrs.items()))
    return ("op", hop.opcode, attrs, inputs)


def eliminate_common_subexpressions(
    roots: list[Hop],
) -> tuple[list[Hop], dict[int, list]]:
    """Merge duplicate sub-DAGs under ``roots``.

    Returns the (possibly replaced) roots and a map
    ``canonical_hop_id -> [handles]`` of extra handles whose hop was
    merged away, so the interpreter can still bind them after execution.
    """
    canon: dict[int, Hop] = {}
    by_key: dict[object, Hop] = {}
    extra_handles: dict[int, list] = {}

    def visit(hop: Hop) -> Hop:
        if hop.id in canon:
            return canon[hop.id]
        for inp in hop.inputs:
            visit(inp)
        key = _canonical_key(hop, canon)
        existing = by_key.get(key)
        if existing is not None and existing is not hop:
            canon[hop.id] = existing
            if hop.handle is not None and existing.handle is not hop.handle:
                extra_handles.setdefault(existing.id, []).append(hop.handle)
            return existing
        # rewire inputs to canonical representatives
        if hop.kind == KIND_OP:
            hop.inputs = [canon[h.id] for h in hop.inputs]
        by_key[key] = hop
        canon[hop.id] = hop
        return hop

    # iterative wrapper to avoid deep recursion on long chains
    def visit_iterative(root: Hop) -> Hop:
        stack: list[tuple[Hop, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in canon:
                continue
            if expanded:
                visit_once(node)
                continue
            stack.append((node, True))
            for inp in node.inputs:
                if inp.id not in canon:
                    stack.append((inp, False))
        return canon[root.id]

    def visit_once(hop: Hop) -> None:
        key = _canonical_key(hop, canon)
        existing = by_key.get(key)
        if existing is not None and existing is not hop:
            canon[hop.id] = existing
            if hop.handle is not None and existing.handle is not hop.handle:
                extra_handles.setdefault(existing.id, []).append(hop.handle)
            return
        if hop.kind == KIND_OP:
            hop.inputs = [canon[h.id] for h in hop.inputs]
        by_key[key] = hop
        canon[hop.id] = hop

    new_roots = [visit_iterative(r) for r in roots]
    return new_roots, extra_handles
