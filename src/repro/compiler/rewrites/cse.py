"""Common subexpression elimination on HOP DAGs.

Structurally identical hops (same opcode, attributes, and canonical
inputs) are merged into one node before execution.  CSE removes
*within-DAG* redundancy; cross-DAG redundancy (conditional control flow,
function calls) is what the lineage cache handles at runtime (§2.1).
"""

from __future__ import annotations

from repro.compiler.ir import KIND_DATA, KIND_LITERAL, KIND_OP, Hop


def _canonical_key(hop: Hop, canon: dict[int, Hop]):
    if hop.kind == KIND_LITERAL:
        return ("lit", hop.value)
    if hop.kind == KIND_DATA:
        handle = hop.handle
        return ("data", id(handle) if handle is not None else hop.id)
    inputs = tuple(canon[h.id].id for h in hop.inputs)
    attrs = tuple(sorted(hop.attrs.items())) if hop.attrs else ()
    return ("op", hop.opcode, attrs, inputs)


def eliminate_common_subexpressions(
    roots: list[Hop],
) -> tuple[list[Hop], dict[int, list]]:
    """Merge duplicate sub-DAGs under ``roots``.

    Returns the (possibly replaced) roots and a map
    ``canonical_hop_id -> [handles]`` of extra handles whose hop was
    merged away, so the interpreter can still bind them after execution.
    """
    canon: dict[int, Hop] = {}
    by_key: dict[object, Hop] = {}
    extra_handles: dict[int, list] = {}

    # iterative traversal to avoid deep recursion on long chains; the
    # visit_once body is inlined in the expanded branch (this loop runs
    # once per hop per evaluated block)
    def visit_iterative(root: Hop) -> Hop:
        stack: list[tuple[Hop, bool]] = [(root, False)]
        push = stack.append
        pop = stack.pop
        while stack:
            node, expanded = pop()
            nid = node.id
            if nid in canon:
                continue
            if expanded:
                key = _canonical_key(node, canon)
                existing = by_key.get(key)
                if existing is not None and existing is not node:
                    canon[nid] = existing
                    handle = node.handle
                    if handle is not None and existing.handle is not handle:
                        extra_handles.setdefault(
                            existing.id, []).append(handle)
                    continue
                if node.kind == KIND_OP:
                    node.inputs = [canon[h.id] for h in node.inputs]
                by_key[key] = node
                canon[nid] = node
                continue
            push((node, True))
            for inp in node.inputs:
                if inp.id not in canon:
                    push((inp, False))
        return canon[root.id]

    new_roots = [visit_iterative(r) for r in roots]
    return new_roots, extra_handles
