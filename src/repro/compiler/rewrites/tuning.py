"""Automatic parameter tuning of delay factor and storage level (§5.2).

The program-level rewrite recursively traverses program blocks, analyzes
execution frequency (nested loops, function calls) and the presence of
loop-dependent (non-reusable) operations, then assigns:

* the *delay factor* ``n`` — defer caching until the n-th occurrence
  (``n = 1`` when >80% of a block's operations are reusable, Fig. 10);
* the Spark *storage level* — ``MEMORY_AND_DISK`` for blocks with high
  reuse potential (worth spilling), ``MEMORY_ONLY`` otherwise (avoid
  spilling things we will likely never reuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import StorageLevel


@dataclass
class ProgramBlock:
    """Static description of one basic block for the tuning pass."""

    name: str
    #: how often the block executes (product of enclosing loop counts).
    execution_frequency: int = 1
    #: total operator count of the block.
    num_ops: int = 1
    #: operators depending on loop variables (not reusable across iters).
    num_loop_dependent_ops: int = 0
    children: list["ProgramBlock"] = field(default_factory=list)

    @property
    def reusable_fraction(self) -> float:
        if self.num_ops <= 0:
            return 0.0
        return 1.0 - self.num_loop_dependent_ops / self.num_ops


@dataclass
class BlockTuning:
    """Tuning decision for one block."""

    delay_factor: int
    storage_level: StorageLevel


def tune_block(block: ProgramBlock) -> BlockTuning:
    """Assign delay factor and storage level for one block (Fig. 10)."""
    frac = block.reusable_fraction
    if block.execution_frequency <= 1:
        # executes once: nothing repeats, defer caching aggressively
        delay = 4
    elif frac > 0.8:
        delay = 1
    elif frac > 0.4:
        delay = 2
    else:
        delay = 4
    level = (
        StorageLevel.MEMORY_AND_DISK if frac >= 0.5
        else StorageLevel.MEMORY_ONLY
    )
    return BlockTuning(delay, level)


def tune_program(root: ProgramBlock) -> dict[str, BlockTuning]:
    """Recursively tune every block of a program; returns name -> tuning."""
    out: dict[str, BlockTuning] = {}

    def visit(block: ProgramBlock) -> None:
        out[block.name] = tune_block(block)
        for child in block.children:
            visit(child)

    visit(root)
    return out
