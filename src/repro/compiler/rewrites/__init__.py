"""Compiler rewrites: CSE, async operators, checkpoints, tuning."""

from repro.compiler.rewrites.async_ops import place_broadcast, place_prefetch
from repro.compiler.rewrites.checkpoint import (
    place_shared_checkpoints,
    should_checkpoint_loop_var,
)
from repro.compiler.rewrites.cse import eliminate_common_subexpressions
from repro.compiler.rewrites.fusion import (
    FUSED_OPCODE,
    FusedHop,
    apply_fusion,
    plan_fusion,
    retention_candidate,
)
from repro.compiler.rewrites.tuning import (
    BlockTuning,
    ProgramBlock,
    tune_block,
    tune_program,
)

__all__ = [
    "place_prefetch",
    "place_broadcast",
    "place_shared_checkpoints",
    "should_checkpoint_loop_var",
    "eliminate_common_subexpressions",
    "FUSED_OPCODE",
    "FusedHop",
    "apply_fusion",
    "plan_fusion",
    "retention_candidate",
    "ProgramBlock",
    "BlockTuning",
    "tune_block",
    "tune_program",
]
