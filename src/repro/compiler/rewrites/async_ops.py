"""Asynchronous operator rewrites: ``prefetch`` and ``broadcast`` (§5.1).

*Prefetch placement* traverses the plan and identifies operators that
trigger remote jobs through ``collect`` / device-to-host copies — i.e.
Spark- or GPU-placed hops with at least one consumer on a different
backend.  These roots of remote operator chains are flagged; at runtime
the scheduler triggers them asynchronously and returns future objects,
overlapping remote computation and data transfer with the host
instruction stream.

*Broadcast placement* flags CP-placed hops that feed Spark consumers so
the broadcast variable is partitioned and registered asynchronously as
the last operator of the local chain.
"""

from __future__ import annotations

from repro.common.config import MemphisConfig
from repro.compiler.ir import KIND_OP, Hop
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP


def _all_nodes(roots: list[Hop]) -> list[Hop]:
    """Every node reachable from ``roots``, each exactly once.

    Flag-setting passes accept a precomputed node list (``nodes``) so
    one traversal can serve the whole rewrite pipeline; this is the
    fallback when a pass is called standalone.
    """
    out: list[Hop] = []
    seen: set[int] = set()
    for root in roots:
        for hop in root.iter_dag():
            if hop.id not in seen:
                seen.add(hop.id)
                out.append(hop)
    return out


def consumers_map(roots: list[Hop],
                  nodes: list[Hop] | None = None) -> dict[int, list[Hop]]:
    """hop id -> list of consumer hops within this DAG."""
    out: dict[int, list[Hop]] = {}
    for hop in (nodes if nodes is not None else _all_nodes(roots)):
        for inp in hop.inputs:
            out.setdefault(inp.id, []).append(hop)
    return out


def place_prefetch(roots: list[Hop], config: MemphisConfig,
                   consumers: dict[int, list[Hop]] | None = None,
                   nodes: list[Hop] | None = None) -> int:
    """Flag remote-chain roots for asynchronous result prefetch.

    Returns the number of prefetch instructions placed.  ``consumers``
    and ``nodes`` let the caller share one :func:`consumers_map` and one
    DAG traversal across all the flag-setting rewrite passes (none of
    them change DAG structure).
    """
    if not config.enable_async_ops:
        return 0
    from repro.runtime.placement import SPARK_AGG_ACTION

    if nodes is None:
        nodes = _all_nodes(roots)
    if consumers is None:
        consumers = consumers_map(roots, nodes)
    placed = 0
    root_ids = {r.id for r in roots}
    collect_limit = config.cpu.operation_memory_bytes // 8
    for hop in nodes:
        if hop.kind != KIND_OP:
            continue
        if hop.placement == BACKEND_SP:
            cons = consumers.get(hop.id, [])
            crosses = any(c.placement != BACKEND_SP for c in cons)
            # small unconsumed roots are about to be collected by the
            # caller; aggregates ARE actions: "this rewrite flags all
            # other Spark actions for asynchronous execution" (§5.1)
            small_root = (hop.id in root_ids and not cons
                          and hop.output_bytes <= collect_limit)
            if crosses or small_root or hop.opcode in SPARK_AGG_ACTION:
                hop.prefetch = True
                placed += 1
        elif hop.placement == BACKEND_GPU:
            cons = consumers.get(hop.id, [])
            if any(c.placement == BACKEND_CP for c in cons):
                hop.prefetch = True
                placed += 1
    return placed


def place_broadcast(roots: list[Hop], config: MemphisConfig,
                    consumers: dict[int, list[Hop]] | None = None,
                    nodes: list[Hop] | None = None) -> int:
    """Flag CP-placed hops feeding Spark consumers for async broadcast."""
    if not config.enable_async_ops:
        return 0
    bc_limit = config.spark.driver_memory // 4
    if nodes is None:
        nodes = _all_nodes(roots)
    if consumers is None:
        consumers = consumers_map(roots, nodes)
    placed = 0
    for hop in nodes:
        if hop.kind != KIND_OP or hop.placement != BACKEND_CP:
            continue
        if hop.output_bytes > bc_limit:
            continue
        if any(c.placement == BACKEND_SP
               for c in consumers.get(hop.id, [])):
            hop.async_broadcast = True
            placed += 1
    return placed
