"""Workload-aware RDD checkpoint placement (§5.2).

Two rewrites from the paper:

1. **Shared-job checkpointing** — within one DAG, a Spark-placed hop
   consumed by two or more downstream Spark jobs is persisted after the
   last shared operator, so overlapping jobs do not recompute it.
2. **Loop checkpointing** — in iterative algorithms the loop-updated
   distributed variables (e.g. the factor ``W`` in PNMF, Fig. 9(c))
   create ever-growing operator graphs under lazy evaluation; each
   iteration's update is checkpointed so jobs only execute one
   iteration's worth of work.  The loop rewrite is exposed as a
   predicate used by the session's loop context manager.
"""

from __future__ import annotations

from repro.common.config import MemphisConfig
from repro.compiler.ir import KIND_OP, Hop
from repro.compiler.rewrites.async_ops import _all_nodes, consumers_map
from repro.core.entry import BACKEND_SP


def place_shared_checkpoints(roots: list[Hop], config: MemphisConfig,
                             consumers: dict[int, list[Hop]] | None = None,
                             nodes: list[Hop] | None = None) -> int:
    """Rewrite 1: persist Spark hops shared by multiple Spark consumers."""
    if not config.enable_checkpoint_rewrite:
        return 0
    if nodes is None:
        nodes = _all_nodes(roots)
    if consumers is None:
        consumers = consumers_map(roots, nodes)
    placed = 0
    for hop in nodes:
        if hop.kind != KIND_OP or hop.placement != BACKEND_SP:
            continue
        sp_consumers = [
            c for c in consumers.get(hop.id, [])
            if c.placement == BACKEND_SP or c.prefetch
        ]
        if len(sp_consumers) >= 2 and not hop.checkpoint:
            hop.checkpoint = True
            placed += 1
    return placed


def should_checkpoint_loop_var(shape: tuple[int, int],
                               config: MemphisConfig) -> bool:
    """Rewrite 2 predicate: checkpoint a loop-updated variable when it is
    distributed (worst-case size above the operation memory budget)."""
    if not config.enable_checkpoint_rewrite:
        return False
    nbytes = shape[0] * shape[1] * 8
    return nbytes > config.cpu.operation_memory_bytes
