"""Session-wide statistics registry.

Mirrors SystemDS's ``-stats`` output: every subsystem increments named
counters, and the benchmark harness reads them to report the paper's
secondary metrics (reused/recycled pointers, evictions, Spark jobs,
cache hits, dangling references cleaned, ...).
"""

from __future__ import annotations

from collections import defaultdict


class Stats:
    """A hierarchical counter/accumulator registry."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = defaultdict(int)
        self._accumulators: dict[str, float] = defaultdict(float)

    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter ``name`` by ``by``."""
        self._counters[name] += by

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        self._accumulators[name] += seconds

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented).

        Read-only: never inserts the key, so reporting and metric
        sampling leave the counter snapshot byte-identical.
        """
        return self._counters.get(name, 0)

    def get_time(self, name: str) -> float:
        """Accumulated seconds for timer ``name`` (read-only)."""
        return self._accumulators.get(name, 0.0)

    def counters(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def timers(self) -> dict[str, float]:
        """Snapshot of all accumulated timers."""
        return dict(self._accumulators)

    def reset(self) -> None:
        """Clear all counters and timers."""
        self._counters.clear()
        self._accumulators.clear()

    def merge(self, other: "Stats") -> "Stats":
        """Accumulate ``other``'s counters and timers into this registry.

        Used for multi-session aggregation: the benchmark harness merges
        the registries of every session of a traced run into one report.
        Returns ``self`` for chaining.
        """
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, seconds in other._accumulators.items():
            self._accumulators[name] += seconds
        return self

    def derived_ratios(self) -> dict[str, float]:
        """Derived ratio metrics computed from raw counters.

        Only ratios whose denominator is non-zero are present, so a
        workload that never touched the GPU reports no recycle rate.
        """
        out: dict[str, float] = {}
        probes = self._counters.get(LINEAGE_PROBES, 0)
        if probes:
            out["cache/hit_rate"] = self._counters.get(CACHE_HITS, 0) / probes
        allocs = (self._counters.get(GPU_RECYCLED, 0)
                  + self._counters.get(GPU_MALLOCS, 0))
        if allocs:
            out["gpu/recycle_rate"] = \
                self._counters.get(GPU_RECYCLED, 0) / allocs
        spills = self._counters.get(CACHE_SPILLS, 0)
        if spills:
            out["cache/restore_rate"] = \
                self._counters.get(CACHE_RESTORES, 0) / spills
        # server ratios render under the same ``server/`` heading as the
        # raw counters; gated on sessions_attached so single-session
        # runs never grow a server section
        if self._counters.get(SERVER_SESSIONS, 0):
            if probes:
                out["server/cross_session_hit_rate"] = \
                    self._counters.get(SERVER_CROSS_HITS, 0) / probes
            steps = self._counters.get(SERVER_STEPS, 0)
            if steps:
                out["server/backpressure_rate"] = \
                    self._counters.get(SERVER_BACKPRESSURE, 0) / steps
        return out

    def report(self) -> str:
        """Human-readable report, grouped by subsystem prefix.

        Names follow the ``subsystem/metric`` convention; counters,
        timers, and derived ratios (:meth:`derived_ratios`) of the same
        subsystem are reported together under one header instead of
        interleaving flat sorted lists.  The name column widens to fit
        the longest name instead of truncating alignment at 42 chars.
        """
        ratios = self.derived_ratios()
        names = [*self._counters, *self._accumulators, *ratios]
        width = max([42, *(len(n) for n in names)])
        groups: dict[str, list[str]] = {}
        for name in sorted(self._counters):
            groups.setdefault(_prefix(name), []).append(
                f"{name:<{width}s} {self._counters[name]:>12d}"
            )
        for name in sorted(self._accumulators):
            groups.setdefault(_prefix(name), []).append(
                f"{name:<{width}s} {self._accumulators[name]:>12.6f} s"
            )
        for name in sorted(ratios):
            groups.setdefault(_prefix(name), []).append(
                f"{name:<{width}s} {ratios[name]:>12.4f}"
            )
        lines = ["=== statistics ==="]
        for prefix in sorted(groups):
            lines.append(f"-- {prefix} --")
            lines.extend(groups[prefix])
        return "\n".join(lines)


def _prefix(name: str) -> str:
    """Subsystem prefix of a metric name (text before the first ``/``)."""
    return name.split("/", 1)[0] if "/" in name else "misc"


# Well-known counter names (kept in one place to avoid typos).
LINEAGE_TRACED = "lineage/items_traced"
LINEAGE_PROBES = "cache/probes"
CACHE_HITS = "cache/hits"
CACHE_MISSES = "cache/misses"
CACHE_PUTS = "cache/puts"
CACHE_EVICTIONS = "cache/evictions"
CACHE_DELAYED = "cache/delayed_entries"
CACHE_SPILLS = "cache/disk_spills"
CACHE_RESTORES = "cache/disk_restores"
FUNC_HITS = "cache/function_hits"
SPARK_JOBS = "spark/jobs"
SPARK_TASKS = "spark/tasks"
SPARK_ACTION_REUSE = "spark/actions_reused"
SPARK_RDD_REUSE = "spark/rdds_reused"
SPARK_RDD_PERSISTED = "spark/rdds_persisted"
SPARK_RDD_UNPERSISTED = "spark/rdds_unpersisted"
SPARK_GC_CLEANED = "spark/dangling_cleaned"
SPARK_ASYNC_MATERIALIZE = "spark/async_materializations"
SPARK_BROADCASTS = "spark/broadcasts"
SPARK_SHUFFLE_REUSE = "spark/shuffle_files_reused"
SPARK_PART_EVICTED = "spark/partitions_evicted"
SPARK_PART_SPILLED = "spark/partitions_spilled"
SPARK_PART_RECOMPUTED = "spark/partitions_recomputed"
GPU_MALLOCS = "gpu/cuda_mallocs"
GPU_FREES = "gpu/cuda_frees"
GPU_KERNELS = "gpu/kernels_launched"
GPU_RECYCLED = "gpu/pointers_recycled"
GPU_REUSED = "gpu/pointers_reused"
GPU_SYNCS = "gpu/synchronizations"
GPU_D2H = "gpu/d2h_copies"
GPU_H2D = "gpu/h2d_copies"
GPU_EVICT_D2H = "gpu/evictions_to_host"
GPU_DEFRAGS = "gpu/defragmentations"
PREFETCH_ISSUED = "async/prefetch_issued"
BROADCAST_ISSUED = "async/broadcast_issued"
EVICT_INSTRUCTIONS = "compiler/evict_instructions"
CHECKPOINTS_PLACED = "compiler/checkpoints_placed"
INSTRUCTIONS_EXECUTED = "runtime/instructions_executed"
INSTRUCTIONS_SKIPPED = "runtime/instructions_skipped"
CPU_BYTES_ALLOCATED = "cpu/bytes_allocated"
FUSION_CHAINS = "fusion/chains_fused"
FUSION_HOPS_ELIMINATED = "fusion/hops_eliminated"
FUSION_BYTES_SAVED = "fusion/bytes_saved"
FUSION_INSTRUCTIONS = "fusion/instructions_executed"
BUFFERPOOL_EVICTIONS = "bufferpool/evictions"
MEM_RESERVES = "memory/reserves"
MEM_RESERVE_FAILURES = "memory/reserve_failures"
MEM_EVICTIONS = "memory/evictions"
MEM_SPILLS = "memory/spills"
MEM_RESTORES = "memory/restores"
MEM_PRESSURE_EVENTS = "memory/pressure_events"
MEM_D2H_AVOIDED = "memory/d2h_transfers_avoided"
MEM_PLAN_RESERVES = "memory/plan_reserves"
MEM_PLAN_RESERVE_FAILURES = "memory/plan_reserve_failures"
MEMPLAN_BLOCKS_PLANNED = "memplan/blocks_planned"
MEMPLAN_SPILLS_EXECUTED = "memplan/planned_spills_executed"
FAULTS_INJECTED = "faults/injected"
FAULTS_RECOVERED = "faults/recovered"
FAULT_SPARK_TASK_RETRIES = "faults/spark_task_retries"
FAULT_EXECUTORS_LOST = "faults/executors_lost"
FAULT_SHUFFLE_INVALIDATED = "faults/shuffle_files_invalidated"
FAULT_PARTITIONS_DROPPED = "faults/cached_partitions_dropped"
FAULT_GPU_ALLOC_RETRIES = "faults/gpu_alloc_retries"
FAULT_FED_RETRIES = "faults/fed_retries"
FAULT_QUORUM_DEGRADED = "faults/fed_rounds_degraded"
FAULT_SPILL_IO_ERRORS = "faults/spill_io_errors"
FAULT_RESTORE_IO_ERRORS = "faults/restore_io_errors"
FAULT_CACHE_ENTRIES_LOST = "faults/cache_entries_lost"
FAULT_LINEAGE_RECOMPUTES = "faults/lineage_recomputes"
SERVER_SESSIONS = "server/sessions_attached"
SERVER_REQUESTS = "server/requests_submitted"
SERVER_STEPS = "server/scheduler_steps"
SERVER_CROSS_HITS = "server/cross_session_hits"
SERVER_DEDUP_BYTES = "server/dedup_bytes_saved"
SERVER_SCOPED_KEYS = "server/session_scoped_keys"
SERVER_ADMITTED = "server/blocks_admitted"
SERVER_BACKPRESSURE = "server/backpressure_events"
SERVER_QUOTA_REFUSALS = "server/quota_refusals"
