"""Simulated time for deterministic multi-backend performance modelling.

The paper's experiments run on a Spark cluster and NVIDIA A40 GPUs; this
reproduction replaces wall-clock measurement with a discrete simulated
clock so that performance *shapes* (speedups, crossovers) are reproducible
on any machine.

Timelines
---------
Each backend owns a timeline:

* ``host``    — the driver/CPU instruction stream (always advances).
* ``cluster`` — the Spark cluster; jobs submitted asynchronously complete
  on this timeline without blocking the host.
* ``device``  — the GPU stream; kernels are asynchronous w.r.t. the host,
  but synchronization barriers (``cudaFree``, device-to-host copies)
  join the host timeline to the device timeline.

A synchronous remote operation advances the host to the remote completion
time.  An asynchronous operation (``prefetch``, ``broadcast``) records a
future ``ready_time``; waiting on the future advances the host to
``max(host_now, ready_time)``.  This is the standard abstraction used by
discrete-event simulators for overlapped computation and communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field


HOST = "host"
CLUSTER = "cluster"
DEVICE = "device"


@dataclass
class SimClock:
    """Multi-timeline simulated clock (seconds, float)."""

    timelines: dict[str, float] = field(
        default_factory=lambda: {HOST: 0.0, CLUSTER: 0.0, DEVICE: 0.0}
    )

    def now(self, timeline: str = HOST) -> float:
        """Current simulated time of ``timeline``."""
        return self.timelines[timeline]

    def advance(self, seconds: float, timeline: str = HOST) -> float:
        """Advance ``timeline`` by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        timelines = self.timelines
        now = timelines[timeline] + seconds
        timelines[timeline] = now
        return now

    def advance_to(self, when: float, timeline: str = HOST) -> float:
        """Move ``timeline`` forward to ``when`` (no-op if already later)."""
        if when > self.timelines[timeline]:
            self.timelines[timeline] = when
        return self.timelines[timeline]

    def sync(self, timeline: str, to: str = HOST) -> float:
        """Join two timelines: both jump to the max of the two.

        Models a synchronization barrier, e.g. the host thread waiting for
        all pending GPU kernels before a deallocation.
        """
        t = max(self.timelines[timeline], self.timelines[to])
        self.timelines[timeline] = t
        self.timelines[to] = t
        return t

    def elapsed(self, timeline: str = HOST) -> float:
        """Alias for :meth:`now`; reads better in reports."""
        return self.timelines[timeline]

    def reset(self) -> None:
        """Zero every timeline."""
        for key in self.timelines:
            self.timelines[key] = 0.0


@dataclass
class SimFuture:
    """Handle to an asynchronously produced value on a remote timeline.

    ``ready_time`` is the simulated time at which the value becomes
    available.  ``wait()`` advances the host timeline accordingly and
    returns the value — the core mechanism behind the paper's ``prefetch``
    and ``broadcast`` operators (§5.1).
    """

    clock: SimClock
    ready_time: float
    value: object = None
    label: str = ""
    _done: bool = False

    def wait(self) -> object:
        """Block (in simulated time) until the value is ready."""
        self.clock.advance_to(self.ready_time, HOST)
        self._done = True
        return self.value

    @property
    def done(self) -> bool:
        """Whether the host already waited, or the value is ready by now."""
        return self._done or self.clock.now(HOST) >= self.ready_time
