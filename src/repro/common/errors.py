"""Exception hierarchy for the MEMPHIS reproduction.

Every subsystem raises a subclass of :class:`MemphisError` so callers can
catch framework failures distinctly from programming errors.
"""

from __future__ import annotations


class MemphisError(Exception):
    """Base class for all framework errors."""


class CompilationError(MemphisError):
    """Raised when a program or DAG cannot be compiled."""


class VerificationError(CompilationError):
    """Raised by the static IR verifier on error-severity diagnostics.

    ``report`` carries the full
    :class:`~repro.analysis.diagnostics.DiagnosticReport` (including
    warnings) for programmatic inspection.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class PlacementError(MemphisError):
    """Raised when no backend can execute an operator."""


class LineageError(MemphisError):
    """Raised on malformed lineage traces or failed (de)serialization."""


class CacheError(MemphisError):
    """Raised on inconsistent lineage-cache state."""


class AdmissionError(MemphisError):
    """Raised when the shared substrate refuses to admit a block.

    Multi-tenant admission control (``repro.server``): a block whose
    predicted peak footprint cannot fit the shared regions under the
    tenant's quota — even after evicting every unpinned byte — is
    refused before anything executes.  Carries the refusing region and
    the unsatisfied demand so a scheduler can requeue the request as
    backpressure instead of failing it.
    """

    def __init__(self, message: str, region: str | None = None,
                 tenant: str | None = None, demand: int = 0) -> None:
        super().__init__(message)
        self.region = region
        self.tenant = tenant
        self.demand = demand


class BackendError(MemphisError):
    """Base class for backend execution failures."""


class SparkError(BackendError):
    """Raised by the Spark backend simulator."""


class GpuError(BackendError):
    """Raised by the GPU backend simulator."""


class GpuOutOfMemoryError(GpuError):
    """Raised when an allocation cannot be served even after eviction."""

    def __init__(self, requested: int, free: int, largest_block: int) -> None:
        self.requested = requested
        self.free = free
        self.largest_block = largest_block
        super().__init__(
            f"GPU out of memory: requested {requested} bytes, "
            f"{free} free, largest contiguous block {largest_block}"
        )


class BufferPoolError(BackendError):
    """Raised by the CPU buffer pool."""


class RecomputationError(LineageError):
    """Raised when a lineage trace cannot be replayed."""


class FaultInjectionError(MemphisError):
    """Raised when an injected fault exhausts its recovery budget.

    Chaos plans are normally sized within the retry budgets so every
    fault recovers; this error is the deliberate escape hatch for tests
    that assert the budgets themselves are enforced.
    """
