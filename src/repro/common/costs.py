"""Analytic cost model: FLOPs, bytes, and transfer times.

The lineage-cache eviction policies (paper Eq. 1 and Eq. 2) rank cached
objects by an *analytical compute cost* ``c(o)`` and a *worst-case size
estimate* ``s(o)``; the simulated backends charge execution time derived
from the same model.  Matrices are dense double-precision (8 bytes/cell),
matching SystemDS's default value type.
"""

from __future__ import annotations

DOUBLE_BYTES = 8

#: opcodes whose cost is ~2*m*k*n FLOPs (dense matrix multiply family).
MATMUL_OPS = {"ba+*", "matmul"}

#: cheap element-wise ops: 1 FLOP per output cell.
ELEMENTWISE_1 = {
    "+", "-", "*", "/", "^", "min", "max", ">", "<", ">=", "<=", "==", "!=",
    "abs", "sign", "round", "floor", "ceil", "relu", "dropout", "replace",
    "assign",
}

#: transcendental element-wise ops: ~20 FLOPs per output cell.
ELEMENTWISE_20 = {"exp", "log", "sqrt", "sigmoid", "tanh", "softmax"}

#: aggregates: 1 FLOP per *input* cell.
AGGREGATES = {
    "uak+", "uark+", "uack+", "uamin", "uamax", "uamean", "uarmean",
    "uacmean", "uarmax", "uacmax", "uarmin", "uacmin", "sum", "rowSums",
    "colSums", "mean", "rowMeans", "colMeans", "nrow", "ncol",
}

#: data movement / reorganization: charged per byte, negligible FLOPs.
REORG_OPS = {
    "r'", "transpose", "rightIndex", "slice", "cbind", "rbind", "append",
    "rand", "seq", "diag", "reshape", "rev", "sort",
}


def matrix_bytes(rows: int, cols: int, sparsity: float = 1.0) -> int:
    """Worst-case serialized size of a dense block (``s(o)`` in Eq. 1)."""
    # branches instead of max(): this runs once per hop per compile
    if rows < 1:
        rows = 1
    if cols < 1:
        cols = 1
    if sparsity < 0.05:
        sparsity = 0.05
    return int(rows * cols * DOUBLE_BYTES * sparsity)


def op_flops(opcode: str, in_shapes: list[tuple[int, int]],
             out_shape: tuple[int, int]) -> float:
    """Analytical FLOP estimate for one operator (``c(o)`` numerator).

    ``in_shapes`` are (rows, cols) of the inputs; ``out_shape`` of the
    output.  Unknown opcodes default to one FLOP per output cell, which
    keeps the model total and monotone.
    """
    rows, cols = out_shape
    out_cells = (rows if rows > 1 else 1) * (cols if cols > 1 else 1)
    # membership tests ordered by hot-path frequency (the opcode sets
    # are disjoint, so reordering cannot change the result)
    if opcode in ELEMENTWISE_1:
        return float(out_cells)
    if opcode in MATMUL_OPS:
        m, k = in_shapes[0]
        _, n = in_shapes[1]
        return 2.0 * m * k * n
    if opcode in AGGREGATES:
        r, c = in_shapes[0]
        return float((r if r > 1 else 1) * (c if c > 1 else 1))
    if opcode in ELEMENTWISE_20:
        return 20.0 * out_cells
    if opcode in REORG_OPS:
        return 0.1 * out_cells
    if opcode == "fed_tsmm":
        m, k = in_shapes[0]
        return 2.0 * m * k * k
    if opcode == "solve":
        n = in_shapes[0][0]
        return (2.0 / 3.0) * n**3 + 2.0 * n**2
    if opcode in ("conv2d", "conv2d_backward_filter", "conv2d_backward_data"):
        # caller encodes effective FLOPs in out_shape via im2col expansion;
        # approximate with 2 * output cells * filter volume stored in
        # in_shapes[1] (filter rows = K, cols = C*R*S).
        filt = in_shapes[1] if len(in_shapes) > 1 else (1, 9)
        return 2.0 * out_cells * max(filt[1], 1)
    if opcode in ("maxpool", "avgpool"):
        return 4.0 * out_cells
    return float(out_cells)


def transfer_time(nbytes: int, bandwidth_bytes_per_s: float,
                  latency_s: float = 0.0) -> float:
    """Simulated time to move ``nbytes`` over a link."""
    return latency_s + nbytes / max(bandwidth_bytes_per_s, 1.0)


def compute_time(flops: float, flops_per_s: float,
                 nbytes_touched: int = 0,
                 mem_bandwidth_bytes_per_s: float = float("inf"),
                 launch_s: float = 0.0) -> float:
    """Roofline-style kernel time: max of compute-bound and memory-bound."""
    t_compute = flops / max(flops_per_s, 1.0)
    t_memory = nbytes_touched / max(mem_bandwidth_bytes_per_s, 1.0)
    return launch_s + max(t_compute, t_memory)
