"""Configuration for the MEMPHIS reproduction.

Defaults follow the paper's experimental setting (§6.1, Table 2), scaled
down by :data:`SCALE` so that simulated experiments run in seconds on a
laptop while preserving all memory-pressure and bandwidth ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


GB = 1024**3
MB = 1024**2
KB = 1024

#: Global downscaling factor applied to the paper's memory budgets.  The
#: paper uses 256 GB nodes; dividing budgets by this factor keeps every
#: ratio (cache : buffer pool : operation memory) intact while letting the
#: simulation allocate real numpy arrays.
SCALE = 1024


class ReuseMode(enum.Enum):
    """Which reuse capability is enabled (maps to the paper's baselines)."""

    NONE = "none"  #: Base — no tracing, no reuse.
    TRACE_ONLY = "trace"  #: lineage tracing enabled, no cache probes.
    PROBE_ONLY = "probe"  #: tracing + probing, but nothing is ever cached.
    FULL = "full"  #: MEMPHIS multi-level, multi-backend reuse.
    LOCAL_ONLY = "local"  #: LIMA — eager caching of local CPU results only.
    COARSE_ONLY = "coarse"  #: HELIX — function-level (coarse) reuse only.
    OPERATOR_ONLY = "fine"  #: MPH-F — fine-grained only, no function reuse.


class EvictionPolicyName(enum.Enum):
    """Cache eviction policy selector (Eq. 1 plus ablation baselines)."""

    COST_SIZE = "cost_size"  #: paper Eq. 1 / Eq. 2 (default).
    LRU = "lru"
    LRC = "lrc"  #: least reference count (DAG-aware Spark baseline).
    MRD = "mrd"  #: most reference distance.


#: ambient per-region policy overrides installed by the harness CLI
#: (``--policy`` / ``--gpu-policy`` / ``--spark-policy``); applied to
#: every :class:`MemphisConfig` constructed while installed, so the
#: experiment drivers (which build their configs internally) pick the
#: selected policies up without plumbing.
_POLICY_OVERRIDES: dict[str, "EvictionPolicyName"] = {}


def install_policy_overrides(policy: "EvictionPolicyName | None" = None,
                             gpu_policy: "EvictionPolicyName | None" = None,
                             spark_policy: "EvictionPolicyName | None" = None,
                             ) -> None:
    """Install ambient eviction-policy selections (harness CLI)."""
    if policy is not None:
        _POLICY_OVERRIDES["policy"] = policy
    if gpu_policy is not None:
        _POLICY_OVERRIDES["gpu_policy"] = gpu_policy
    if spark_policy is not None:
        _POLICY_OVERRIDES["spark_policy"] = spark_policy


def clear_policy_overrides() -> None:
    """Remove all ambient policy overrides."""
    _POLICY_OVERRIDES.clear()


#: ambient fusion switch installed by the harness CLI (``--fusion``) and
#: the benchmark gates; like the policy overrides it is applied to every
#: :class:`MemphisConfig` constructed while installed, so experiment
#: drivers that build their configs internally pick it up.
_FUSION_OVERRIDE: list[bool] = []


def install_fusion_override(enabled: bool = True) -> None:
    """Ambiently force ``enable_fusion`` on every new config."""
    _FUSION_OVERRIDE.clear()
    _FUSION_OVERRIDE.append(enabled)


def clear_fusion_override() -> None:
    """Remove the ambient fusion override."""
    _FUSION_OVERRIDE.clear()


class StorageLevel(enum.Enum):
    """Spark RDD persistence levels (subset used by the paper)."""

    MEMORY_ONLY = "MEMORY_ONLY"
    MEMORY_AND_DISK = "MEMORY_AND_DISK"
    DISK_ONLY = "DISK_ONLY"


@dataclass
class SparkConfig:
    """Spark cluster simulator parameters (paper §6.1, Table 2)."""

    num_executors: int = 8
    cores_per_executor: int = 24
    executor_memory: int = 230 * GB // SCALE
    driver_memory: int = 38 * GB // SCALE
    #: unified region fraction (Spark default 0.6 of heap).
    unified_memory_fraction: float = 0.6
    #: of the unified region, the half reserved for storage (cached RDDs).
    storage_fraction: float = 0.5
    #: host-to-cluster bandwidth, Table 2: 15 GB/s.
    bandwidth_bytes_per_s: float = 15 * GB
    #: per-task scheduling overhead (s) — models DAGScheduler latency.
    task_overhead_s: float = 2e-3
    #: per-job submission overhead (s).
    job_overhead_s: float = 10e-3
    #: per-byte cost of a shuffle (read+write, both sides).
    shuffle_bytes_per_s: float = 4 * GB
    #: per-byte cost of executor-local disk for spilled partitions.
    disk_bytes_per_s: float = 1 * GB
    #: default rows per partition block (squared blocking in SystemDS).
    block_size_rows: int = 1024
    #: eviction order of the BlockManager's storage region (the
    #: ``SP_BLOCKS`` memory region); Spark's native behaviour is LRU
    #: over cached partitions.
    policy: EvictionPolicyName = EvictionPolicyName.LRU
    broadcast_chunk_bytes: int = 4 * MB
    #: effective per-core executor compute throughput.
    executor_flops_per_s: float = 60e9
    executor_mem_bandwidth_bytes_per_s: float = 100 * GB

    @property
    def storage_memory(self) -> int:
        """Bytes of storage region per executor."""
        return int(
            self.executor_memory
            * self.unified_memory_fraction
            * self.storage_fraction
        )

    @property
    def execution_memory(self) -> int:
        """Bytes of execution region per executor."""
        return int(
            self.executor_memory
            * self.unified_memory_fraction
            * (1.0 - self.storage_fraction)
        )


@dataclass
class GpuConfig:
    """GPU device simulator parameters (NVIDIA A40-like, §6.1)."""

    device_memory: int = 48 * GB // SCALE
    #: pageable host-to-device bandwidth, Table 2: 6.1 GB/s.
    h2d_bandwidth_bytes_per_s: float = 6.1 * GB
    d2h_bandwidth_bytes_per_s: float = 6.1 * GB
    #: effective device compute throughput for dense FLOPs.
    flops_per_s: float = 37e12
    #: device memory bandwidth for memory-bound kernels.
    mem_bandwidth_bytes_per_s: float = 696 * GB
    #: fixed cost of cudaMalloc (device sync + driver call); calibrated
    #: so alloc+free is ~4.6x a small kernel's runtime (Fig. 2(d)).
    malloc_latency_s: float = 8e-6
    #: fixed cost of cudaFree (forces a device synchronization).
    free_latency_s: float = 15e-6
    #: fixed kernel launch latency.
    kernel_launch_s: float = 5e-6
    #: allocation alignment (CUDA allocates in 512 B granules).
    alignment: int = 512
    #: minimum output cells before an op is worth offloading to the GPU.
    min_cells: int = 512
    #: eviction order of the unified GPU memory manager's free lists
    #: (the ``GPU`` memory region); the default ``cost_size`` is the
    #: paper's Eq. 2 pointer scoring.
    policy: EvictionPolicyName = EvictionPolicyName.COST_SIZE


@dataclass
class CpuConfig:
    """Local CPU backend parameters."""

    #: effective CPU throughput for dense FLOPs (multi-threaded BLAS).
    flops_per_s: float = 1.5e12
    mem_bandwidth_bytes_per_s: float = 100 * GB
    #: fixed per-instruction interpretation overhead (s) — the paper's
    #: Fig. 11(a) shows this dominates for tiny inputs.
    instruction_overhead_s: float = 3e-6
    #: lineage tracing overhead per instruction (Fig. 11: ~1.3x base).
    trace_overhead_s: float = 1e-6
    #: cache probing overhead per instruction (Fig. 11: ~2x base).
    probe_overhead_s: float = 2e-6
    #: buffer pool budget (paper: 20 GB).
    buffer_pool_bytes: int = 20 * GB // SCALE
    #: eviction order of the buffer pool (the ``CPU_BP`` memory region);
    #: SystemDS's buffer pool is LRU over unpinned blocks.
    policy: EvictionPolicyName = EvictionPolicyName.LRU
    #: operation memory: ops estimated above this go to Spark (paper: 7 GB).
    operation_memory_bytes: int = 7 * GB // SCALE
    disk_bytes_per_s: float = 1 * GB


@dataclass
class CacheConfig:
    """Lineage cache configuration (paper §6.1 memory configurations)."""

    #: driver-side lineage cache budget (paper: 5 GB).
    driver_cache_bytes: int = 5 * GB // SCALE
    #: fraction of Spark storage memory usable for reuse (paper: 80%).
    spark_cache_fraction: float = 0.8
    #: delay factor n — defer caching until the n-th hit (§5.2); tuned
    #: per block by the automatic parameter tuning rewrite.
    delay_factor: int = 1
    #: number of cache misses on an unmaterialized RDD before an async
    #: count() job materializes it (§4.1, default three).
    async_materialize_after_misses: int = 3
    policy: EvictionPolicyName = EvictionPolicyName.COST_SIZE
    #: eviction order of the Spark tier of the lineage cache (the
    #: ``SP_CACHE`` region); ``None`` inherits ``policy``.
    spark_policy: EvictionPolicyName | None = None
    #: disable all eviction (the 40%INF setting of Fig. 11(b)).
    unlimited: bool = False
    #: spill evicted driver-cache entries to local disk instead of
    #: dropping them ("disk-evicted binaries", §3.3); entries whose
    #: compute-cost-to-size ratio is below the write-cost break-even are
    #: still dropped.
    spill_to_disk: bool = True
    #: local-disk budget for spilled cache binaries.
    disk_cache_bytes: int = 100 * GB // SCALE


@dataclass
class MemphisConfig:
    """Top-level configuration of a session."""

    reuse_mode: ReuseMode = ReuseMode.FULL
    spark: SparkConfig = field(default_factory=SparkConfig)
    gpu: GpuConfig = field(default_factory=GpuConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    gpu_enabled: bool = False
    spark_enabled: bool = True
    #: compiler switches (all on for MPH; Base-A enables only async ops).
    enable_async_ops: bool = True
    enable_checkpoint_rewrite: bool = True
    enable_eviction_injection: bool = True
    enable_delayed_caching: bool = True
    enable_auto_tuning: bool = True
    enable_max_parallelize: bool = True
    enable_cse: bool = True
    #: reuse-aware operator fusion (``repro.compiler.rewrites.fusion``):
    #: when True, chains of cell-wise ops (and matmul epilogues) whose
    #: intermediates the lineage cache does not want to retain are merged
    #: into single fused instructions.  Off by default: fusion only fires
    #: when the reuse mode neither probes nor caches (NONE/TRACE_ONLY),
    #: since fused interiors produce no probeable lineage entries.
    enable_fusion: bool = False
    #: GPU allocator mode: "malloc" | "pool" | "memphis"; None derives it
    #: from the reuse mode (Base -> malloc, MEMPHIS -> memphis).
    gpu_memory_mode: str | None = None
    #: structured tracing (``repro.obs``): when True the session records
    #: spans and typed events (instructions, probes, evictions, Spark
    #: jobs, GPU copies, ...) into an in-memory ring buffer, exportable
    #: as JSONL or a Chrome/Perfetto trace.  Off by default — the
    #: disabled path is a single attribute check per potential event.
    trace_enabled: bool = False
    #: ring-buffer capacity (events) when tracing is enabled.
    trace_buffer: int = 1 << 18
    #: metrics time-series (``repro.obs.metrics``): when True the session
    #: samples gauge series (region occupancy, cache hit-rate windows,
    #: Spark storage fraction, GPU residency/recycle rate, instruction
    #: throughput) on the sim clock.  Off by default — the disabled path
    #: is a single attribute check per instruction.
    metrics_enabled: bool = False
    #: sampling period when metrics are enabled, in executed instructions.
    metrics_interval: int = 8
    #: plan-level EXPLAIN capture (``repro.obs.explain``): when True the
    #: session snapshots every compiled block (post-rewrite DAG +
    #: linearized order) so ``Session.explain()`` can render them later.
    explain_capture: bool = False
    #: static IR verification (``repro.analysis``): when True every
    #: compiled block is run through the analysis pass pipeline after
    #: rewrites + linearization and the session raises
    #: :class:`~repro.common.errors.VerificationError` on any
    #: error-severity diagnostic before executing the stream.
    verify_ir: bool = False
    #: static memory planning (``repro.analysis.memplan``): when True
    #: every compiled block's per-region peak footprint is derived at
    #: compile time, bulk-reserved through
    #: ``MemoryArbiter.reserve_plan`` before execution (cancelled if
    #: verification fails), and compared against the observed
    #: ``MemoryRegion.peak_used`` watermarks.  Planning never changes
    #: results — only reservations, diagnostics, and (see
    #: ``memplan_spills``) pre-scheduled spills that avert device OOM.
    memplan: bool = False
    #: when True (with ``memplan``), a block whose plan carries
    #: MEM-family *error* diagnostics is rejected before execution with
    #: :class:`~repro.common.errors.VerificationError`, independent of
    #: ``verify_ir`` (compile-time admission control).
    memplan_enforce: bool = False
    #: whether the planner may schedule compile-time spill points for
    #: blocks whose execution-region liveness peak exceeds capacity
    #: (paper: "Memory Safe Computations with XLA", PAPERS.md).  When
    #: True such blocks are *feasible* (MEM002 downgrades to a warning
    #: carrying the spill schedule, and the interpreter executes the
    #: scheduled device-to-host spills); when False they are infeasible
    #: and MEM002 is an error.
    memplan_spills: bool = True
    #: fault injection (``repro.faults``): a ``FaultPlan`` scheduling
    #: deterministic failures (task loss, GPU alloc failure, federated
    #: timeouts, spill I/O errors, ...) that the recovery machinery must
    #: absorb.  ``None`` (default) falls back to the ambient plan
    #: installed by the harness ``--faults`` flag, else no injection;
    #: typed as ``object`` to keep this module import-light.
    faults: object | None = None
    #: RNG seed for the framework's own randomized choices.
    seed: int = 42

    def __post_init__(self) -> None:
        # Ambient policy overrides reach configs the experiment drivers
        # build internally, without threading a parameter through every
        # classmethod constructor.
        policy = _POLICY_OVERRIDES.get("policy")
        if policy is not None:
            self.cache.policy = policy
        gpu_policy = _POLICY_OVERRIDES.get("gpu_policy")
        if gpu_policy is not None:
            self.gpu.policy = gpu_policy
        spark_policy = _POLICY_OVERRIDES.get("spark_policy")
        if spark_policy is not None:
            self.cache.spark_policy = spark_policy
            self.spark.policy = spark_policy
        if _FUSION_OVERRIDE:
            self.enable_fusion = _FUSION_OVERRIDE[0]

    @classmethod
    def base(cls, **kw) -> "MemphisConfig":
        """Paper baseline *Base*: no reuse, no MEMPHIS compiler passes."""
        return cls(
            reuse_mode=ReuseMode.NONE,
            enable_async_ops=False,
            enable_checkpoint_rewrite=False,
            enable_eviction_injection=False,
            enable_delayed_caching=False,
            enable_auto_tuning=False,
            enable_max_parallelize=False,
            **kw,
        )

    @classmethod
    def base_async(cls, **kw) -> "MemphisConfig":
        """Paper baseline *Base-A*: async operators, still no reuse."""
        cfg = cls.base(**kw)
        cfg.enable_async_ops = True
        cfg.enable_max_parallelize = True
        return cfg

    @classmethod
    def lima(cls, **kw) -> "MemphisConfig":
        """Paper baseline *LIMA*: eager local-only fine-grained reuse."""
        cfg = cls.base(**kw)
        cfg.reuse_mode = ReuseMode.LOCAL_ONLY
        return cfg

    @classmethod
    def helix(cls, **kw) -> "MemphisConfig":
        """Paper baseline *HELIX*: coarse-grained (function-level) reuse."""
        cfg = cls.base(**kw)
        cfg.reuse_mode = ReuseMode.COARSE_ONLY
        return cfg

    @classmethod
    def memphis(cls, **kw) -> "MemphisConfig":
        """Full MEMPHIS (MPH): all reuse and compiler optimizations."""
        return cls(reuse_mode=ReuseMode.FULL, **kw)

    @classmethod
    def memphis_no_async(cls, **kw) -> "MemphisConfig":
        """MPH-NA: full reuse but without asynchronous operators."""
        cfg = cls.memphis(**kw)
        cfg.enable_async_ops = False
        cfg.enable_max_parallelize = False
        return cfg

    @classmethod
    def memphis_fine_only(cls, **kw) -> "MemphisConfig":
        """MPH-F: operator-at-a-time reuse, multi-level reuse disabled."""
        cfg = cls.memphis(**kw)
        cfg.reuse_mode = ReuseMode.OPERATOR_ONLY
        return cfg

    @classmethod
    def server_session(cls, **kw) -> "MemphisConfig":
        """Per-session config for the multi-tenant server (``repro.server``).

        Full MEMPHIS reuse plus static memory planning: the planner's
        per-block peak demands are what the shared substrate's strict
        admission gate (``SessionContext.admit``) reserves against.
        Without a plan there is nothing to admit, so quota enforcement
        would degrade to put-time shaping only.
        """
        cfg = cls.memphis(**kw)
        cfg.memplan = True
        return cfg
