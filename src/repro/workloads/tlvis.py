"""TLVIS: transfer-learning feature extraction (paper Fig. 14(d), 9(b)).

Three pre-trained CNNs (AlexNet/VGG16/ResNet18 style) extract several
layer outputs over a shared test set; a linear-classifier proxy ranks
the (model, layer) pairs.  Extracting consecutive layers of one model
repeats the frozen convolution prefix — the reuse target — while
switching models shifts the allocation-size pattern, triggering
MEMPHIS's eviction injection (``evict(100)`` between models).

Baselines: ``Base-G``, ``VISTA`` (hand-CSE across a model's layer
pipelines), ``PyTorch`` (fails without manual cache clearing on small
devices), ``PyTorch-Clr`` (manual ``empty_cache()`` between models).
"""

from __future__ import annotations

from repro.baselines.pytorch_sim import pytorch_config
from repro.common.config import MemphisConfig
from repro.common.errors import GpuOutOfMemoryError
from repro.core.session import Session
from repro.ml.nn import alexnet, resnet18, vgg16
from repro.workloads.base import (
    scale_overheads,
    SYSTEMS,
    WORKLOAD_OVERHEAD_SCALE,
    WorkloadResult,
    finish,
)
from repro.workloads.datagen import image_set


def _session_for(system: str, device_memory: int | None) -> Session:
    if system in ("PyTorch", "PyTorch-Clr"):
        cfg = pytorch_config()
    elif system in ("Base-G", "VISTA"):
        cfg = MemphisConfig.base()
    else:
        cfg = SYSTEMS[system]()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    cfg.gpu.min_cells = 64
    if device_memory is not None:
        cfg.gpu.device_memory = device_memory
    scale_overheads(cfg, WORKLOAD_OVERHEAD_SCALE)
    return Session(cfg)


def run_tlvis(system: str, num_images: int = 10_000, hw: int = 32,
              batch_size: int = 32, device_memory: int | None = None,
              seed: int = 7) -> WorkloadResult:
    """Run TLVIS under one system configuration."""
    images = image_set(num_images, hw=hw, seed=seed)
    sess = _session_for(system, device_memory)
    models = [
        alexnet(hw).build(sess, seed=17),
        vgg16(hw).build(sess, seed=23),
        resnet18(hw).build(sess, seed=29),
    ]
    n = images.shape[0]
    batches = max(n // batch_size, 1)
    params = {"num_images": n, "hw": hw}

    ranking = []
    try:
        for model in models:
            layer_choices = list(range(len(model.fcs) + 1))
            with sess.loop(f"model_{model.name}"), \
                    sess.block(f"extract_{model.name}",
                               execution_frequency=len(layer_choices),
                               reusable_fraction=0.85):
                if system == "VISTA":
                    scores = _extract_vista(sess, model, images, batches,
                                            batch_size, layer_choices)
                else:
                    scores = _extract_plain(sess, model, images, batches,
                                            batch_size, layer_choices)
            ranking.extend(
                (score, model.name, layer) for layer, score in scores
            )
            if system == "PyTorch-Clr":
                sess.gpu.memory.empty_cache(1.0)
    except GpuOutOfMemoryError as err:
        return finish("TLVIS", system, params, sess, failed=str(err))
    ranking.sort(key=lambda t: -t[0])
    return finish("TLVIS", system, params, sess, metric=ranking[0][0])


def _extract_plain(sess, model, images, batches, batch_size,
                   layer_choices):
    """Per (layer, batch) extraction; conv prefixes repeat across layers."""
    scores = []
    for layer in layer_choices:
        total = 0.0
        for b in range(batches):
            batch = sess.read(
                images[b * batch_size:(b + 1) * batch_size], f"img{b}"
            )
            feats = model.extract_features(sess, batch, upto_fc=layer)
            total += _proxy_score(feats)
        scores.append((layer, total / batches))
    return scores


def _extract_vista(sess, model, images, batches, batch_size,
                   layer_choices):
    """VISTA's CSE: one forward per batch, all layer outputs shared."""
    totals = {layer: 0.0 for layer in layer_choices}
    for b in range(batches):
        batch = sess.read(
            images[b * batch_size:(b + 1) * batch_size], f"img{b}"
        )
        conv = model.extract_features(sess, batch, upto_fc=0)
        totals[0] += _proxy_score(conv)
        h = conv
        for i, W in enumerate(model.fcs):
            h = (h @ W).relu().evaluate()
            totals[i + 1] += _proxy_score(h)
    return [(layer, total / batches) for layer, total in totals.items()]


def _proxy_score(feats) -> float:
    """Linear-classifier proxy for transferability (LEEP-style).

    The mean activation magnitude serves as the ranking statistic; it
    exercises the same feature-materialization path the paper measures.
    """
    return feats.abs().mean().item()
