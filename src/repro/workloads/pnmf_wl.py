"""PNMF: Poisson non-negative matrix factorization on MovieLens-like
data (paper Fig. 13(b), Fig. 9(c)).

The distributed factor ``W`` is updated every iteration; without
checkpoints Spark's lazy evaluation re-executes all previous iterations
in every job, so Base and LIMA slow down super-linearly past ~30
iterations while MEMPHIS's compiler-placed ``persist`` keeps each
iteration's work constant.
"""

from __future__ import annotations

import numpy as np

from repro.ml.pnmf import pnmf_iteration, pnmf_loss
from repro.workloads.base import WorkloadResult, finish, make_session


def pnmf_matrix(rows: int = 1200, cols: int = 200,
                seed: int = 3) -> np.ndarray:
    """Scaled MovieLens-shaped non-negative matrix."""
    rng = np.random.default_rng(seed)
    rank = 8
    return (rng.random((rows, rank)) @ rng.random((rank, cols))
            + 0.05 * rng.random((rows, cols)) + 0.01)


def run_pnmf(system: str, iterations: int, rank: int = 64,
             rows: int = 1200, cols: int = 200,
             seed: int = 3) -> WorkloadResult:
    """Run PNMF under one system configuration.

    The operation-memory budget is lowered so the factor ``W`` is
    compiled to Spark at this scaled size, matching the paper where the
    7M x 100 factor is distributed.
    """
    data = pnmf_matrix(rows, cols, seed)
    sess = make_session(system)
    sess.config.cpu.operation_memory_bytes = rows * rank * 8 // 2
    X = sess.read(data, "X")
    W = sess.rand(rows, rank, min=0.01, max=1.0, seed=seed + 1)
    H = sess.rand(rank, cols, min=0.01, max=1.0, seed=seed + 2)
    with sess.loop("pnmf") as loop:
        for _ in range(iterations):
            W, H = pnmf_iteration(sess, X, W, H)
            loop.update(W=W)
    loss = pnmf_loss(sess, X, W, H)
    return finish("PNMF", system,
                  {"iterations": iterations, "rank": rank}, sess,
                  metric=loss)
