"""HDROP: dropout-rate tuning of an autoencoder (paper Fig. 14(b)).

Grid search over dropout rates 5%..50%; for each rate the autoencoder
trains for ``epochs`` epochs of mini-batches, and an input data pipeline
(normalization + feature-transform map of binning/recoding/one-hot) is
applied batch-wise in every iteration.  The IDP repeats identically
across epochs and dropout rates: the feature transformation is reused on
the host, the normalization on the GPU (paper §6.3).

Baselines: ``Base-C`` (CPU only), ``Base-G`` (CPU+GPU, no reuse),
``LIMA``, ``CoorDL`` (reuses only the CPU part of the IDP), ``MPH``.
"""

from __future__ import annotations

from repro.ml.cleaning import normalize
from repro.ml.nn import Autoencoder
from repro.ml.transforms import minibatch, transform_encode
from repro.workloads.base import WorkloadResult, finish, make_session
from repro.workloads.datagen import kdd98_like

DROPOUT_RATES = [0.05 * i for i in range(1, 11)]  # 5% .. 50%


def run_hdrop(system: str, epochs: int = 3, batch_size: int = 256,
              rates=None, seed: int = 5) -> WorkloadResult:
    """Run HDROP under one system configuration."""
    rates = rates or DROPOUT_RATES
    gpu = system != "Base-C"
    base_system = {"Base-C": "Base", "Base-G": "Base",
                   "CoorDL": "Base"}.get(system, system)
    sess = make_session(base_system, gpu=gpu, spark=False)
    sess.config.gpu.min_cells = 64

    cat_data, num_data = kdd98_like(seed=seed)
    categorical = sess.read(cat_data, "categorical")
    numerical = sess.read(num_data, "numerical")
    n = cat_data.shape[0]
    batches = max(n // batch_size, 1)

    coordl_cache: dict[int, object] = {}
    best_rate, best_loss = rates[0], float("inf")
    for rate in rates:
        ae = Autoencoder.init(sess, _encoded_width(sess, categorical,
                                                   numerical), seed=seed)
        loss = float("inf")
        with sess.block("hdrop", execution_frequency=epochs * batches,
                        reusable_fraction=0.5):
            for epoch in range(epochs):
                for b in range(batches):
                    Xb = _input_pipeline(
                        sess, categorical, numerical, b, batch_size,
                        system, coordl_cache,
                    )
                    step_seed = hash((round(rate, 3), epoch, b)) % 10_000
                    loss = ae.step(sess, Xb, rate, step_seed).item()
        if loss < best_loss:
            best_rate, best_loss = rate, loss
    return finish("HDROP", system,
                  {"epochs": epochs, "batch_size": batch_size}, sess,
                  metric=best_loss)


def _encoded_width(sess, categorical, numerical) -> int:
    """Feature width after the transform map (computed once)."""
    sample = transform_encode(sess, categorical[0:4, :], numerical[0:4, :])
    return sample.ncol


def _input_pipeline(sess, categorical, numerical, b, batch_size,
                    system, coordl_cache):
    """The batch-wise IDP: transform map (CPU) + normalization (GPU)."""
    if system == "CoorDL" and b in coordl_cache:
        # CoorDL caches the CPU component of the IDP at the framework
        # level; normalization still re-executes every epoch
        encoded = coordl_cache[b]
    else:
        cat_b = minibatch(categorical, b, batch_size)
        num_b = minibatch(numerical, b, batch_size)
        encoded = transform_encode(sess, cat_b, num_b).evaluate()
        if system == "CoorDL":
            coordl_cache[b] = encoded
    return normalize(sess, encoded)
