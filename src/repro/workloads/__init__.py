"""End-to-end ML pipeline workloads of the paper's evaluation (Table 3)."""

from repro.workloads.base import SYSTEMS, WorkloadResult, make_session
from repro.workloads.clean import PIPELINES, run_clean
from repro.workloads.en2de import run_en2de
from repro.workloads.hband import run_hband
from repro.workloads.hcv import run_hcv
from repro.workloads.hdrop import run_hdrop
from repro.workloads.micro import (
    run_fig2c,
    run_fig2d,
    run_fig12b,
    run_reuse_overhead,
)
from repro.workloads.pnmf_wl import run_pnmf
from repro.workloads.tlvis import run_tlvis

__all__ = [
    "SYSTEMS",
    "WorkloadResult",
    "make_session",
    "run_hcv",
    "run_pnmf",
    "run_hband",
    "run_clean",
    "PIPELINES",
    "run_hdrop",
    "run_en2de",
    "run_tlvis",
    "run_fig2c",
    "run_fig2d",
    "run_fig12b",
    "run_reuse_overhead",
]
