"""Synthetic dataset generators matching the paper's datasets (Table 3).

The paper evaluates on MovieLens, APS, KDD98, WMT14, ImageNet, and
CIFAR-10 plus synthetic matrices.  None of these downloads are available
offline, so each generator reproduces the *properties that matter for
lineage-based reuse* (which is data-skew independent, §6.3): shape,
scale knobs, missing-value rate, categorical cardinalities, duplicate
rates, and image tensor layout.

Sizes are quoted in "paper gigabytes" and divided by the global
:data:`repro.common.config.SCALE` factor, so memory-pressure ratios
(input size vs. operation memory vs. cache sizes) match the paper.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import GB, SCALE


def scaled_bytes(paper_gb: float) -> int:
    """Paper-quoted gigabytes -> simulator bytes (scaled)."""
    return int(paper_gb * GB / SCALE)


def rows_for_gb(paper_gb: float, cols: int) -> int:
    """Row count so that a dense matrix of ``cols`` columns has the
    scaled size of ``paper_gb`` paper-gigabytes."""
    return max(scaled_bytes(paper_gb) // (8 * cols), 16)


def synthetic_regression(paper_gb: float, cols: int = 100,
                         seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Dense feature matrix + noisy linear responses (HCV / HBAND)."""
    rows = rows_for_gb(paper_gb, cols)
    rng = np.random.default_rng(seed)
    X = rng.random((rows, cols))
    beta = rng.standard_normal((cols, 1))
    y = X @ beta + 0.1 * rng.standard_normal((rows, 1))
    return X, y


def synthetic_classification(paper_gb: float, cols: int = 100,
                             num_classes: int = 2,
                             seed: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Features + labels; binary labels in {-1,+1}, else 1..k codes."""
    rows = rows_for_gb(paper_gb, cols)
    rng = np.random.default_rng(seed)
    X = rng.random((rows, cols))
    w = rng.standard_normal((cols, num_classes))
    logits = X @ w + 0.1 * rng.standard_normal((rows, num_classes))
    if num_classes == 2:
        y = np.where(logits[:, :1] > logits[:, 1:2], 1.0, -1.0)
        return X, y
    return X, (np.argmax(logits, axis=1) + 1.0).reshape(-1, 1)


def movielens_like(paper_rows: int = 7_000_000, cols: int = 27_000,
                   seed: int = 3) -> np.ndarray:
    """MovieLens-style non-negative rating matrix for PNMF.

    The paper integer-encodes and row-replicates 20M ratings into a
    7M x 27K matrix; we generate a scaled dense low-rank-plus-noise
    non-negative matrix with the same aspect ratio.
    """
    rows = max(paper_rows // SCALE, 64)
    cols = max(cols // int(SCALE**0.5), 32)
    rng = np.random.default_rng(seed)
    rank = 8
    W = rng.random((rows, rank))
    H = rng.random((rank, cols))
    return W @ H + 0.05 * rng.random((rows, cols)) + 0.01


def aps_like(scale_factor: int = 1, base_rows: int = 60_000,
             cols: int = 170, missing_rate: float = 0.006,
             seed: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """APS-truck-failure-style table (CLEAN): 60K rows x 170 columns,
    0.6% missing values, binary labels; ``scale_factor`` replicates rows
    (the paper scales via row append)."""
    rows = max(base_rows // SCALE, 32) * scale_factor
    rng = np.random.default_rng(seed)
    X = rng.random((rows, cols)) * 10.0
    # heavy-tailed outliers in a few columns
    outliers = rng.random((rows, cols)) < 0.01
    X = X + outliers * rng.random((rows, cols)) * 100.0
    X[rng.random((rows, cols)) < missing_rate] = np.nan
    y = np.where(rng.random((rows, 1)) < 0.1, 1.0, -1.0)  # imbalanced
    return X, y


def kdd98_like(paper_rows: int = 95_000, cat_cols: int = 9,
               num_cols: int = 460, cardinality: int = 12,
               seed: int = 5) -> tuple[np.ndarray, np.ndarray]:
    """KDD98-style donation table (HDROP): categorical + numerical."""
    rows = max(paper_rows // (SCALE // 16), 256)
    rng = np.random.default_rng(seed)
    categorical = rng.integers(1, cardinality + 1,
                               (rows, cat_cols)).astype(float)
    numerical = rng.gamma(2.0, 2.0, (rows, num_cols))
    return categorical, numerical


def word_sequence(length: int = 200_000, vocab: int = 30_000,
                  embedding_dim: int = 300, zipf_a: float = 1.4,
                  seed: int = 6) -> tuple[np.ndarray, np.ndarray]:
    """WMT14-style word id sequence + pre-trained embeddings (EN2DE).

    Natural-language word frequencies are Zipfian, which produces the
    duplicate inputs that prediction caching exploits (Clipper [33]).
    Returns (word_ids, embedding_table).
    """
    length = max(length // (SCALE // 8), 512)
    vocab = max(vocab // (SCALE // 16), 128)
    dim = max(embedding_dim // 4, 32)
    rng = np.random.default_rng(seed)
    ids = rng.zipf(zipf_a, length)
    ids = np.minimum(ids, vocab) - 1  # 0-based, clamped to vocab
    table = rng.standard_normal((vocab, dim)) * 0.1
    return ids, table


def image_set(num_images: int = 10_000, hw: int = 32, channels: int = 3,
              duplicate_rate: float = 0.0,
              seed: int = 7) -> np.ndarray:
    """Linearized NCHW image matrix (TLVIS / GPU micro-benchmarks).

    ``duplicate_rate`` controls the fraction of repeated images
    (identified by pixel content in the paper's ensemble scoring).
    """
    n = max(num_images // (SCALE // 16), 64)
    rng = np.random.default_rng(seed)
    unique = max(int(n * (1.0 - duplicate_rate)), 1)
    base = rng.random((unique, channels * hw * hw))
    if unique >= n:
        return base[:n]
    picks = rng.integers(0, unique, n - unique)
    return np.vstack([base, base[picks]])
