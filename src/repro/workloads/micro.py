"""Micro-benchmarks of §2 and §6.2 (Figs. 2(c), 2(d), 11, 12).

Each driver isolates one aspect of the system: the cost of eager RDD
materialization under lazy evaluation, GPU allocation/copy overheads,
lineage tracing/probing overhead versus reuse benefit, driver cache
sizing, and GPU cache eviction under mini-batch scoring.
"""

from __future__ import annotations

import numpy as np

from repro.backends.gpu.memmanager import MODE_MALLOC
from repro.common.config import GB, MB, MemphisConfig, ReuseMode
from repro.core.session import Session
from repro.ml.l2svm import l2svm_core_iteration
from repro.ml.nn import CnnModel, ConvSpec
from repro.workloads.base import WorkloadResult, finish, scale_overheads
from repro.workloads.datagen import image_set


# ------------------------------------------------------------- Fig. 2(c)

def run_fig2c(setting: str, num_chains: int = 120,
              reusable_fraction: float = 1 / 3,
              rows: int = 4096, cols: int = 16,
              seed: int = 11) -> WorkloadResult:
    """Lazy vs eager RDD caching (Fig. 2(c)).

    Creates ``num_chains`` short distributed operator chains of which
    ``reusable_fraction`` repeat.  Settings: ``NoCache`` (never cache),
    ``Eager`` (materialize every cached RDD immediately after its
    instruction — the LIMA/tf.data/Cachew strategy), ``MEMPHIS`` (lazy
    persist + reuse).
    """
    if setting == "NoCache":
        cfg = MemphisConfig.base()
    else:
        cfg = MemphisConfig.memphis()
    sess = Session(cfg)
    sess.config.cpu.operation_memory_bytes = rows * cols * 4  # force SP
    rng = np.random.default_rng(seed)
    X = sess.read(rng.random((rows, cols)), "X")

    unique = max(int(num_chains * (1.0 - reusable_fraction)), 1)
    total = 0.0
    for i in range(num_chains):
        scale = float((i % unique) + 1)
        stages = [X * scale, None, None, None]
        stages[1] = (stages[0] + 1.0).relu()
        stages[2] = stages[1] * 0.5
        stages[3] = stages[2] - scale
        if setting == "Eager":
            # eager materialization: a job per produced RDD (the
            # LIMA/tf.data/Cachew strategy the paper measures)
            for stage in stages:
                stage.evaluate()
                dm = stage.payloads.get("SP")
                if dm is not None:
                    dm.rdd.persist()
                    sess.spark_context.count(dm.rdd)
        total += stages[3].sum().item()  # the consuming action
    return finish("Fig2c", setting,
                  {"num_chains": num_chains,
                   "reusable_fraction": reusable_fraction},
                  sess, metric=total)


# ------------------------------------------------------------- Fig. 2(d)

def run_fig2d(epochs: int = 10, batches: int = 100, batch_rows: int = 128,
              features: int = 469, hidden: int = 500,
              seed: int = 12) -> dict:
    """GPU execution overhead breakdown (Fig. 2(d)).

    A single affine layer with ReLU, forcing each kernel to allocate
    output memory, transfer the result to the host, and deallocate
    (``MODE_MALLOC``).  Returns the simulated time spent in compute,
    allocation/free, and data copies.
    """
    cfg = MemphisConfig.base()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    cfg.gpu_memory_mode = MODE_MALLOC
    sess = Session(cfg)
    rng = np.random.default_rng(seed)
    W = sess.read(rng.standard_normal((features, hidden)) * 0.1, "W")

    gpu = sess.config.gpu
    for epoch in range(epochs):
        for b in range(batches):
            Xb = sess.read(
                rng.standard_normal((batch_rows, features)), f"b{epoch}_{b}"
            )
            out = (Xb @ W).relu()
            out.compute()  # device-to-host copy of the result

    counters = sess.stats.counters()
    t_alloc_free = (
        counters.get("gpu/cuda_mallocs", 0) * gpu.malloc_latency_s
        + counters.get("gpu/cuda_frees", 0) * gpu.free_latency_s
    )
    from repro.common.costs import compute_time

    matmul_bytes = 8 * (batch_rows * features + features * hidden
                        + batch_rows * hidden)
    relu_bytes = 2 * 8 * batch_rows * hidden
    t_step = (
        compute_time(2.0 * batch_rows * features * hidden,
                     gpu.flops_per_s, matmul_bytes,
                     gpu.mem_bandwidth_bytes_per_s, gpu.kernel_launch_s)
        + compute_time(batch_rows * hidden, gpu.flops_per_s, relu_bytes,
                       gpu.mem_bandwidth_bytes_per_s, gpu.kernel_launch_s)
    )
    t_compute = epochs * batches * t_step
    copy_bytes = epochs * batches * (
        batch_rows * features * 8  # H2D input
        + batch_rows * hidden * 8  # D2H result
    )
    t_copy = copy_bytes / gpu.h2d_bandwidth_bytes_per_s
    return {
        "compute_s": t_compute,
        "alloc_free_s": t_alloc_free,
        "copy_s": t_copy,
        "alloc_free_over_compute": t_alloc_free / max(t_compute, 1e-12),
        "copy_over_compute": t_copy / max(t_compute, 1e-12),
        "elapsed_s": sess.elapsed(),
        "counters": counters,
    }


# ----------------------------------------------------------- Fig. 11 / 12(a)

_SETTING_MODES = {
    "Base": ReuseMode.NONE,
    "Trace": ReuseMode.TRACE_ONLY,
    "Probe": ReuseMode.PROBE_ONLY,
}


def run_reuse_overhead(setting: str, input_bytes: int,
                       iterations: int = 200,
                       reuse_fraction: float = 0.0,
                       cache_bytes: int | None = None,
                       unlimited: bool = False,
                       overhead_scale: float = 1.0,
                       seed: int = 13) -> WorkloadResult:
    """The L2SVM-core hyper-parameter micro-benchmark (Figs. 11, 12(a)).

    ``setting`` is ``Base``/``Trace``/``Probe`` or ``Reuse``;  with
    ``Reuse``, a fraction of iterations repeat earlier hyper-parameters
    (binary matrix-vector operations dominate), making their
    instructions reusable.
    """
    if setting in _SETTING_MODES:
        cfg = MemphisConfig.base()
        cfg.reuse_mode = _SETTING_MODES[setting]
    else:
        cfg = MemphisConfig.memphis()
    if cache_bytes is not None:
        cfg.cache.driver_cache_bytes = cache_bytes
    else:
        # the paper runs this micro with unscaled inputs (800B..8MB)
        # against a 5GB cache; inputs here are unscaled too, so the
        # cache scales by the input ratio (~16x), not the dataset ratio
        cfg.cache.driver_cache_bytes = 5 * GB // 16
    cfg.cache.unlimited = unlimited
    if overhead_scale != 1.0:
        scale_overheads(cfg, overhead_scale)
    sess = Session(cfg)

    cols = 16
    rows = max(input_bytes // (8 * cols), 2)
    rng = np.random.default_rng(seed)
    X = sess.read(rng.random((rows, cols)), "X")
    y = sess.read(np.where(rng.random((rows, 1)) > 0.5, 1.0, -1.0), "y")
    w = sess.read(np.zeros((cols, 1)), "w")

    # randomly repeated hyper-parameters (paper §6.2): with probability
    # ``reuse_fraction`` an iteration redraws an earlier configuration;
    # popular configurations accumulate cache hits, which the Cost&Size
    # policy rewards, keeping them resident even in small caches
    py_rng = np.random.default_rng(seed + 1)
    pool: list[float] = []
    checksum = 0.0
    for i in range(iterations):
        if pool and py_rng.random() < reuse_fraction:
            # hyper-parameter searches revisit promising configurations:
            # repeats are Zipf-distributed, creating the hot set that
            # lets even small caches retain high-utility entries
            reg = pool[min(int(py_rng.zipf(1.4)) - 1, len(pool) - 1)]
        else:
            reg = round(10.0 ** py_rng.uniform(-3, 1), 6)
            pool.append(reg)
        # every instruction of the iteration depends on the
        # hyper-parameter, so the reusable-instruction fraction equals
        # the repeated-hyper-parameter fraction exactly
        w_reg = w + reg
        w_new = l2svm_core_iteration(sess, X, y, w_reg, reg)
        checksum += w_new.sum().item()
    return finish("ReuseOverhead", setting,
                  {"input_bytes": input_bytes, "iterations": iterations,
                   "reuse_fraction": reuse_fraction},
                  sess, metric=checksum)


# ------------------------------------------------------------- Fig. 12(b)

def ensemble_cnns(hw: int = 32) -> list[CnnModel]:
    """The two scoring CNNs with distinct allocation patterns (§6.2)."""
    cnn_a = CnnModel("cnn64_128", [
        ConvSpec(16, 3, stride=2, pad=1),
        ConvSpec(32, 3, stride=2, pad=1),
    ], [64, 10], 3, hw)
    cnn_b = CnnModel("cnn64_192_256", [
        ConvSpec(16, 3, stride=2, pad=1),
        ConvSpec(48, 3, stride=2, pad=1),
        ConvSpec(64, 3, stride=2, pad=1),
    ], [64, 10], 3, hw)
    return [cnn_a, cnn_b]


def run_fig12b(setting: str, batch_size: int, num_images: int = 2048,
               reuse_fraction: float = 0.0, hw: int = 24,
               seed: int = 14) -> WorkloadResult:
    """Ensemble CNN scoring with repeated images (Fig. 12(b)).

    ``setting``: ``Base`` (no reuse) or ``MPH``; ``reuse_fraction`` is
    the share of duplicate images (identified by pixel-encoded ids in
    the paper, i.e. identical content -> identical lineage).
    """
    cfg = MemphisConfig.base() if setting == "Base" else MemphisConfig.memphis()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    cfg.gpu.min_cells = 64
    # images and channel counts are scaled down from the paper's CNNs;
    # fixed per-operation overheads scale with them (see scale_overheads)
    scale_overheads(cfg, 1.0 / 64.0)
    sess = Session(cfg)
    models = [m.build(sess, seed=41 + i) for i, m in enumerate(ensemble_cnns(hw))]

    # duplicate *inputs* repeat at batch granularity: the paper
    # identifies repeated images by pixel-encoded ids, so identical
    # content produces identical lineage
    images = image_set(num_images * 4, hw=hw, seed=seed)
    total_batches = images.shape[0] // batch_size
    unique = max(int(total_batches * (1.0 - reuse_fraction)), 1)
    rng = np.random.default_rng(seed)
    schedule = [b % unique for b in range(total_batches)]
    rng.shuffle(schedule)

    checksum = 0.0
    for src_batch in schedule:
        batch = sess.read(
            images[src_batch * batch_size:(src_batch + 1) * batch_size],
            f"content_{src_batch}",
        )
        combined = 0.0
        for model in models:
            probs = model.score(sess, batch)
            combined += probs.max().item()
        checksum += combined
    return finish("Fig12b", setting,
                  {"batch_size": batch_size,
                   "reuse_fraction": reuse_fraction},
                  sess, metric=checksum)


def _content_key(images: np.ndarray, b: int, batch_size: int) -> int:
    """Pixel-encoded identity of a batch (stable across repeats)."""
    block = images[b * batch_size:(b + 1) * batch_size]
    return hash(block.tobytes()) % (10**12)
