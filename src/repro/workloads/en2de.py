"""EN2DE: English-to-German translation scoring (paper Fig. 14(c)).

A pre-trained four-FC-layer scorer with ReLU and softmax translates a
Zipf-distributed word sequence word-by-word on the GPU.  Natural
language repeats words heavily, so per-word predictions exhibit
fine-grained prediction-caching potential: MPH reuses scoring results at
the host (eliminating GPU computation entirely for repeated words),
MPH-F reuses GPU pointers only, Clipper memoizes predictions at the
application layer, and PyTorch recycles memory but cannot reuse.
"""

from __future__ import annotations

from repro.baselines.pytorch_sim import pytorch_config
from repro.common.config import MemphisConfig
from repro.core.session import Session
from repro.ml.nn import MlpModel
from repro.workloads.base import (
    scale_overheads,
    SYSTEMS,
    WORKLOAD_OVERHEAD_SCALE,
    WorkloadResult,
    finish,
)
from repro.workloads.datagen import word_sequence


def _session_for(system: str) -> Session:
    if system in ("PyTorch", "PyTorch-Clr"):
        cfg = pytorch_config()
    elif system in ("Base-G", "Clipper"):
        cfg = MemphisConfig.base()
    else:
        cfg = SYSTEMS[system]()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    cfg.gpu.min_cells = 16
    scale_overheads(cfg, WORKLOAD_OVERHEAD_SCALE)
    return Session(cfg)


def run_en2de(system: str, length: int | None = None,
              seed: int = 6) -> WorkloadResult:
    """Run EN2DE scoring under one system configuration."""
    ids, table = word_sequence(seed=seed)
    if length is not None:
        ids = ids[:length]
    sess = _session_for(system)
    dim = table.shape[1]
    embeddings = sess.read(table, "embeddings_en")
    model = MlpModel.pretrained(sess, [dim, 96, 96, 64], seed=31)

    # the function output is the final host-side score, so a repeated
    # word costs exactly one cache probe — "reusing scoring results at
    # the host, completely eliminating GPU computations" (paper §6.3)
    score_word = sess.function("score_word")(
        lambda emb: model.forward(sess, emb).max()
    )

    clipper_cache: dict[int, float] = {}
    checksum = 0.0
    # scoring repeats per duplicate word: the tuning pass assigns a
    # delay factor so one-off words are never cached (stay recyclable)
    with sess.block("en2de", execution_frequency=len(ids),
                    reusable_fraction=0.5):
        for word_id in ids:
            wid = int(word_id)
            if system == "Clipper":
                # Clipper hashes the raw input features and looks up its
                # prediction cache on every request
                sess.clock.advance(15e-6 * WORKLOAD_OVERHEAD_SCALE)
                if wid in clipper_cache:
                    checksum += clipper_cache[wid]
                    continue
            emb = embeddings[wid:wid + 1, :]
            if system in ("MPH", "HELIX"):
                top = score_word(emb).item()
            else:
                top = model.forward(sess, emb).max().item()
            if system == "Clipper":
                clipper_cache[wid] = top
            checksum += top
    return finish("EN2DE", system, {"length": len(ids)}, sess,
                  metric=checksum / len(ids))
