"""HBAND: Hyperband-style model search + weighted ensemble
(paper Fig. 13(c), Table 3 row 3).

Phase 1 fine-tunes L2SVM and multinomial logistic regression via
successive halving (grid over regularization x intercept; brackets halve
the candidate list and double the iteration budget).  Phase 2 optimizes
ensemble weights over the two best models; the ``X %*% B`` class-
probability computations are reused across all weight configurations.
"""

from __future__ import annotations

import numpy as np

from repro.ml.l2svm import l2svm, l2svm_predict
from repro.ml.mlogreg import mlogreg, mlogreg_predict
from repro.ml.tuning import successive_halving, weighted_ensemble
from repro.workloads.base import WorkloadResult, finish, make_session
from repro.workloads.datagen import rows_for_gb, synthetic_classification


def run_hband(system: str, paper_gb: float, cols: int = 48,
              num_regs: int = 6, brackets: int = 3,
              start_iterations: int = 2, num_weights: int = 50,
              seed: int = 2) -> WorkloadResult:
    """Run the HBAND pipeline under one system configuration."""
    X_data, y_data = synthetic_classification(paper_gb, cols, 2, seed)
    labels = ((y_data > 0).astype(float) + 1.0)  # classes 1/2
    onehot = np.hstack([(labels == 1).astype(float),
                        (labels == 2).astype(float)])

    sess = make_session(system)
    X = sess.read(X_data, "X")
    y = sess.read(y_data, "y")
    Y = sess.read(onehot, "Y")
    truth = sess.read(labels, "labels")

    regs = [10.0 ** (i - num_regs // 2) for i in range(num_regs)]
    # three intercept options as in the paper; options 1 and 2 compile to
    # the same plan, creating exactly the cross-configuration redundancy
    # fine-grained reuse exploits
    configs = [{"reg": r, "icpt": i} for r in regs for i in (0, 1, 2)]

    train_svm = sess.function("train_l2svm")(
        lambda X_, y_, reg, icpt, iters: l2svm(
            sess, X_, y_, reg=reg, intercept=icpt, max_iterations=iters
        )
    )
    train_mlr = sess.function("train_mlogreg")(
        lambda X_, Y_, reg, icpt, iters: mlogreg(
            sess, X_, Y_, reg=reg, intercept=icpt, max_iterations=iters
        )
    )

    # scoring is wrapped for multi-level (function) reuse: intercept
    # options 1 and 2 train identical models, so their scoring calls
    # share lineage keys and the whole evaluation is reused (§3.3)
    score_svm_fn = sess.function("score_l2svm")(
        lambda w_, use_icpt: (
            l2svm_predict(sess, X, w_, intercept=use_icpt).sign() * y > 0.0
        ).mean()
    )
    score_mlr_fn = sess.function("score_mlogreg")(
        lambda W_, use_icpt: mlogreg_predict(
            sess, X, W_, intercept=use_icpt
        ).row_argmax().eq(truth).mean()
    )

    def score_svm(w, cfg) -> float:
        return score_svm_fn(w, min(cfg["icpt"], 1)).item()

    def score_mlr(W, cfg) -> float:
        return score_mlr_fn(W, min(cfg["icpt"], 1)).item()

    with sess.block("hband", execution_frequency=len(configs) * brackets,
                    reusable_fraction=0.7):
        best_svm_cfg, best_svm, svm_acc = successive_halving(
            sess, configs,
            lambda cfg, iters: train_svm(X, y, cfg["reg"], cfg["icpt"], iters),
            score_svm, brackets=brackets,
            start_iterations=start_iterations,
        )
        best_mlr_cfg, best_mlr, mlr_acc = successive_halving(
            sess, configs,
            lambda cfg, iters: train_mlr(X, Y, cfg["reg"], cfg["icpt"], iters),
            score_mlr, brackets=brackets,
            start_iterations=start_iterations,
        )
        # phase 2: weighted ensemble over class probabilities
        svm_scores = l2svm_predict(sess, X, best_svm,
                                   intercept=best_svm_cfg["icpt"])
        probs_svm = sess.cbind((-svm_scores).sigmoid(), svm_scores.sigmoid())
        probs_mlr = mlogreg_predict(sess, X, best_mlr,
                                    intercept=best_mlr_cfg["icpt"])
        weights = [i / num_weights for i in range(num_weights + 1)]
        _, ensemble_acc = weighted_ensemble(
            sess, probs_svm, probs_mlr, truth, weights
        )
    return finish("HBAND", system, {"paper_gb": paper_gb}, sess,
                  metric=ensemble_acc)
