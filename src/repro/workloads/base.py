"""Common infrastructure for the end-to-end workload drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.config import MemphisConfig
from repro.core.session import Session


@dataclass
class WorkloadResult:
    """Outcome of one (workload, system, parameters) run."""

    workload: str
    system: str
    params: dict
    elapsed: float
    counters: dict = field(default_factory=dict)
    #: workload-specific quality metric (accuracy, loss, R^2, ...) used
    #: to verify that reuse never changes results.
    metric: Optional[float] = None
    failed: Optional[str] = None

    def counter(self, name: str) -> int:
        return int(self.counters.get(name, 0))


#: system label -> config factory, mirroring the paper's baselines.
SYSTEMS: dict[str, Callable[[], MemphisConfig]] = {
    "Base": MemphisConfig.base,
    "Base-A": MemphisConfig.base_async,
    "LIMA": MemphisConfig.lima,
    "HELIX": MemphisConfig.helix,
    "MPH-NA": MemphisConfig.memphis_no_async,
    "MPH-F": MemphisConfig.memphis_fine_only,
    "MPH": MemphisConfig.memphis,
}


#: datasets of the Table-3 workloads are scaled down by the global
#: simulation factor; fixed per-operation overheads scale with them so
#: the overhead-to-compute ratio matches the paper's hardware (the exact
#: data factor is 1024, but intermediate results shrink less than the
#: inputs, so a conservative factor is used).
WORKLOAD_OVERHEAD_SCALE = 1.0 / 64.0


def make_session(system: str, gpu: bool = False, spark: bool = True,
                 overhead_scale: float = WORKLOAD_OVERHEAD_SCALE) -> Session:
    """Instantiate a session for one of the paper's system labels."""
    cfg = SYSTEMS[system]()
    cfg.gpu_enabled = gpu
    cfg.spark_enabled = spark
    if overhead_scale != 1.0:
        scale_overheads(cfg, overhead_scale)
    return Session(cfg)


def scale_overheads(config: MemphisConfig, factor: float) -> MemphisConfig:
    """Scale all fixed per-operation overheads by ``factor``.

    Experiments that scale their *data* down by the global simulation
    factor must scale fixed overheads (instruction interpretation,
    tracing/probing, kernel launch, cudaMalloc/Free, Spark task/job
    submission) by the same factor, otherwise the overhead-to-compute
    ratio — which determines whether reuse pays off — would be inflated
    by the scale factor relative to the paper's hardware.
    """
    config.cpu.instruction_overhead_s *= factor
    config.cpu.trace_overhead_s *= factor
    config.cpu.probe_overhead_s *= factor
    config.gpu.kernel_launch_s *= factor
    config.gpu.malloc_latency_s *= factor
    config.gpu.free_latency_s *= factor
    config.spark.task_overhead_s *= factor
    config.spark.job_overhead_s *= factor
    return config


def finish(workload: str, system: str, params: dict, sess: Session,
           metric: Optional[float] = None,
           failed: Optional[str] = None) -> WorkloadResult:
    """Package a finished run into a result record."""
    return WorkloadResult(
        workload=workload,
        system=system,
        params=params,
        elapsed=sess.elapsed(),
        counters=sess.stats.counters(),
        metric=metric,
        failed=failed,
    )
