"""HCV: grid-search hyper-parameter tuning of cross-validated linear
regression (paper Fig. 13(a), Table 3 row 1).

Calls cross-validated linRegDS (Example 4.1 at its core) for 10
regularization parameters; ``t(X) %*% X`` and ``t(X) %*% y`` per fold
are independent of the parameter and reused across calls.  Inputs above
~25 paper-GB place the core multiplications on Spark.
"""

from __future__ import annotations

from repro.ml.linreg import lin_reg_ds, lin_reg_predict, r2_score
from repro.ml.tuning import kfold_indices
from repro.workloads.base import WorkloadResult, finish, make_session
from repro.workloads.datagen import synthetic_regression

DEFAULT_REGS = [10.0 ** (i / 2 - 3) for i in range(10)]


def run_hcv(system: str, paper_gb: float, cols: int = 64,
            folds: int = 3, regs=None, seed: int = 1) -> WorkloadResult:
    """Run the HCV pipeline under one system configuration."""
    regs = regs or DEFAULT_REGS
    X_data, y_data = synthetic_regression(paper_gb, cols, seed)
    sess = make_session(system)
    X = sess.read(X_data, "X")
    y = sess.read(y_data, "y")

    best_reg, best_score = regs[0], float("-inf")
    with sess.block("hcv", execution_frequency=len(regs) * folds,
                    reusable_fraction=0.9):
        for reg in regs:
            total = 0.0
            for start, stop in kfold_indices(X.nrow, folds):
                X_tr, y_tr = _complement(sess, X, y, start, stop)
                beta = lin_reg_ds(sess, X_tr, y_tr, reg)
                y_hat = lin_reg_predict(sess, X[start:stop, :], beta)
                total += r2_score(sess, y[start:stop, :], y_hat).item()
            score = total / folds
            if score > best_score:
                best_reg, best_score = reg, score
    return finish("HCV", system, {"paper_gb": paper_gb, "folds": folds},
                  sess, metric=best_score)


def _complement(sess, X, y, start, stop):
    if start == 0:
        return X[stop:X.nrow, :], y[stop:y.nrow, :]
    if stop == X.nrow:
        return X[0:start, :], y[0:start, :]
    return (
        sess.rbind(X[0:start, :], X[stop:X.nrow, :]),
        sess.rbind(y[0:start, :], y[stop:y.nrow, :]),
    )
