"""CLEAN: enumeration of data-cleaning pipelines (paper Fig. 14(a)).

Builds 12 pipelines from primitives for missing-value imputation,
outlier handling, normalization, class rebalancing, and dimensionality
reduction, each followed by a downstream L2SVM task; returns the top-3
by accuracy.  Pipelines share long prefixes (the order of primitives is
data-dependent, e.g. imputation before normalization), so repeated
primitives are the reuse target.
"""

from __future__ import annotations

from repro.ml.cleaning import (
    impute_by_mean,
    impute_by_mode,
    normalize,
    outlier_by_iqr,
    pca_project,
    scale,
    under_sampling,
)
from repro.ml.l2svm import l2svm, l2svm_predict
from repro.workloads.base import WorkloadResult, finish, make_session
from repro.workloads.datagen import aps_like

#: the 12 enumerated pipelines (primitive name sequences).
PIPELINES: list[tuple[str, ...]] = [
    ("mean", "iqr", "scale"),
    ("mean", "iqr", "minmax"),
    ("mode", "iqr", "scale"),
    ("mode", "iqr", "minmax"),
    ("mean", "scale"),
    ("mean", "minmax"),
    ("mean", "iqr", "scale", "under"),
    ("mean", "iqr", "minmax", "under"),
    ("mean", "iqr", "scale", "pca"),
    ("mean", "iqr", "minmax", "pca"),
    ("mode", "iqr", "scale", "pca"),
    ("mean", "iqr", "scale", "under", "pca"),
]


def run_clean(system: str, scale_factor: int, pca_k: int = 16,
              svm_iterations: int = 2, seed: int = 4) -> WorkloadResult:
    """Run the CLEAN pipeline enumeration under one system config.

    ``Base-P`` (parallel feature processing) is modelled as Base with
    doubled effective CPU throughput for the cleaning primitives.
    """
    parallel = system == "Base-P"
    sess = make_session("Base" if parallel else system)
    if parallel:
        # Base-P: multi-threaded feature processing [23] — speeds up the
        # per-feature primitives on driver and executors alike
        sess.config.cpu.flops_per_s *= 2.0
        sess.config.cpu.instruction_overhead_s /= 2.0
        sess.config.spark.executor_flops_per_s *= 2.0
    X_data, y_data = aps_like(scale_factor, seed=seed)
    X = sess.read(X_data, "X")
    y = sess.read(y_data, "y")

    results = []
    for pipeline in PIPELINES:
        Xp, yp = X, y
        # cleaning primitives repeat across the enumerated pipelines:
        # the tuning pass assigns no delay and disk-backed storage
        with sess.block("clean_primitives",
                        execution_frequency=len(PIPELINES),
                        reusable_fraction=0.9):
            for step in pipeline:
                if step == "mean":
                    Xp = impute_by_mean(sess, Xp)
                elif step == "mode":
                    Xp = impute_by_mode(sess, Xp)
                elif step == "iqr":
                    Xp = outlier_by_iqr(sess, Xp)
                elif step == "scale":
                    Xp = scale(sess, Xp)
                elif step == "minmax":
                    Xp = normalize(sess, Xp)
                elif step == "under":
                    Xp, yp = under_sampling(sess, Xp, yp, 0.3)
                elif step == "pca":
                    Xp = pca_project(sess, Xp, pca_k)
        # the downstream model is pipeline-specific (loop-dependent):
        # delayed caching avoids polluting the cache with its
        # non-repeating training intermediates
        with sess.block("clean_svm", execution_frequency=len(PIPELINES),
                        reusable_fraction=0.2):
            w = l2svm(sess, Xp, yp, reg=1.0, max_iterations=svm_iterations)
            scores = l2svm_predict(sess, Xp, w)
            acc = (scores.sign() * yp > 0.0).mean().item()
        results.append((acc, pipeline))
    results.sort(key=lambda t: -t[0])
    top3 = results[:3]
    return finish("CLEAN", system, {"scale_factor": scale_factor}, sess,
                  metric=top3[0][0])
