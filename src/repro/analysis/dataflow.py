"""Dataflow infrastructure shared by the analysis passes.

Two views of a compiled program are analyzed:

* the **HOP DAG** (post-rewrite), walked with a cycle-safe traversal —
  unlike :meth:`Hop.iter_dag`, :func:`walk_dag` terminates on cyclic
  graphs and reports the back edges it found, so the verifier can
  diagnose a broken rewrite instead of hanging;
* the **instruction stream** (the linearized order), summarized into
  def/use chains by :class:`StreamDefUse` — definition position, use
  positions, and live ranges per value, the classic input to liveness
  and soundness checks (red-dragon-style iterative dataflow collapses
  to a single pass here because the stream of one basic block is a
  straight line).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.compiler.ir import Hop


def walk_dag(roots: Iterable[Hop]) -> tuple[list[Hop], list[tuple[Hop, Hop]]]:
    """Cycle-safe traversal of the DAGs under ``roots``.

    Returns ``(nodes, back_edges)`` where ``nodes`` is every distinct
    reachable hop in deterministic left-to-right post-order (matching
    :meth:`Hop.iter_dag` on acyclic graphs) and ``back_edges`` lists
    ``(consumer, input)`` pairs closing a cycle.  On a cyclic graph the
    post-order is best-effort but the traversal always terminates.
    """
    nodes: list[Hop] = []
    back_edges: list[tuple[Hop, Hop]] = []
    done: set[int] = set()
    on_path: set[int] = set()
    for root in roots:
        stack: list[tuple[Hop, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                on_path.discard(id(node))
                if id(node) not in done:
                    done.add(id(node))
                    nodes.append(node)
                continue
            if id(node) in done or id(node) in on_path:
                continue
            on_path.add(id(node))
            stack.append((node, True))
            for inp in reversed(node.inputs):
                if id(inp) in on_path:
                    back_edges.append((node, inp))
                elif id(inp) not in done:
                    stack.append((inp, False))
    return nodes, back_edges


def consumers_of(nodes: Iterable[Hop]) -> dict[int, list[Hop]]:
    """hop id -> consumer hops, over an already-collected node set."""
    out: dict[int, list[Hop]] = {}
    for node in nodes:
        for inp in node.inputs:
            out.setdefault(inp.id, []).append(node)
    return out


class StreamDefUse:
    """Def-use chains over one linearized instruction stream.

    For every hop in the stream this records the position at which its
    value is defined (``def_pos``), the positions at which it is used as
    an input (``use_pos``), and the hops that appear more than once
    (``duplicates``).  Values used before (or without) a definition show
    up in ``undefined_uses``.
    """

    def __init__(self, order: list[Hop],
                 roots: Optional[list[Hop]] = None) -> None:
        self.order = order
        self.root_ids: set[int] = {r.id for r in roots} if roots else set()
        self.def_pos: dict[int, int] = {}
        self.use_pos: dict[int, list[int]] = {}
        self.duplicates: list[Hop] = []
        #: (consumer position, consumer hop, input hop) triples whose
        #: input has no earlier definition in the stream.
        self.undefined_uses: list[tuple[int, Hop, Hop]] = []
        for pos, hop in enumerate(order):
            for inp in hop.inputs:
                self.use_pos.setdefault(inp.id, []).append(pos)
                if inp.id not in self.def_pos:
                    self.undefined_uses.append((pos, hop, inp))
            if hop.id in self.def_pos:
                self.duplicates.append(hop)
            else:
                self.def_pos[hop.id] = pos

    def uses(self, hop: Hop) -> list[int]:
        return self.use_pos.get(hop.id, [])

    def first_use(self, hop: Hop) -> Optional[int]:
        uses = self.use_pos.get(hop.id)
        return uses[0] if uses else None

    def last_use(self, hop: Hop) -> Optional[int]:
        uses = self.use_pos.get(hop.id)
        return uses[-1] if uses else None

    def is_dead(self, hop: Hop) -> bool:
        """Defined in the stream, never used, and not a program output."""
        return (
            hop.id in self.def_pos
            and not self.use_pos.get(hop.id)
            and hop.id not in self.root_ids
        )

    def live_range(self, hop: Hop) -> Optional[tuple[int, int]]:
        """``(def, last_use)`` positions; ``None`` if not defined."""
        pos = self.def_pos.get(hop.id)
        if pos is None:
            return None
        last = self.last_use(hop)
        return (pos, last if last is not None else pos)
