"""Fusion-legality analysis pass: the FUS rule family.

Validates every ``FusedHop`` the reuse-aware fusion rewrite
(``repro.compiler.rewrites.fusion``) spliced into a compiled block.
Fusion eliminates interior intermediates, so each rule guards one way a
bad fusion could silently change semantics or forfeit reuse.

Rule catalog (see ``docs/ANALYSIS.md``):

====== ======== ==========================================================
rule   severity finding
====== ======== ==========================================================
FUS001 error    malformed fused node (empty chain, steps/chain mismatch,
                missing step spec, or a plain hop with opcode ``fused``)
FUS002 error    fusion crossed a placement boundary (fused node or an
                absorbed hop placed off-CP)
FUS003 error    fusion crossed a checkpoint/prefetch/broadcast boundary
                (an absorbed hop carries an async or persistence flag)
FUS004 error    fusion absorbed a hop whose lineage key the cache policy
                wants to retain (reuse-awareness violation)
FUS005 warning  absorbed interior hop still reachable in the DAG (its
                value will be materialized twice)
FUS006 info     single-step fusion with no prologue (no interior is
                eliminated; the rewrite should not have fired)
====== ======== ==========================================================
"""

from __future__ import annotations

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    register_pass,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.compiler.ir import KIND_OP, Hop
from repro.compiler.rewrites.fusion import (
    FUSED_OPCODE,
    FusedHop,
    retention_candidate,
)
from repro.core.entry import BACKEND_CP


@register_pass
class FusionLegalityPass(AnalysisPass):
    """Reuse-aware fusion legality (rules FUS001-FUS006)."""

    name = "fusion-legality"
    runs_on = "dag"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        reachable = {h.id for h in ctx.nodes}
        for hop in ctx.nodes:
            if hop.kind != KIND_OP or hop.opcode != FUSED_OPCODE:
                continue
            out.extend(self._check_structure(hop))
            if not isinstance(hop, FusedHop):
                continue
            out.extend(self._check_boundaries(hop, ctx))
            out.extend(self._check_retention(hop, ctx))
            out.extend(self._check_interiors(hop, reachable))
            if len(hop.chain) < 2 and hop.prologue is None:
                out.append(self.diag(
                    "FUS006", Severity.INFO,
                    "single-step fusion with no matmul prologue "
                    "eliminates no interior intermediate", hop,
                    hint="plan_fusion requires >= 2 steps (or a "
                         "prologue); this node was built by hand",
                ))
        return out

    def _check_structure(self, hop: Hop) -> list[Diagnostic]:
        if not isinstance(hop, FusedHop):
            return [self.diag(
                "FUS001", Severity.ERROR,
                "hop with opcode 'fused' is not a FusedHop: the "
                "interpreter cannot recover its step closures", hop,
                hint="only the fusion rewrite may emit fused nodes",
            )]
        out: list[Diagnostic] = []
        if not hop.chain or not hop.steps:
            out.append(self.diag(
                "FUS001", Severity.ERROR,
                "fused node with an empty chain or step list", hop,
            ))
        elif len(hop.chain) != len(hop.steps):
            out.append(self.diag(
                "FUS001", Severity.ERROR,
                f"fused node has {len(hop.chain)} chain hop(s) but "
                f"{len(hop.steps)} compiled step(s)", hop,
            ))
        if "steps" not in hop.attrs:
            out.append(self.diag(
                "FUS001", Severity.ERROR,
                "fused node carries no 'steps' spec attr: its lineage "
                "key would collide with unrelated fused chains", hop,
            ))
        return out

    def _check_boundaries(self, hop: FusedHop,
                          ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        if hop.placement not in (None, BACKEND_CP):
            out.append(self.diag(
                "FUS002", Severity.ERROR,
                f"fused node placed on {hop.placement!r}; fused chains "
                "are lowered to CompiledStep closures that only the CPU "
                "backend executes", hop,
            ))
        absorbed = list(hop.chain[:-1])
        if hop.prologue is not None:
            absorbed.append(hop.prologue)
        for inner in absorbed:
            if inner.placement not in (None, BACKEND_CP):
                out.append(self.diag(
                    "FUS002", Severity.ERROR,
                    f"fusion absorbed hop#{inner.id} ({inner.opcode}) "
                    f"placed on {inner.placement!r}: a placement "
                    "boundary was fused over", hop,
                    hint="plan_fusion must stop a chain at the first "
                         "non-CP producer",
                ))
        for inner in [*absorbed, hop.chain[-1]]:
            if inner.checkpoint or inner.prefetch or inner.async_broadcast:
                flags = ",".join(
                    name for name, on in (
                        ("checkpoint", inner.checkpoint),
                        ("prefetch", inner.prefetch),
                        ("broadcast", inner.async_broadcast),
                    ) if on
                )
                out.append(self.diag(
                    "FUS003", Severity.ERROR,
                    f"fusion absorbed hop#{inner.id} ({inner.opcode}) "
                    f"carrying async/persistence flag(s) [{flags}]: the "
                    "flagged behaviour would silently not execute", hop,
                ))
        return out

    def _check_retention(self, hop: FusedHop,
                         ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        candidates = list(hop.chain)
        if hop.prologue is not None:
            candidates.append(hop.prologue)
        for inner in candidates:
            if retention_candidate(inner, ctx.config):
                out.append(self.diag(
                    "FUS004", Severity.ERROR,
                    f"fusion absorbed hop#{inner.id} ({inner.opcode}) "
                    "whose lineage key the cache policy wants to retain "
                    f"(reuse mode {ctx.config.reuse_mode.value!r} probes "
                    "or caches): the fused interior produces no cache "
                    "entry, forfeiting the reuse the Eq. 2 scoring "
                    "would have rewarded", hop,
                    hint="fusion is only sound under reuse modes "
                         "NONE/TRACE_ONLY; check enable_fusion gating",
                ))
        return out

    def _check_interiors(self, hop: FusedHop,
                         reachable: set[int]) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        interiors = list(hop.chain[:-1])
        if hop.prologue is not None:
            interiors.append(hop.prologue)
        for inner in interiors:
            if inner.id in reachable:
                out.append(self.diag(
                    "FUS005", Severity.WARNING,
                    f"absorbed interior hop#{inner.id} ({inner.opcode}) "
                    "is still reachable in the DAG: its value is "
                    "materialized both standalone and inside the fused "
                    "chain", hop,
                    hint="an interior with >1 consumer must end the "
                         "chain, not sit inside it",
                ))
        return out
