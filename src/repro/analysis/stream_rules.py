"""Instruction-stream analysis passes: soundness, liveness, async races.

Rule catalog (see ``docs/ANALYSIS.md``):

====== ======== ==========================================================
rule   severity finding
====== ======== ==========================================================
LIN001 error    input used before (or without) its definition
LIN002 error    hop linearized more than once
LIN003 error    reachable hop missing from the stream
LIN004 warning  stream instruction unreachable from any root
LIV001 warning  op result never consumed and not a program output
LIV002 warning  dead value holds a GPU allocation (leak until release)
LIV003 info     data leaf loaded but never consumed
ASY001 info     prefetch with zero overlap (consumer is next instruction)
ASY002 warning  prefetched device value also consumed on-device
ASY003 warning  Spark prefetch whose consumers all stay on Spark
ASY004 warning  async broadcast never consumed by a Spark op
====== ======== ==========================================================
"""

from __future__ import annotations

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    register_pass,
)
from repro.analysis.dataflow import StreamDefUse
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.compiler.ir import KIND_DATA, KIND_OP
from repro.core.entry import BACKEND_GPU, BACKEND_SP
from repro.runtime.placement import SPARK_AGG_ACTION


@register_pass
class LinearizationSoundnessPass(AnalysisPass):
    """Re-check a proposed order for def-before-use (rules LIN001-004).

    Validates *any* linearization — depth-first or ``max_parallelize``
    (Algorithm 2) — against the DAG it claims to schedule: every input
    defined before its consumer, no duplicates, and exact coverage of
    the reachable node set.
    """

    name = "linearization-soundness"
    runs_on = "stream"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        assert ctx.order is not None
        du = StreamDefUse(ctx.order, ctx.roots)
        out: list[Diagnostic] = []
        for pos, consumer, inp in du.undefined_uses:
            out.append(self.diag(
                "LIN001", Severity.ERROR,
                f"input hop#{inp.id} ({inp.opcode}) of instruction {pos} "
                "is used before (or without) its definition", consumer,
                hint="the linearizer emitted a consumer before one of "
                     "its inputs; check max_parallelize chain extraction",
            ))
        for hop in du.duplicates:
            out.append(self.diag(
                "LIN002", Severity.ERROR,
                "hop linearized more than once (the instruction would "
                "execute twice)", hop,
            ))
        reachable = {h.id: h for h in ctx.nodes}
        for hid, hop in reachable.items():
            if hid not in du.def_pos:
                out.append(self.diag(
                    "LIN003", Severity.ERROR,
                    "hop reachable from the roots is missing from the "
                    "stream", hop,
                ))
        for hop in ctx.order:
            if hop.id not in reachable:
                out.append(self.diag(
                    "LIN004", Severity.WARNING,
                    "stream instruction unreachable from any root "
                    "(stray work)", hop,
                ))
        return out


@register_pass
class LivenessLeakPass(AnalysisPass):
    """Def-use liveness over the stream (rules LIV001-LIV003).

    The analog of SystemDS's ``rmvar`` discipline: every computed value
    should either be consumed by a later instruction or escape as a
    program output.  Dead values waste compute, pin buffer-pool memory,
    and — on the GPU — hold device allocations until the post-run
    ``release_acquired`` sweep.
    """

    name = "liveness-leak"
    runs_on = "stream"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        assert ctx.order is not None
        du = StreamDefUse(ctx.order, ctx.roots)
        out: list[Diagnostic] = []
        for hop in ctx.order:
            if not du.is_dead(hop):
                continue
            if hop.kind == KIND_OP:
                if hop.placement == BACKEND_GPU:
                    out.append(self.diag(
                        "LIV002", Severity.WARNING,
                        "dead GPU value: computed, never consumed, and "
                        "not a program output — the device allocation "
                        "leaks until the end-of-run release", hop,
                        hint="drop the op from the plan or consume its "
                             "result",
                    ))
                else:
                    out.append(self.diag(
                        "LIV001", Severity.WARNING,
                        "value never consumed and not a program output "
                        "(no rmvar-style cleanup exists for it)", hop,
                    ))
            elif hop.kind == KIND_DATA:
                out.append(self.diag(
                    "LIV003", Severity.INFO,
                    "data leaf loaded but never consumed", hop,
                ))
        return out


@register_pass
class AsyncRacePass(AnalysisPass):
    """Async-operator hazards in the stream (rules ASY001-ASY004, §5.1).

    Prefetch moves a remote result toward the driver while host
    instructions keep executing; broadcast moves a local result toward
    the cluster.  Both only help — and are only safe — when the
    consumers sit on the other side of the boundary and enough work is
    scheduled between issue and use.
    """

    name = "async-race"
    runs_on = "stream"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        assert ctx.order is not None
        du = StreamDefUse(ctx.order, ctx.roots)
        pos_of = du.def_pos
        out: list[Diagnostic] = []
        for hop in ctx.order:
            if hop.kind != KIND_OP:
                continue
            consumers = [
                ctx.order[p] for p in du.uses(hop)
                if p > pos_of.get(hop.id, -1)
            ]
            if hop.prefetch:
                out.extend(self._check_prefetch(hop, consumers, du))
            if hop.async_broadcast:
                out.extend(self._check_broadcast(hop, consumers))
        return out

    def _check_prefetch(self, hop, consumers,
                        du: StreamDefUse) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        first = du.first_use(hop)
        issued = du.def_pos.get(hop.id)
        if (first is not None and issued is not None
                and first == issued + 1):
            out.append(self.diag(
                "ASY001", Severity.INFO,
                "prefetch consumed by the immediately following "
                "instruction: zero overlap with host execution", hop,
                hint="max_parallelize should linearize the remote chain "
                     "earlier to buy overlap",
            ))
        if hop.placement == BACKEND_GPU and any(
            c.placement == BACKEND_GPU for c in consumers
        ):
            out.append(self.diag(
                "ASY002", Severity.WARNING,
                "device value is prefetched (async D2H copy) but also "
                "consumed on-device: the copy races the consuming "
                "kernel unless the stream orders them", hop,
                hint="either drop the prefetch flag or synchronize the "
                     "copy before the device consumer",
            ))
        if (hop.placement == BACKEND_SP
                and hop.opcode not in SPARK_AGG_ACTION
                and consumers
                and all(c.placement == BACKEND_SP for c in consumers)):
            out.append(self.diag(
                "ASY003", Severity.WARNING,
                "Spark result is prefetched to the driver but every "
                "consumer stays on Spark: the transfer is wasted and "
                "the driver copy can go stale", hop,
                hint="prefetch is for cross-backend boundaries (§5.1); "
                     "remove the flag for Spark-internal edges",
            ))
        return out

    def _check_broadcast(self, hop, consumers) -> list[Diagnostic]:
        if any(c.placement == BACKEND_SP for c in consumers):
            return []
        return [self.diag(
            "ASY004", Severity.WARNING,
            "async broadcast issued but no Spark-placed consumer reads "
            "it in this stream: the partitioning work is wasted", hop,
            hint="broadcast placement should only flag CP hops feeding "
                 "Spark consumers",
        )]
