"""Shared diagnostics model of the static IR verifier.

Every analysis pass reports findings as :class:`Diagnostic` records — a
stable rule id, a severity, the offending hop (id + opcode), a message,
and a fix hint — collected into a :class:`DiagnosticReport`.  The model
is deliberately backend- and pass-agnostic so that the CLI, the harness
``--verify-ir`` gate, the tracer sink, and tests all consume the same
records.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so severities can be compared."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} "
                f"(expected one of {[s.label for s in cls]})"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    ``hop`` is the id of the offending :class:`~repro.compiler.ir.Hop`
    (or lineage source) when the finding is attributable to a single
    node; structural findings (e.g. a cycle) may leave it ``None``.
    """

    rule: str  #: stable rule id, e.g. ``DAG003``.
    severity: Severity
    message: str
    passname: str  #: the pass that produced the finding.
    hop: Optional[int] = None
    opcode: Optional[str] = None
    hint: Optional[str] = None  #: suggested fix, when one is known.

    def format(self) -> str:
        where = ""
        if self.hop is not None:
            where = f" at hop#{self.hop}"
            if self.opcode:
                where += f"({self.opcode})"
        elif self.opcode:
            where = f" at {self.opcode}"
        out = f"[{self.severity.label}] {self.rule}{where}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def to_json(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "pass": self.passname,
        }
        if self.hop is not None:
            out["hop"] = self.hop
        if self.opcode is not None:
            out["opcode"] = self.opcode
        if self.hint is not None:
            out["hint"] = self.hint
        return out


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with query helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def counts(self) -> dict[str, int]:
        """severity label -> number of diagnostics."""
        out: dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.severity.label] = out.get(diag.severity.label, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[s.label]} {s.label}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if s.label in counts
        ]
        return ", ".join(parts) if parts else "clean"

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [d.format() for d in self.diagnostics
                 if d.severity >= min_severity]
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            [d.to_json() for d in self.diagnostics], indent=2
        )
