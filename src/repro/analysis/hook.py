"""Ambient diagnostic collection across sessions.

Mirrors ``repro.obs``'s ambient-collector pattern: installing an
:class:`AnalysisCollector` makes every subsequently created
:class:`~repro.core.session.Session` verify each compiled block and
deposit the resulting diagnostics here — without flipping
``config.verify_ir`` (so nothing raises and partially broken programs
still run to completion).  This is what powers
``python -m repro.analysis`` and the harness ``--verify-ir`` flag, both
of which analyze whole workloads made of many sessions.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport


class AnalysisCollector:
    """Accumulates diagnostic reports from every verified block."""

    def __init__(self) -> None:
        self.reports: list[tuple[str, DiagnosticReport]] = []
        self.blocks_verified = 0

    def add(self, report: DiagnosticReport, label: str = "") -> None:
        self.blocks_verified += 1
        if report:
            self.reports.append((label, report))

    def merged(self) -> DiagnosticReport:
        """All diagnostics of all blocks, deduplicated.

        The same hop DAG is often recompiled every loop iteration; a
        finding repeated with identical rule/hop/message is reported
        once.
        """
        seen: set[tuple] = set()
        out = DiagnosticReport()
        for _, report in self.reports:
            for diag in report:
                key = (diag.rule, diag.hop, diag.opcode, diag.message)
                if key in seen:
                    continue
                seen.add(key)
                out.add(diag)
        return out

    def errors(self) -> list[Diagnostic]:
        return self.merged().errors()


_current: Optional[AnalysisCollector] = None


def install_collector(collector: AnalysisCollector) -> None:
    """Make ``collector`` ambient for sessions created from now on."""
    global _current
    _current = collector


def uninstall_collector() -> None:
    global _current
    _current = None


def current_collector() -> Optional[AnalysisCollector]:
    """The ambient collector, if one is installed."""
    return _current


@contextlib.contextmanager
def collecting() -> Iterator[AnalysisCollector]:
    """Scope with an ambient collector installed::

        with analysis.collecting() as found:
            run_workload(...)
        assert not found.errors()
    """
    collector = AnalysisCollector()
    install_collector(collector)
    try:
        yield collector
    finally:
        uninstall_collector()
