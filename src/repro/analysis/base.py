"""Analysis pass protocol and registry.

A pass inspects one compiled program — the post-rewrite HOP DAG and/or
its linearized instruction stream — and reports findings through the
shared diagnostics model.  Passes are registered by name so the pass
manager, the CLI (``--passes``), and the docs' rule catalog all share
one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.config import MemphisConfig
from repro.compiler.ir import Hop


@dataclass
class AnalysisContext:
    """Everything a pass may inspect for one compiled program.

    ``roots`` are the output hops of one basic block after rewrites;
    ``order`` is the proposed linearization (``None`` when only the DAG
    is available, e.g. :meth:`Hop.validate`).  ``nodes`` caches the
    cycle-safe post-order so each pass does not re-walk the DAG, and
    ``cyclic`` short-circuits passes that require an acyclic graph.
    """

    roots: list[Hop]
    order: Optional[list[Hop]] = None
    config: MemphisConfig = field(default_factory=MemphisConfig)
    nodes: list[Hop] = field(default_factory=list)
    cyclic: bool = False


class AnalysisPass:
    """Base class: subclasses override :meth:`run`."""

    #: registry key and diagnostic ``passname``.
    name: str = "abstract"
    #: ``"dag"`` passes need only roots; ``"stream"`` passes are skipped
    #: when no linearized order is available.
    runs_on: str = "dag"
    #: skipped when the DAG contains a cycle (most dataflow is undefined
    #: on cyclic graphs; dag-verify itself reports the cycle).
    requires_acyclic: bool = True

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        raise NotImplementedError

    def diag(self, rule: str, severity: Severity, message: str,
             hop: Optional[Hop] = None,
             hint: Optional[str] = None) -> Diagnostic:
        """Build a diagnostic attributed to this pass (and a hop)."""
        return Diagnostic(
            rule=rule,
            severity=severity,
            message=message,
            passname=self.name,
            hop=hop.id if hop is not None else None,
            opcode=hop.opcode if hop is not None else None,
            hint=hint,
        )


_REGISTRY: dict[str, type[AnalysisPass]] = {}


def register_pass(cls: type[AnalysisPass]) -> type[AnalysisPass]:
    """Class decorator adding a pass to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate analysis pass name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> dict[str, type[AnalysisPass]]:
    """Snapshot of the pass registry (name -> class)."""
    return dict(_REGISTRY)
