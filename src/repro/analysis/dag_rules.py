"""DAG-level analysis passes: structure, placement, lineage determinism.

Rule catalog (see ``docs/ANALYSIS.md``):

====== ======== ==========================================================
rule   severity finding
====== ======== ==========================================================
DAG001 error    cycle in the HOP DAG
DAG002 error    data leaf with no live handle and no bundle
DAG003 error    hop shape inconsistent with ``infer_shape``
DAG004 error    kind/structure illegality (literal with inputs, ...)
DAG005 error    shape inference failed (unknown opcode / bad attrs)
DAG006 warning  non-positive shape dimension
PLC001 error    Spark-placed hop with no Spark physical operator
PLC002 error    hop placed on a disabled backend
PLC003 error    GPU-placed hop with no GPU kernel
PLC004 error    GPU op memory estimate exceeds device memory
PLC005 warning  GPU op memory estimate exceeds operation memory
PLC006 error    prefetch flag on a CP-placed hop (§5.1)
PLC007 error    async-broadcast flag on a non-CP hop (§5.1)
PLC008 warning  broadcast value exceeds the driver broadcast limit
PLC009 error    op left unplaced in a partially placed DAG
PLC010 error    consumed data leaf has no materialized payload
PLC011 error    CP-placed op with no CPU kernel
DET001 error    ``rand`` without a seed attribute (nondeterministic key)
DET002 warning  ``dropout`` without a seed attribute
DET003 error    distinct hops share a lineage key but differ in shape
DET004 info     distinct hops share a lineage key (missed CSE)
DET005 warning  attr stringified with a memory address (unstable key)
DET006 info     non-primitive attr value serialized via ``str()``
====== ======== ==========================================================
"""

from __future__ import annotations

import re

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    register_pass,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.errors import CompilationError
from repro.compiler.ir import (
    KIND_DATA,
    KIND_LITERAL,
    KIND_OP,
    Hop,
    infer_shape,
)
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP

_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]{6,}")


@register_pass
class DagVerifyPass(AnalysisPass):
    """Structural verification of the HOP DAG (rules DAG001-DAG006)."""

    name = "dag-verify"
    runs_on = "dag"
    requires_acyclic = False  # this pass *reports* the cycles

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        if ctx.cyclic:
            out.append(self.diag(
                "DAG001", Severity.ERROR,
                "cycle in the HOP DAG (a rewrite created a back edge); "
                "downstream dataflow passes were skipped",
                hint="inspect the most recent rewrite; hop DAGs must stay "
                     "acyclic for linearization to exist",
            ))
        for hop in ctx.nodes:
            out.extend(self._check_structure(hop))
            if hop.kind == KIND_OP and not ctx.cyclic:
                out.extend(self._check_shape(hop))
        return out

    def _check_structure(self, hop: Hop) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        if hop.kind == KIND_LITERAL:
            if hop.inputs:
                out.append(self.diag(
                    "DAG004", Severity.ERROR,
                    "literal hop has inputs", hop,
                    hint="literals are leaves; use an op hop instead",
                ))
            if hop.shape != (1, 1):
                out.append(self.diag(
                    "DAG004", Severity.ERROR,
                    f"literal hop has non-scalar shape {hop.shape}", hop,
                ))
        elif hop.kind == KIND_DATA:
            if hop.inputs:
                out.append(self.diag(
                    "DAG004", Severity.ERROR,
                    "data leaf has inputs", hop,
                ))
            if hop.bundle is None and hop.handle is None:
                out.append(self.diag(
                    "DAG002", Severity.ERROR,
                    "data leaf has no live handle and no lineage bundle "
                    "(its payload cannot be located at runtime)", hop,
                    hint="keep a reference to the producing handle, or "
                         "attach hop.bundle before compiling",
                ))
        elif hop.kind == KIND_OP:
            if hop.opcode in ("data", "lit"):
                out.append(self.diag(
                    "DAG004", Severity.ERROR,
                    f"op hop with leaf opcode {hop.opcode!r}", hop,
                ))
        else:
            out.append(self.diag(
                "DAG004", Severity.ERROR,
                f"unknown hop kind {hop.kind!r}", hop,
            ))
        if hop.shape[0] <= 0 or hop.shape[1] <= 0:
            out.append(self.diag(
                "DAG006", Severity.WARNING,
                f"non-positive shape {hop.shape}", hop,
                hint="empty intermediates usually indicate inverted "
                     "indexing bounds or a degenerate seq/rand range",
            ))
        return out

    def _check_shape(self, hop: Hop) -> list[Diagnostic]:
        try:
            expected = infer_shape(
                hop.opcode, [h.shape for h in hop.inputs], hop.attrs
            )
        except (CompilationError, KeyError, ValueError, TypeError) as exc:
            return [self.diag(
                "DAG005", Severity.ERROR,
                f"shape inference failed: {exc}", hop,
            )]
        if expected != hop.shape:
            return [self.diag(
                "DAG003", Severity.ERROR,
                f"hop shape {hop.shape} inconsistent with inferred "
                f"{expected}", hop,
                hint="a rewrite mutated inputs or attrs without "
                     "re-deriving the output shape",
            )]
        return []


@register_pass
class PlacementLegalityPass(AnalysisPass):
    """Backend-placement legality (rules PLC001-PLC011, §5.1/§2.1).

    Only meaningful after the placement pass has run; on a fully
    unplaced DAG (e.g. ``Hop.validate()`` before compilation) every
    check is skipped.
    """

    name = "placement-legality"
    runs_on = "dag"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        ops = [h for h in ctx.nodes if h.kind == KIND_OP]
        placed = [h for h in ops if h.placement is not None]
        if not placed:
            return []
        out: list[Diagnostic] = []
        for hop in ops:
            out.extend(self._check_op(hop, ctx))
        for hop in ctx.nodes:
            if hop.kind == KIND_DATA:
                out.extend(self._check_data(hop, ctx))
        return out

    def _check_op(self, hop: Hop, ctx: AnalysisContext) -> list[Diagnostic]:
        from repro.backends.cpu.kernels import supported_opcodes
        from repro.backends.gpu.backend import GPU_OPCODES
        from repro.runtime.placement import spark_supported

        cfg = ctx.config
        out: list[Diagnostic] = []
        if hop.placement is None:
            out.append(self.diag(
                "PLC009", Severity.ERROR,
                "op left unplaced while siblings carry backend tags", hop,
                hint="assign_placements must cover every op reachable "
                     "from the roots",
            ))
            return out
        if hop.placement == BACKEND_SP:
            if not cfg.spark_enabled:
                out.append(self.diag(
                    "PLC002", Severity.ERROR,
                    "hop placed on Spark but spark_enabled is False", hop,
                ))
            if not spark_supported(hop, cfg):
                out.append(self.diag(
                    "PLC001", Severity.ERROR,
                    f"no Spark physical operator for {hop.opcode!r} "
                    f"with input shapes "
                    f"{[h.shape for h in hop.inputs]}", hop,
                    hint="the runtime dispatch would raise "
                         "PlacementError; place this op on CP or add "
                         "a Spark operator",
                ))
        elif hop.placement == BACKEND_GPU:
            if not cfg.gpu_enabled:
                out.append(self.diag(
                    "PLC002", Severity.ERROR,
                    "hop placed on the GPU but gpu_enabled is False", hop,
                ))
            if hop.opcode not in GPU_OPCODES:
                out.append(self.diag(
                    "PLC003", Severity.ERROR,
                    f"no GPU kernel for {hop.opcode!r}", hop,
                ))
            if hop.memory_estimate > cfg.gpu.device_memory:
                out.append(self.diag(
                    "PLC004", Severity.ERROR,
                    f"GPU op needs {hop.memory_estimate} B, device has "
                    f"{cfg.gpu.device_memory} B", hop,
                    hint="the allocation cannot be served even with an "
                         "empty device; place the op on CP or Spark",
                ))
            elif hop.memory_estimate > cfg.cpu.operation_memory_bytes:
                out.append(self.diag(
                    "PLC005", Severity.WARNING,
                    "GPU op memory estimate exceeds the operation-memory "
                    "budget the placement heuristic enforces (§2.1)", hop,
                ))
        elif hop.placement == BACKEND_CP:
            # fused chains carry their own CompiledStep closures instead
            # of a registry kernel; the FUS rules validate them
            if hop.opcode != "fused" \
                    and hop.opcode not in supported_opcodes():
                out.append(self.diag(
                    "PLC011", Severity.ERROR,
                    f"no CPU kernel for {hop.opcode!r}", hop,
                ))
        # asynchronous-operator flags (§5.1): prefetch pulls a *remote*
        # result toward the driver; broadcast pushes a *local* result
        # toward the cluster — each flag is only legal on one side.
        if hop.prefetch and hop.placement == BACKEND_CP:
            out.append(self.diag(
                "PLC006", Severity.ERROR,
                "prefetch flag on a CP-placed hop (nothing to fetch)", hop,
            ))
        if hop.async_broadcast:
            if hop.placement != BACKEND_CP:
                out.append(self.diag(
                    "PLC007", Severity.ERROR,
                    "async-broadcast flag on a non-CP hop (only local "
                    "results are broadcast)", hop,
                ))
            elif hop.output_bytes > cfg.spark.driver_memory // 4:
                out.append(self.diag(
                    "PLC008", Severity.WARNING,
                    f"broadcast value of {hop.output_bytes} B exceeds the "
                    f"driver broadcast limit "
                    f"{cfg.spark.driver_memory // 4} B", hop,
                ))
        return out

    def _check_data(self, hop: Hop,
                    ctx: AnalysisContext) -> list[Diagnostic]:
        if hop.bundle is not None:
            payloads = hop.bundle[1]
        elif hop.handle is not None:
            payloads = hop.handle.payloads
        else:
            return []  # DAG002 already covers the missing handle
        if payloads:
            return []
        return [self.diag(
            "PLC010", Severity.ERROR,
            "data leaf has no materialized payload on any backend", hop,
            hint="evaluate the producing handle (or rebind its payloads) "
                 "before consuming it",
        )]


@register_pass
class LineageDeterminismPass(AnalysisPass):
    """Lineage-key safety (rules DET001-DET006, §3).

    Reuse is only sound when a lineage key *uniquely identifies* an
    intermediate: randomized ops must carry their seed as a data item,
    attr serialization must be stable across runs, and no two distinct
    computations may collide on one key.
    """

    name = "lineage-determinism"
    runs_on = "dag"

    #: opcodes drawing randomness; the seed attr makes them deterministic.
    RANDOMIZED = {"rand": "DET001", "dropout": "DET002"}

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        keys: dict[tuple, Hop] = {}
        key_of: dict[int, tuple] = {}
        for hop in ctx.nodes:  # post-order: inputs are keyed first
            out.extend(self._check_attrs(hop))
            key = self._lineage_key(hop, key_of)
            key_of[hop.id] = key
            other = keys.get(key)
            if other is None:
                keys[key] = hop
            elif other is not hop and not (
                hop.kind == KIND_LITERAL and other.kind == KIND_LITERAL
            ):
                # duplicate literals cost nothing and are never cached
                out.append(self._collision(hop, other))
        return out

    def _check_attrs(self, hop: Hop) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        rule = self.RANDOMIZED.get(hop.opcode)
        if rule is not None and hop.kind == KIND_OP \
                and "seed" not in hop.attrs:
            severity = (
                Severity.ERROR if rule == "DET001" else Severity.WARNING
            )
            out.append(self.diag(
                rule, severity,
                f"randomized op {hop.opcode!r} has no 'seed' attribute: "
                "its lineage key does not identify its value, so a cache "
                "hit would silently replay stale randomness", hop,
                hint="thread an explicit seed through the attrs "
                     "(Session.rand does this automatically)",
            ))
        for name, value in hop.attrs.items():
            if isinstance(value, (int, float, bool, str)):
                continue
            text = str(value)
            if _ADDRESS_RE.search(text):
                out.append(self.diag(
                    "DET005", Severity.WARNING,
                    f"attr {name!r} stringifies with a memory address "
                    f"({text[:60]!r}): the lineage key changes every "
                    "run, defeating reuse and breaking RECOMPUTE", hop,
                    hint="give the attr value a stable __str__ or pass "
                         "a primitive",
                ))
            else:
                out.append(self.diag(
                    "DET006", Severity.INFO,
                    f"attr {name!r} of type {type(value).__name__} is "
                    "serialized via str(); ensure the repr is stable "
                    "across processes", hop,
                ))
        return out

    def _lineage_key(self, hop: Hop, key_of: dict[int, tuple]) -> tuple:
        """Mirror the runtime's lineage-item construction statically.

        Data leaves key on their bound :class:`LineageItem`, whose
        equality is whole-lineage-DAG content equality — exactly what
        the runtime cache hashes on.  ``Session.read`` produces
        ``LineageItem('data', (name,))``, so two reads sharing a name
        compare equal; a leaf rebound after evaluation keeps the full
        lineage of the computation that produced it.  Leaves with no
        lineage fall back to hop identity, which can never collide.
        """
        if hop.kind == KIND_LITERAL:
            return ("lit", hop.value)
        if hop.kind == KIND_DATA:
            lineage = None
            if hop.bundle is not None:
                lineage = hop.bundle[0]
            elif hop.handle is not None:
                lineage = hop.handle.lineage
                if lineage is None and hop.handle.name is not None:
                    return ("data", hop.handle.name)
            if lineage is None:
                return ("data", id(hop))
            return ("data", lineage)
        attr_items = tuple(
            (k, hop.attrs[k] if isinstance(
                hop.attrs[k], (int, float, bool, str)
            ) else str(hop.attrs[k]))
            for k in sorted(hop.attrs)
        )
        return (hop.opcode, attr_items,
                tuple(key_of[h.id] for h in hop.inputs))

    def _collision(self, hop: Hop, other: Hop) -> Diagnostic:
        if hop.shape != other.shape:
            return self.diag(
                "DET003", Severity.ERROR,
                f"lineage key collides with hop#{other.id} "
                f"({other.opcode}) of different shape {other.shape} vs "
                f"{hop.shape}: a cache hit would substitute the wrong "
                "value", hop,
                hint="two data leaves reusing one dataset name for "
                     "different contents is the usual culprit",
            )
        if hop.kind == KIND_DATA:
            return self.diag(
                "DET004", Severity.INFO,
                f"two data leaves (hop#{other.id}, hop#{hop.id}) share "
                "one lineage item; they alias in the lineage cache", hop,
            )
        return self.diag(
            "DET004", Severity.INFO,
            f"duplicate computation: same lineage key as hop#{other.id} "
            f"({other.opcode}); CSE should have merged these", hop,
        )
