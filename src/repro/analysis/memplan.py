"""Static memory planner: compile-time peak footprints per region (MEM rules).

MEMPHIS discovers memory pressure *reactively*: the arbiter evicts and
spills when a reservation fails at runtime.  This pass family bounds a
block's footprint *before* it runs — the idea of "Memory Safe
Computations with XLA Compiler" (PAPERS.md) transplanted onto the HOP
DAG, the way SystemML-style compilers budget intermediates ahead of
execution.  For one linearized instruction stream the planner:

* derives, from ``Hop.output_bytes`` and the stream's def-use chains,
  every byte charge the runtime can make against the six canonical
  :class:`~repro.memory.region.MemoryRegion` ledgers (``CP``, ``DISK``,
  ``CPU_BP``, ``SP_BLOCKS``, ``SP_CACHE``, ``GPU``) — see
  :func:`plan_block` for the charge model and its soundness argument;
* computes per-region liveness intervals and the block's peak resident
  footprint per region (in this runtime a value stays resident until
  the end of its block — GPU pointers are held on the acquired list,
  cache tiers are sticky — so intervals run ``[def, block end]`` and
  the def-use chains' contribution is the *next-use* ordering that
  drives spill-point victim selection);
* emits ``MEM``-family diagnostics when a plan exceeds a region's
  configured capacity, including a pre-scheduled spill/evict point
  computed at compile time (Belady-style: spill the live value with the
  furthest next use at the first position the budget overflows);
* feeds ``Session.evaluate``: the predicted peaks are bulk-reserved via
  :meth:`~repro.memory.arbiter.MemoryArbiter.reserve_plan` before
  execution, and — with ``config.memplan_spills`` — the interpreter
  executes the scheduled device-to-host spills, turning a block that
  would die with ``GpuOutOfMemoryError`` into a feasible one.

Rule catalog (see docs/ANALYSIS.md):

========  ========  =============================================================
rule      severity  meaning
========  ========  =============================================================
MEM001    error     one instruction's working set exceeds its execution
                    region's total capacity — infeasible at any schedule
MEM002    warning/  block liveness peak exceeds an execution region's
          error     capacity; warning when a compile-time spill schedule
                    makes it feasible (hint carries the schedule), error
                    when no schedule exists (``memplan_spills`` off, or
                    every candidate victim is pinned at the overflow point)
MEM003    warning   sticky cache-tier demand (CP / SP_CACHE / SP_BLOCKS)
                    exceeds capacity: eviction churn predicted
MEM004    info      predicted peak crosses the region's pressure watermark
MEM005    warning   planned CP spill volume exceeds the DISK budget: the
                    spill tier will drop the overflow
========  ========  =============================================================

Planning never changes answers: the prediction side is pure analysis,
and the only runtime effect of enabling ``config.memplan`` on a block
that fits its budgets is a net-zero reserve/commit pair.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # layering: runtime types are type-only imports here
    from repro.core.session import Session
    from repro.memory.arbiter import MemoryArbiter

from repro.analysis.base import AnalysisContext, AnalysisPass, register_pass
from repro.analysis.dataflow import StreamDefUse
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.config import MemphisConfig, ReuseMode
from repro.compiler.ir import KIND_DATA, KIND_LITERAL, KIND_OP, Hop
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP
from repro.memory.budget import RegionBudget, region_capacities

#: canonical region names (mirrors ``repro.memory.REGION_*`` without
#: importing the runtime package into the analysis layer).
REGION_CP = "CP"
REGION_DISK = "DISK"
REGION_BUFFERPOOL = "CPU_BP"
REGION_SPARK_STORAGE = "SP_BLOCKS"
REGION_SPARK_CACHE = "SP_CACHE"
REGION_GPU = "GPU"

#: all regions a plan reports, in display order.
PLAN_REGIONS = (REGION_CP, REGION_DISK, REGION_BUFFERPOOL,
                REGION_SPARK_STORAGE, REGION_SPARK_CACHE, REGION_GPU)

#: regions whose residency is *sticky across blocks* in this runtime:
#: cache tiers retain entries between blocks, and the GPU pool keeps
#: ``used`` charged until actual frees (release only moves pointers to
#: the free lists, Fig. 8(b)) — so session-level predictions accumulate.
STICKY_REGIONS = (REGION_CP, REGION_DISK, REGION_SPARK_STORAGE,
                  REGION_SPARK_CACHE, REGION_GPU)

#: default pressure watermark for MEM004 (matches the region default).
PRESSURE_WATERMARK = 0.9


def _align(nbytes: int, alignment: int) -> int:
    """Device allocation granularity (CUDA allocates 512 B granules)."""
    if nbytes < alignment:
        nbytes = alignment
    rem = nbytes % alignment
    return nbytes if rem == 0 else nbytes + (alignment - rem)


@dataclass(frozen=True)
class RegionCharge:
    """One potential byte charge of a block against one region.

    ``start`` is the stream position at which the charge becomes live;
    in this runtime every charge stays resident to the end of its block
    (``end``), so the interval is ``[start, end]``.  ``reason`` tags
    the runtime path that would make the charge (``put``, ``exchange``,
    ``persist``, ``alloc``, ``upload``, ``function``).
    """

    hop: Hop
    region: str
    nbytes: int
    start: int
    end: int
    reason: str


@dataclass(frozen=True)
class SpillPoint:
    """A pre-scheduled spill the planner computed at compile time.

    Before executing the instruction at stream position ``pos``, the
    value produced by (or uploaded for) ``victim`` should be moved off
    ``region`` — for the GPU that is a device-to-host transfer (free if
    a driver-side copy already exists) followed by a release to the
    free lists, which the allocation cascade then reclaims.
    """

    pos: int
    victim: Hop
    region: str
    nbytes: int

    def describe(self) -> str:
        return (f"@{self.pos} spill #{self.victim.id} {self.victim.opcode} "
                f"({self.nbytes} B)")


@dataclass
class BlockMemPlan:
    """Static memory plan of one compiled basic block."""

    order: list[Hop]
    roots: list[Hop]
    #: every charge the block can make, in stream order.
    charges: list[RegionCharge]
    #: region -> raw (unclamped) cumulative byte demand of this block.
    demand: dict[str, int]
    #: region -> predicted peak, clamped at capacity for bounded
    #: regions (a bounded ledger never overcommits, so the clamp is
    #: sound — see :func:`plan_block`).
    peaks: dict[str, int]
    #: configured budgets the plan was checked against.
    budgets: dict[str, RegionBudget]
    #: compile-time GPU spill schedule making an over-peak block
    #: feasible; ``None`` when the block fits (empty schedule) is never
    #: used — ``[]`` means "fits", ``None`` means "no feasible schedule".
    gpu_spills: Optional[list[SpillPoint]] = field(default=None)
    #: diagnostics attached by :func:`plan_diagnostics`.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def admission_demands(self) -> dict[str, int]:
        """Per-region predicted peaks for ``reserve_plan`` admission."""
        return {name: peak for name, peak in self.peaks.items() if peak > 0}

    def executable_spills(self) -> dict[int, list[SpillPoint]]:
        """Stream position -> spills to run before that instruction."""
        out: dict[int, list[SpillPoint]] = {}
        for sp in self.gpu_spills or ():
            out.setdefault(sp.pos, []).append(sp)
        return out

    def charges_by_hop(self) -> dict[int, dict[str, int]]:
        """hop id -> region -> total bytes (for the footprint table)."""
        out: dict[int, dict[str, int]] = {}
        for charge in self.charges:
            per = out.setdefault(charge.hop.id, {})
            per[charge.region] = per.get(charge.region, 0) + charge.nbytes
        return out


def _put_enabled(mode: ReuseMode) -> bool:
    """Mirror of ``Interpreter._put_enabled`` (kept in sync by tests)."""
    return mode in (ReuseMode.FULL, ReuseMode.LOCAL_ONLY,
                    ReuseMode.OPERATOR_ONLY)


def plan_block(roots: list[Hop], order: list[Hop],
               config: MemphisConfig) -> BlockMemPlan:
    """Derive the per-region charge set and peak footprint of one block.

    The charge model is a *sound upper bound* on the region ledgers: it
    enumerates every code path that charges a region and bounds each
    charge by ``Hop.output_bytes`` (the dense worst-case size, which
    dominates the runtime ``value.nbytes``):

    * ``CP`` — the PUT stage offers every driver-side result to the
      lineage cache, and collected / device-to-host / future exchange
      copies ride along under the same key: with puts enabled, every op
      hop is charged (``LOCAL_ONLY`` restricts to CP-placed hops, the
      LIMA contract), plus non-CP-resident data leaves that a consumer
      may collect; function-level reuse (FULL / COARSE_ONLY) re-puts
      the block outputs under a distinct function key, covered by one
      root-output allowance per block.
    * ``DISK`` — receives only CP spills; each entry is on disk at most
      once concurrently, so CP demand bounds it (0 when spilling off).
    * ``CPU_BP`` — the interpreter executes CP ops directly on driver
      memory without engaging the buffer pool, so a block charges it
      nothing (the region exists for standalone tools).
    * ``SP_BLOCKS`` — only *persisted* memory-resident partitions are
      charged (shuffles never are): every SP-placed op hop's output is
      an upper bound over cache/checkpoint/explicit persists.
    * ``SP_CACHE`` — ``cache_rdd`` charges SP payloads of SP-placed put
      hops when multi-backend puts are on.
    * ``GPU`` — one aligned allocation per GPU-placed op output plus
      one per host-to-device upload of a non-resident input, matching
      the allocator's 512 B granularity.

    Bounded regions never overcommit (``used + reserved <= capacity``
    is a ledger invariant), so the predicted peak of a bounded region
    is clamped at its capacity — making *predicted >= observed* hold
    even when the raw demand estimate exceeds what the runtime can
    physically hold.
    """
    budgets = region_capacities(config)
    mode = config.reuse_mode
    put_on = _put_enabled(mode)
    multi = put_on and mode is not ReuseMode.LOCAL_ONLY
    func_reuse = mode in (ReuseMode.FULL, ReuseMode.COARSE_ONLY)
    alignment = config.gpu.alignment
    end = len(order) - 1
    charges: list[RegionCharge] = []
    on_device: set[int] = set()

    for pos, hop in enumerate(order):
        if hop.kind == KIND_LITERAL or hop.fused:
            continue
        if hop.kind == KIND_DATA:
            if multi and hop.placement != BACKEND_CP:
                # a non-driver-resident leaf a consumer collects is
                # cached by the exchange ride-along (action reuse)
                charges.append(RegionCharge(
                    hop, REGION_CP, hop.output_bytes, pos, end, "exchange"))
            continue
        out = hop.output_bytes
        placement = hop.placement
        if put_on and (multi or placement == BACKEND_CP):
            charges.append(RegionCharge(
                hop, REGION_CP, out, pos, end, "put"))
        if placement == BACKEND_SP:
            charges.append(RegionCharge(
                hop, REGION_SPARK_STORAGE, out, pos, end, "persist"))
            if multi:
                charges.append(RegionCharge(
                    hop, REGION_SPARK_CACHE, out, pos, end, "put"))
        elif placement == BACKEND_GPU:
            charges.append(RegionCharge(
                hop, REGION_GPU, _align(out, alignment), pos, end, "alloc"))
            on_device.add(hop.id)
            for inp in hop.inputs:
                if (inp.kind == KIND_LITERAL or inp.id in on_device
                        or inp.placement == BACKEND_GPU):
                    continue
                on_device.add(inp.id)
                charges.append(RegionCharge(
                    inp, REGION_GPU, _align(inp.output_bytes, alignment),
                    pos, end, "upload"))
    if func_reuse and roots:
        # function-level reuse snapshots the block outputs under a
        # separate function key, re-charging their bytes once per block
        for root in roots:
            charges.append(RegionCharge(
                root, REGION_CP, root.output_bytes, end, end, "function"))

    demand = {name: 0 for name in PLAN_REGIONS}
    for charge in charges:
        demand[charge.region] += charge.nbytes
    if config.cache.spill_to_disk:
        # DISK receives only CP spills, each entry at most once
        demand[REGION_DISK] = demand[REGION_CP]

    peaks: dict[str, int] = {}
    for name in PLAN_REGIONS:
        budget = budgets[name]
        raw = demand[name]
        peaks[name] = raw if budget.unlimited else min(raw, budget.capacity)

    return BlockMemPlan(order=order, roots=roots, charges=charges,
                        demand=demand, peaks=peaks, budgets=budgets)


# ------------------------------------------------------------- spill scheduling

def schedule_gpu_spills(plan: BlockMemPlan,
                        config: MemphisConfig) -> Optional[list[SpillPoint]]:
    """Compute a compile-time spill schedule fitting the GPU budget.

    Sweeps the stream in order, tracking device-resident charges.  At
    the first position the block's resident bytes would exceed device
    capacity, it spills the live value with the *furthest next use*
    (Belady's choice; values with no further use win outright) that is
    not an operand of the pending instruction.  Returns ``[]`` when the
    block fits without spilling and ``None`` when no schedule exists —
    a single instruction's working set exceeds capacity, or every
    candidate victim is pinned at the overflow point.
    """
    capacity = plan.budgets[REGION_GPU].capacity
    gpu_charges = [c for c in plan.charges if c.region == REGION_GPU]
    if not gpu_charges:
        return []
    du = StreamDefUse(plan.order, plan.roots)
    by_pos: dict[int, list[RegionCharge]] = {}
    for charge in gpu_charges:
        by_pos.setdefault(charge.start, []).append(charge)

    def next_use(hop: Hop, pos: int) -> Optional[int]:
        for use in du.uses(hop):
            if use > pos:
                return use
        return None

    live: dict[int, RegionCharge] = {}
    used = 0
    spills: list[SpillPoint] = []
    for pos in sorted(by_pos):
        incoming = by_pos[pos]
        needed = sum(c.nbytes for c in incoming)
        pinned = {c.hop.id for c in incoming}
        pinned.update(inp.id for inp in plan.order[pos].inputs)
        while used + needed > capacity:
            victim: Optional[RegionCharge] = None
            victim_next: Optional[int] = None
            for charge in live.values():
                if charge.hop.id in pinned:
                    continue
                nxt = next_use(charge.hop, pos)
                if victim is None:
                    victim, victim_next = charge, nxt
                elif nxt is None and victim_next is not None:
                    victim, victim_next = charge, nxt
                elif (nxt is not None and victim_next is not None
                      and nxt > victim_next):
                    victim, victim_next = charge, nxt
            if victim is None:
                return None
            spills.append(SpillPoint(pos, victim.hop, REGION_GPU,
                                     victim.nbytes))
            used -= victim.nbytes
            del live[victim.hop.id]
        for charge in incoming:
            live[charge.hop.id] = charge
            used += charge.nbytes
    return spills


# ----------------------------------------------------------------- diagnostics

def plan_diagnostics(plan: BlockMemPlan, config: MemphisConfig,
                     owner: Optional[AnalysisPass] = None
                     ) -> list[Diagnostic]:
    """Check a plan against its budgets; attaches findings to the plan.

    Shared by the registered :class:`MemoryPlanPass` (verification
    pipeline / CLI) and ``Session.evaluate``'s ``memplan_enforce`` gate
    so both see identical findings.  Also computes and stores the GPU
    spill schedule on the plan when one is needed and allowed.
    """
    owner = owner or _DETACHED_PASS
    out: list[Diagnostic] = []
    budgets = plan.budgets
    alignment = config.gpu.alignment

    # MEM001: a single instruction's working set exceeds its execution
    # region's total capacity — no schedule can make that feasible.
    gpu_cap = budgets[REGION_GPU].capacity
    sp_cap = budgets[REGION_SPARK_STORAGE].capacity
    for pos, hop in enumerate(plan.order):
        if hop.kind != KIND_OP or hop.fused:
            continue
        if hop.placement == BACKEND_GPU:
            working = _align(hop.output_bytes, alignment) + sum(
                _align(inp.output_bytes, alignment)
                for inp in hop.inputs if inp.kind != KIND_LITERAL
            )
            if working > gpu_cap:
                out.append(owner.diag(
                    "MEM001", Severity.ERROR,
                    f"GPU working set of @{pos} is {working} B, above the "
                    f"device capacity of {gpu_cap} B",
                    hop,
                    hint="no spill schedule can fit this instruction; "
                         "shrink the operands or disable the GPU backend",
                ))
        elif hop.placement == BACKEND_SP:
            working = hop.output_bytes + sum(
                inp.output_bytes for inp in hop.inputs
                if inp.kind != KIND_LITERAL
            )
            if working > sp_cap:
                out.append(owner.diag(
                    "MEM001", Severity.ERROR,
                    f"Spark working set of @{pos} is {working} B, above "
                    f"the aggregate storage memory of {sp_cap} B",
                    hop,
                    hint="raise spark.num_executors/executor_memory or "
                         "repartition the pipeline",
                ))

    # MEM002: execution-region liveness peak over capacity.  The GPU is
    # the only execution region this runtime can overflow mid-block
    # (driver ops run on unpooled host memory; the block manager spills
    # partitions to executor disk transparently).
    gpu_demand = plan.demand[REGION_GPU]
    if gpu_demand > gpu_cap:
        schedule = schedule_gpu_spills(plan, config) \
            if config.memplan_spills else None
        plan.gpu_spills = schedule
        if schedule:
            out.append(owner.diag(
                "MEM002", Severity.WARNING,
                f"GPU resident peak of {gpu_demand} B exceeds the device "
                f"capacity of {gpu_cap} B; feasible with "
                f"{len(schedule)} pre-scheduled spill(s)",
                plan.order[schedule[0].pos],
                hint="planned spills: " + "; ".join(
                    sp.describe() for sp in schedule),
            ))
        else:
            reason = ("memplan_spills is disabled"
                      if not config.memplan_spills
                      else "every candidate victim is pinned at the "
                           "overflow point")
            out.append(owner.diag(
                "MEM002", Severity.ERROR,
                f"GPU resident peak of {gpu_demand} B exceeds the device "
                f"capacity of {gpu_cap} B and no spill schedule exists "
                f"({reason})",
                None,
                hint="enable memplan_spills, shrink the block, or raise "
                     "gpu.device_memory",
            ))
    else:
        plan.gpu_spills = []

    # MEM003: sticky cache-tier demand over capacity — the runtime
    # stays correct (eviction/spill) but churns; flag it for tuning.
    for name, label, hint in (
        (REGION_CP, "driver lineage cache",
         "raise cache.driver_cache_bytes or lower the reuse mode"),
        (REGION_SPARK_CACHE, "Spark reuse cache",
         "raise cache.spark_cache_fraction or executor memory"),
        (REGION_SPARK_STORAGE, "Spark storage memory",
         "partitions will spill to executor disk; raise executor memory"),
    ):
        budget = budgets[name]
        if budget.unlimited:
            continue
        if plan.demand[name] > budget.capacity:
            extra = ""
            if name == REGION_CP and config.cache.spill_to_disk:
                disk = budgets[REGION_DISK]
                volume = min(plan.demand[name] - budget.capacity,
                             disk.capacity)
                extra = (f"; up to {volume} B will spill to the disk tier")
            out.append(owner.diag(
                "MEM003", Severity.WARNING,
                f"{label} demand of {plan.demand[name]} B exceeds its "
                f"capacity of {budget.capacity} B: eviction churn "
                f"predicted{extra}",
                None, hint=hint,
            ))

    # MEM005: planned CP spill volume over the DISK budget.
    disk_budget = budgets[REGION_DISK]
    if (config.cache.spill_to_disk
            and plan.demand[REGION_DISK] > disk_budget.capacity):
        out.append(owner.diag(
            "MEM005", Severity.WARNING,
            f"worst-case CP spill volume of {plan.demand[REGION_DISK]} B "
            f"exceeds the disk tier budget of {disk_budget.capacity} B: "
            "the spill tier will drop the overflow",
            None, hint="raise cache.disk_cache_bytes",
        ))

    # MEM004: watermark pressure — fires only in the band between the
    # watermark and the capacity, so it never overlaps MEM002/MEM003
    # (which require demand strictly above capacity).
    for name in PLAN_REGIONS:
        budget = budgets[name]
        if budget.unlimited or budget.capacity <= 0:
            continue
        demand = plan.demand[name]
        if (demand <= budget.capacity
                and demand >= PRESSURE_WATERMARK * budget.capacity):
            out.append(owner.diag(
                "MEM004", Severity.INFO,
                f"{name} predicted peak of {demand} B is within "
                f"{100 - int(PRESSURE_WATERMARK * 100)}% of its "
                f"{budget.capacity} B capacity",
                None,
            ))
    plan.diagnostics = out
    return out


@register_pass
class MemoryPlanPass(AnalysisPass):
    """Static memory planner: peak footprint vs region budgets (MEM001+).

    Derives every byte charge one block can make against the six
    memory regions, checks single-instruction working sets and block
    liveness peaks against the configured capacities, and — when a
    region overflows — computes the compile-time spill schedule that
    would make the block feasible (see module docstring for the rule
    catalog and ``docs/ANALYSIS.md`` for examples).
    """

    name = "memory-plan"
    runs_on = "stream"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        assert ctx.order is not None
        plan = plan_block(ctx.roots, ctx.order, ctx.config)
        return plan_diagnostics(plan, ctx.config, self)


class _Detached(AnalysisPass):
    """Diagnostic owner when planning runs outside the pass manager."""

    name = "memory-plan"
    runs_on = "stream"


_DETACHED_PASS = _Detached()


# ------------------------------------------------------- session-level planner

class SessionMemPlanner:
    """Accumulates one session's predicted peaks across its blocks.

    Cache tiers and the GPU pool are sticky across blocks (see
    ``STICKY_REGIONS``), so the session-level predicted peak of a
    region is the capacity-clamped *cumulative* demand of every block
    planned so far.  ``observe`` records the runtime's actual
    ``MemoryRegion.peak_used`` watermarks after each block, making
    predicted-vs-observed comparable in one place
    (``Session.explain(level="runtime")``, the ``--memplan`` CLI, and
    the upper-bound tests).
    """

    def __init__(self, config: MemphisConfig) -> None:
        self.config = config
        self.budgets = region_capacities(config)
        self.blocks = 0
        #: raw cumulative demand per region across planned blocks.
        self.cumulative: dict[str, int] = {n: 0 for n in PLAN_REGIONS}
        #: capacity-clamped session-level predicted peak per region.
        self.predicted: dict[str, int] = {n: 0 for n in PLAN_REGIONS}
        #: max observed ``peak_used`` per region across ``observe`` calls.
        self.observed: dict[str, int] = {n: 0 for n in PLAN_REGIONS}
        self.last_plan: Optional[BlockMemPlan] = None

    def plan(self, roots: list[Hop], order: list[Hop]) -> BlockMemPlan:
        """Plan one block and fold its demand into the session totals."""
        plan = plan_block(roots, order, self.config)
        plan_diagnostics(plan, self.config)
        self.absorb(plan)
        return plan

    def absorb(self, plan: BlockMemPlan) -> None:
        self.blocks += 1
        self.last_plan = plan
        for name in PLAN_REGIONS:
            if name in STICKY_REGIONS:
                self.cumulative[name] += plan.demand[name]
            else:
                self.cumulative[name] = max(self.cumulative[name],
                                            plan.demand[name])
            budget = self.budgets[name]
            raw = self.cumulative[name]
            self.predicted[name] = (
                raw if budget.unlimited else min(raw, budget.capacity)
            )

    def observe(self, arbiter: "MemoryArbiter") -> None:
        """Record the runtime's per-region peak watermarks."""
        for snap in arbiter.snapshot():
            name = snap["region"]
            if name in self.observed:
                self.observed[name] = max(self.observed[name],
                                          int(snap["peak_used"]))

    def check_bounds(self) -> list[tuple[str, int, int, bool]]:
        """``(region, predicted, observed, ok)`` rows; ok = upper bound."""
        return [
            (name, self.predicted[name], self.observed[name],
             self.predicted[name] >= self.observed[name])
            for name in PLAN_REGIONS
        ]


# ------------------------------------------------------------ ambient collector

class MemplanCollector:
    """Ambient collector activating planning for every session in scope.

    Mirrors the ``AnalysisCollector`` pattern: installing one makes
    every subsequently constructed :class:`~repro.core.session.Session`
    plan its blocks (as if ``config.memplan`` were set) and register
    its :class:`SessionMemPlanner` here, keyed by a session label, so
    tools can compare predicted vs observed peaks across a whole
    workload run.
    """

    def __init__(self) -> None:
        #: (label, planner, weak session ref) per registered session.
        self.entries: list[tuple[str, SessionMemPlanner, object]] = []

    def register(self, session: "Session",
                 planner: SessionMemPlanner) -> None:
        label = f"{session.config.reuse_mode.value}#{len(self.entries)}"
        self.entries.append((label, planner, weakref.ref(session)))

    def planners(self) -> list[tuple[str, SessionMemPlanner]]:
        return [(label, planner) for label, planner, _ in self.entries]

    def check_bounds(self) -> list[tuple[str, str, int, int, bool]]:
        """Flattened ``(label, region, predicted, observed, ok)`` rows."""
        out: list[tuple[str, str, int, int, bool]] = []
        for label, planner, _ in self.entries:
            for name, pred, obs, ok in planner.check_bounds():
                out.append((label, name, pred, obs, ok))
        return out


_COLLECTOR: Optional[MemplanCollector] = None


def install_memplan_collector(collector: MemplanCollector) -> None:
    global _COLLECTOR
    _COLLECTOR = collector


def uninstall_memplan_collector() -> None:
    global _COLLECTOR
    _COLLECTOR = None


def current_memplan_collector() -> Optional[MemplanCollector]:
    return _COLLECTOR


@contextmanager
def planning() -> Iterator[MemplanCollector]:
    """Ambient scope: sessions created inside plan every block."""
    collector = MemplanCollector()
    install_memplan_collector(collector)
    try:
        yield collector
    finally:
        uninstall_memplan_collector()


# -------------------------------------------------------------------- rendering

def _fmt_bytes(nbytes: int) -> str:
    size = float(nbytes)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            return f"{size:.1f} {unit}" if unit != "B" \
                else f"{int(size)} B"
        size /= 1024.0
    return f"{int(nbytes)} B"


def format_footprint_table(plan: BlockMemPlan) -> str:
    """Per-hop / per-region footprint table of one block's plan."""
    by_hop = plan.charges_by_hop()
    regions = [n for n in PLAN_REGIONS if plan.demand[n] > 0]
    if not regions or not by_hop:
        return "memory plan: no region charges in this block"
    header = f"  {'hop':>5}  {'opcode':<12}" + "".join(
        f"{name:>12}" for name in regions)
    lines = ["memory plan (per-hop charges, worst case):", header]
    for hop in plan.order:
        per = by_hop.get(hop.id)
        if not per:
            continue
        cells = "".join(
            f"{_fmt_bytes(per[name]):>12}" if name in per else f"{'-':>12}"
            for name in regions
        )
        lines.append(f"  #{hop.id:>4}  {hop.opcode:<12}{cells}")
    total = "".join(f"{_fmt_bytes(plan.demand[n]):>12}" for n in regions)
    peak = "".join(f"{_fmt_bytes(plan.peaks[n]):>12}" for n in regions)
    cap = "".join(
        ("unlimited".rjust(12) if plan.budgets[n].unlimited
         else f"{_fmt_bytes(plan.budgets[n].capacity):>12}")
        for n in regions
    )
    lines.append(f"  {'':>5}  {'demand':<12}{total}")
    lines.append(f"  {'':>5}  {'peak':<12}{peak}")
    lines.append(f"  {'':>5}  {'capacity':<12}{cap}")
    if plan.gpu_spills:
        lines.append("  pre-scheduled spills: "
                     + "; ".join(sp.describe() for sp in plan.gpu_spills))
    return "\n".join(lines)


def format_region_peaks(predicted: Optional[dict[str, int]],
                        observed: Optional[dict[str, int]] = None,
                        budgets: Optional[dict[str, RegionBudget]] = None
                        ) -> str:
    """Predicted (and optionally observed) peak table per region."""
    lines = ["region peaks:"]
    header = f"  {'region':<10}"
    if predicted is not None:
        header += f"{'predicted':>14}"
    if observed is not None:
        header += f"{'observed':>14}"
        if predicted is not None:
            header += f"{'bound':>8}"
    if budgets is not None:
        header += f"{'capacity':>14}"
    lines.append(header)
    for name in PLAN_REGIONS:
        row = f"  {name:<10}"
        if predicted is not None:
            row += f"{_fmt_bytes(predicted.get(name, 0)):>14}"
        if observed is not None:
            obs = observed.get(name, 0)
            row += f"{_fmt_bytes(obs):>14}"
            if predicted is not None:
                ok = predicted.get(name, 0) >= obs
                row += f"{'ok' if ok else 'LOW':>8}"
        if budgets is not None:
            budget = budgets.get(name) if budgets else None
            if budget is not None:
                row += ("unlimited".rjust(14) if budget.unlimited
                        else f"{_fmt_bytes(budget.capacity):>14}")
        lines.append(row)
    return "\n".join(lines)
