"""The pass manager: runs analysis passes over one compiled program.

:func:`analyze` is the pure core — DAG + stream in, diagnostics out.
:func:`verify_ir` is the compiler-pipeline entry point wired into
``Session.evaluate`` behind ``config.verify_ir``: it additionally emits
every diagnostic as a structured trace event (``analysis/diagnostic``),
bumps the stats counters, feeds an ambient collector when one is
installed, and raises :class:`~repro.common.errors.VerificationError`
on error-severity findings.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

# importing the rule modules populates the pass registry
import repro.analysis.dag_rules  # noqa: F401
import repro.analysis.fusion_rules  # noqa: F401
import repro.analysis.memplan  # noqa: F401
import repro.analysis.stream_rules  # noqa: F401
from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    registered_passes,
)
from repro.analysis.dataflow import walk_dag
from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.common.config import MemphisConfig
from repro.common.errors import VerificationError
from repro.compiler.ir import Hop

#: canonical pass order: structural checks first, then placement, then
#: the stream analyses, then cross-cutting determinism.
DEFAULT_PASS_ORDER = (
    "dag-verify",
    "placement-legality",
    "linearization-soundness",
    "liveness-leak",
    "async-race",
    "lineage-determinism",
    "fusion-legality",
    "memory-plan",
)

#: stats counters bumped by :func:`verify_ir`.
IR_PASSES_RUN = "analysis/passes_run"
IR_DIAGNOSTICS = "analysis/diagnostics"
IR_ERRORS = "analysis/errors"


class PassManager:
    """Runs a configured subset of the registered passes in order."""

    def __init__(self, passes: Optional[Sequence[str]] = None) -> None:
        registry = registered_passes()
        names = list(passes) if passes is not None else [
            n for n in DEFAULT_PASS_ORDER if n in registry
        ]
        unknown = [n for n in names if n not in registry]
        if unknown:
            raise ValueError(
                f"unknown analysis passes: {unknown} "
                f"(registered: {sorted(registry)})"
            )
        self.passes: list[AnalysisPass] = [registry[n]() for n in names]

    def run(self, roots: Sequence[Hop],
            order: Optional[Sequence[Hop]] = None,
            config: Optional[MemphisConfig] = None) -> DiagnosticReport:
        """Analyze one compiled program; returns all diagnostics."""
        roots = list(roots)
        nodes, back_edges = walk_dag(roots)
        ctx = AnalysisContext(
            roots=roots,
            order=list(order) if order is not None else None,
            config=config or MemphisConfig(),
            nodes=nodes,
            cyclic=bool(back_edges),
        )
        report = DiagnosticReport()
        for pass_ in self.passes:
            if pass_.runs_on == "stream" and ctx.order is None:
                continue
            if pass_.requires_acyclic and ctx.cyclic:
                continue
            report.extend(pass_.run(ctx))
        return report


def analyze(roots: Sequence[Hop],
            order: Optional[Sequence[Hop]] = None,
            config: Optional[MemphisConfig] = None,
            passes: Optional[Sequence[str]] = None) -> DiagnosticReport:
    """Run the (default) pass pipeline over one compiled program."""
    return PassManager(passes).run(roots, order, config)


def verify_ir(roots: Sequence[Hop], order: Sequence[Hop],
              config: MemphisConfig, tracer=None, stats=None,
              collector=None, raise_on_error: bool = False,
              label: str = "") -> DiagnosticReport:
    """Compiler-pipeline verification gate (``config.verify_ir``).

    Runs the full pipeline, publishes diagnostics to the tracer / stats
    / ambient collector, and — when ``raise_on_error`` — aborts the
    block with a :class:`VerificationError` carrying the report.
    """
    report = analyze(roots, order, config)
    if stats is not None:
        stats.inc(IR_PASSES_RUN, len(DEFAULT_PASS_ORDER))
        if report:
            stats.inc(IR_DIAGNOSTICS, len(report))
        if report.errors():
            stats.inc(IR_ERRORS, len(report.errors()))
    if tracer is not None and getattr(tracer, "enabled", False):
        from repro.obs.events import EV_IR_DIAG, LANE_CP

        for diag in report:
            tracer.instant(
                EV_IR_DIAG, LANE_CP,
                rule=diag.rule, severity=diag.severity.label,
                hop=diag.hop, opcode=diag.opcode,
                message=diag.message,
            )
    if collector is not None:
        collector.add(report, label=label)
    errors = report.errors()
    if raise_on_error and errors:
        raise VerificationError(
            f"IR verification failed with {len(errors)} error(s):\n"
            + "\n".join(d.format() for d in errors),
            report=report,
        )
    return report


def check_linearization(roots: Iterable[Hop],
                        order: Sequence[Hop]) -> list:
    """Soundness-check one proposed linearization (test helper).

    Returns the error-severity diagnostics of the
    linearization-soundness pass — empty iff ``order`` is a valid,
    duplicate-free, complete topological order of the DAGs under
    ``roots``.
    """
    report = analyze(list(roots), order,
                     passes=("linearization-soundness",))
    return report.at_least(Severity.ERROR)
