"""CLI: run registered workloads under the IR verifier and report.

Usage::

    python -m repro.analysis                  # analyze every target
    python -m repro.analysis hcv pnmf         # selected targets
    python -m repro.analysis --list           # list targets
    python -m repro.analysis --list-passes    # list analysis passes
    python -m repro.analysis --min-severity info --format json

Exit status is 1 iff any error-severity diagnostic was produced (the
CI lint gate runs this over all targets).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.diagnostics import Severity
from repro.analysis.hook import collecting
from repro.analysis.manager import DEFAULT_PASS_ORDER


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify the IR of compiled workload "
                    "programs (DAG structure, placement legality, "
                    "linearization soundness, liveness, async races, "
                    "lineage determinism).",
    )
    parser.add_argument("targets", nargs="*",
                        help="target names (default: all registered)")
    parser.add_argument("--list", action="store_true",
                        help="list available targets and exit")
    parser.add_argument("--list-passes", action="store_true",
                        help="list analysis passes in pipeline order "
                             "and exit")
    parser.add_argument("--min-severity", default="warning",
                        choices=["info", "warning", "error"],
                        help="lowest severity to print individually "
                             "(default: warning; counts always shown)")
    parser.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="output format (default: text)")
    parser.add_argument("--memplan", action="store_true",
                        help="also run the static memory planner over "
                             "every session each target creates and "
                             "print its per-region predicted-vs-"
                             "observed peak table")
    args = parser.parse_args(argv)

    if args.list_passes:
        from repro.analysis.base import registered_passes

        passes = registered_passes()
        for name in DEFAULT_PASS_ORDER:
            cls = passes[name]
            print(f"{name:28s} [{cls.runs_on}]  {cls.__doc__.splitlines()[0]}")
        return 0

    # Imported lazily: pulls in the workload package -> Session.
    from repro.analysis import targets as target_registry

    if args.list:
        for name, (desc, _) in target_registry.TARGETS.items():
            print(f"{name:10s} {desc}")
        return 0

    try:
        selected = target_registry.resolve(args.targets)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    min_sev = Severity.parse(args.min_severity)
    results = []
    total_errors = 0
    for name, thunk in selected.items():
        start = time.perf_counter()
        memplan = None
        with collecting() as collector:
            if args.memplan:
                from repro.analysis.memplan import planning

                with planning() as memplan:
                    thunk()
            else:
                thunk()
        elapsed = time.perf_counter() - start
        report = collector.merged()
        total_errors += len(report.errors())
        results.append((name, collector, report, elapsed, memplan))

    if args.format == "json":
        payload = {
            "targets": {
                name: {
                    "blocks_verified": collector.blocks_verified,
                    "counts": report.counts(),
                    "diagnostics": [d.to_json() for d in report],
                    **({"memplan": [
                        {"session": label, "region": region,
                         "predicted": pred, "observed": obs, "ok": ok}
                        for label, region, pred, obs, ok
                        in memplan.check_bounds()
                    ]} if memplan is not None else {}),
                }
                for name, collector, report, _, memplan in results
            },
            "total_errors": total_errors,
        }
        print(json.dumps(payload, indent=2))
        return 1 if total_errors else 0

    for name, collector, report, elapsed, memplan in results:
        print(f"== {name}: {collector.blocks_verified} block(s) verified "
              f"in {elapsed:.2f}s -- {report.summary()}")
        shown = report.format(min_severity=min_sev)
        if shown:
            print(shown)
        hidden = len(report) - len(report.at_least(min_sev))
        if hidden:
            print(f"   ({hidden} finding(s) below "
                  f"{min_sev.label!r} hidden; use --min-severity info)")
        if memplan is not None:
            from repro.analysis.memplan import format_region_peaks

            for label, planner in memplan.planners():
                peaks = format_region_peaks(planner.predicted,
                                            planner.observed,
                                            planner.budgets)
                print(f"   session {label} ({planner.blocks} block(s)) "
                      + peaks.replace("\n", "\n   "))
    print(f"-- {len(results)} target(s), "
          f"{sum(c for _, _, r, _, _ in results for c in [len(r)])} "
          f"finding(s), {total_errors} error(s)")
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main())
