"""Registry of analyzable workload targets for the CLI.

Each target is a small, fast configuration of one of the paper's
workloads (§6).  The CLI runs a target under an ambient
:class:`~repro.analysis.hook.AnalysisCollector`, so every compiled
block that flows through :meth:`Session.evaluate` is verified by the
full pass pipeline and its diagnostics are gathered for the report.

This module imports the workload package (which pulls in
``repro.core.session``) and must therefore only be imported from entry
points (``repro.analysis.__main__``, ``scripts/``), never from the
analysis core modules.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.clean import run_clean
from repro.workloads.en2de import run_en2de
from repro.workloads.hband import run_hband
from repro.workloads.hcv import run_hcv
from repro.workloads.hdrop import run_hdrop
from repro.workloads.micro import run_fig2c, run_reuse_overhead
from repro.workloads.pnmf_wl import run_pnmf
from repro.workloads.tlvis import run_tlvis

#: name -> (description, thunk).  Thunks use deliberately small
#: problem sizes: the analyzer checks compiled IR, not performance, so
#: each target only needs to exercise its workload's DAG shapes.
TARGETS: dict[str, tuple[str, Callable[[], object]]] = {
    "hcv": (
        "hyper-parameter tuned cross-validation (lmCG, MPH)",
        lambda: run_hcv("MPH", 5.0),
    ),
    "pnmf": (
        "Poisson non-negative matrix factorization (MPH)",
        lambda: run_pnmf("MPH", 5),
    ),
    "hband": (
        "hyper-band hyper-parameter search (MPH)",
        lambda: run_hband("MPH", 5.0),
    ),
    "clean": (
        "data-cleaning pipeline enumeration (MPH)",
        lambda: run_clean("MPH", 12),
    ),
    "hdrop": (
        "MLP grid search with dropout (MPH, 1 epoch)",
        lambda: run_hdrop("MPH", epochs=1),
    ),
    "en2de": (
        "transformer encoder inference (MPH)",
        lambda: run_en2de("MPH"),
    ),
    "tlvis": (
        "transfer-learning feature extraction (MPH)",
        lambda: run_tlvis("MPH", num_images=2000),
    ),
    "micro": (
        "microbenchmarks: fig2c chain reuse + reuse-overhead sweep",
        lambda: (
            run_fig2c("MEMPHIS", num_chains=20),
            run_reuse_overhead("Reuse", 8 * 1024, iterations=10),
        ),
    ),
}


def target_names() -> list[str]:
    return list(TARGETS)


def resolve(names: list[str]) -> dict[str, Callable[[], object]]:
    """Map requested target names to thunks; unknown names raise."""
    if not names:
        return {name: thunk for name, (_, thunk) in TARGETS.items()}
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        raise KeyError(
            f"unknown analysis target(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(TARGETS)}"
        )
    return {name: TARGETS[name][1] for name in names}
