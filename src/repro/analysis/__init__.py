"""Static IR verification & dataflow linting for compiled programs.

``repro.analysis`` is a pass manager over (a) post-rewrite HOP DAGs and
(b) linearized instruction streams, checking the invariants the
compiler and runtime otherwise assume silently: DAG structure and shape
consistency, backend-placement legality, def-before-use soundness of
any proposed linearization (Algorithm 2 included), liveness/leaks,
async-operator hazards (§5.1), and lineage-key determinism (§3).

Three entry points:

* ``MemphisConfig(verify_ir=True)`` — every compiled block is verified
  inside :meth:`Session.evaluate`; error-severity findings raise
  :class:`~repro.common.errors.VerificationError` before execution;
* ``python -m repro.analysis [workload ...]`` — run registered
  workloads under an ambient collector and report all findings;
* ``python -m repro.harness ... --verify-ir`` — same collector wired
  into the experiment harness.

See ``docs/ANALYSIS.md`` for the rule catalog.
"""

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    register_pass,
    registered_passes,
)
from repro.analysis.dataflow import StreamDefUse, consumers_of, walk_dag
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.hook import (
    AnalysisCollector,
    collecting,
    current_collector,
    install_collector,
    uninstall_collector,
)
from repro.analysis.manager import (
    DEFAULT_PASS_ORDER,
    PassManager,
    analyze,
    check_linearization,
    verify_ir,
)
from repro.analysis.memplan import (
    BlockMemPlan,
    MemplanCollector,
    SessionMemPlanner,
    SpillPoint,
    current_memplan_collector,
    format_footprint_table,
    format_region_peaks,
    install_memplan_collector,
    plan_block,
    plan_diagnostics,
    planning,
    schedule_gpu_spills,
    uninstall_memplan_collector,
)

__all__ = [
    "AnalysisCollector",
    "AnalysisContext",
    "AnalysisPass",
    "BlockMemPlan",
    "DEFAULT_PASS_ORDER",
    "Diagnostic",
    "DiagnosticReport",
    "MemplanCollector",
    "PassManager",
    "SessionMemPlanner",
    "Severity",
    "SpillPoint",
    "StreamDefUse",
    "analyze",
    "check_linearization",
    "collecting",
    "consumers_of",
    "current_collector",
    "current_memplan_collector",
    "format_footprint_table",
    "format_region_peaks",
    "install_collector",
    "install_memplan_collector",
    "plan_block",
    "plan_diagnostics",
    "planning",
    "register_pass",
    "registered_passes",
    "schedule_gpu_spills",
    "uninstall_memplan_collector",
    "verify_ir",
    "walk_dag",
]
