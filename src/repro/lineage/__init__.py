"""Fine-grained, backend-agnostic lineage tracing (paper §3)."""

from repro.lineage.item import (
    OP_DATA,
    OP_FUNCTION,
    OP_LITERAL,
    LineageItem,
    dags_equal,
    dataset,
    function_item,
    literal,
)
from repro.lineage.query import (
    TraceDiff,
    TraceStats,
    common_subtraces,
    data_sources,
    depends_on,
    diff_traces,
    find_by_opcode,
    find_nodes,
    subtraces,
    to_dot,
    trace_stats,
)
from repro.lineage.serialize import deserialize, serialize
from repro.lineage.trace import LineageMap

__all__ = [
    "LineageItem",
    "LineageMap",
    "dags_equal",
    "dataset",
    "function_item",
    "literal",
    "serialize",
    "deserialize",
    "OP_DATA",
    "OP_FUNCTION",
    "OP_LITERAL",
    "TraceStats",
    "TraceDiff",
    "trace_stats",
    "find_nodes",
    "find_by_opcode",
    "data_sources",
    "depends_on",
    "subtraces",
    "diff_traces",
    "common_subtraces",
    "to_dot",
]
