"""Lineage items: nodes of the fine-grained lineage DAG (paper §3.2).

A lineage item records the opcode, literal data items, and pointers to the
input lineage items of one executed instruction.  Because all primitives
are deterministic given their lineage (random seeds are data items), a
lineage DAG *uniquely identifies* an intermediate — the core property that
makes lineage keys safe cache keys.

Hashing and equality follow the paper exactly:

* the hash combines the opcode, the data items, and the *hashes* of the
  inputs (computed once, bottom-up, and memoized);
* equality uses a non-recursive, queue-based traversal with sub-DAG
  memoization and early-abort on hash mismatch, height difference, and
  shared sub-DAGs (object identity).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

_ids = itertools.count(1)

#: opcode used for leaf items that name an input dataset.
OP_DATA = "data"
#: opcode used for scalar / string literals.
OP_LITERAL = "lit"
#: opcode prefix for function-level (coarse-grained) lineage items (§3.3).
OP_FUNCTION = "func"
#: opcode prefix for per-session namespace wrappers on a shared
#: substrate: ``ns:<uid>`` wraps a key whose DAG is impure (seeded /
#: nondeterministic) so it never unifies across sessions
#: (see ``repro.core.substrate``).
OP_NAMESPACE = "ns"


class LineageItem:
    """One node of a lineage DAG.

    Parameters
    ----------
    opcode:
        The instruction opcode (e.g. ``ba+*``), or :data:`OP_DATA` /
        :data:`OP_LITERAL` for leaves.
    data:
        Tuple of literal data items (scalar constants, seeds, dataset
        identifiers) that parameterize the operation.
    inputs:
        Input lineage items, in argument order.
    """

    __slots__ = ("id", "opcode", "data", "inputs", "height", "_hash")

    def __init__(self, opcode: str, data: tuple = (),
                 inputs: tuple["LineageItem", ...] = ()) -> None:
        self.id: int = next(_ids)
        self.opcode = opcode
        self.data = data if type(data) is tuple else tuple(data)
        inputs = inputs if type(inputs) is tuple else tuple(inputs)
        self.inputs = inputs
        # explicit loop instead of two genexprs: item construction is on
        # the TRACE hot path (one per interner miss)
        if inputs:
            hmax = -1
            hashes = []
            append = hashes.append
            for inp in inputs:
                if inp.height > hmax:
                    hmax = inp.height
                append(inp._hash)
            self.height = 1 + hmax
            self._hash = hash((opcode, self.data, tuple(hashes)))
        else:
            self.height = 0
            self._hash = hash((opcode, self.data, ()))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LineageItem):
            return NotImplemented
        return dags_equal(self, other)

    def __repr__(self) -> str:
        data = ",".join(map(str, self.data))
        return (
            f"LineageItem#{self.id}({self.opcode}"
            f"{'[' + data + ']' if data else ''}, h={self.height})"
        )

    @property
    def is_leaf(self) -> bool:
        """Whether this item has no inputs (dataset or literal)."""
        return not self.inputs

    @property
    def is_function(self) -> bool:
        """Whether this is a coarse-grained (function-level) item."""
        return self.opcode.startswith(OP_FUNCTION)

    @property
    def is_namespaced(self) -> bool:
        """Whether this is a session-scoped namespace wrapper."""
        return self.opcode.startswith(OP_NAMESPACE + ":")

    def iter_dag(self) -> Iterable["LineageItem"]:
        """Yield every node of the DAG reachable from this item once."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.inputs)

    def dag_size(self) -> int:
        """Number of distinct nodes in this item's DAG."""
        return sum(1 for _ in self.iter_dag())


class LineageInterner:
    """Hash-consing table: structurally identical items become one object.

    The interpreter's TRACE step (paper Fig. 4) constructs one lineage
    item per executed instruction.  Iterative workloads re-trace the
    same instructions every iteration, so without interning each
    iteration allocates a fresh — structurally equal — item, and every
    cache probe pays a full :func:`dags_equal` structural comparison
    when dict hashing collides equal keys.

    Interning keys on ``(opcode, data, input identities)``: because the
    interpreter interns bottom-up, two structurally equal op items built
    from the same (interned or handle-bound) inputs share identical
    input objects, so identity of inputs is equivalent to structural
    equality of inputs.  The canonical item is returned for every
    repeat, which makes subsequent cache probes hit the dictionary's
    identity fast path instead of running ``dags_equal``.

    Items built *outside* the interner (deserialized logs, hand-built
    DAGs) simply miss the table and fall back to structural equality —
    behaviour is unchanged, only slower for that item.

    One interner per session (see ``Session.lineage_interner``): the
    table's lifetime — and its memory — follows the session, mirroring
    the lineage cache it accelerates.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[tuple, LineageItem] = {}

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, opcode: str, data: tuple,
               inputs: tuple[LineageItem, ...]) -> LineageItem:
        """Canonical item for ``(opcode, data, inputs)`` (hash-consing)."""
        key = (opcode, data, tuple(map(id, inputs)))
        item = self._table.get(key)
        if item is None:
            item = LineageItem(opcode, data, inputs)
            self._table[key] = item
        return item

    def clear(self) -> None:
        self._table.clear()


def literal(value: object) -> LineageItem:
    """Lineage leaf for a scalar/string literal."""
    return LineageItem(OP_LITERAL, (value,))


def dataset(name: str) -> LineageItem:
    """Lineage leaf for a named input dataset."""
    return LineageItem(OP_DATA, (name,))


def function_item(fname: str, inputs: tuple[LineageItem, ...],
                  output_index: int = 0) -> LineageItem:
    """Coarse-grained item for one output of a deterministic function.

    The paper uses a special lineage item containing the function name and
    the inputs for each function output (§3.3, multi-level reuse).
    """
    return LineageItem(f"{OP_FUNCTION}:{fname}", (output_index,), inputs)


def dags_equal(a: LineageItem, b: LineageItem,
               memo: Optional[set[tuple[int, int]]] = None) -> bool:
    """Non-recursive DAG equality with memoization and early aborts.

    Early-abort conditions (paper §3.2): hash mismatch, height difference,
    and shared sub-DAGs (object identity short-circuits a subtree).
    """
    if a is b:
        return True
    if a._hash != b._hash or a.height != b.height:
        return False
    if memo is None:
        memo = set()
    queue: list[tuple[LineageItem, LineageItem]] = [(a, b)]
    while queue:
        x, y = queue.pop()
        if x is y:
            continue
        key = (id(x), id(y)) if id(x) < id(y) else (id(y), id(x))
        if key in memo:
            continue
        if (
            x._hash != y._hash
            or x.height != y.height
            or x.opcode != y.opcode
            or x.data != y.data
            or len(x.inputs) != len(y.inputs)
        ):
            return False
        memo.add(key)
        queue.extend(zip(x.inputs, y.inputs))
    return True
