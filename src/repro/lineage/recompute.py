"""Lineage -> executable DAG: the shared RECOMPUTE entry point (§3.2).

Both recovery paths replay lineage the same way: the public
``Session.recompute`` API (deserialized textual logs) and the fault
tolerance machinery (``Session.recompute_from_lineage``, invoked when
every cached copy of an intermediate has been lost).  This module holds
the common rebuild: a memoized walk of a :class:`LineageItem` trace that
re-emits HOPs, leaving dataset resolution to the caller so the execution
environment may differ from the one that produced the trace.
"""

from __future__ import annotations

from typing import Callable

from repro.compiler.ir import Hop, literal_hop, op_hop
from repro.lineage.item import LineageItem


def attrs_from_data(data: tuple) -> dict:
    """Rebuild an attribute dict from a flattened lineage data tuple.

    Inverse of the interpreter's attribute flattening: lineage items
    store op attributes as ``(key, value, key, value, ...)``.
    """
    attrs: dict = {}
    for i in range(0, len(data) - 1, 2):
        attrs[str(data[i])] = data[i + 1]
    return attrs


def hops_from_item(root: LineageItem,
                   read_dataset: Callable[[str], Hop]) -> Hop:
    """Rebuild the expression DAG of a lineage trace (memoized walk).

    ``read_dataset(name)`` resolves a ``data`` leaf to a data hop —
    typically by re-binding a session-registered input — and should
    raise :class:`~repro.common.errors.RecomputationError` when the
    dataset is unavailable.  Shared sub-traces become shared hops, so
    the replayed DAG preserves the original sharing structure (and the
    compiler's CSE/reuse machinery applies to the replay too).
    """
    hops: dict[int, Hop] = {}

    def build(item: LineageItem) -> Hop:
        if item.id in hops:
            return hops[item.id]
        if item.opcode == "lit":
            hop = literal_hop(item.data[0])
        elif item.opcode == "data":
            hop = read_dataset(str(item.data[0]))
        else:
            child_hops = [build(child) for child in item.inputs]
            hop = op_hop(item.opcode, child_hops, attrs_from_data(item.data))
        hops[item.id] = hop
        return hop

    return build(root)
