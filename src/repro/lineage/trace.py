"""Lineage tracing: the ``LineageMap`` of live variables (paper §3.2).

``TRACE`` is called for each linear-algebra instruction before execution;
each output generates a new lineage item from the input items, which is
added to the map.  On a successful cache probe the map entry is replaced
by the cached object's key item (*compaction*, Fig. 5), which increases
shared sub-DAGs and thereby probing efficiency and memory footprint.
"""

from __future__ import annotations

from typing import Optional

from repro.lineage.item import LineageItem, dataset, literal


class LineageMap:
    """Maps live variable names to the lineage DAGs of their values."""

    def __init__(self) -> None:
        self._map: dict[str, LineageItem] = {}
        self.compactions = 0

    def __contains__(self, var: str) -> bool:
        return var in self._map

    def __len__(self) -> int:
        return len(self._map)

    def get(self, var: str) -> Optional[LineageItem]:
        """Lineage item of variable ``var`` (``None`` if untracked)."""
        return self._map.get(var)

    def get_or_create_leaf(self, var: str) -> LineageItem:
        """Lineage of ``var``, creating a dataset leaf for unseen inputs."""
        item = self._map.get(var)
        if item is None:
            item = dataset(var)
            self._map[var] = item
        return item

    def set(self, var: str, item: LineageItem) -> None:
        """Bind ``var`` to ``item`` (e.g. after executing an instruction)."""
        self._map[var] = item

    def set_literal(self, var: str, value: object) -> LineageItem:
        """Bind ``var`` to a literal leaf and return it."""
        item = literal(value)
        self._map[var] = item
        return item

    def remove(self, var: str) -> None:
        """Drop ``var`` from the map (variable went out of scope)."""
        self._map.pop(var, None)

    def trace(self, opcode: str, output_var: str,
              input_vars: list[str] = (), data: tuple = ()) -> LineageItem:
        """Create the lineage item for one instruction and bind the output.

        Inputs that are not yet tracked become dataset leaves — this makes
        tracing total, exactly like SystemDS tracing persistent reads.
        """
        inputs = tuple(self.get_or_create_leaf(v) for v in input_vars)
        item = LineageItem(opcode, data, inputs)
        self._map[output_var] = item
        return item

    def compact(self, var: str, cached_key: LineageItem) -> None:
        """Replace the entry of ``var`` with the cache's key item.

        After a successful probe, pointing the live variable at the cached
        key object makes future DAGs built on ``var`` share sub-DAGs by
        *identity* with the cached keys (paper Fig. 5), enabling the
        identity early-abort in equality checks.
        """
        if self._map.get(var) is not cached_key:
            self._map[var] = cached_key
            self.compactions += 1

    def live_variables(self) -> list[str]:
        """Names of all tracked variables."""
        return list(self._map)

    def total_dag_nodes(self) -> int:
        """Distinct lineage nodes reachable from live variables.

        Shared sub-DAGs are counted once — the metric the compaction
        optimization improves.
        """
        seen: set[int] = set()
        count = 0
        stack = list(self._map.values())
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            count += 1
            stack.extend(node.inputs)
        return count

    def clear(self) -> None:
        """Forget all variables (end of session/scope)."""
        self._map.clear()
