"""Serialization of lineage traces to textual lineage logs (paper §3.1).

The format is line-based and topologically ordered (inputs before
consumers), similar to SystemDS lineage logs::

    (7) ba+* () (3 5)
    (8) +    (i:1) (7)

Each line holds a node id, the opcode, typed data items, and input ids.
``serialize``/``deserialize`` round-trip exactly, enabling sharing of
traces and exact recomputation in a different environment (§3.2).
"""

from __future__ import annotations

from repro.common.errors import LineageError
from repro.lineage.item import LineageItem


def _encode_datum(value: object) -> str:
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        # percent-encode the separator characters so a plain split works
        encoded = (
            value.replace("%", "%25").replace(";", "%3B")
            .replace("(", "%28").replace(")", "%29")
            .replace("\n", "%0A").replace(" ", "%20")
        )
        return "s:" + encoded
    raise LineageError(f"unsupported lineage data item type: {type(value)!r}")


def _decode_datum(token: str) -> object:
    kind, _, payload = token.partition(":")
    if kind == "b":
        return payload == "1"
    if kind == "i":
        return int(payload)
    if kind == "f":
        return float(payload)
    if kind == "s":
        return (
            payload.replace("%20", " ").replace("%0A", "\n")
            .replace("%29", ")").replace("%28", "(")
            .replace("%3B", ";").replace("%25", "%")
        )
    raise LineageError(f"malformed lineage data item: {token!r}")


def serialize(root: LineageItem) -> str:
    """Serialize the DAG rooted at ``root`` to a lineage log string."""
    order: list[LineageItem] = []
    seen: set[int] = set()
    # iterative post-order so inputs precede consumers
    stack: list[tuple[LineageItem, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            if id(node) not in seen:
                seen.add(id(node))
                order.append(node)
            continue
        if id(node) in seen:
            continue
        stack.append((node, True))
        for inp in node.inputs:
            stack.append((inp, False))

    lines = []
    local_ids = {id(node): idx for idx, node in enumerate(order)}
    for idx, node in enumerate(order):
        data = ";".join(_encode_datum(d) for d in node.data)
        inputs = " ".join(str(local_ids[id(i)]) for i in node.inputs)
        lines.append(f"({idx}) {node.opcode} ({data}) ({inputs})")
    return "\n".join(lines)


def deserialize(log: str) -> LineageItem:
    """Parse a lineage log back into an in-memory lineage DAG root."""
    nodes: dict[int, LineageItem] = {}
    last: LineageItem | None = None
    for lineno, raw in enumerate(log.splitlines()):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            idx_part, rest = line.split(") ", 1)
            idx = int(idx_part.lstrip("("))
            opcode, rest = rest.split(" (", 1)
            data_part, input_part = rest.split(") (", 1)
            input_part = input_part.rstrip(")")
        except ValueError as exc:
            raise LineageError(f"malformed lineage log line {lineno}: {raw!r}") from exc
        data = tuple(
            _decode_datum(tok) for tok in data_part.split(";") if tok
        )
        try:
            inputs = tuple(nodes[int(t)] for t in input_part.split() if t)
        except KeyError as exc:
            raise LineageError(
                f"lineage log line {lineno} references undefined node"
            ) from exc
        node = LineageItem(opcode.strip(), data, inputs)
        nodes[idx] = node
        last = node
    if last is None:
        raise LineageError("empty lineage log")
    return last
