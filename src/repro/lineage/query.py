"""Query processing over lineage traces (paper §3.2 / §8 future work).

The paper names "query processing on lineage traces for model
management" and "model debugging" as follow-up work to the RECOMPUTE
API.  This module implements that layer: declarative queries over
in-memory lineage DAGs — operator histograms, provenance filtering,
sub-trace extraction, trace diffing, and data-source audits — the
primitives a model-debugging UI would build on (MISTIQUE-style [123]).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.lineage.item import OP_DATA, OP_LITERAL, LineageItem, dags_equal


@dataclass
class TraceStats:
    """Aggregate statistics of one lineage trace."""

    num_nodes: int
    height: int
    opcode_histogram: dict[str, int]
    num_data_sources: int
    num_literals: int

    @property
    def num_operators(self) -> int:
        return self.num_nodes - self.num_data_sources - self.num_literals


def trace_stats(root: LineageItem) -> TraceStats:
    """Summarize a trace: size, depth, operator mix, input counts."""
    histogram: Counter = Counter()
    data_sources = 0
    literals = 0
    count = 0
    for node in root.iter_dag():
        count += 1
        histogram[node.opcode] += 1
        if node.opcode == OP_DATA:
            data_sources += 1
        elif node.opcode == OP_LITERAL:
            literals += 1
    return TraceStats(count, root.height, dict(histogram),
                      data_sources, literals)


def find_nodes(root: LineageItem,
               predicate: Callable[[LineageItem], bool]) -> list[LineageItem]:
    """All nodes of the trace satisfying ``predicate`` (pre-order)."""
    return [node for node in root.iter_dag() if predicate(node)]


def find_by_opcode(root: LineageItem, opcode: str) -> list[LineageItem]:
    """All nodes with the given opcode."""
    return find_nodes(root, lambda n: n.opcode == opcode)


def data_sources(root: LineageItem) -> list[str]:
    """Names of the input datasets this result depends on (provenance)."""
    names = []
    seen = set()
    for node in root.iter_dag():
        if node.opcode == OP_DATA and node.data:
            name = str(node.data[0])
            if name not in seen:
                seen.add(name)
                names.append(name)
    return sorted(names)


def depends_on(root: LineageItem, dataset_name: str) -> bool:
    """Whether the result was derived (transitively) from ``dataset_name``.

    The core primitive of data-distribution debugging and GDPR-style
    audits: does this model artifact depend on this input?
    """
    return dataset_name in data_sources(root)


def subtraces(root: LineageItem, opcode: str) -> list[LineageItem]:
    """The sub-traces rooted at every occurrence of ``opcode``.

    Each returned item can be fed to SERIALIZE/RECOMPUTE to materialize
    exactly that intermediate — the debugging workflow of §3.2.
    """
    return find_by_opcode(root, opcode)


@dataclass
class TraceDiff:
    """Structural difference between two traces."""

    equal: bool
    #: first differing node pair along the left spine (None if equal).
    divergence: Optional[tuple[LineageItem, LineageItem]] = None
    only_left_ops: dict[str, int] = field(default_factory=dict)
    only_right_ops: dict[str, int] = field(default_factory=dict)


def diff_traces(left: LineageItem, right: LineageItem) -> TraceDiff:
    """Compare two traces: equality, divergence point, operator deltas.

    Useful for answering "why did these two pipeline runs differ?" —
    e.g. a changed hyper-parameter literal or an extra cleaning step.
    """
    if dags_equal(left, right):
        return TraceDiff(equal=True)
    divergence = _first_divergence(left, right)
    left_hist = Counter(n.opcode for n in left.iter_dag())
    right_hist = Counter(n.opcode for n in right.iter_dag())
    only_left = {
        op: count - right_hist.get(op, 0)
        for op, count in left_hist.items()
        if count > right_hist.get(op, 0)
    }
    only_right = {
        op: count - left_hist.get(op, 0)
        for op, count in right_hist.items()
        if count > left_hist.get(op, 0)
    }
    return TraceDiff(False, divergence, only_left, only_right)


def _first_divergence(left: LineageItem, right: LineageItem):
    """Topmost structurally differing pair (queue-based descent)."""
    queue = [(left, right)]
    seen: set[tuple[int, int]] = set()
    while queue:
        a, b = queue.pop(0)
        if a is b:
            continue
        key = (id(a), id(b))
        if key in seen:
            continue
        seen.add(key)
        if (a.opcode != b.opcode or a.data != b.data
                or len(a.inputs) != len(b.inputs)):
            return (a, b)
        if not dags_equal(a, b):
            for pair in zip(a.inputs, b.inputs):
                if not dags_equal(*pair):
                    queue.append(pair)
    return (left, right)


def common_subtraces(left: LineageItem, right: LineageItem,
                     min_height: int = 1) -> list[LineageItem]:
    """Maximal sub-traces shared by both DAGs (the reuse frontier).

    These are exactly the intermediates MEMPHIS would reuse when
    executing ``right`` after ``left``; exposing them makes reuse
    decisions explainable.
    """
    right_by_hash: dict[int, list[LineageItem]] = {}
    for node in right.iter_dag():
        right_by_hash.setdefault(hash(node), []).append(node)

    shared: list[LineageItem] = []
    covered: set[int] = set()
    # iterate top-down (higher nodes first) so only maximal ones are kept
    nodes = sorted(left.iter_dag(), key=lambda n: -n.height)
    for node in nodes:
        if id(node) in covered or node.height < min_height:
            continue
        candidates = right_by_hash.get(hash(node), ())
        if any(dags_equal(node, other) for other in candidates):
            shared.append(node)
            for inner in node.iter_dag():
                covered.add(id(inner))
    return shared


def to_dot(root: LineageItem, max_nodes: int = 200) -> str:
    """GraphViz rendering of a trace for visual debugging.

    Builds the node/edge lists and delegates the actual DOT emission to
    :func:`repro.obs.explain.render_dot`, the repository's single
    GraphViz-emitting code path (shared with explain-plan dumps).
    """
    from repro.obs.explain import render_dot

    nodes: list[tuple[int, str, str]] = []
    seen: set[int] = set()
    truncated = False
    for node in root.iter_dag():
        if len(nodes) >= max_nodes:
            truncated = True
            break
        seen.add(id(node))
        label = node.opcode
        if node.data:
            payload = ",".join(str(d) for d in node.data[:3])
            label += f"\\n{payload[:24]}"
        shape = "box" if node.inputs else "ellipse"
        nodes.append((node.id, label, shape))
    edges = [
        (inp.id, node.id)
        for node in root.iter_dag() if id(node) in seen
        for inp in node.inputs if id(inp) in seen
    ]
    return render_dot(nodes, edges, graph_name="lineage",
                      truncated=truncated)
