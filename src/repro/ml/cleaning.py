"""Data-cleaning primitives (paper's CLEAN pipeline, SAGA-style [114]).

Feature-wise primitives for missing-value imputation, outlier handling,
scaling, class balancing, and dimensionality reduction.  All primitives
are deterministic matrix programs, so their results are reusable across
enumerated cleaning pipelines.
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle

_EPS = 1e-12


def impute_by_mean(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Replace NaN cells with the column mean of observed values."""
    observed = X.replace(float("nan"), 0.0)
    is_nan = _nan_mask(sess, X)
    counts = (1.0 - is_nan).col_sums().maximum(1.0)
    means = observed.col_sums() / counts
    return observed + is_nan * means


def impute_by_mode(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Replace NaN cells with an integer-rounded robust column value.

    For integer-coded categorical features the rounded median is the
    mode under mild unimodality — a standard matrix-program surrogate.
    """
    is_nan = _nan_mask(sess, X)
    observed = X.replace(float("nan"), 0.0)
    med = sess.quantile(observed, 0.5).round()
    return observed + is_nan * med


def outlier_by_iqr(sess: Session, X: MatrixHandle,
                   k: float = 1.5) -> MatrixHandle:
    """Winsorize values outside ``[Q1 - k*IQR, Q3 + k*IQR]`` per column."""
    q1 = sess.quantile(X, 0.25)
    q3 = sess.quantile(X, 0.75)
    iqr = q3 - q1
    lower = q1 - iqr * k
    upper = q3 + iqr * k
    return X.maximum(lower).minimum(upper)


def scale(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Standard (z-score) scaling per column."""
    mu = X.col_means()
    centered = X - mu
    var = (centered ^ 2.0).col_means()
    return centered / (var.sqrt() + _EPS)


def normalize(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Min-max normalization per column."""
    lo = X.col_mins()
    hi = X.col_maxs()
    return (X - lo) / (hi - lo + _EPS)


def under_sampling(sess: Session, X: MatrixHandle, y: MatrixHandle,
                   ratio: float = 0.5) -> tuple[MatrixHandle, MatrixHandle]:
    """Drop a deterministic fraction of rows to rebalance classes.

    Keeps the leading ``(1 - ratio)`` fraction of rows — a deterministic
    matrix program (row slicing), so the result is lineage-reusable on
    both local and distributed inputs.
    """
    n = X.nrow
    keep = max(int(n * (1.0 - ratio)), 2)
    return X[0:keep, :], y[0:keep, :]


def pca_project(sess: Session, X: MatrixHandle, k: int,
                power_iterations: int = 5,
                seed: int = 97) -> MatrixHandle:
    """Project onto the top-``k`` principal directions.

    Uses orthogonal-free power iteration on the covariance matrix —
    all operations stay within the system's operator set, so PCA is
    fully traced and reusable.
    """
    mu = X.col_means()
    Xc = X - mu
    cov = (Xc.t() @ Xc) / float(max(X.nrow - 1, 1))
    V = sess.rand(X.ncol, k, min=-1.0, max=1.0, seed=seed)
    for _ in range(power_iterations):
        V = cov @ V
        norms = ((V ^ 2.0).col_sums()).sqrt() + _EPS
        V = V / norms
    return Xc @ V


def _nan_mask(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Indicator matrix of NaN cells (NaN != NaN)."""
    return 1.0 - X.eq(X)
