"""L2-regularized support vector machine (SystemDS ``l2svm`` builtin).

Newton-style iterations with a squared-hinge loss; the inner loop's
``X %*% w`` and ``t(X) %*% g`` multiplications dominate and repeat across
hyper-parameter configurations — the reuse scenario of the paper's
micro-benchmarks (Fig. 11) and the HBAND pipeline.
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle


def l2svm(sess: Session, X: MatrixHandle, y: MatrixHandle,
          reg: float = 1.0, intercept: int = 0,
          max_iterations: int = 10, tol: float = 1e-9) -> MatrixHandle:
    """Train a binary L2-SVM; labels in {-1, +1}.

    ``intercept`` follows SystemDS: 0 = none, 1 = bias column,
    2 = bias column + shift/rescale (approximated by the bias column).
    """
    if intercept > 0:
        ones = sess.fill(X.nrow, 1, 1.0)
        X = sess.cbind(X, ones)
    w = sess.fill(X.ncol, 1, 0.0)
    out = X @ w
    g_old = (y * out - 1.0).minimum(0.0)  # hinge region indicator source
    for _ in range(max_iterations):
        # squared hinge loss gradient
        margin = y * (X @ w)
        active = (margin < 1.0)
        residual = (margin - 1.0) * active
        grad = (((residual * y).t() @ X).t()) + w * reg
        step = grad * (-1.0 / (reg + float(X.nrow)))
        w = (w + step).evaluate()
    return w


def l2svm_predict(sess: Session, X: MatrixHandle,
                  w: MatrixHandle, intercept: int = 0) -> MatrixHandle:
    """Raw decision scores ``X %*% w``."""
    if intercept > 0:
        X = sess.cbind(X, sess.fill(X.nrow, 1, 1.0))
    return X @ w


def l2svm_accuracy(sess: Session, scores: MatrixHandle,
                   y: MatrixHandle) -> float:
    """Fraction of correctly signed predictions."""
    correct = (scores.sign() * y > 0.0).mean()
    return correct.item()


def l2svm_core_iteration(sess: Session, X: MatrixHandle, y: MatrixHandle,
                         w: MatrixHandle, reg: float) -> MatrixHandle:
    """One inner iteration, exposed for the reuse micro-benchmarks."""
    margin = y * (X @ w)
    active = (margin < 1.0)
    residual = (margin - 1.0) * active
    grad = (((residual * y).t() @ X).t()) + w * reg
    return w + grad * (-1.0 / (reg + float(X.nrow)))
