"""Feature transformations: recode, binning, one-hot (paper's IDP).

These form the input data pipelines (IDP) applied batch-wise in HDROP —
the transformation is reused on the host while normalization is reused
on the GPU (paper §6.3).
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle


def recode(sess: Session, X: MatrixHandle) -> MatrixHandle:
    """Dictionary-encode categorical columns to dense 1-based codes."""
    return sess.recode(X)


def equi_width_bin(sess: Session, X: MatrixHandle,
                   num_bins: int = 10) -> MatrixHandle:
    """Equi-width binning into 1-based bin ids."""
    return sess.bin(X, num_bins)


def one_hot(sess: Session, codes: MatrixHandle,
            num_codes: int) -> MatrixHandle:
    """One-hot encode a single 1-based code column via ``table``."""
    rows = sess.seq(1, codes.nrow, 1.0)
    return sess.table(rows, codes, codes.nrow, num_codes)


def transform_encode(sess: Session, categorical: MatrixHandle,
                     numerical: MatrixHandle, num_bins: int = 10,
                     one_hot_width: int = 16) -> MatrixHandle:
    """The HDROP feature map: recode + bin + one-hot of first column.

    Categorical columns are recoded; numerical columns binned; the first
    categorical column is additionally one-hot encoded (codes clamped to
    ``one_hot_width``), then everything is column-bound.
    """
    codes = recode(sess, categorical)
    bins = equi_width_bin(sess, numerical, num_bins)
    first = codes[:, 0:1].minimum(float(one_hot_width))
    hot = one_hot(sess, first, one_hot_width)
    return sess.cbind(codes, bins, hot)


def minibatch(X: MatrixHandle, index: int, batch_size: int) -> MatrixHandle:
    """Slice mini-batch ``index`` (0-based) out of ``X``.

    Slicing directly from the input keeps the lineage trace short, which
    the GPU eviction policy's ``1/h(o)`` term rewards (paper Eq. 2).
    """
    start = index * batch_size
    stop = min(start + batch_size, X.nrow)
    return X[start:stop, :]
