"""Direct-solve linear regression (``linRegDS``, paper Example 4.1).

The core operations ``t(X) %*% X`` and ``t(X) %*% y`` are independent of
the regularization parameter, making them the canonical reuse targets of
grid-search hyper-parameter tuning.  Following the paper (Fig. 2(b)),
``t(X) %*% y`` is rewritten to ``t(t(y) %*% X)`` so Spark compiles a
broadcast-based multiply of the small ``t(y)`` vector.
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle


def lin_reg_ds(sess: Session, X: MatrixHandle, y: MatrixHandle,
               reg: float) -> MatrixHandle:
    """Closed-form ridge regression: ``(X'X + reg*I)^-1 X'y``."""
    A = X.t() @ X
    b = (y.t() @ X).t()
    A_reg = A + sess.eye(X.ncol) * reg
    return sess.solve(A_reg, b)


def lin_reg_predict(sess: Session, X: MatrixHandle,
                    beta: MatrixHandle) -> MatrixHandle:
    """Predictions ``X %*% beta``."""
    return X @ beta


def r2_score(sess: Session, y: MatrixHandle,
             y_hat: MatrixHandle) -> MatrixHandle:
    """Coefficient of determination used by HCV to rank parameters."""
    residual = ((y - y_hat) ^ 2.0).sum()
    total = ((y - y.mean()) ^ 2.0).sum()
    return 1.0 - residual / total
