"""Poisson non-negative matrix factorization (paper §6.3, Fig. 9(c)).

Multiplicative update rules factorizing ``X ~ W %*% H``; on MovieLens-
scale data the factor ``W`` is distributed while ``H`` stays local.
Without checkpoints, Spark's lazy evaluation makes every iteration's jobs
re-execute all previous iterations — the scenario MEMPHIS's loop
checkpoint rewrite targets.
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle

_EPS = 1e-8


def pnmf(sess: Session, X: MatrixHandle, rank: int,
         iterations: int = 10, seed: int = 13) -> tuple[MatrixHandle, MatrixHandle]:
    """Factorize ``X`` (n x m) into ``W`` (n x rank) and ``H`` (rank x m)."""
    W = sess.rand(X.nrow, rank, min=0.01, max=1.0, seed=seed)
    H = sess.rand(rank, X.ncol, min=0.01, max=1.0, seed=seed + 1)
    with sess.loop("pnmf") as loop:
        for _ in range(iterations):
            W, H = pnmf_iteration(sess, X, W, H)
            loop.update(W=W)
    return W, H


def pnmf_iteration(sess: Session, X: MatrixHandle, W: MatrixHandle,
                   H: MatrixHandle) -> tuple[MatrixHandle, MatrixHandle]:
    """One pair of multiplicative updates (Liu et al., WWW'10)."""
    # H update: H * (t(W) %*% (X / (W H))) / (t(colSums-ish of W))
    WH = W @ H
    ratio = X / (WH + _EPS)
    numer_h = W.t() @ ratio
    denom_h = W.col_sums().t()  # rank x 1, broadcasts over H columns
    H = (H * numer_h / (denom_h + _EPS)).evaluate()
    # W update: W * ((X / (W H)) %*% t(H)) / rowSums-ish of H
    WH2 = W @ H
    ratio2 = X / (WH2 + _EPS)
    numer_w = ratio2 @ H.t()
    denom_w = H.row_sums().t()  # 1 x rank, broadcasts over W rows
    W = (W * numer_w / (denom_w + _EPS)).evaluate()
    return W, H


def pnmf_loss(sess: Session, X: MatrixHandle, W: MatrixHandle,
              H: MatrixHandle) -> float:
    """Poisson divergence (up to constants): sum(WH - X*log(WH))."""
    WH = W @ H + _EPS
    return (WH - X * WH.log()).sum().item()
