"""Multinomial logistic regression (SystemDS ``multiLogReg`` builtin).

Batch gradient descent over the softmax cross-entropy objective; used by
the HBAND model-search pipeline next to L2SVM.
"""

from __future__ import annotations

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle


def mlogreg(sess: Session, X: MatrixHandle, Y: MatrixHandle,
            reg: float = 1.0, intercept: int = 0,
            max_iterations: int = 10,
            step_size: float = 0.1) -> MatrixHandle:
    """Train multinomial logistic regression.

    ``Y`` is a one-hot label matrix (n x k).  Returns weights (m x k).
    """
    if intercept > 0:
        X = sess.cbind(X, sess.fill(X.nrow, 1, 1.0))
    W = sess.fill(X.ncol, Y.ncol, 0.0)
    n = float(X.nrow)
    for _ in range(max_iterations):
        probs = (X @ W).softmax()
        grad = (X.t() @ (probs - Y)) / n + W * reg
        W = (W - grad * step_size).evaluate()
    return W


def mlogreg_predict(sess: Session, X: MatrixHandle, W: MatrixHandle,
                    intercept: int = 0) -> MatrixHandle:
    """Class probabilities via softmax."""
    if intercept > 0:
        X = sess.cbind(X, sess.fill(X.nrow, 1, 1.0))
    return (X @ W).softmax()


def mlogreg_accuracy(sess: Session, probs: MatrixHandle,
                     Y: MatrixHandle) -> float:
    """Top-1 accuracy against one-hot labels."""
    pred = probs.row_argmax()
    truth = Y.row_argmax()
    return pred.eq(truth).mean().item()
