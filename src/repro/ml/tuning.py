"""Hyper-parameter optimization drivers: grid search, cross-validation,
and Hyperband-style successive halving (paper HCV and HBAND pipelines).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.session import Session
from repro.ml.linreg import lin_reg_ds, lin_reg_predict, r2_score
from repro.runtime.handles import MatrixHandle


def grid_search_linreg(sess: Session, X: MatrixHandle, y: MatrixHandle,
                       regs: Sequence[float]) -> tuple[float, float]:
    """Grid search over regularization; returns (best_reg, best_r2)."""
    best_reg, best_score = regs[0], float("-inf")
    for reg in regs:
        beta = lin_reg_ds(sess, X, y, reg)
        score = r2_score(sess, y, lin_reg_predict(sess, X, beta)).item()
        if score > best_score:
            best_reg, best_score = reg, score
    return best_reg, best_score


def kfold_indices(n: int, k: int) -> list[tuple[int, int]]:
    """Contiguous fold boundaries [(start, stop)), 0-based."""
    fold = n // k
    return [(i * fold, (i + 1) * fold if i < k - 1 else n) for i in range(k)]


def cross_validate_linreg(sess: Session, X: MatrixHandle, y: MatrixHandle,
                          reg: float, folds: int = 3) -> float:
    """k-fold cross-validated R^2 of linRegDS.

    Each fold trains on the complement slice and scores the held-out
    slice; within one fold, ``t(X) %*% X`` / ``t(X) %*% y`` are shared
    across the grid of regularization values (the HCV reuse pattern).
    """
    total = 0.0
    for start, stop in kfold_indices(X.nrow, folds):
        X_test = X[start:stop, :]
        y_test = y[start:stop, :]
        X_train, y_train = _fold_complement(sess, X, y, start, stop)
        beta = lin_reg_ds(sess, X_train, y_train, reg)
        score = r2_score(
            sess, y_test, lin_reg_predict(sess, X_test, beta)
        ).item()
        total += score
    return total / folds


def _fold_complement(sess: Session, X: MatrixHandle, y: MatrixHandle,
                     start: int, stop: int) -> tuple[MatrixHandle, MatrixHandle]:
    if start == 0:
        return X[stop:X.nrow, :], y[stop:y.nrow, :]
    if stop == X.nrow:
        return X[0:start, :], y[0:start, :]
    return (
        sess.rbind(X[0:start, :], X[stop:X.nrow, :]),
        sess.rbind(y[0:start, :], y[stop:y.nrow, :]),
    )


def successive_halving(
    sess: Session,
    configs: Sequence[dict],
    train_fn: Callable[[dict, int], object],
    score_fn: Callable[[object], float],
    brackets: int = 5,
    start_iterations: int = 10,
) -> tuple[dict, object, float]:
    """Hyperband-style bracket loop (paper HBAND phase 1).

    Each bracket halves the surviving configuration list and doubles the
    iteration budget; repeated configurations across brackets share
    their training prefix through lineage reuse.
    """
    survivors = list(configs)
    iterations = start_iterations
    best = (survivors[0], None, float("-inf"))
    for _ in range(brackets):
        scored = []
        for cfg in survivors:
            model = train_fn(cfg, iterations)
            scored.append((score_fn(model, cfg), cfg, model))
        scored.sort(key=lambda t: -t[0])
        top_score, top_cfg, top_model = scored[0]
        if top_score > best[2]:
            best = (top_cfg, top_model, top_score)
        survivors = [cfg for _, cfg, _ in scored[:max(len(scored) // 2, 1)]]
        iterations *= 2
        if len(survivors) == 1:
            break
    return best


def weighted_ensemble(
    sess: Session,
    probs_a: MatrixHandle,
    probs_b: MatrixHandle,
    truth: MatrixHandle,
    weight_grid: Sequence[float],
) -> tuple[float, float]:
    """Random/grid search over ensemble weights (paper HBAND phase 2).

    Combines two models' class probabilities as ``w*A + (1-w)*B``; the
    underlying ``X %*% B`` probability computations are reused across
    all weight configurations.
    """
    best_w, best_acc = weight_grid[0], -1.0
    for w in weight_grid:
        combined = probs_a * w + probs_b * (1.0 - w)
        pred = combined.row_argmax()
        acc = pred.eq(truth).mean().item()
        if acc > best_acc:
            best_w, best_acc = w, acc
    return best_w, best_acc
